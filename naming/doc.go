// Package naming is the public API of the namecoherence library: a
// faithful implementation of the naming model, closure mechanisms and
// coherence analysis of Radia & Pachl, "Coherence in Naming in Distributed
// Computing Environments" (ICDCS 1993), together with the naming schemes
// the paper analyses and the remedies it proposes.
//
// The model (Sections 2–3 of the paper):
//
//   - entities are activities (processes) and objects (files);
//   - a Context is a function from names to entities; objects whose state
//     is a context are directories, and compound names resolve through
//     them;
//   - a Rule (closure mechanism) selects the context in which a name
//     occurring in a computation is resolved, from the Circumstance in
//     which it occurs: R(activity), R(sender), R(object), or a fixed
//     global context.
//
// Coherence (Section 4) is measured by probing names across activities:
// Measure classifies each probe as coherent, weakly coherent (replicas of
// one replicated object), vacuous or incoherent.
//
// The schemes (Section 5) and remedies (Section 6) are exposed as
// sub-systems: the Newcastle Connection, the shared naming graph
// (Andrew/DCE), cross-linked federations, partially qualified process
// identifiers, Algol-scoped embedded names, and per-process namespaces.
//
// Quick start:
//
//	w := naming.NewWorld()
//	root, dir := w.NewContextObject("root")
//	file := w.NewObject("file")
//	dir.Bind("f", file)
//	e, err := w.Resolve(dir, naming.ParsePath("f"))
//
// See examples/ for complete programs and DESIGN.md for the system map.
package naming
