package naming_test

import (
	"fmt"

	"namecoherence/naming"
)

// The model in miniature: contexts map names to entities; compound names
// resolve through context objects.
func Example_resolve() {
	w := naming.NewWorld()
	_, rootCtx := w.NewContextObject("root")
	docs, docsCtx := w.NewContextObject("docs")
	paper := w.NewObject("paper")
	rootCtx.Bind("docs", docs)
	docsCtx.Bind("paper", paper)

	e, err := w.Resolve(rootCtx, naming.ParsePath("docs/paper"))
	fmt.Println(w.Label(e), err)
	// Output: paper <nil>
}

// Closure mechanisms select the context a name is resolved in; coherence
// asks whether a name means the same thing to different activities.
func Example_coherence() {
	w := naming.NewWorld()
	alice, bob := w.NewActivity("alice"), w.NewActivity("bob")
	motd := w.NewObject("motd")

	contexts := naming.NewAssoc()
	for _, a := range []naming.Entity{alice, bob} {
		ctx := naming.NewContext()
		ctx.Bind("motd", motd)                      // same entity for both
		ctx.Bind("tmp", w.NewObject("private-tmp")) // different entities
		contexts.Set(a, ctx)
	}
	r := naming.NewResolver(w, &naming.ActivityRule{Contexts: contexts})
	resolve := func(a naming.Entity, p naming.Path) (naming.Entity, error) {
		return r.Resolve(naming.Internal(a), p)
	}

	acts := []naming.Entity{alice, bob}
	fmt.Println(naming.CheckName(w, resolve, acts, naming.PathOf("motd")))
	fmt.Println(naming.CheckName(w, resolve, acts, naming.PathOf("tmp")))
	// Output:
	// coherent
	// incoherent
}

// Weak coherence: replicated objects need only resolve to replicas of the
// same replicated object (§5 of the paper).
func Example_weakCoherence() {
	w := naming.NewWorld()
	a1, a2 := w.NewActivity("a1"), w.NewActivity("a2")
	bin1, bin2 := w.NewObject("ls@m1"), w.NewObject("ls@m2")
	if _, err := w.NewReplicaGroup(bin1, bin2); err != nil {
		panic(err)
	}

	contexts := naming.NewAssoc()
	c1, c2 := naming.NewContext(), naming.NewContext()
	c1.Bind("ls", bin1)
	c2.Bind("ls", bin2)
	contexts.Set(a1, c1)
	contexts.Set(a2, c2)

	r := naming.NewResolver(w, &naming.ActivityRule{Contexts: contexts})
	resolve := func(a naming.Entity, p naming.Path) (naming.Entity, error) {
		return r.Resolve(naming.Internal(a), p)
	}
	fmt.Println(naming.CheckName(w, resolve, []naming.Entity{a1, a2}, naming.PathOf("ls")))
	// Output: weak
}

// Union contexts overlay a private layer on a shared one (Plan 9 style).
func ExampleUnion() {
	w := naming.NewWorld()
	shared, private := naming.NewContext(), naming.NewContext()
	shared.Bind("cfg", w.NewObject("default-cfg"))
	private.Bind("cfg", w.NewObject("my-cfg"))

	u := naming.Union(private, shared)
	fmt.Println(w.Label(u.Lookup("cfg")))
	u.Unbind("cfg") // removes only the private layer's entry
	fmt.Println(w.Label(u.Lookup("cfg")))
	// Output:
	// my-cfg
	// default-cfg
}

// Treespec builds naming trees from text.
func ExampleBuildTreeSpec() {
	w := naming.NewWorld()
	tr, err := naming.BuildTreeSpec(`
dir /usr/bin
file /usr/bin/ls "#!ls"
link /mnt /usr
`, w, "demo")
	if err != nil {
		panic(err)
	}
	direct, _ := tr.Lookup(naming.ParsePath("usr/bin/ls"))
	viaLink, _ := tr.Lookup(naming.ParsePath("mnt/bin/ls"))
	fmt.Println(direct == viaLink)
	// Output: true
}

// The prefix mapper is the paper's "human closure mechanism" for crossing
// scope boundaries.
func ExamplePrefixMapper() {
	pm := naming.NewPrefixMapper()
	pm.AddRule("/users", "/org2/users")
	mapped, ok := pm.Map("/users/bob/profile")
	fmt.Println(mapped, ok)
	// Output: /org2/users/bob/profile true
}

// Partially qualified identifiers keep intra-subsystem references valid
// across renumbering.
func ExamplePIDRelativize() {
	holder := naming.Addr{Net: 1, Mach: 2, Local: 3}
	sameMachine := naming.Addr{Net: 1, Mach: 2, Local: 9}
	otherNet := naming.Addr{Net: 4, Mach: 7, Local: 1}
	fmt.Println(naming.PIDRelativize(sameMachine, holder))
	fmt.Println(naming.PIDRelativize(otherNet, holder))
	// Output:
	// (0,0,9)
	// (4,7,1)
}
