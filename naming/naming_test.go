package naming_test

import (
	"bytes"
	"testing"

	"namecoherence/naming"
)

// The facade must support the full quick-start flow without touching
// internal packages.
func TestFacadeQuickstart(t *testing.T) {
	w := naming.NewWorld()
	_, dirCtx := w.NewContextObject("root")
	file := w.NewObject("file")
	dirCtx.Bind("f", file)

	got, err := w.Resolve(dirCtx, naming.ParsePath("f"))
	if err != nil {
		t.Fatal(err)
	}
	if got != file {
		t.Fatalf("Resolve = %v", got)
	}
}

func TestFacadeRulesAndCoherence(t *testing.T) {
	w := naming.NewWorld()
	a1, a2 := w.NewActivity("a1"), w.NewActivity("a2")
	shared := w.NewObject("shared")

	assoc := naming.NewAssoc()
	for _, a := range []naming.Entity{a1, a2} {
		ctx := naming.NewContext()
		ctx.Bind("g", shared)
		ctx.Bind("x", w.NewObject("private"))
		assoc.Set(a, ctx)
	}
	r := naming.NewResolver(w, &naming.ActivityRule{Contexts: assoc})
	resolve := func(a naming.Entity, p naming.Path) (naming.Entity, error) {
		return r.Resolve(naming.Internal(a), p)
	}
	rep := naming.Measure(w, resolve, []naming.Entity{a1, a2},
		[]naming.Path{naming.PathOf("g"), naming.PathOf("x")})
	if rep.Coherent != 1 || rep.Incoherent != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if naming.CheckName(w, resolve, []naming.Entity{a1, a2}, naming.PathOf("g")) != naming.Coherent {
		t.Fatal("g should be coherent")
	}
}

func TestFacadeNewcastle(t *testing.T) {
	w := naming.NewWorld()
	s, err := naming.NewNewcastle(w, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s.Machine("m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Tree.Create(naming.ParsePath("etc/passwd"), "x"); err != nil {
		t.Fatal(err)
	}
	p2, err := s.Spawn("m2", "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Resolve("/../m1/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	if s.MachineNames()[0] != "m1" {
		t.Fatal("machine order wrong")
	}
	_ = naming.RootOfInvoker
	_ = naming.RootOfExecutor
}

func TestFacadeSharedAndFederation(t *testing.T) {
	w := naming.NewWorld()
	s, err := naming.NewSharedNS(w, "c1", "c2")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := s.AttachSpace(naming.ViceName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Tree.Create(naming.ParsePath("x"), "v"); err != nil {
		t.Fatal(err)
	}
	f := naming.NewFederation(w)
	if err := f.AddSystem("s", s); err != nil {
		t.Fatal(err)
	}
	pm := naming.NewPrefixMapper()
	pm.AddRule("/a", "/b")
	if got, ok := pm.Map("/a/x"); !ok || got != "/b/x" {
		t.Fatalf("Map = %q, %v", got, ok)
	}
}

func TestFacadePQI(t *testing.T) {
	nw := naming.NewNetwork()
	n1, err := naming.NewPQINode(nw, naming.Addr{Net: 1, Mach: 1, Local: 1}, "n1")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := naming.NewPQINode(nw, naming.Addr{Net: 1, Mach: 1, Local: 2}, "n2")
	if err != nil {
		t.Fatal(err)
	}
	p := naming.PIDRelativize(n2.Addr(), n1.Addr())
	if p.Level() != 1 {
		t.Fatalf("level = %d", p.Level())
	}
	abs, err := naming.PIDAbsolute(p, n1.Addr())
	if err != nil || abs != n2.Addr() {
		t.Fatalf("abs = %v, %v", abs, err)
	}
	if _, err := naming.PIDMap(p, n1.Addr(), n2.Addr()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePerProcAndEmbedded(t *testing.T) {
	w := naming.NewWorld()
	m := naming.NewMachine(w, "m")
	proc, err := naming.NewPerProc(m, "p")
	if err != nil {
		t.Fatal(err)
	}
	proj := naming.NewTree(w, "proj")
	target, err := proj.Create(naming.ParsePath("lib/t"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj.Create(naming.ParsePath("src/s"), "y", naming.ParsePath("lib/t")); err != nil {
		t.Fatal(err)
	}
	if err := proc.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	file, trail, err := proc.Process.ResolveTrail("/proj/src/s")
	if err != nil {
		t.Fatal(err)
	}
	_ = file
	root, _ := proc.Resolve("/")
	chain := naming.ScopeChain(root, trail)
	got, _, err := naming.ResolveEmbedded(w, chain, naming.ParsePath("lib/t"))
	if err != nil {
		t.Fatal(err)
	}
	if got != target {
		t.Fatalf("embedded = %v, want %v", got, target)
	}
}

func TestFacadePersistRoundTrip(t *testing.T) {
	w := naming.NewWorld()
	tr, err := naming.BuildTreeSpec(`file /etc/motd "hi"`, w, "t")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := naming.SaveWorld(w, &buf); err != nil {
		t.Fatal(err)
	}
	w2, err := naming.LoadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	root2 := naming.Entity{ID: tr.Root.ID, Kind: naming.KindObject}
	ctx2, ok := w2.ContextOf(root2)
	if !ok {
		t.Fatal("root lost")
	}
	if _, err := w2.Resolve(ctx2, naming.ParsePath("etc/motd")); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReplicatedService(t *testing.T) {
	w := naming.NewWorld()
	rs, err := naming.NewReplicaSet(w, `file /f "x"`, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	pool, err := naming.NewReplicaPool(rs.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	e1, err := pool.Resolve(naming.ParsePath("f"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := pool.Resolve(naming.ParsePath("f"))
	if err != nil {
		t.Fatal(err)
	}
	if !w.SameReplica(e1, e2) {
		t.Fatal("pool results not weakly coherent")
	}
}
