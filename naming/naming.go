package naming

import (
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/rules"
)

// Core model types (paper §2).
type (
	// Name is a simple (atomic) name.
	Name = core.Name
	// Path is a compound name: a sequence of simple names.
	Path = core.Path
	// EntityID identifies an entity within a World.
	EntityID = core.EntityID
	// Kind classifies entities as activities or objects.
	Kind = core.Kind
	// Entity denotes an element of the entity set E = A ∪ O ∪ {⊥E}.
	Entity = core.Entity
	// Context is a function from names to entities (the set C).
	Context = core.Context
	// BasicContext is the standard mutable Context implementation.
	BasicContext = core.BasicContext
	// World holds the model's sets: entities, states, replica groups.
	World = core.World
	// State is an entity's state σ(e); Context states make directories.
	State = core.State
	// GroupID identifies a replica group.
	GroupID = core.GroupID
	// Edge is one labelled edge of the naming graph.
	Edge = core.Edge
	// NotFoundError reports an unbound component during resolution.
	NotFoundError = core.NotFoundError
	// NotContextError reports resolution through a non-context entity.
	NotContextError = core.NotContextError
	// WatchedContext notifies a callback on every binding change.
	WatchedContext = core.WatchedContext
	// UnionContext overlays contexts, Plan 9 union-directory style.
	UnionContext = core.UnionContext
)

// Context combinators.
var (
	// Watch wraps a context so every Bind/Unbind invokes a callback.
	Watch = core.Watch
	// Union overlays contexts; earlier layers shadow later ones.
	Union = core.Union
)

// Entity kinds.
const (
	KindActivity = core.KindActivity
	KindObject   = core.KindObject
)

// Undefined is the undefined entity ⊥E.
var Undefined = core.Undefined

// Core constructors and helpers.
var (
	// NewWorld returns an empty World.
	NewWorld = core.NewWorld
	// NewContext returns an empty mutable context.
	NewContext = core.NewContext
	// ParsePath splits a textual compound name on "/".
	ParsePath = core.ParsePath
	// PathOf builds a Path from components.
	PathOf = core.PathOf
	// SplitPathString parses a textual name, preserving absoluteness.
	SplitPathString = core.SplitPathString
	// EqualBindings reports whether two contexts bind identically.
	EqualBindings = core.EqualBindings
	// AgreeOn reports whether two contexts agree on one name.
	AgreeOn = core.AgreeOn
)

// Closure mechanisms (paper §3).
type (
	// Source identifies where a name came from (Figure 1).
	Source = rules.Source
	// Circumstance is an element of the meta context M.
	Circumstance = rules.Circumstance
	// Rule is a resolution rule R ∈ [M → C].
	Rule = rules.Rule
	// Assoc associates entities with contexts (the table behind R(x)).
	Assoc = rules.Assoc
	// ActivityRule is R(activity).
	ActivityRule = rules.ActivityRule
	// SenderRule is R(sender).
	SenderRule = rules.SenderRule
	// ObjectRule is R(object).
	ObjectRule = rules.ObjectRule
	// FixedRule is the single-global-context closure.
	FixedRule = rules.FixedRule
	// FuncRule adapts a function to the Rule interface.
	FuncRule = rules.FuncRule
	// Resolver couples a World with a Rule.
	Resolver = rules.Resolver
	// NoContextError reports a rule with no context for its key entity.
	NoContextError = rules.NoContextError
)

// Name sources (Figure 1).
const (
	SourceInternal = rules.SourceInternal
	SourceMessage  = rules.SourceMessage
	SourceObject   = rules.SourceObject
)

// Closure-mechanism constructors.
var (
	// NewAssoc returns an empty association table.
	NewAssoc = rules.NewAssoc
	// NewResolver couples a world and a rule.
	NewResolver = rules.NewResolver
	// Internal builds the circumstance for an internally generated name.
	Internal = rules.Internal
	// Received builds the circumstance for a message-borne name.
	Received = rules.Received
	// FromObject builds the circumstance for an embedded name.
	FromObject = rules.FromObject
)

// Coherence measurement (paper §4).
type (
	// Outcome classifies one name's coherence across activities.
	Outcome = coherence.Outcome
	// ResolveFunc resolves a name on behalf of an activity.
	ResolveFunc = coherence.ResolveFunc
	// Report aggregates outcomes over a probe set.
	Report = coherence.Report
	// PairMatrix is the pairwise agreement matrix.
	PairMatrix = coherence.PairMatrix
	// ServiceResolver is a client-side view of a naming service: anything
	// that resolves a compound name to an entity (sharded clients
	// included); MeasureResolvers probes coherence across a set of them.
	ServiceResolver = coherence.Resolver
)

// Coherence outcomes.
const (
	Coherent       = coherence.Coherent
	WeaklyCoherent = coherence.WeaklyCoherent
	Vacuous        = coherence.Vacuous
	Incoherent     = coherence.Incoherent
)

// Coherence measurement functions.
var (
	// CheckName classifies one name across a set of activities.
	CheckName = coherence.CheckName
	// Measure probes a set of names across activities.
	Measure = coherence.Measure
	// MeasurePairs computes pairwise agreement fractions.
	MeasurePairs = coherence.MeasurePairs
	// MeasureResolvers probes names across service clients (e.g. the
	// failover clients of a replicated sharded cluster).
	MeasureResolvers = coherence.MeasureResolvers
)
