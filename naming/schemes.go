package naming

import (
	"namecoherence/internal/check"
	"namecoherence/internal/cluster"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/embedded"
	"namecoherence/internal/exchange"
	"namecoherence/internal/federation"
	"namecoherence/internal/machine"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/netsim"
	"namecoherence/internal/newcastle"
	"namecoherence/internal/perproc"
	"namecoherence/internal/persist"
	"namecoherence/internal/pqi"
	"namecoherence/internal/remote"
	"namecoherence/internal/replsvc"
	"namecoherence/internal/sharedns"
	"namecoherence/internal/treespec"
)

// File trees (directories as context objects).
type (
	// Tree is a naming tree: a root directory plus tree operations.
	Tree = dirtree.Tree
	// FileData is a regular file's payload: content plus embedded names.
	FileData = dirtree.FileData
)

// Tree constructors.
var (
	// NewTree creates a tree with a fresh root directory.
	NewTree = dirtree.New
	// NewTreeWithParentLinks creates a tree whose directories carry "..".
	NewTreeWithParentLinks = dirtree.NewWithParentLinks
)

// Machines and processes (§5.1's Unix model).
type (
	// Machine is a computer with a local naming tree.
	Machine = machine.Machine
	// Process is an activity with the root/cwd two-binding context.
	Process = machine.Process
	// ProcessRegistry maps activities back to processes for probing.
	ProcessRegistry = machine.Registry
)

// Machine constructors.
var (
	// NewMachine creates a machine with a fresh local tree.
	NewMachine = machine.New
	// NewProcessRegistry returns an empty registry.
	NewProcessRegistry = machine.NewRegistry
)

// The Newcastle Connection (Figure 3).
type (
	// Newcastle is a single naming tree composed from machine trees.
	Newcastle = newcastle.System
	// RootPolicy selects the remote-execution root binding.
	RootPolicy = newcastle.RootPolicy
)

// Remote-execution root policies.
const (
	RootOfInvoker  = newcastle.RootOfInvoker
	RootOfExecutor = newcastle.RootOfExecutor
)

// NewNewcastle composes a Newcastle Connection from fresh machines.
var NewNewcastle = newcastle.NewSystem

// The shared naming graph approach (Figure 4).
type (
	// SharedNS is a shared-naming-graph system (Andrew, DCE).
	SharedNS = sharedns.System
	// Space is a name space shared by a set of clients under one name.
	Space = sharedns.Space
	// SharedClient is one client subsystem.
	SharedClient = sharedns.Client
)

// Conventional attachment names.
const (
	ViceName   = sharedns.ViceName
	CellName   = sharedns.CellName
	GlobalName = sharedns.GlobalName
)

// NewSharedNS creates a shared-naming-graph system.
var NewSharedNS = sharedns.NewSystem

// Federations of autonomous systems (Figure 5).
type (
	// Federation is a set of autonomous systems with cross-links.
	Federation = federation.Federation
	// PrefixMapper is the human prefix-rewriting closure of §7.
	PrefixMapper = federation.PrefixMapper
	// ExchangeOutcome reports a cross-boundary name exchange.
	ExchangeOutcome = federation.ExchangeOutcome
)

// Federation constructors and helpers.
var (
	// NewFederation returns an empty federation.
	NewFederation = federation.New
	// NewPrefixMapper returns an empty prefix mapper.
	NewPrefixMapper = federation.NewPrefixMapper
	// ExchangeName simulates sending a textual name across a boundary.
	ExchangeName = federation.ExchangeName
)

// Embedded names under the Algol scope rule (Figure 6, §6 Ex. 2).
type (
	// Assembler assembles structured objects by resolving embedded names.
	Assembler = embedded.Assembler
	// ScopeError reports an embedded name with no enclosing binding.
	ScopeError = embedded.ScopeError
)

// Embedded-name functions.
var (
	// ScopeChain builds a scope chain from a start entity and a trail.
	ScopeChain = embedded.Chain
	// ResolveEmbedded resolves an embedded name per the scope rule.
	ResolveEmbedded = embedded.Resolve
	// ResolveAllEmbedded resolves every name embedded in a file.
	ResolveAllEmbedded = embedded.ResolveAll
)

// Partially qualified identifiers (§6 Ex. 1).
type (
	// PID is a partially qualified process identifier.
	PID = pqi.PID
	// PQINode is a communicating process holding pid references.
	PQINode = pqi.Node
	// Ref is a pid reference exchanged in messages.
	Ref = pqi.Ref
)

// PID functions.
var (
	// NewPQINode registers a node on a network.
	NewPQINode = pqi.NewNode
	// PIDAbsolute resolves a pid in its holder's context.
	PIDAbsolute = pqi.Absolute
	// PIDRelativize returns the minimal pid for a target.
	PIDRelativize = pqi.Relativize
	// PIDMap implements R(sender) for pids crossing a boundary.
	PIDMap = pqi.Map
)

// Simulated network substrate.
type (
	// Addr is a hierarchical (network, machine, local) address.
	Addr = netsim.Addr
	// Network routes messages between registered endpoints.
	Network = netsim.Network
	// Endpoint is a registered receiver with a mailbox.
	Endpoint = netsim.Endpoint
	// Message is a payload in flight.
	Message = netsim.Message
)

// NewNetwork returns an empty simulated network.
var NewNetwork = netsim.NewNetwork

// Per-process namespaces (§6 II, Plan 9 style).
type (
	// PerProc is a process with a private per-process namespace.
	PerProc = perproc.Proc
)

// Per-process namespace functions.
var (
	// NewPerProc creates a process with a private namespace.
	NewPerProc = perproc.New
	// RemoteExec runs a child remotely in the parent's arranged context
	// (bindings copied at exec time).
	RemoteExec = perproc.RemoteExec
	// RemoteExecShared is RemoteExec with live (union) namespace sharing.
	RemoteExecShared = perproc.RemoteExecShared
)

// Name service over the wire.
type (
	// NameServer resolves names for remote clients over net.Conn.
	NameServer = nameserver.Server
	// NameClient is a connection to a NameServer.
	NameClient = nameserver.Client
)

// Name-service constructors.
var (
	// NewNameServer returns a server exporting a context.
	NewNameServer = nameserver.NewServer
	// NewNameClient wraps an established connection.
	NewNameClient = nameserver.NewClient
	// DialNameServer connects to a listening server.
	DialNameServer = nameserver.Dial
	// WithResolveCache enables the client-side resolution cache.
	WithResolveCache = nameserver.WithCache
	// WithCoherentResolveCache enables the revision-tracked cache with
	// staleness bounded to one round-trip after a server-side change.
	WithCoherentResolveCache = nameserver.WithCoherentCache
)

// Name exchange between processes with boundary translation (§6 I applied
// to textual names).
type (
	// Exchanger wires parties together over a network with a translator.
	Exchanger = exchange.Exchanger
	// Party is a process reachable on the exchanger's network.
	Party = exchange.Party
	// Translator rewrites names at a context boundary (R(sender)).
	Translator = exchange.Translator
	// IdentityTranslator is the no-translation R(receiver) baseline.
	IdentityTranslator = exchange.Identity
	// NewcastleTranslator maps names between Newcastle machines.
	NewcastleTranslator = exchange.NewcastleTranslator
	// PrefixTranslator applies federation prefix rules in transit.
	PrefixTranslator = exchange.PrefixTranslator
)

// NewExchanger returns an exchanger over a fresh network (nil translator
// means identity).
var NewExchanger = exchange.NewExchanger

// Wire-backed Newcastle cluster: per-machine name servers on TCP loopback.
type (
	// Cluster is a Newcastle system whose machines export their trees
	// through name servers.
	Cluster = remote.Cluster
	// WireProc resolves cross-machine names over the wire.
	WireProc = remote.Proc
)

// NewCluster builds a wire-backed Newcastle system.
var NewCluster = remote.NewCluster

// Sharded naming cluster: one logical graph partitioned across name
// servers by prefix (§5.2, Fig. 4 at deployment scale).
type (
	// ShardedCluster serves one naming graph from prefix-delegated shards.
	ShardedCluster = cluster.Cluster
	// ShardedClient routes, batches, coalesces, and caches across shards.
	ShardedClient = cluster.Client
	// RouteInfo maps name prefixes to shards and shards to addresses.
	RouteInfo = nameserver.RouteInfo
)

// Sharded-cluster functions.
var (
	// NewShardedCluster splits a treespec across n shards and serves them.
	NewShardedCluster = cluster.New
	// NewReplicatedCluster additionally serves every shard from r replica
	// servers — replicas of the same subtree, weakly coherent by
	// construction, so clients can fail over when one dies.
	NewReplicatedCluster = cluster.NewReplicated
	// DialShardedCluster bootstraps a client from any one cluster member.
	DialShardedCluster = cluster.Dial
	// NewShardedClient builds a client over a known routing table.
	NewShardedClient = cluster.NewClient
	// WithShardLRU enables the revision-tracked per-shard LRU cache.
	WithShardLRU = cluster.WithLRU
	// WithShardPoolSize caps idle pooled connections per shard.
	WithShardPoolSize = cluster.WithPoolSize
	// WithShardTimeout bounds every dial and round-trip of a cluster
	// client (the failure-model deadline).
	WithShardTimeout = cluster.WithTimeout
	// WithShardRetries bounds the retry attempts after transport failures.
	WithShardRetries = cluster.WithRetries
	// WithShardBackoff sets the base of the exponential retry backoff.
	WithShardBackoff = cluster.WithBackoff
	// WithShardBreaker configures the per-replica circuit breaker.
	WithShardBreaker = cluster.WithBreaker
	// SplitTreeSpec partitions a treespec into per-shard subtrees.
	SplitTreeSpec = treespec.Split
	// BuildReplicaTrees builds r copies of a treespec whose corresponding
	// entities form replica groups (weak coherence by construction).
	BuildReplicaTrees = treespec.BuildReplicas
)

// ErrShardedClientClosed fails requests racing or following Close.
var ErrShardedClientClosed = cluster.ErrClientClosed

// Replicated name service (weak coherence at the service level).
type (
	// ReplicaSet is a group of servers exporting replicas of one tree.
	ReplicaSet = replsvc.ReplicaSet
	// ReplicaPool rotates resolution over a replica set with failover.
	ReplicaPool = replsvc.Pool
)

// Replicated-service constructors.
var (
	// NewReplicaSet builds and serves n replicas of a treespec.
	NewReplicaSet = replsvc.NewReplicaSet
	// NewReplicaPool returns a rotating client pool.
	NewReplicaPool = replsvc.NewPool
)

// Tree specifications and consistency checking.
type (
	// CheckReport is the result of a consistency check.
	CheckReport = check.Report
	// CheckFinding is one checker result.
	CheckFinding = check.Finding
)

// Persistence.
var (
	// SaveWorld writes a gob snapshot of a world.
	SaveWorld = persist.Save
	// LoadWorld reconstructs a world from a snapshot.
	LoadWorld = persist.Load
)

// Checker and treespec functions.
var (
	// CheckWorld scans a world's naming graph for defects.
	CheckWorld = check.World
	// CheckTree scans a tree (reachability, parent links, sharing).
	CheckTree = check.Tree
	// ParseTreeSpec builds a tree from the treespec text format.
	ParseTreeSpec = treespec.Parse
	// BuildTreeSpec builds a tree from a treespec string.
	BuildTreeSpec = treespec.Build
	// DumpTreeSpec serializes a tree as treespec text.
	DumpTreeSpec = treespec.Dump
)
