// Command benchjson converts `go test -bench` text output into JSON so CI
// can publish benchmark numbers as a machine-readable artifact. It reads
// benchmark output on stdin and writes one JSON object to stdout mapping
// each benchmark name to its iteration count, ns/op, the allocation pair
// -benchmem reports (B/op, allocs/op), and any custom metrics (names/s
// and friends reported via b.ReportMetric).
//
// Usage:
//
//	go test -bench . | benchjson > BENCH.json
//	benchjson -compare old.json new.json -max-regress 10
//
// Lines that are not benchmark results (headers, PASS, ok) are ignored, so
// the raw `go test` stream can be piped in unfiltered. Repeated runs of
// the same benchmark (-count > 1) are averaged.
//
// Compare mode diffs two documents previously written by convert: every
// benchmark present in both gets a ns/op and allocs/op delta line, and any
// regression beyond -max-regress percent (default 10) makes the exit
// status nonzero so CI can gate on it. Benchmarks present in only one
// document are listed but never fail the gate — adding and retiring
// benchmarks is routine, silently shifting their numbers is not.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds the parsed measurements for one benchmark name. The
// allocation pair is pointer-typed so runs without -benchmem omit the
// fields instead of reporting a fictitious zero — an allocs_per_op of 0
// is a claim (the allocfree paths make exactly that claim), not a default.
type result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	runs int64 // how many result lines were folded in (for averaging)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/inflight=8-4   3741   297379 ns/op   3363 names/s
//
// and returns the benchmark name (with the -GOMAXPROCS suffix intact, so
// distinct machine shapes stay distinct) and its measurements. ok is false
// for lines that are not benchmark results.
func parseLine(line string) (name string, r result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r = result{Iterations: iters, runs: 1}
	// The remainder alternates value / unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return fields[0], r, true
}

// fold merges a repeated run of the same benchmark into acc by averaging
// every measurement.
func fold(acc *result, r result) {
	n := float64(acc.runs)
	acc.NsPerOp = (acc.NsPerOp*n + r.NsPerOp) / (n + 1)
	acc.Iterations += r.Iterations
	acc.BytesPerOp = foldPtr(acc.BytesPerOp, r.BytesPerOp, n)
	acc.AllocsPerOp = foldPtr(acc.AllocsPerOp, r.AllocsPerOp, n)
	for unit, v := range r.Metrics {
		if acc.Metrics == nil {
			acc.Metrics = make(map[string]float64)
		}
		acc.Metrics[unit] = (acc.Metrics[unit]*n + v) / (n + 1)
	}
	acc.runs++
}

// foldPtr averages an optional measurement across runs. A run missing the
// measurement counts as zero once any run reported it — mixed streams only
// arise from concatenating -benchmem and plain output, and a visible dip
// beats silently dropping the runs that did measure.
func foldPtr(acc, v *float64, n float64) *float64 {
	if acc == nil && v == nil {
		return nil
	}
	var a, b float64
	if acc != nil {
		a = *acc
	}
	if v != nil {
		b = *v
	}
	m := (a*n + b) / (n + 1)
	return &m
}

// convert reads benchmark text from in and writes the JSON document to out.
func convert(in io.Reader, out io.Writer) error {
	results := make(map[string]*result)
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if acc, seen := results[name]; seen {
			fold(acc, r)
		} else {
			results[name] = &r
			order = append(order, name)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read bench output: %w", err)
	}
	sort.Strings(order)
	doc := make(map[string]*result, len(results))
	for _, name := range order {
		doc[name] = results[name]
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// readDoc loads one JSON document previously written by convert.
func readDoc(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]result
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// pct is the percent change from old to new. Growth from zero is +Inf: an
// allocation appearing on a zero-alloc path regresses at every threshold.
func pct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old * 100
}

func pctLabel(p float64) string {
	if math.IsInf(p, 1) {
		return "+∞%"
	}
	return fmt.Sprintf("%+.1f%%", p)
}

// compareDocs writes one delta line per benchmark and reports whether any
// ns/op or allocs/op regression exceeds maxRegress percent.
func compareDocs(oldDoc, newDoc map[string]result, maxRegress float64, out io.Writer) (regressed bool) {
	names := make([]string, 0, len(newDoc))
	for name := range newDoc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := newDoc[name]
		o, ok := oldDoc[name]
		if !ok {
			fmt.Fprintf(out, "%s: new benchmark (%.1f ns/op), no baseline\n", name, n.NsPerOp)
			continue
		}
		p := pct(o.NsPerOp, n.NsPerOp)
		line := fmt.Sprintf("%s: ns/op %.1f -> %.1f (%s)", name, o.NsPerOp, n.NsPerOp, pctLabel(p))
		if p > maxRegress {
			regressed = true
			line += " REGRESSION"
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			ap := pct(*o.AllocsPerOp, *n.AllocsPerOp)
			line += fmt.Sprintf("; allocs/op %.1f -> %.1f (%s)", *o.AllocsPerOp, *n.AllocsPerOp, pctLabel(ap))
			if ap > maxRegress {
				regressed = true
				line += " REGRESSION"
			}
		}
		fmt.Fprintln(out, line)
	}
	var removed []string
	for name := range oldDoc {
		if _, ok := newDoc[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(out, "%s: removed (was %.1f ns/op)\n", name, oldDoc[name].NsPerOp)
	}
	return regressed
}

// runCompare parses `-compare old.json new.json [-max-regress pct]` (the
// flag may come before or after the files) and returns whether the gate
// tripped.
func runCompare(args []string) (regressed bool, err error) {
	maxRegress := 10.0
	var files []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-max-regress" {
			i++
			if i == len(args) {
				return false, fmt.Errorf("-max-regress needs a percentage")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return false, fmt.Errorf("-max-regress %q: not a number", args[i])
			}
			maxRegress = v
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		return false, fmt.Errorf("usage: benchjson -compare old.json new.json [-max-regress pct]")
	}
	oldDoc, err := readDoc(files[0])
	if err != nil {
		return false, err
	}
	newDoc, err := readDoc(files[1])
	if err != nil {
		return false, err
	}
	return compareDocs(oldDoc, newDoc, maxRegress, os.Stdout), nil
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-compare" {
		regressed, err := runCompare(args[1:])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 {
		fmt.Fprintln(os.Stderr, "usage: benchjson < bench.txt > BENCH.json")
		fmt.Fprintln(os.Stderr, "   or: benchjson -compare old.json new.json [-max-regress pct]")
		os.Exit(2)
	}
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
