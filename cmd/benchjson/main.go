// Command benchjson converts `go test -bench` text output into JSON so CI
// can publish benchmark numbers as a machine-readable artifact. It reads
// benchmark output on stdin and writes one JSON object to stdout mapping
// each benchmark name to its iteration count, ns/op, the allocation pair
// -benchmem reports (B/op, allocs/op), and any custom metrics (names/s
// and friends reported via b.ReportMetric).
//
// Usage:
//
//	go test -bench . | benchjson > BENCH.json
//
// Lines that are not benchmark results (headers, PASS, ok) are ignored, so
// the raw `go test` stream can be piped in unfiltered. Repeated runs of
// the same benchmark (-count > 1) are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds the parsed measurements for one benchmark name. The
// allocation pair is pointer-typed so runs without -benchmem omit the
// fields instead of reporting a fictitious zero — an allocs_per_op of 0
// is a claim (the allocfree paths make exactly that claim), not a default.
type result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	runs int64 // how many result lines were folded in (for averaging)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/inflight=8-4   3741   297379 ns/op   3363 names/s
//
// and returns the benchmark name (with the -GOMAXPROCS suffix intact, so
// distinct machine shapes stay distinct) and its measurements. ok is false
// for lines that are not benchmark results.
func parseLine(line string) (name string, r result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r = result{Iterations: iters, runs: 1}
	// The remainder alternates value / unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return fields[0], r, true
}

// fold merges a repeated run of the same benchmark into acc by averaging
// every measurement.
func fold(acc *result, r result) {
	n := float64(acc.runs)
	acc.NsPerOp = (acc.NsPerOp*n + r.NsPerOp) / (n + 1)
	acc.Iterations += r.Iterations
	acc.BytesPerOp = foldPtr(acc.BytesPerOp, r.BytesPerOp, n)
	acc.AllocsPerOp = foldPtr(acc.AllocsPerOp, r.AllocsPerOp, n)
	for unit, v := range r.Metrics {
		if acc.Metrics == nil {
			acc.Metrics = make(map[string]float64)
		}
		acc.Metrics[unit] = (acc.Metrics[unit]*n + v) / (n + 1)
	}
	acc.runs++
}

// foldPtr averages an optional measurement across runs. A run missing the
// measurement counts as zero once any run reported it — mixed streams only
// arise from concatenating -benchmem and plain output, and a visible dip
// beats silently dropping the runs that did measure.
func foldPtr(acc, v *float64, n float64) *float64 {
	if acc == nil && v == nil {
		return nil
	}
	var a, b float64
	if acc != nil {
		a = *acc
	}
	if v != nil {
		b = *v
	}
	m := (a*n + b) / (n + 1)
	return &m
}

// convert reads benchmark text from in and writes the JSON document to out.
func convert(in io.Reader, out io.Writer) error {
	results := make(map[string]*result)
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if acc, seen := results[name]; seen {
			fold(acc, r)
		} else {
			results[name] = &r
			order = append(order, name)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read bench output: %w", err)
	}
	sort.Strings(order)
	doc := make(map[string]*result, len(results))
	for _, name := range order {
		doc[name] = results[name]
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
