package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: namecoherence
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNameServerRoundTrip/uncached-4         	  253170	      4742 ns/op
BenchmarkNameServerPipelined/inflight=1-4       	     520	   2357100 ns/op	       424.3 names/s
BenchmarkNameServerPipelined/inflight=64-4      	   27638	     45453 ns/op	     22001 names/s
PASS
ok  	namecoherence	8.264s
`

func parse(t *testing.T, in string) map[string]result {
	t.Helper()
	var out bytes.Buffer
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]result
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	return doc
}

func TestConvertSample(t *testing.T) {
	doc := parse(t, sample)
	if len(doc) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %v", len(doc), doc)
	}
	rt := doc["BenchmarkNameServerRoundTrip/uncached-4"]
	if rt.NsPerOp != 4742 || rt.Iterations != 253170 {
		t.Errorf("round trip = %+v, want 4742 ns/op over 253170 iterations", rt)
	}
	if len(rt.Metrics) != 0 {
		t.Errorf("round trip has unexpected metrics: %v", rt.Metrics)
	}
	deep := doc["BenchmarkNameServerPipelined/inflight=64-4"]
	if got := deep.Metrics["names/s"]; got != 22001 {
		t.Errorf("names/s = %v, want 22001", got)
	}
	shallow := doc["BenchmarkNameServerPipelined/inflight=1-4"]
	if got := shallow.Metrics["names/s"]; got != 424.3 {
		t.Errorf("names/s = %v, want 424.3", got)
	}
}

func TestConvertAveragesRepeatedRuns(t *testing.T) {
	in := `BenchmarkX-1   100   10 ns/op   1000 names/s
BenchmarkX-1   300   30 ns/op   3000 names/s
`
	doc := parse(t, in)
	x := doc["BenchmarkX-1"]
	if x.NsPerOp != 20 {
		t.Errorf("ns/op = %v, want average 20", x.NsPerOp)
	}
	if x.Iterations != 400 {
		t.Errorf("iterations = %d, want total 400", x.Iterations)
	}
	if got := x.Metrics["names/s"]; got != 2000 {
		t.Errorf("names/s = %v, want average 2000", got)
	}
}

func TestConvertIgnoresNoise(t *testing.T) {
	in := `random prose
Benchmark	notanumber	5 ns/op
PASS
`
	doc := parse(t, in)
	if len(doc) != 0 {
		t.Fatalf("noise parsed as benchmarks: %v", doc)
	}
}
