package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: namecoherence
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNameServerRoundTrip/uncached-4         	  253170	      4742 ns/op
BenchmarkNameServerPipelined/inflight=1-4       	     520	   2357100 ns/op	       424.3 names/s
BenchmarkNameServerPipelined/inflight=64-4      	   27638	     45453 ns/op	     22001 names/s
PASS
ok  	namecoherence	8.264s
`

func parse(t *testing.T, in string) map[string]result {
	t.Helper()
	var out bytes.Buffer
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]result
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	return doc
}

func TestConvertSample(t *testing.T) {
	doc := parse(t, sample)
	if len(doc) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %v", len(doc), doc)
	}
	rt := doc["BenchmarkNameServerRoundTrip/uncached-4"]
	if rt.NsPerOp != 4742 || rt.Iterations != 253170 {
		t.Errorf("round trip = %+v, want 4742 ns/op over 253170 iterations", rt)
	}
	if len(rt.Metrics) != 0 {
		t.Errorf("round trip has unexpected metrics: %v", rt.Metrics)
	}
	deep := doc["BenchmarkNameServerPipelined/inflight=64-4"]
	if got := deep.Metrics["names/s"]; got != 22001 {
		t.Errorf("names/s = %v, want 22001", got)
	}
	shallow := doc["BenchmarkNameServerPipelined/inflight=1-4"]
	if got := shallow.Metrics["names/s"]; got != 424.3 {
		t.Errorf("names/s = %v, want 424.3", got)
	}
}

func TestConvertAveragesRepeatedRuns(t *testing.T) {
	in := `BenchmarkX-1   100   10 ns/op   1000 names/s
BenchmarkX-1   300   30 ns/op   3000 names/s
`
	doc := parse(t, in)
	x := doc["BenchmarkX-1"]
	if x.NsPerOp != 20 {
		t.Errorf("ns/op = %v, want average 20", x.NsPerOp)
	}
	if x.Iterations != 400 {
		t.Errorf("iterations = %d, want total 400", x.Iterations)
	}
	if got := x.Metrics["names/s"]; got != 2000 {
		t.Errorf("names/s = %v, want average 2000", got)
	}
}

// TestConvertBenchmemGolden pins the full output for a -benchmem stream:
// B/op and allocs/op are promoted to dedicated fields (averaged across
// repeated runs like everything else), custom metrics keep riding in
// metrics, and lines measured without -benchmem omit the allocation pair
// rather than claiming zero.
func TestConvertBenchmemGolden(t *testing.T) {
	in, err := os.ReadFile(filepath.Join("testdata", "benchmem.txt"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "benchmem.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := convert(bytes.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Errorf("output drifted from testdata/benchmem.golden.json:\n got: %s\nwant: %s", out.Bytes(), golden)
	}
}

// TestConvertBenchmemFields spot-checks the parsed values behind the
// golden file, so a failure names the broken field instead of a diff.
func TestConvertBenchmemFields(t *testing.T) {
	in := `BenchmarkY-8   1000   50 ns/op   128 B/op   4 allocs/op
BenchmarkY-8   1000   70 ns/op   64 B/op   2 allocs/op
BenchmarkZ-8   500   90 ns/op
`
	doc := parse(t, in)
	y := doc["BenchmarkY-8"]
	if y.BytesPerOp == nil || *y.BytesPerOp != 96 {
		t.Errorf("bytes_per_op = %v, want average 96", y.BytesPerOp)
	}
	if y.AllocsPerOp == nil || *y.AllocsPerOp != 3 {
		t.Errorf("allocs_per_op = %v, want average 3", y.AllocsPerOp)
	}
	if len(y.Metrics) != 0 {
		t.Errorf("allocation pair leaked into metrics: %v", y.Metrics)
	}
	z := doc["BenchmarkZ-8"]
	if z.BytesPerOp != nil || z.AllocsPerOp != nil {
		t.Errorf("plain run invented an allocation pair: %+v", z)
	}
}

func fp(v float64) *float64 { return &v }

// TestCompareGate exercises the -compare delta math: within-threshold
// drift passes, ns/op past the threshold trips the gate, and allocations
// appearing on a zero-alloc path regress at any threshold.
func TestCompareGate(t *testing.T) {
	oldDoc := map[string]result{
		"BenchmarkSteady-4":  {NsPerOp: 100, AllocsPerOp: fp(0)},
		"BenchmarkDrift-4":   {NsPerOp: 100},
		"BenchmarkRetired-4": {NsPerOp: 50},
	}

	var out bytes.Buffer
	newDoc := map[string]result{
		"BenchmarkSteady-4": {NsPerOp: 105, AllocsPerOp: fp(0)},
		"BenchmarkDrift-4":  {NsPerOp: 109},
		"BenchmarkFresh-4":  {NsPerOp: 70},
	}
	if compareDocs(oldDoc, newDoc, 10, &out) {
		t.Errorf("within-threshold drift tripped the gate:\n%s", out.String())
	}
	report := out.String()
	for _, want := range []string{"BenchmarkFresh-4: new benchmark", "BenchmarkRetired-4: removed"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	out.Reset()
	newDoc["BenchmarkDrift-4"] = result{NsPerOp: 125}
	if !compareDocs(oldDoc, newDoc, 10, &out) {
		t.Errorf("25%% ns/op regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report does not mark the regression:\n%s", out.String())
	}

	out.Reset()
	newDoc["BenchmarkDrift-4"] = result{NsPerOp: 100}
	newDoc["BenchmarkSteady-4"] = result{NsPerOp: 100, AllocsPerOp: fp(2)}
	if !compareDocs(oldDoc, newDoc, 1000, &out) {
		t.Errorf("allocs on a zero-alloc path passed the gate:\n%s", out.String())
	}
}

func TestConvertIgnoresNoise(t *testing.T) {
	in := `random prose
Benchmark	notanumber	5 ns/op
PASS
`
	doc := parse(t, in)
	if len(doc) != 0 {
		t.Fatalf("noise parsed as benchmarks: %v", doc)
	}
}
