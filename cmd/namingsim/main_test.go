package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNewcastleQueries(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scheme", "newcastle", "-from", "unix1",
		"/etc/passwd", "/../unix2/etc/passwd", "/nope"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "->") != 3 {
		t.Fatalf("expected 3 result lines:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing error line:\n%s", out)
	}
}

func TestRunAndrew(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "andrew", "/vice/usr/shared", "/home/ws1/notes"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "->") != 2 {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunDumpAndDotAndCheck(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "newcastle", "-machines", "2",
		"-dump", "-dot", "-check"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph naming {", "-->", "info[cycle]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpecScheme(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "t.spec")
	if err := os.WriteFile(specPath, []byte("dir /x\nfile /x/y \"z\"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-scheme", "spec", "-specfile", specPath, "/x/y"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(y)") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "bogus"}, &sb); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if err := run([]string{"-scheme", "spec"}, &sb); err == nil {
		t.Fatal("spec scheme without specfile accepted")
	}
	if err := run([]string{"-scheme", "spec", "-specfile", "/no/such/file"}, &sb); err == nil {
		t.Fatal("missing specfile accepted")
	}
	if err := run([]string{"-scheme", "newcastle", "-from", "ghost", "/x"}, &sb); err == nil {
		t.Fatal("unknown origin machine accepted")
	}
}
