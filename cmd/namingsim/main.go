// Command namingsim builds one of the paper's naming schemes and answers
// resolution queries against it, printing the naming graph on request.
//
// Usage:
//
//	namingsim -scheme newcastle -machines 3 -dump
//	namingsim -scheme newcastle -from unix1 /etc/passwd /../unix2/etc/passwd
//	namingsim -scheme andrew -clients 2 /vice/usr/shared /home/ws1/notes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "namingsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("namingsim", flag.ContinueOnError)
	scheme := fs.String("scheme", "newcastle", "scheme to build: newcastle, andrew or spec")
	specFile := fs.String("specfile", "", "spec scheme: treespec file to build")
	machines := fs.Int("machines", 3, "newcastle: number of machines")
	clients := fs.Int("clients", 2, "andrew: number of client subsystems")
	from := fs.String("from", "", "machine/client to resolve from (default: first)")
	dump := fs.Bool("dump", false, "dump the naming graph")
	dot := fs.Bool("dot", false, "dump the naming graph in Graphviz DOT format")
	fsck := fs.Bool("check", false, "run the naming-graph consistency checker")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := naming.NewWorld()
	var resolve func(name string) (naming.Entity, error)

	switch *scheme {
	case "newcastle":
		names := make([]string, *machines)
		for i := range names {
			names[i] = fmt.Sprintf("unix%d", i+1)
		}
		s, err := naming.NewNewcastle(w, names...)
		if err != nil {
			return err
		}
		for _, mn := range names {
			m, err := s.Machine(mn)
			if err != nil {
				return err
			}
			if _, err := m.Tree.Create(naming.ParsePath("etc/passwd"), "users@"+mn); err != nil {
				return err
			}
		}
		origin := names[0]
		if *from != "" {
			origin = *from
		}
		p, err := s.Spawn(origin, "cli")
		if err != nil {
			return err
		}
		resolve = p.Resolve

	case "andrew":
		names := make([]string, *clients)
		for i := range names {
			names[i] = fmt.Sprintf("ws%d", i+1)
		}
		s, err := naming.NewSharedNS(w, names...)
		if err != nil {
			return err
		}
		vice, err := s.AttachSpace(naming.ViceName)
		if err != nil {
			return err
		}
		if _, err := vice.Tree.Create(naming.ParsePath("usr/shared"), "shared"); err != nil {
			return err
		}
		for _, cn := range names {
			c, err := s.Client(cn)
			if err != nil {
				return err
			}
			if _, err := c.Machine.Tree.Create(naming.ParsePath("home/"+cn+"/notes"), "local"); err != nil {
				return err
			}
		}
		origin := names[0]
		if *from != "" {
			origin = *from
		}
		p, err := s.Spawn(origin, "cli")
		if err != nil {
			return err
		}
		resolve = p.Resolve

	case "spec":
		if *specFile == "" {
			return fmt.Errorf("spec scheme needs -specfile")
		}
		f, err := os.Open(*specFile)
		if err != nil {
			return err
		}
		tr, err := naming.ParseTreeSpec(f, w, *specFile)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		resolve = func(name string) (naming.Entity, error) {
			_, p := naming.SplitPathString(name)
			return tr.Lookup(p)
		}

	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	if *dump {
		if err := w.DumpGraph(out); err != nil {
			return err
		}
	}
	if *dot {
		if err := w.DumpDot(out); err != nil {
			return err
		}
	}
	if *fsck {
		fmt.Fprintln(out, naming.CheckWorld(w))
	}
	for _, name := range fs.Args() {
		e, err := resolve(name)
		if err != nil {
			fmt.Fprintf(out, "%-40s -> error: %v\n", name, err)
			continue
		}
		fmt.Fprintf(out, "%-40s -> %v (%s)\n", name, e, w.Label(e))
	}
	return nil
}
