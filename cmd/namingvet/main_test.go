package main

// End-to-end tests of the two invocation modes: standalone (our own
// loader) and `go vet -vettool` (the unitchecker protocol, driven by the
// real go command).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "namingvet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/namingvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build namingvet: %v\n%s", err, out)
	}
	return bin
}

func TestVettoolCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildVet(t)
	// internal/cluster imports internal/nameserver, so this also exercises
	// the facts files (.vetx) flowing between units under the go command.
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/lru", "./internal/nameserver", "./internal/cluster")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("vettool flagged a clean package: %v\n%s", err, out)
	}
}

func TestStandaloneFindsSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks a fixture")
	}
	bin := buildVet(t)
	// The lockheld analysistest fixture is a real compilable package with
	// known violations; standalone mode must report them and exit 2.
	fixture := filepath.Join(repoRoot(t), "internal", "analysis", "lockheld", "testdata", "src", "a")
	cmd := exec.Command(bin, ".")
	cmd.Dir = fixture
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone run on a buggy fixture exited clean:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want exit status 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "lockheld") {
		t.Fatalf("diagnostics missing analyzer name:\n%s", out)
	}
}
