package main

import (
	"testing"

	"namecoherence/internal/analysis"
)

// BenchmarkNamingvet times a full-module standalone run — package loading,
// fact computation, and all analyzers in the suite — and doubles as a
// regression check that the module stays vet-clean. CI runs it with
// -benchtime=1x and logs the wall time, so a perf regression in the facts
// layer shows up as a number, not a feeling.
func BenchmarkNamingvet(b *testing.B) {
	root := repoRoot(b)
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load(root, []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		acc := analysis.Summaries{}
		for _, pkg := range pkgs {
			if pkg.FactsOnly {
				acc = analysis.ComputeFacts(pkg, acc).All
				continue
			}
			findings, merged, err := analysis.RunAnalyzers(pkg, suite, acc)
			if err != nil {
				b.Fatal(err)
			}
			if len(findings) != 0 {
				b.Fatalf("module is not vet-clean: %d findings, first: %s: %s",
					len(findings), findings[0].Posn, findings[0].Message)
			}
			acc = merged
		}
	}
}
