// Command namingvet is the repo's invariant checker: a multichecker over
// the internal/analysis suite, runnable standalone
//
//	go run ./cmd/namingvet ./...
//
// or as a vet tool, which is how CI runs it on every PR:
//
//	go build -o bin/namingvet ./cmd/namingvet
//	go vet -vettool=$PWD/bin/namingvet ./...
//
// Each analyzer guards one invariant the cluster's correctness rests on;
// see DESIGN.md §"Static analysis & invariants". The suite is
// interprocedural: per-function summaries flow between packages as vet
// facts, so a deadline set in internal/cluster satisfies I/O performed in
// internal/nameserver, and a name that never passed a canonicalizer is
// caught no matter how many calls separate it from the wire.
package main

import (
	"namecoherence/internal/analysis"
	"namecoherence/internal/analysis/allocfree"
	"namecoherence/internal/analysis/bindingsleak"
	"namecoherence/internal/analysis/casimmut"
	"namecoherence/internal/analysis/conndeadline"
	"namecoherence/internal/analysis/detrand"
	"namecoherence/internal/analysis/errwrap"
	"namecoherence/internal/analysis/goroleak"
	"namecoherence/internal/analysis/lockblock"
	"namecoherence/internal/analysis/lockexit"
	"namecoherence/internal/analysis/lockheld"
	"namecoherence/internal/analysis/lockorder"
	"namecoherence/internal/analysis/mutbump"
	"namecoherence/internal/analysis/registrycheck"
	"namecoherence/internal/analysis/wirecanon"
)

// suite is the full analyzer set; shared with the benchmark.
var suite = []*analysis.Analyzer{
	lockheld.Analyzer,
	lockorder.Analyzer,
	lockblock.Analyzer,
	lockexit.Analyzer,
	conndeadline.Analyzer,
	errwrap.Analyzer,
	bindingsleak.Analyzer,
	detrand.Analyzer,
	casimmut.Analyzer,
	wirecanon.Analyzer,
	goroleak.Analyzer,
	registrycheck.Analyzer,
	mutbump.Analyzer,
	allocfree.Analyzer,
}

func main() {
	analysis.Main("namingvet", suite)
}
