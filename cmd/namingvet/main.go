// Command namingvet is the repo's invariant checker: a multichecker over
// the internal/analysis suite, runnable standalone
//
//	go run ./cmd/namingvet ./...
//
// or as a vet tool, which is how CI runs it on every PR:
//
//	go build -o bin/namingvet ./cmd/namingvet
//	go vet -vettool=$PWD/bin/namingvet ./...
//
// Each analyzer guards one invariant the cluster's correctness rests on;
// see DESIGN.md §"Static analysis & invariants".
package main

import (
	"namecoherence/internal/analysis"
	"namecoherence/internal/analysis/bindingsleak"
	"namecoherence/internal/analysis/conndeadline"
	"namecoherence/internal/analysis/detrand"
	"namecoherence/internal/analysis/errwrap"
	"namecoherence/internal/analysis/lockheld"
)

func main() {
	analysis.Main("namingvet", []*analysis.Analyzer{
		lockheld.Analyzer,
		conndeadline.Analyzer,
		errwrap.Analyzer,
		bindingsleak.Analyzer,
		detrand.Analyzer,
	})
}
