package main

import (
	"net"
	"testing"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/treespec"
)

const testSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/motd "welcome"
`

// startServer serves the test spec on a loopback listener.
func startServer(t *testing.T) string {
	t.Helper()
	w := core.NewWorld()
	tr, err := treespec.Build(testSpec, w, "nsq-test")
	if err != nil {
		t.Fatal(err)
	}
	s := nameserver.NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ln)
	}()
	t.Cleanup(func() {
		s.Close()
		<-done
	})
	return ln.Addr().String()
}

// TestVerbsSingleServer walks the documented mutation flow against one
// server: mkcontext, bind into it, resolve, unbind, resolve again.
func TestVerbsSingleServer(t *testing.T) {
	addr := startServer(t)
	steps := [][]string{
		{"-addr", addr, "mkcontext", "/usr/local"},
		{"-addr", addr, "bind", "/usr/local/tool", "/usr/bin/ls"},
		{"-addr", addr, "/usr/local/tool"},
		{"-addr", addr, "unbind", "/usr/local/tool"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("nsq %v: %v", args, err)
		}
	}

	// The unbound name is gone; run still succeeds (per-path errors print).
	cl, err := nameserver.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if _, err := cl.Resolve(core.ParsePath("usr/local/tool")); err == nil {
		t.Fatal("unbound name still resolves")
	}

	// Verb operand validation.
	if err := run([]string{"-addr", addr, "bind", "/usr/local/x"}); err == nil {
		t.Fatal("bind with one operand did not error")
	}
	if err := run([]string{"-addr", addr, "unbind"}); err == nil {
		t.Fatal("unbind with no operand did not error")
	}
}

// TestVerbsCluster routes the same flow through a sharded cluster, with
// push invalidation on for the final read.
func TestVerbsCluster(t *testing.T) {
	w := core.NewWorld()
	cl, err := cluster.NewReplicated(w, testSpec, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	addr := cl.Addrs()[0]
	steps := [][]string{
		{"-cluster", "-addr", addr, "mkcontext", "/usr/local"},
		{"-cluster", "-addr", addr, "bind", "/usr/local/tool", "/usr/bin/ls"},
		{"-cluster", "-addr", addr, "-push", "-cache", "8", "/usr/local/tool"},
		{"-cluster", "-addr", addr, "unbind", "/usr/local/tool"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("nsq %v: %v", args, err)
		}
	}
	cl.DrainReplication()
	shard := cl.Routes().ShardFor(core.ParsePath("usr/local/tool"))
	for r := 0; r < cl.ReplicasPerShard(); r++ {
		if _, err := cl.ReplicaTrees[shard][r].Lookup(core.ParsePath("usr/local")); err != nil {
			t.Fatalf("replica %d: created context missing: %v", r, err)
		}
		if _, err := cl.ReplicaTrees[shard][r].Lookup(core.ParsePath("usr/local/tool")); err == nil {
			t.Fatalf("replica %d: unbound name still present", r)
		}
	}
}
