// Command nsq queries a running nsd name server: it resolves each path
// argument and prints the resulting entity (or error). With -cluster it
// bootstraps the routing table from the given address (any member of an
// nsd -shard cluster) and routes each name to its shard; -batch resolves
// all arguments with one round-trip per shard. Cluster requests run under
// a deadline (-timeout) with bounded retry (-retries) and automatic
// failover across an nsd -replicas deployment's replica servers.
//
// Usage:
//
//	nsq /usr/bin/ls /etc/passwd
//	nsq -addr 127.0.0.1:9000 -cache 16 -n 3 /usr/bin/ls
//	nsq -cluster -addr 127.0.0.1:40001 -batch /usr/bin/ls /etc/passwd
//	nsq -cluster -addr 127.0.0.1:40001 -timeout 500ms -retries 3 /etc/passwd
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nsq", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7474", "server address (any cluster member with -cluster)")
	cacheSize := fs.Int("cache", 0, "client cache size (0 = none)")
	coherent := fs.Bool("coherent", false, "use the revision-tracked coherent cache")
	repeat := fs.Int("n", 1, "resolve each path this many times")
	clustered := fs.Bool("cluster", false, "treat -addr as a sharded-cluster member and route by prefix")
	batch := fs.Bool("batch", false, "with -cluster: resolve all paths in one round-trip per shard")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
	retries := fs.Int("retries", 2, "with -cluster: extra attempts after a transport failure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no paths given")
	}
	if *batch && !*clustered {
		return fmt.Errorf("-batch requires -cluster")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d: must be >= 0", *retries)
	}
	if *clustered {
		return runCluster(*addr, *cacheSize, *batch, *repeat, *timeout, *retries, fs.Args())
	}

	var opts []nameserver.ClientOption
	switch {
	case *coherent && *cacheSize > 0:
		opts = append(opts, nameserver.WithCoherentCache(*cacheSize))
	case *cacheSize > 0:
		opts = append(opts, nameserver.WithCache(*cacheSize))
	}
	if *timeout > 0 {
		opts = append(opts, nameserver.WithTimeout(*timeout))
	}
	client, err := nameserver.Dial("tcp", *addr, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	for i := 0; i < *repeat; i++ {
		for _, arg := range fs.Args() {
			_, p := core.SplitPathString(arg)
			e, err := client.Resolve(p)
			if err != nil {
				fmt.Printf("%-30s -> error: %v\n", arg, err)
				continue
			}
			fmt.Printf("%-30s -> %v\n", arg, e)
		}
	}
	if *cacheSize > 0 {
		hits, misses := client.Stats()
		fmt.Printf("cache: %d hits, %d misses\n", hits, misses)
	}
	return nil
}

// runCluster resolves the paths through a sharded-cluster client
// bootstrapped from one member address. The cluster cache is always the
// revision-tracked per-shard LRU; requests run under the deadline and
// retry/failover policy.
func runCluster(addr string, cacheSize int, batch bool, repeat int,
	timeout time.Duration, retries int, args []string) error {
	opts := []cluster.ClientOption{
		cluster.WithTimeout(timeout),
		cluster.WithRetries(retries),
	}
	if cacheSize > 0 {
		opts = append(opts, cluster.WithLRU(cacheSize))
	}
	client, err := cluster.Dial("tcp", addr, opts...)
	if err != nil {
		return err
	}
	defer client.Close()

	routes := client.Routes()
	if routes.Replicas != nil {
		fmt.Printf("cluster: %d shards x %d replicas via %s\n",
			len(routes.Addrs), len(routes.ReplicaAddrs(0)), addr)
	} else {
		fmt.Printf("cluster: %d shards via %s\n", len(routes.Addrs), addr)
	}

	paths := make([]core.Path, len(args))
	for i, arg := range args {
		_, paths[i] = core.SplitPathString(arg)
	}
	for i := 0; i < repeat; i++ {
		if batch {
			results, err := client.ResolveBatch(paths)
			if err != nil {
				return err
			}
			for j, res := range results {
				if res.Err != nil {
					fmt.Printf("%-30s -> error: %v\n", args[j], res.Err)
					continue
				}
				fmt.Printf("%-30s -> %v\n", args[j], res.Entity)
			}
			continue
		}
		for j, p := range paths {
			e, err := client.Resolve(p)
			if err != nil {
				fmt.Printf("%-30s -> error: %v\n", args[j], err)
				continue
			}
			fmt.Printf("%-30s -> %v\n", args[j], e)
		}
	}
	if cacheSize > 0 {
		hits, misses := client.Stats()
		fmt.Printf("cache: %d hits, %d misses\n", hits, misses)
	}
	return nil
}
