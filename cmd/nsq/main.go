// Command nsq queries a running nsd name server: it resolves each path
// argument and prints the resulting entity (or error). With -cluster it
// bootstraps the routing table from the given address (any member of an
// nsd -shard cluster) and routes each name to its shard; -batch resolves
// all arguments with one round-trip per shard. Cluster requests run under
// a deadline (-timeout) with bounded retry (-retries) and automatic
// failover across an nsd -replicas deployment's replica servers.
//
// The first argument may be a mutation verb: "bind PATH TARGET" binds
// PATH to the entity TARGET resolves to, "unbind PATH" removes the
// binding, "mkcontext PATH" creates a directory. In cluster mode writes
// route to the owning shard's primary. -push subscribes the client for
// server-pushed invalidations before resolving (useful with -cache
// -coherent -n, where repeated reads would otherwise revalidate by poll).
//
// Usage:
//
//	nsq /usr/bin/ls /etc/passwd
//	nsq -addr 127.0.0.1:9000 -cache 16 -n 3 /usr/bin/ls
//	nsq bind /usr/bin/ls2 /usr/bin/ls
//	nsq mkcontext /usr/local && nsq bind /usr/local/tool /usr/bin/ls
//	nsq unbind /usr/bin/ls2
//	nsq -cluster -addr 127.0.0.1:40001 -batch /usr/bin/ls /etc/passwd
//	nsq -cluster -addr 127.0.0.1:40001 -timeout 500ms -retries 3 /etc/passwd
//	nsq -cluster -addr 127.0.0.1:40001 bind /usr/bin/ls2 /usr/bin/ls
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nsq", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7474", "server address (any cluster member with -cluster)")
	cacheSize := fs.Int("cache", 0, "client cache size (0 = none)")
	coherent := fs.Bool("coherent", false, "use the revision-tracked coherent cache")
	repeat := fs.Int("n", 1, "resolve each path this many times")
	clustered := fs.Bool("cluster", false, "treat -addr as a sharded-cluster member and route by prefix")
	batch := fs.Bool("batch", false, "with -cluster: resolve all paths in one round-trip per shard")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
	retries := fs.Int("retries", 2, "with -cluster: extra attempts after a transport failure")
	push := fs.Bool("push", false, "subscribe for server-pushed cache invalidations")
	codecName := fs.String("codec", "binary",
		"wire codec: binary (negotiate, gob fallback) or gob (pin the legacy codec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := nameserver.ParseCodec(*codecName)
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no paths given")
	}
	if *batch && !*clustered {
		return fmt.Errorf("-batch requires -cluster")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d: must be >= 0", *retries)
	}
	verb, rest, err := splitVerb(fs.Args())
	if err != nil {
		return err
	}
	if *clustered {
		return runCluster(*addr, *cacheSize, *batch, *repeat, *timeout, *retries, *push, codec, verb, rest)
	}

	opts := []nameserver.ClientOption{nameserver.WithCodec(codec)}
	switch {
	case *coherent && *cacheSize > 0:
		opts = append(opts, nameserver.WithCoherentCache(*cacheSize))
	case *cacheSize > 0:
		opts = append(opts, nameserver.WithCache(*cacheSize))
	}
	if *timeout > 0 {
		opts = append(opts, nameserver.WithTimeout(*timeout))
	}
	client, err := nameserver.Dial("tcp", *addr, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	if verb != "" {
		return mutateSingle(client, verb, rest)
	}
	if *push {
		if err := client.Subscribe(nil); err != nil {
			return fmt.Errorf("subscribe: %w", err)
		}
	}
	for i := 0; i < *repeat; i++ {
		for _, arg := range rest {
			_, p := core.SplitPathString(arg)
			e, err := client.Resolve(p)
			if err != nil {
				fmt.Printf("%-30s -> error: %v\n", arg, err)
				continue
			}
			fmt.Printf("%-30s -> %v\n", arg, e)
		}
	}
	if *cacheSize > 0 {
		hits, misses := client.Stats()
		fmt.Printf("cache: %d hits, %d misses\n", hits, misses)
	}
	if *push {
		fmt.Printf("push: %d invalidations\n", client.Invalidations())
	}
	return nil
}

// splitVerb peels a leading mutation verb off the positional arguments
// and checks its operand count: bind PATH TARGET, unbind PATH,
// mkcontext PATH. No verb means every argument is a path to resolve.
func splitVerb(args []string) (verb string, rest []string, err error) {
	switch args[0] {
	case "bind":
		if len(args) != 3 {
			return "", nil, fmt.Errorf("bind: need PATH TARGET")
		}
	case "unbind", "mkcontext":
		if len(args) != 2 {
			return "", nil, fmt.Errorf("%s: need PATH", args[0])
		}
	default:
		return "", args, nil
	}
	return args[0], args[1:], nil
}

// splitDirName separates a mutation operand into the directory path and
// the final name being bound, unbound, or created.
func splitDirName(arg string) (core.Path, core.Name, error) {
	_, p := core.SplitPathString(arg)
	if len(p) == 0 {
		return nil, "", fmt.Errorf("%q: empty path", arg)
	}
	return p[:len(p)-1], p[len(p)-1], nil
}

// mutateSingle applies one mutation verb through a single-server client.
func mutateSingle(client *nameserver.Client, verb string, args []string) error {
	dir, name, err := splitDirName(args[0])
	if err != nil {
		return err
	}
	switch verb {
	case "bind":
		_, tp := core.SplitPathString(args[1])
		target, err := client.Resolve(tp)
		if err != nil {
			return fmt.Errorf("resolve target %s: %w", args[1], err)
		}
		rev, err := client.Bind(dir, name, target)
		if err != nil {
			return err
		}
		fmt.Printf("bound %s -> %v (revision %d)\n", args[0], target, rev)
	case "unbind":
		rev, err := client.Unbind(dir, name)
		if err != nil {
			return err
		}
		fmt.Printf("unbound %s (revision %d)\n", args[0], rev)
	case "mkcontext":
		e, rev, err := client.Mkcontext(dir, name)
		if err != nil {
			return err
		}
		fmt.Printf("made context %s -> %v (revision %d)\n", args[0], e, rev)
	}
	return nil
}

// mutateCluster applies one mutation verb through a cluster client; the
// write routes to the owning shard's primary replica.
func mutateCluster(client *cluster.Client, verb string, args []string) error {
	dir, name, err := splitDirName(args[0])
	if err != nil {
		return err
	}
	switch verb {
	case "bind":
		_, tp := core.SplitPathString(args[1])
		target, err := client.Resolve(tp)
		if err != nil {
			return fmt.Errorf("resolve target %s: %w", args[1], err)
		}
		if err := client.Bind(dir, name, target); err != nil {
			return err
		}
		fmt.Printf("bound %s -> %v\n", args[0], target)
	case "unbind":
		if err := client.Unbind(dir, name); err != nil {
			return err
		}
		fmt.Printf("unbound %s\n", args[0])
	case "mkcontext":
		e, err := client.Mkcontext(dir, name)
		if err != nil {
			return err
		}
		fmt.Printf("made context %s -> %v\n", args[0], e)
	}
	return nil
}

// runCluster resolves the paths through a sharded-cluster client
// bootstrapped from one member address. The cluster cache is always the
// revision-tracked per-shard LRU; requests run under the deadline and
// retry/failover policy.
func runCluster(addr string, cacheSize int, batch bool, repeat int,
	timeout time.Duration, retries int, push bool, codec nameserver.Codec,
	verb string, args []string) error {
	opts := []cluster.ClientOption{
		cluster.WithTimeout(timeout),
		cluster.WithRetries(retries),
		cluster.WithCodec(codec),
	}
	if cacheSize > 0 {
		opts = append(opts, cluster.WithLRU(cacheSize))
	}
	if push {
		opts = append(opts, cluster.WithPushInvalidation())
	}
	client, err := cluster.Dial("tcp", addr, opts...)
	if err != nil {
		return err
	}
	defer client.Close()

	if verb != "" {
		return mutateCluster(client, verb, args)
	}

	routes := client.Routes()
	if routes.Replicas != nil {
		fmt.Printf("cluster: %d shards x %d replicas via %s\n",
			len(routes.Addrs), len(routes.ReplicaAddrs(0)), addr)
	} else {
		fmt.Printf("cluster: %d shards via %s\n", len(routes.Addrs), addr)
	}

	paths := make([]core.Path, len(args))
	for i, arg := range args {
		_, paths[i] = core.SplitPathString(arg)
	}
	for i := 0; i < repeat; i++ {
		if batch {
			results, err := client.ResolveBatch(paths)
			if err != nil {
				return err
			}
			for j, res := range results {
				if res.Err != nil {
					fmt.Printf("%-30s -> error: %v\n", args[j], res.Err)
					continue
				}
				fmt.Printf("%-30s -> %v\n", args[j], res.Entity)
			}
			continue
		}
		for j, p := range paths {
			e, err := client.Resolve(p)
			if err != nil {
				fmt.Printf("%-30s -> error: %v\n", args[j], err)
				continue
			}
			fmt.Printf("%-30s -> %v\n", args[j], e)
		}
	}
	if cacheSize > 0 {
		hits, misses := client.Stats()
		fmt.Printf("cache: %d hits, %d misses\n", hits, misses)
	}
	if push {
		fmt.Printf("push: %d invalidations\n", client.Invalidations())
	}
	return nil
}
