// Command nsq queries a running nsd name server: it resolves each path
// argument and prints the resulting entity (or error).
//
// Usage:
//
//	nsq /usr/bin/ls /etc/passwd
//	nsq -addr 127.0.0.1:9000 -cache 16 -n 3 /usr/bin/ls
package main

import (
	"flag"
	"fmt"
	"os"

	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nsq", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7474", "server address")
	cacheSize := fs.Int("cache", 0, "client cache size (0 = none)")
	coherent := fs.Bool("coherent", false, "use the revision-tracked coherent cache")
	repeat := fs.Int("n", 1, "resolve each path this many times")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no paths given")
	}

	var opts []nameserver.ClientOption
	switch {
	case *coherent && *cacheSize > 0:
		opts = append(opts, nameserver.WithCoherentCache(*cacheSize))
	case *cacheSize > 0:
		opts = append(opts, nameserver.WithCache(*cacheSize))
	}
	client, err := nameserver.Dial("tcp", *addr, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	for i := 0; i < *repeat; i++ {
		for _, arg := range fs.Args() {
			_, p := core.SplitPathString(arg)
			e, err := client.Resolve(p)
			if err != nil {
				fmt.Printf("%-30s -> error: %v\n", arg, err)
				continue
			}
			fmt.Printf("%-30s -> %v\n", arg, e)
		}
	}
	if *cacheSize > 0 {
		hits, misses := client.Stats()
		fmt.Printf("cache: %d hits, %d misses\n", hits, misses)
	}
	return nil
}
