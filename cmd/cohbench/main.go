// Command cohbench regenerates every experiment table of the reproduction:
// one table per paper figure/claim (E1..E14) plus the ablations (A1..A5).
//
// Usage:
//
//	cohbench             # run everything
//	cohbench -only E7    # run one experiment
//	cohbench -list       # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"namecoherence/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cohbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cohbench", flag.ContinueOnError)
	only := fs.String("only", "", "run only the experiment with this id (e.g. E7)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tables, err := experiments.All()
	if err != nil {
		return err
	}
	if *list {
		for _, t := range tables {
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return nil
	}
	matched := false
	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		matched = true
		fmt.Println(t.String())
	}
	if *only != "" && !matched {
		return fmt.Errorf("no experiment %q (try -list)", *only)
	}
	return nil
}
