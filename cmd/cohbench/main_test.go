package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnly(t *testing.T) {
	if err := run([]string{"-only", "E9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnlyUnknown(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
