package main

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

// startDaemon runs the daemon in the background and returns its primary
// address plus a wait function that delivers run's error after shutdown.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	testHookServing = func(addr string) { addrCh <- addr }
	errCh := make(chan error, 1)
	go func() { errCh <- run(args) }()
	select {
	case addr := <-addrCh:
		return addr, func() error {
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				t.Fatal("daemon did not shut down")
				return nil
			}
		}
	case err := <-errCh:
		t.Fatalf("daemon exited during startup: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start serving")
		return "", nil
	}
}

// sigterm delivers SIGTERM to this process — the real graceful-shutdown
// path, caught by the handler run registers at startup.
func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

type answer struct {
	ent core.Entity
	rev uint64
}

func resolveAll(t *testing.T, addr string, paths []string) []answer {
	t.Helper()
	cl, err := nameserver.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	out := make([]answer, 0, len(paths))
	for _, p := range paths {
		e, rev, err := cl.ResolveRev(core.ParsePath(p))
		if err != nil {
			t.Fatalf("resolve %q: %v", p, err)
		}
		out = append(out, answer{ent: e, rev: rev})
	}
	return out
}

// A daemon killed with SIGTERM flushes a final snapshot, and a restarted
// daemon recovers the graph from -data and serves identical canonical
// answers at the same revision — across as many restarts as you like.
func TestGracefulShutdownAndRecovery(t *testing.T) {
	dir := t.TempDir()
	paths := []string{"usr/bin/ls", "etc/motd", "mnt/bin/cat", "home/alice/notes"}

	// First life: builds from the demo spec and commits the initial root.
	addr, wait := startDaemon(t, "-addr", "127.0.0.1:0", "-data", dir, "-snap-interval", "0")
	resolveAll(t, addr, paths)
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatalf("first life: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatalf("no manifest after graceful shutdown: %v", err)
	}

	// Second life: recovered from the store.
	addr, wait = startDaemon(t, "-addr", "127.0.0.1:0", "-data", dir, "-snap-interval", "0")
	second := resolveAll(t, addr, paths)
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatalf("second life: %v", err)
	}

	// Third life: same store again. Answers are identical — same entity
	// IDs, same kinds, same revision — because the graph is rebuilt from
	// the same canonical blobs in the same deterministic order.
	addr, wait = startDaemon(t, "-addr", "127.0.0.1:0", "-data", dir, "-snap-interval", "0")
	third := resolveAll(t, addr, paths)
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatalf("third life: %v", err)
	}
	for i := range second {
		if second[i] != third[i] {
			t.Fatalf("answer for %q changed across restart: %+v vs %+v",
				paths[i], second[i], third[i])
		}
	}

	// Sharing survives recovery: the link and its target resolve to the
	// same entity.
	if second[0].ent == (core.Entity{}) {
		t.Fatal("zero entity answer")
	}
}

// Links (shared subtrees) restore as shared entities, not copies.
func TestRecoveryPreservesSharing(t *testing.T) {
	dir := t.TempDir()
	addr, wait := startDaemon(t, "-addr", "127.0.0.1:0", "-data", dir, "-snap-interval", "0")
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	addr, wait = startDaemon(t, "-addr", "127.0.0.1:0", "-data", dir, "-snap-interval", "0")
	a := resolveAll(t, addr, []string{"usr/bin/ls", "mnt/bin/ls"})
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if a[0].ent != a[1].ent {
		t.Fatalf("link aliasing lost in recovery: %v != %v", a[0].ent, a[1].ent)
	}
	_ = addr
}

// Sharded mode recovers every shard from the store and still serves the
// routing table.
func TestShardedRecovery(t *testing.T) {
	dir := t.TempDir()
	addr, wait := startDaemon(t, "-shard", "2", "-data", dir, "-snap-interval", "0")
	if addr == "" {
		t.Fatal("no bootstrap address")
	}
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatalf("first life: %v", err)
	}

	addr, wait = startDaemon(t, "-shard", "2", "-data", dir, "-snap-interval", "0")
	cl, err := cluster.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Resolve(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatalf("resolve through recovered cluster: %v", err)
	}
	if _, err := cl.Resolve(core.ParsePath("etc/motd")); err != nil {
		t.Fatalf("resolve through recovered cluster: %v", err)
	}
	cl.Close()
	sigterm(t)
	if err := wait(); err != nil {
		t.Fatalf("second life: %v", err)
	}
}
