// Command nsd is a standalone name-server daemon: it builds a naming tree
// from a treespec file (or a built-in demo tree) and serves resolution
// requests over TCP until interrupted.
//
// Usage:
//
//	nsd                          # demo tree on 127.0.0.1:7474
//	nsd -addr :9000 -spec t.spec # serve a spec file
//	nsd -dump                    # print the served tree's spec and exit
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/treespec"
)

const demoSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /usr/bin/cat "#!cat"
file /etc/passwd "root:0:staff"
file /etc/motd "welcome to nsd"
dir /home/alice
file /home/alice/notes "todo: read ICDCS'93"
link /mnt /usr
`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7474", "listen address")
	specPath := fs.String("spec", "", "treespec file to serve (default: built-in demo)")
	dump := fs.Bool("dump", false, "print the served tree's spec and exit")
	watch := fs.Bool("watch", true, "bump the revision on binding changes (coherent caches)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := core.NewWorld()
	var tr *dirtree.Tree
	if *specPath == "" {
		var err error
		tr, err = treespec.Build(demoSpec, w, "demo")
		if err != nil {
			return fmt.Errorf("built-in spec: %w", err)
		}
	} else {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		tr, err = treespec.Parse(f, w, *specPath)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
	}

	if *dump {
		return treespec.Dump(tr, os.Stdout)
	}

	server := nameserver.NewServer(w, tr.RootContext())
	if *watch {
		watched := server.WatchExport(tr.Root)
		fmt.Printf("watching %d directories for binding changes\n", watched)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("nsd serving on %s (interrupt to stop)\n", ln.Addr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Serve(ln)
	}()
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	<-interrupt
	fmt.Println("shutting down")
	server.Close()
	<-done
	fmt.Printf("served %d requests\n", server.Served())
	return nil
}
