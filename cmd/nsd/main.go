// Command nsd is a standalone name-server daemon: it builds a naming tree
// from a treespec file (or a built-in demo tree) and serves resolution
// requests over TCP until interrupted. With -shard N it partitions the
// tree across N name servers by prefix and serves all of them, printing
// the routing table; any member can bootstrap an nsq -cluster client.
// With -replicas R every shard is served by R replica servers holding
// replicas of the same subtree, so clients can fail over when one dies.
//
// With -data DIR the daemon keeps a durable content-addressed snapshot
// store in DIR: the naming graph is committed there periodically (see
// -snap-interval) and once more on graceful shutdown (SIGINT/SIGTERM),
// and a restart recovers the graph from DIR — at the committed revision —
// instead of rebuilding from the spec.
//
// Usage:
//
//	nsd                          # demo tree on 127.0.0.1:7474
//	nsd -addr :9000 -spec t.spec # serve a spec file
//	nsd -shard 4                 # serve the demo tree from 4 shards
//	nsd -shard 4 -replicas 2     # ...with 2 replica servers per shard
//	nsd -data /var/lib/nsd       # durable snapshots + crash recovery
//	nsd -dump                    # print the served tree's spec and exit
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"namecoherence/internal/cas"
	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/snapstore"
	"namecoherence/internal/treespec"
)

const demoSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /usr/bin/cat "#!cat"
file /etc/passwd "root:0:staff"
file /etc/motd "welcome to nsd"
dir /home/alice
file /home/alice/notes "todo: read ICDCS'93"
link /mnt /usr
`

// testHookServing, when set (tests only), receives the primary listen
// address once the daemon is accepting connections.
var testHookServing func(addr string)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Register for shutdown signals before any long setup (restore of a
	// large store, listener bring-up): a SIGTERM delivered during startup
	// must still shut the daemon down instead of killing it mid-write.
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(interrupt)

	fs := flag.NewFlagSet("nsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7474", "listen address (single-server mode)")
	specPath := fs.String("spec", "", "treespec file to serve (default: built-in demo)")
	dump := fs.Bool("dump", false, "print the served tree's spec and exit")
	watch := fs.Bool("watch", true, "bump the revision on binding changes (coherent caches)")
	readonly := fs.Bool("readonly", false, "refuse wire mutations (bind/unbind/mkcontext)")
	shards := fs.Int("shard", 1, "partition the tree across this many prefix shards")
	replicas := fs.Int("replicas", 1, "serve each shard from this many replica servers")
	dataDir := fs.String("data", "", "durable snapshot directory (enables crash recovery)")
	snapInterval := fs.Duration("snap-interval", 10*time.Second,
		"periodic snapshot interval with -data (0 disables periodic snapshots)")
	codecName := fs.String("codec", "binary",
		"wire codec policy: binary (negotiate, gob fallback) or gob (pin the legacy codec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := nameserver.ParseCodec(*codecName)
	if err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shard %d: need at least 1", *shards)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas %d: need at least 1", *replicas)
	}

	spec := demoSpec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec = string(data)
	}

	w := core.NewWorld()
	if *dump {
		tr, err := treespec.Build(spec, w, "nsd")
		if err != nil {
			return err
		}
		return treespec.Dump(tr, os.Stdout)
	}

	var st *snapstore.Store
	var keeper *snapstore.Keeper
	if *dataDir != "" {
		var err error
		st, err = snapstore.Open(*dataDir)
		if err != nil {
			return fmt.Errorf("open snapshot store: %w", err)
		}
		keeper = snapstore.NewKeeper(st, *snapInterval)
	}

	if *shards > 1 || *replicas > 1 {
		return runSharded(w, spec, *shards, *replicas, *readonly, codec, st, keeper, interrupt)
	}

	// Single-server mode: recover the tree from the store when it holds a
	// committed root, else build from the spec and commit the first root.
	var tr *dirtree.Tree
	var recoveredRev uint64
	recovered := false
	if st != nil {
		if last, ok := st.Latest(0); ok {
			root, err := last.RootHash()
			if err != nil {
				return fmt.Errorf("manifest: %w", err)
			}
			tr, err = st.Restore(root, w, "nsd")
			if err != nil {
				return fmt.Errorf("recover naming graph: %w", err)
			}
			recoveredRev, recovered = last.Rev, true
			fmt.Printf("recovered naming graph %s at revision %d from %s\n",
				root, last.Rev, *dataDir)
		}
	}
	if tr == nil {
		var err error
		tr, err = treespec.Build(spec, w, "nsd")
		if err != nil {
			return err
		}
		if st != nil {
			root, err := st.Snapshot(w, tr.Root)
			if err != nil {
				return fmt.Errorf("initial snapshot: %w", err)
			}
			if err := st.Commit(0, 0, root); err != nil {
				return fmt.Errorf("commit initial snapshot: %w", err)
			}
			fmt.Printf("committed initial snapshot %s to %s\n", root, *dataDir)
		}
	}

	srvOpts := []nameserver.ServerOption{nameserver.WithServerCodec(codec)}
	if *readonly {
		srvOpts = append(srvOpts, nameserver.WithReadOnly())
	}
	server := nameserver.NewServer(w, tr.RootContext(), srvOpts...)
	if recovered {
		server.SetRevision(recoveredRev)
	}
	if *watch {
		watched := server.WatchExport(tr.Root)
		fmt.Printf("watching %d directories for binding changes\n", watched)
	}
	if keeper != nil {
		// The snap runs under the server's write lock: a wire mutation can
		// not land between reading the revision and walking the tree, so the
		// committed snapshot is exactly the state at that revision.
		keeper.Track(0, server.Revision, func() (h cas.Hash, rev uint64, err error) {
			server.Stable(func() {
				rev = server.Revision()
				h, err = st.Snapshot(w, tr.Root)
			})
			return h, rev, err
		})
		keeper.Start()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("nsd serving on %s (interrupt to stop)\n", ln.Addr())
	if testHookServing != nil {
		testHookServing(ln.Addr().String())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Serve(ln)
	}()
	<-interrupt
	fmt.Println("shutting down")
	server.Close()
	<-done
	if keeper != nil {
		// Final flush: the manifest leaves naming the graph as served.
		if err := keeper.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		if last, ok := st.Latest(0); ok {
			fmt.Printf("final snapshot %s at revision %d\n", last.Root, last.Rev)
		}
	}
	fmt.Printf("served %d requests\n", server.Served())
	return nil
}

// runSharded serves the spec from a prefix-partitioned, optionally
// replicated cluster and prints the routing table clients bootstrap from.
func runSharded(w *core.World, spec string, shards, replicas int, readonly bool,
	codec nameserver.Codec, st *snapstore.Store, keeper *snapstore.Keeper,
	interrupt chan os.Signal) error {
	opts := []cluster.Option{cluster.WithServerOptions(nameserver.WithServerCodec(codec))}
	if st != nil {
		opts = append(opts, cluster.WithSnapStore(st))
	}
	if readonly {
		opts = append(opts, cluster.WithServerOptions(nameserver.WithReadOnly()))
	}
	cl, err := cluster.NewReplicated(w, spec, shards, replicas, opts...)
	if err != nil {
		return err
	}
	for i := 0; i < cl.Shards(); i++ {
		if rev, ok := cl.Recovered(i); ok {
			fmt.Printf("recovered shard %d at revision %d\n", i, rev)
		}
	}
	for _, s := range cl.CatchUps() {
		fmt.Printf("caught up shard %d replica %d: %d blobs fetched, %d subtrees already present\n",
			s.Shard, s.Replica, s.Copied, s.Skipped)
	}
	if keeper != nil {
		for i := 0; i < cl.Shards(); i++ {
			i := i
			srv := cl.Server(i)
			keeper.Track(i, srv.Revision, func() (h cas.Hash, rev uint64, err error) {
				// Under the primary's write lock, so a wire mutation can not
				// tear the snapshot between revision read and tree walk.
				srv.Stable(func() {
					rev = srv.Revision()
					h, err = cl.ShardRoot(st, i, 0)
				})
				return h, rev, err
			})
		}
		keeper.Start()
	}
	routes := cl.Routes()
	fmt.Printf("nsd serving %d shards x %d replicas (interrupt to stop)\n",
		cl.Shards(), cl.ReplicasPerShard())
	for i := range routes.Addrs {
		fmt.Printf("  shard %d: %s\n", i, strings.Join(routes.ReplicaAddrs(i), " "))
	}
	prefixes := make([]string, 0, len(routes.Prefixes))
	for p := range routes.Prefixes {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		fmt.Printf("  /%s -> shard %d\n", p, routes.Prefixes[p])
	}
	fmt.Printf("  default -> shard %d\n", routes.Default)
	fmt.Printf("bootstrap: nsq -cluster -addr %s <path>...\n", routes.Addrs[0])
	if testHookServing != nil {
		testHookServing(routes.Addrs[0])
	}

	<-interrupt
	fmt.Println("shutting down")
	cl.Close()
	if keeper != nil {
		if err := keeper.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
	}
	fmt.Printf("served %d requests (%d names)\n", cl.Served(), cl.Resolved())
	return nil
}
