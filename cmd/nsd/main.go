// Command nsd is a standalone name-server daemon: it builds a naming tree
// from a treespec file (or a built-in demo tree) and serves resolution
// requests over TCP until interrupted. With -shard N it partitions the
// tree across N name servers by prefix and serves all of them, printing
// the routing table; any member can bootstrap an nsq -cluster client.
// With -replicas R every shard is served by R replica servers holding
// replicas of the same subtree, so clients can fail over when one dies.
//
// Usage:
//
//	nsd                          # demo tree on 127.0.0.1:7474
//	nsd -addr :9000 -spec t.spec # serve a spec file
//	nsd -shard 4                 # serve the demo tree from 4 shards
//	nsd -shard 4 -replicas 2     # ...with 2 replica servers per shard
//	nsd -dump                    # print the served tree's spec and exit
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/treespec"
)

const demoSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /usr/bin/cat "#!cat"
file /etc/passwd "root:0:staff"
file /etc/motd "welcome to nsd"
dir /home/alice
file /home/alice/notes "todo: read ICDCS'93"
link /mnt /usr
`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7474", "listen address (single-server mode)")
	specPath := fs.String("spec", "", "treespec file to serve (default: built-in demo)")
	dump := fs.Bool("dump", false, "print the served tree's spec and exit")
	watch := fs.Bool("watch", true, "bump the revision on binding changes (coherent caches)")
	shards := fs.Int("shard", 1, "partition the tree across this many prefix shards")
	replicas := fs.Int("replicas", 1, "serve each shard from this many replica servers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shard %d: need at least 1", *shards)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas %d: need at least 1", *replicas)
	}

	spec := demoSpec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec = string(data)
	}

	w := core.NewWorld()
	if *dump {
		tr, err := treespec.Build(spec, w, "nsd")
		if err != nil {
			return err
		}
		return treespec.Dump(tr, os.Stdout)
	}
	if *shards > 1 || *replicas > 1 {
		return runSharded(w, spec, *shards, *replicas)
	}

	var tr *dirtree.Tree
	tr, err := treespec.Build(spec, w, "nsd")
	if err != nil {
		return err
	}
	server := nameserver.NewServer(w, tr.RootContext())
	if *watch {
		watched := server.WatchExport(tr.Root)
		fmt.Printf("watching %d directories for binding changes\n", watched)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("nsd serving on %s (interrupt to stop)\n", ln.Addr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Serve(ln)
	}()
	awaitInterrupt()
	fmt.Println("shutting down")
	server.Close()
	<-done
	fmt.Printf("served %d requests\n", server.Served())
	return nil
}

// runSharded serves the spec from a prefix-partitioned, optionally
// replicated cluster and prints the routing table clients bootstrap from.
func runSharded(w *core.World, spec string, shards, replicas int) error {
	cl, err := cluster.NewReplicated(w, spec, shards, replicas)
	if err != nil {
		return err
	}
	routes := cl.Routes()
	fmt.Printf("nsd serving %d shards x %d replicas (interrupt to stop)\n",
		cl.Shards(), cl.ReplicasPerShard())
	for i := range routes.Addrs {
		fmt.Printf("  shard %d: %s\n", i, strings.Join(routes.ReplicaAddrs(i), " "))
	}
	prefixes := make([]string, 0, len(routes.Prefixes))
	for p := range routes.Prefixes {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		fmt.Printf("  /%s -> shard %d\n", p, routes.Prefixes[p])
	}
	fmt.Printf("  default -> shard %d\n", routes.Default)
	fmt.Printf("bootstrap: nsq -cluster -addr %s <path>...\n", routes.Addrs[0])

	awaitInterrupt()
	fmt.Println("shutting down")
	cl.Close()
	fmt.Printf("served %d requests (%d names)\n", cl.Served(), cl.Resolved())
	return nil
}

func awaitInterrupt() {
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	<-interrupt
}
