// Command pqidemo walks through the partially-qualified-identifier scenario
// of §6 Example 1 end to end: processes exchange pid references with
// sender-side mapping, a machine is renumbered, and the demo shows which
// connections survive under each identifier scheme.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pqidemo:", err)
		os.Exit(1)
	}
}

func run() error {
	nw := naming.NewNetwork()
	mk := func(n, m, l uint32, name string) (*naming.PQINode, error) {
		return naming.NewPQINode(nw, naming.Addr{Net: n, Mach: m, Local: l}, name)
	}
	a, err := mk(1, 1, 1, "a")
	if err != nil {
		return err
	}
	b, err := mk(1, 1, 2, "b")
	if err != nil {
		return err
	}
	c, err := mk(1, 2, 1, "c")
	if err != nil {
		return err
	}
	dir := map[string]*naming.PQINode{"a": a, "b": b, "c": c}

	fmt.Println("topology: a,b on machine (1,1); c on machine (1,2)")

	// a refers to b minimally and fully qualified.
	min := naming.PIDRelativize(b.Addr(), a.Addr())
	full := naming.PID{Net: 1, Mach: 1, Local: 2}
	a.Hold("b", min)
	a.Hold("b-full", full)
	dir["b-full"] = b
	fmt.Printf("a holds pid %v (partially qualified) and %v (fully qualified) for b\n", min, full)

	// a sends its ref to c with sender-side mapping (R(sender)).
	if err := a.SendRef(c.Addr(), "b", true); err != nil {
		return err
	}
	c.Drain()
	got, _ := c.Held("b")
	fmt.Printf("a sends the ref to c with boundary mapping; c receives %v (valid: %v)\n",
		got, c.RefValid("b", dir))

	// Renumber machine (1,1) → (1,9).
	if _, err := nw.RenumberMachine(1, 1, 9); err != nil {
		return err
	}
	fmt.Println("\nmachine (1,1) renumbered to (1,9)")
	fmt.Printf("a's partially qualified ref to b still valid: %v\n", a.RefValid("b", dir))
	fmt.Printf("a's fully qualified ref to b still valid:     %v\n", a.RefValid("b-full", dir))
	fmt.Printf("c's mapped ref into the renamed machine:      %v\n", c.RefValid("b", dir))
	fmt.Println("\npaper §6 Ex.1: the renamed subsystem keeps its internal connections")
	fmt.Println("only under partially qualified identifiers.")
	return nil
}
