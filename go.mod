module namecoherence

go 1.22
