package rules

import (
	"strings"
	"testing"

	"namecoherence/internal/core"
)

func TestChainFallsThrough(t *testing.T) {
	w, a1, _, actAssoc, _, x1, _ := twoActivityWorld(t)

	// Object rule with an empty object table fails for object-sourced
	// names; the chain falls through to the activity rule.
	chain := &Chain{Rules: []Rule{
		&ObjectRule{ObjectContexts: NewAssoc(), ActivityContexts: NewAssoc()},
		&ActivityRule{Contexts: actAssoc},
	}}
	doc := w.NewObject("doc")
	got, err := NewResolver(w, chain).Resolve(FromObject(a1, doc, nil), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x1 {
		t.Fatalf("got %v, want fallback to activity context %v", got, x1)
	}
}

func TestChainFirstWins(t *testing.T) {
	w, a1, _, actAssoc, _, _, _ := twoActivityWorld(t)
	special := core.NewContext()
	xSpecial := w.NewObject("x-special")
	special.Bind("x", xSpecial)

	chain := &Chain{Rules: []Rule{
		&FixedRule{Context: special, Label: "R(special)"},
		&ActivityRule{Contexts: actAssoc},
	}}
	got, err := NewResolver(w, chain).Resolve(Internal(a1), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != xSpecial {
		t.Fatalf("got %v, want first rule's %v", got, xSpecial)
	}
}

func TestChainExhausted(t *testing.T) {
	w, a1, _, _, _, _, _ := twoActivityWorld(t)
	chain := &Chain{Rules: []Rule{
		&ActivityRule{Contexts: NewAssoc()},
		&SenderRule{Contexts: NewAssoc()},
	}}
	if _, err := chain.Select(Internal(a1)); err == nil {
		t.Fatal("exhausted chain did not error")
	}
	_ = w

	var empty Chain
	if _, err := empty.Select(Internal(a1)); err == nil {
		t.Fatal("empty chain did not error")
	}
}

func TestChainString(t *testing.T) {
	chain := &Chain{Rules: []Rule{&ActivityRule{}, &SenderRule{}}}
	s := chain.String()
	if !strings.Contains(s, "R(activity)") || !strings.Contains(s, "R(sender)") {
		t.Fatalf("String = %q", s)
	}
}

func TestReceiverSenderRule(t *testing.T) {
	w, a1, a2, actAssoc, _, x1, x2 := twoActivityWorld(t)
	pairCtx := core.NewContext()
	xPair := w.NewObject("x-pair")
	pairCtx.Bind("x", xPair)

	r := &ReceiverSenderRule{
		Pairs: map[[2]core.EntityID]core.Context{
			{a2.ID, a1.ID}: pairCtx,
		},
		Fallback: actAssoc,
	}
	res := NewResolver(w, r)

	// The (a2 receives from a1) pair uses the pair context.
	got, err := res.Resolve(Received(a2, a1), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != xPair {
		t.Fatalf("pair context not used: %v", got)
	}
	// The reverse pair has no entry: fallback to receiver's own context.
	got, err = res.Resolve(Received(a1, a2), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x1 {
		t.Fatalf("fallback not used: %v", got)
	}
	// Internal names use the fallback too.
	got, err = res.Resolve(Internal(a2), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x2 {
		t.Fatalf("internal fallback: %v", got)
	}
	if r.String() != "R(receiver,sender)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestReceiverSenderRuleNoContext(t *testing.T) {
	w, a1, a2, _, _, _, _ := twoActivityWorld(t)
	_ = w
	r := &ReceiverSenderRule{}
	if _, err := r.Select(Received(a2, a1)); err == nil {
		t.Fatal("empty rule did not error")
	}
}
