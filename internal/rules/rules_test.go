package rules

import (
	"errors"
	"testing"

	"namecoherence/internal/core"
)

// twoActivityWorld builds two activities with private contexts that disagree
// on the name "x" and agree on the name "g" (a "global" name).
func twoActivityWorld(t *testing.T) (w *core.World, a1, a2 core.Entity, assoc *Assoc, shared, x1, x2 core.Entity) {
	t.Helper()
	w = core.NewWorld()
	a1 = w.NewActivity("a1")
	a2 = w.NewActivity("a2")
	shared = w.NewObject("shared")
	x1 = w.NewObject("x@a1")
	x2 = w.NewObject("x@a2")

	c1, c2 := core.NewContext(), core.NewContext()
	c1.Bind("g", shared)
	c2.Bind("g", shared)
	c1.Bind("x", x1)
	c2.Bind("x", x2)

	assoc = NewAssoc()
	assoc.Set(a1, c1)
	assoc.Set(a2, c2)
	return w, a1, a2, assoc, shared, x1, x2
}

func TestSourceString(t *testing.T) {
	tests := []struct {
		give Source
		want string
	}{
		{SourceInternal, "internal"},
		{SourceMessage, "message"},
		{SourceObject, "object"},
		{Source(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Source(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestAssoc(t *testing.T) {
	w := core.NewWorld()
	a := w.NewActivity("a")
	c := core.NewContext()
	assoc := NewAssoc()

	if _, ok := assoc.Get(a); ok {
		t.Fatal("empty assoc returned a context")
	}
	assoc.Set(a, c)
	got, ok := assoc.Get(a)
	if !ok || got != core.Context(c) {
		t.Fatal("Get after Set failed")
	}
	if assoc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", assoc.Len())
	}
	assoc.Remove(a)
	if _, ok := assoc.Get(a); ok {
		t.Fatal("Get after Remove succeeded")
	}

	fb := core.NewContext()
	assoc.SetFallback(fb)
	got, ok = assoc.Get(a)
	if !ok || got != core.Context(fb) {
		t.Fatal("fallback not served")
	}
}

func TestActivityRule(t *testing.T) {
	w, a1, a2, assoc, shared, x1, x2 := twoActivityWorld(t)
	r := NewResolver(w, &ActivityRule{Contexts: assoc})

	// Under R(activity), the global name agrees, the local name does not —
	// regardless of the source of the name.
	for _, m := range []Circumstance{Internal(a1), Received(a1, a2), FromObject(a1, shared, nil)} {
		got, err := r.Resolve(m, core.PathOf("x"))
		if err != nil {
			t.Fatal(err)
		}
		if got != x1 {
			t.Fatalf("origin %v: got %v, want %v", m.Origin, got, x1)
		}
	}
	got, err := r.Resolve(Internal(a2), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x2 {
		t.Fatalf("a2 resolved x to %v, want %v", got, x2)
	}
	for _, a := range []core.Entity{a1, a2} {
		got, err := r.Resolve(Internal(a), core.PathOf("g"))
		if err != nil {
			t.Fatal(err)
		}
		if got != shared {
			t.Fatalf("global name resolved to %v", got)
		}
	}
}

func TestActivityRuleNoContext(t *testing.T) {
	w, _, _, assoc, _, _, _ := twoActivityWorld(t)
	stranger := w.NewActivity("stranger")
	r := NewResolver(w, &ActivityRule{Contexts: assoc})
	_, err := r.Resolve(Internal(stranger), core.PathOf("x"))
	var nce *NoContextError
	if !errors.As(err, &nce) {
		t.Fatalf("err = %v, want NoContextError", err)
	}
	if nce.Entity != stranger {
		t.Fatalf("NoContextError.Entity = %v", nce.Entity)
	}
}

func TestSenderRule(t *testing.T) {
	w, a1, a2, assoc, _, x1, x2 := twoActivityWorld(t)
	r := NewResolver(w, &SenderRule{Contexts: assoc})

	// a2 received "x" from a1: resolved in a1's context — coherent with the
	// sender's meaning.
	got, err := r.Resolve(Received(a2, a1), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x1 {
		t.Fatalf("R(sender) got %v, want sender's %v", got, x1)
	}

	// Internally generated names still use the activity's own context.
	got, err = r.Resolve(Internal(a2), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x2 {
		t.Fatalf("internal name got %v, want own %v", got, x2)
	}

	// A message circumstance without a sender degrades to the receiver.
	got, err = r.Resolve(Circumstance{Activity: a2, Origin: SourceMessage}, core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x2 {
		t.Fatalf("senderless message got %v, want own %v", got, x2)
	}
}

func TestObjectRule(t *testing.T) {
	w, a1, a2, actAssoc, _, x1, _ := twoActivityWorld(t)
	// The object "doc" carries embedded names; its associated context binds
	// "x" to a dedicated entity that no activity context binds.
	doc := w.NewObject("doc")
	xDoc := w.NewObject("x@doc")
	docCtx := core.NewContext()
	docCtx.Bind("x", xDoc)
	objAssoc := NewAssoc()
	objAssoc.Set(doc, docCtx)

	r := NewResolver(w, &ObjectRule{ObjectContexts: objAssoc, ActivityContexts: actAssoc})

	// Both activities obtain "x" from doc: coherent, and equal to the
	// object context's meaning.
	for _, a := range []core.Entity{a1, a2} {
		got, err := r.Resolve(FromObject(a, doc, nil), core.PathOf("x"))
		if err != nil {
			t.Fatal(err)
		}
		if got != xDoc {
			t.Fatalf("R(object) for %v got %v, want %v", a, got, xDoc)
		}
	}

	// Internal names fall back to the activity context.
	got, err := r.Resolve(Internal(a1), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x1 {
		t.Fatalf("internal got %v, want %v", got, x1)
	}

	// An object with no associated context is an error.
	orphan := w.NewObject("orphan")
	_, err = r.Resolve(FromObject(a1, orphan, nil), core.PathOf("x"))
	var nce *NoContextError
	if !errors.As(err, &nce) {
		t.Fatalf("err = %v, want NoContextError", err)
	}
}

func TestFixedRule(t *testing.T) {
	w, a1, a2, _, _, _, _ := twoActivityWorld(t)
	g := w.NewObject("g")
	global := core.NewContext()
	global.Bind("x", g)
	r := NewResolver(w, &FixedRule{Context: global})

	for _, a := range []core.Entity{a1, a2} {
		got, err := r.Resolve(Internal(a), core.PathOf("x"))
		if err != nil {
			t.Fatal(err)
		}
		if got != g {
			t.Fatalf("global rule got %v, want %v", got, g)
		}
	}

	var empty FixedRule
	if _, err := empty.Select(Internal(a1)); err == nil {
		t.Fatal("nil-context FixedRule did not error")
	}
	if empty.String() != "R(global)" {
		t.Fatalf("String = %q", empty.String())
	}
}

func TestFuncRule(t *testing.T) {
	w, a1, _, assoc, _, x1, _ := twoActivityWorld(t)
	r := &FuncRule{
		Label: "R(custom)",
		SelectFunc: func(m Circumstance) (core.Context, error) {
			c, _ := assoc.Get(m.Activity)
			return c, nil
		},
	}
	if r.String() != "R(custom)" {
		t.Fatalf("String = %q", r.String())
	}
	got, err := NewResolver(w, r).Resolve(Internal(a1), core.PathOf("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != x1 {
		t.Fatalf("got %v", got)
	}
}

func TestRuleStrings(t *testing.T) {
	tests := []struct {
		give Rule
		want string
	}{
		{&ActivityRule{}, "R(activity)"},
		{&SenderRule{}, "R(sender)"},
		{&ObjectRule{}, "R(object)"},
		{&FixedRule{Label: "R(root)"}, "R(root)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestResolverTrail(t *testing.T) {
	w := core.NewWorld()
	a := w.NewActivity("a")
	root, rootCtx := w.NewContextObject("root")
	sub, subCtx := w.NewContextObject("sub")
	leaf := w.NewObject("leaf")
	rootCtx.Bind("sub", sub)
	subCtx.Bind("leaf", leaf)
	_ = root

	assoc := NewAssoc()
	actCtx := core.NewContext()
	actCtx.Bind("sub", sub)
	assoc.Set(a, actCtx)

	r := NewResolver(w, &ActivityRule{Contexts: assoc})
	got, trail, err := r.ResolveTrail(Internal(a), core.ParsePath("sub/leaf"))
	if err != nil {
		t.Fatal(err)
	}
	if got != leaf || len(trail) != 2 || trail[0] != sub || trail[1] != leaf {
		t.Fatalf("got %v trail %v", got, trail)
	}
}
