package rules

import (
	"fmt"
	"strings"

	"namecoherence/internal/core"
)

// Chain tries rules in order and selects the first context found,
// skipping rules that fail with NoContextError. It models layered closure
// mechanisms — e.g. "use the object's context if the object has one,
// otherwise the activity's".
type Chain struct {
	// Rules are tried in order.
	Rules []Rule
}

var _ Rule = (*Chain)(nil)

// Select implements Rule.
func (c *Chain) Select(m Circumstance) (core.Context, error) {
	var lastErr error
	for _, r := range c.Rules {
		ctx, err := r.Select(m)
		if err == nil {
			return ctx, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = &NoContextError{Rule: c.String()}
	}
	return nil, fmt.Errorf("chain exhausted: %w", lastErr)
}

// String implements Rule.
func (c *Chain) String() string {
	parts := make([]string, len(c.Rules))
	for i, r := range c.Rules {
		parts[i] = r.String()
	}
	return "chain(" + strings.Join(parts, ",") + ")"
}

// ReceiverSenderRule is the composed rule R(receiver, sender) the paper
// mentions and dismisses ("we have found no instances of, and no
// justification for, such rules"): a per-(receiver, sender) context table
// with a fallback to the receiver's own context. It exists so experiments
// can demonstrate that it adds state without adding coherence beyond
// R(sender).
type ReceiverSenderRule struct {
	// Pairs maps (receiver, sender) to contexts.
	Pairs map[[2]core.EntityID]core.Context
	// Fallback serves circumstances with no pair entry (keyed by the
	// receiving activity).
	Fallback *Assoc
}

var _ Rule = (*ReceiverSenderRule)(nil)

// Select implements Rule.
func (r *ReceiverSenderRule) Select(m Circumstance) (core.Context, error) {
	if m.Origin == SourceMessage && !m.Sender.IsUndefined() {
		if ctx, ok := r.Pairs[[2]core.EntityID{m.Activity.ID, m.Sender.ID}]; ok {
			return ctx, nil
		}
	}
	if r.Fallback != nil {
		if ctx, ok := r.Fallback.Get(m.Activity); ok {
			return ctx, nil
		}
	}
	return nil, &NoContextError{Entity: m.Activity, Rule: r.String()}
}

// String implements Rule.
func (r *ReceiverSenderRule) String() string { return "R(receiver,sender)" }
