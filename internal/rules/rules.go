package rules

import (
	"fmt"
	"sync"

	"namecoherence/internal/core"
)

// Source identifies where a name occurring in a computation came from —
// the three sources of Figure 1.
type Source int

// The three sources of names during a computation.
const (
	// SourceInternal marks a name generated internally within the activity
	// (including names obtained from a human user, which the paper models
	// as the user-interface activity generating the name).
	SourceInternal Source = iota + 1
	// SourceMessage marks a name received from another activity in a message.
	SourceMessage
	// SourceObject marks a name obtained from an object that contains it
	// (an embedded name).
	SourceObject
)

// String returns the source tag.
func (s Source) String() string {
	switch s {
	case SourceInternal:
		return "internal"
	case SourceMessage:
		return "message"
	case SourceObject:
		return "object"
	default:
		return "unknown"
	}
}

// Circumstance is an element of the meta context M: it describes the
// circumstances in which the name being resolved occurs.
type Circumstance struct {
	// Activity is the activity performing the resolution. Always set.
	Activity core.Entity
	// Sender is the activity the name was received from, when Origin is
	// SourceMessage.
	Sender core.Entity
	// Object is the object the name was obtained from, when Origin is
	// SourceObject.
	Object core.Entity
	// Trail is the access path (sequence of entities, outermost first) by
	// which Object was reached, when known. Scoped rules such as the
	// Algol-scope R(file) rule search it.
	Trail []core.Entity
	// Origin tells which of the three sources produced the name.
	Origin Source
}

// Internal builds the circumstance for a name generated within activity a.
func Internal(a core.Entity) Circumstance {
	return Circumstance{Activity: a, Origin: SourceInternal}
}

// Received builds the circumstance for a name activity a received in a
// message from sender.
func Received(a, sender core.Entity) Circumstance {
	return Circumstance{Activity: a, Sender: sender, Origin: SourceMessage}
}

// FromObject builds the circumstance for a name activity a obtained from
// object o, reached by the given trail.
func FromObject(a, o core.Entity, trail []core.Entity) Circumstance {
	return Circumstance{Activity: a, Object: o, Trail: trail, Origin: SourceObject}
}

// Rule is a closure mechanism: a resolution rule R ∈ [M → C] selecting the
// context in which a name is resolved.
type Rule interface {
	// Select returns the context in which to resolve a name occurring in
	// the given circumstances.
	Select(m Circumstance) (core.Context, error)
	// String returns the rule's conventional notation, e.g. "R(activity)".
	String() string
}

// NoContextError reports that a rule could not select a context for the
// entity the rule keys on.
type NoContextError struct {
	Entity core.Entity
	Rule   string
}

// Error implements error.
func (e *NoContextError) Error() string {
	return fmt.Sprintf("%s: no context associated with %v", e.Rule, e.Entity)
}

// Assoc is the table backing a rule of the form R(x): it associates entities
// with contexts. An optional fallback context serves entities with no entry
// (the degenerate case of a single shared context is an Assoc with only a
// fallback). Assoc is safe for concurrent use.
type Assoc struct {
	mu       sync.RWMutex
	contexts map[core.EntityID]core.Context
	fallback core.Context
}

// NewAssoc returns an empty association table.
func NewAssoc() *Assoc {
	return &Assoc{contexts: make(map[core.EntityID]core.Context)}
}

// Set associates entity e with context c.
func (a *Assoc) Set(e core.Entity, c core.Context) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.contexts[e.ID] = c
}

// Remove deletes the association for e.
func (a *Assoc) Remove(e core.Entity) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.contexts, e.ID)
}

// Get returns the context associated with e, consulting the fallback if e
// has no entry.
func (a *Assoc) Get(e core.Entity) (core.Context, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if c, ok := a.contexts[e.ID]; ok {
		return c, true
	}
	if a.fallback != nil {
		return a.fallback, true
	}
	return nil, false
}

// SetFallback sets the context served to entities with no entry. A single
// global context shared by all activities is SetFallback with no Set calls.
func (a *Assoc) SetFallback(c core.Context) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fallback = c
}

// Len returns the number of explicit associations (excluding the fallback).
func (a *Assoc) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.contexts)
}

// ActivityRule is R(activity): the common operating-system rule that
// resolves every name in the context of the activity performing the
// resolution, regardless of how or where the name was obtained (§3).
type ActivityRule struct {
	// Contexts maps each activity to its context.
	Contexts *Assoc
}

var _ Rule = (*ActivityRule)(nil)

// Select implements Rule.
func (r *ActivityRule) Select(m Circumstance) (core.Context, error) {
	c, ok := r.Contexts.Get(m.Activity)
	if !ok {
		return nil, &NoContextError{Entity: m.Activity, Rule: r.String()}
	}
	return c, nil
}

// String implements Rule.
func (r *ActivityRule) String() string { return "R(activity)" }

// SenderRule is R(sender): names received in a message are resolved in the
// context of the sender, giving coherence between sender and receiver for
// all names the sender sends (§4). Names from other sources fall back to
// the activity's own context.
type SenderRule struct {
	// Contexts maps each activity (senders and receivers alike) to its
	// context.
	Contexts *Assoc
}

var _ Rule = (*SenderRule)(nil)

// Select implements Rule.
func (r *SenderRule) Select(m Circumstance) (core.Context, error) {
	key := m.Activity
	if m.Origin == SourceMessage && !m.Sender.IsUndefined() {
		key = m.Sender
	}
	c, ok := r.Contexts.Get(key)
	if !ok {
		return nil, &NoContextError{Entity: key, Rule: r.String()}
	}
	return c, nil
}

// String implements Rule.
func (r *SenderRule) String() string { return "R(sender)" }

// ObjectRule is R(object): names obtained from an object are resolved in the
// context associated with that object, giving coherence among all activities
// for the names embedded in the object (§4). Names from other sources fall
// back to the activity's own context.
type ObjectRule struct {
	// ObjectContexts maps objects to the contexts their embedded names are
	// resolved in.
	ObjectContexts *Assoc
	// ActivityContexts serves names from the other two sources.
	ActivityContexts *Assoc
}

var _ Rule = (*ObjectRule)(nil)

// Select implements Rule.
func (r *ObjectRule) Select(m Circumstance) (core.Context, error) {
	if m.Origin == SourceObject && !m.Object.IsUndefined() {
		c, ok := r.ObjectContexts.Get(m.Object)
		if !ok {
			return nil, &NoContextError{Entity: m.Object, Rule: r.String()}
		}
		return c, nil
	}
	c, ok := r.ActivityContexts.Get(m.Activity)
	if !ok {
		return nil, &NoContextError{Entity: m.Activity, Rule: r.String()}
	}
	return c, nil
}

// String implements Rule.
func (r *ObjectRule) String() string { return "R(object)" }

// FixedRule resolves every name in one fixed context — the degenerate
// "single global context" closure of early distributed systems (§1).
type FixedRule struct {
	// Context is the single shared context.
	Context core.Context
	// Label is the notation reported by String; defaults to "R(global)".
	Label string
}

var _ Rule = (*FixedRule)(nil)

// Select implements Rule.
func (r *FixedRule) Select(Circumstance) (core.Context, error) {
	if r.Context == nil {
		return nil, &NoContextError{Rule: r.String()}
	}
	return r.Context, nil
}

// String implements Rule.
func (r *FixedRule) String() string {
	if r.Label == "" {
		return "R(global)"
	}
	return r.Label
}

// FuncRule adapts a function to the Rule interface; experiments use it for
// ad-hoc composed rules (e.g. the hypothetical R(receiver, sender) the paper
// mentions and dismisses).
type FuncRule struct {
	// SelectFunc is invoked for Select.
	SelectFunc func(m Circumstance) (core.Context, error)
	// Label is returned by String.
	Label string
}

var _ Rule = (*FuncRule)(nil)

// Select implements Rule.
func (r *FuncRule) Select(m Circumstance) (core.Context, error) {
	return r.SelectFunc(m)
}

// String implements Rule.
func (r *FuncRule) String() string { return r.Label }
