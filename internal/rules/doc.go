// Package rules implements the paper's closure mechanisms: the implicit
// rules that select a context for resolving a name that occurs in a
// computation (§3).
//
// A resolution rule is a function R ∈ [M → C] from the meta context M — the
// circumstances in which the name occurs — to the set of contexts C. The
// circumstances captured here are the ones the paper identifies: the
// activity performing the resolution, the activity the name was received
// from (for names exchanged in messages), and the object the name was
// obtained from (for embedded names), together with the access trail through
// the naming graph.
//
// The package provides the three rules the paper analyses — R(activity),
// R(sender) and R(object) — as values implementing the Rule interface, so
// that experiments can sweep over rules as data.
package rules
