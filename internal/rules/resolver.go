package rules

import (
	"fmt"

	"namecoherence/internal/core"
)

// Resolver binds a World and a Rule into the complete resolution pipeline:
// the rule selects a context from the circumstances, and the compound name
// is resolved in the selected context — R(arguments)(name).
type Resolver struct {
	World *core.World
	Rule  Rule
}

// NewResolver returns a resolver using the given rule.
func NewResolver(w *core.World, r Rule) *Resolver {
	return &Resolver{World: w, Rule: r}
}

// Resolve selects a context for the circumstances and resolves p in it.
func (r *Resolver) Resolve(m Circumstance, p core.Path) (core.Entity, error) {
	e, _, err := r.ResolveTrail(m, p)
	return e, err
}

// ResolveTrail is Resolve but also returns the trail of entities denoted by
// each successive prefix of p.
func (r *Resolver) ResolveTrail(m Circumstance, p core.Path) (core.Entity, []core.Entity, error) {
	c, err := r.Rule.Select(m)
	if err != nil {
		return core.Undefined, nil, fmt.Errorf("select context: %w", err)
	}
	return r.World.ResolveTrail(c, p)
}
