// Package newcastle implements the Newcastle Connection scheme of §5.1 and
// Figure 3: a single naming tree composed from the individual naming trees
// of several machines by creating a new super-root and attaching each
// machine's tree under it.
//
// Processes on different machines have different bindings for their root
// directory — typically R(p)(/) is the root of the machine on which p
// executes — so there is coherence for names starting with "/" only among
// processes on the same machine. The Unix ".." notation refers to nodes
// above a machine's root, which is how remote files are reached
// ("/../m2/etc/passwd") and how names are mapped across machines.
//
// Remote execution binds the child's root either to the root of the machine
// where the execution was invoked (coherent parameter passing) or to the
// root of the machine where the child executes (access to local objects,
// no coherence for parameters) — both policies are provided.
package newcastle
