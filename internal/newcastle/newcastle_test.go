package newcastle

import (
	"errors"
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
)

// threeMachines builds the Figure 3 system: unix1, unix2, unix3, each with
// its own /etc/passwd and a machine-specific file.
func threeMachines(t *testing.T) (*core.World, *System) {
	t.Helper()
	w := core.NewWorld()
	s, err := NewSystem(w, "unix1", "unix2", "unix3")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range s.MachineNames() {
		m, err := s.Machine(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Tree.Create(core.ParsePath("etc/passwd"), "users@"+name); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Tree.Create(core.ParsePath("data/"+name+".dat"), "payload"); err != nil {
			t.Fatal(err)
		}
	}
	return w, s
}

func TestAddMachineDuplicate(t *testing.T) {
	w := core.NewWorld()
	s, err := NewSystem(w, "m1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddMachine("m1"); !errors.Is(err, dirtree.ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestMachineLookupUnknown(t *testing.T) {
	w := core.NewWorld()
	s, err := NewSystem(w, "m1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Machine("nope"); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Spawn("nope", "p"); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("spawn err = %v", err)
	}
}

func TestLocalResolution(t *testing.T) {
	_, s := threeMachines(t)
	p, err := s.Spawn("unix1", "sh")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Resolve("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Machine("unix1")
	want, _ := m1.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatal("local name resolved to wrong machine's file")
	}
}

func TestCrossMachineViaDotDot(t *testing.T) {
	_, s := threeMachines(t)
	p, err := s.Spawn("unix1", "sh")
	if err != nil {
		t.Fatal(err)
	}
	// From unix1, unix2's passwd is /../unix2/etc/passwd.
	got, err := p.Resolve("/../unix2/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := s.Machine("unix2")
	want, _ := m2.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatal("cross-machine name resolved wrongly")
	}
}

func TestSameMachineCoherence(t *testing.T) {
	w, s := threeMachines(t)
	p1, _ := s.Spawn("unix1", "p1")
	p2, _ := s.Spawn("unix1", "p2")
	rep := coherence.Measure(w, s.Registry.ResolveAbs,
		[]core.Entity{p1.Activity, p2.Activity},
		[]core.Path{core.ParsePath("etc/passwd"), core.ParsePath("data/unix1.dat")})
	if rep.StrictDegree() != 1 {
		t.Fatalf("same-machine coherence degree = %v, report %+v", rep.StrictDegree(), rep)
	}
}

func TestCrossMachineIncoherence(t *testing.T) {
	w, s := threeMachines(t)
	p1, _ := s.Spawn("unix1", "p1")
	p2, _ := s.Spawn("unix2", "p2")
	rep := coherence.Measure(w, s.Registry.ResolveAbs,
		[]core.Entity{p1.Activity, p2.Activity},
		[]core.Path{core.ParsePath("etc/passwd")})
	if rep.Incoherent != 1 {
		t.Fatalf("expected incoherence across machine boundary, report %+v", rep)
	}
}

// The shared super-root gives coherence for names that go through it: the
// fully super-root-relative names agree everywhere (a shared naming tree
// does not imply names are global, but ..-prefixed names are coherent
// because every machine's ".." meets at the super-root).
func TestDotDotNamesCoherent(t *testing.T) {
	w, s := threeMachines(t)
	p1, _ := s.Spawn("unix1", "p1")
	p2, _ := s.Spawn("unix2", "p2")
	p3, _ := s.Spawn("unix3", "p3")
	paths := []core.Path{
		core.ParsePath("../unix1/etc/passwd"),
		core.ParsePath("../unix2/etc/passwd"),
		core.ParsePath("../unix3/data/unix3.dat"),
	}
	rep := coherence.Measure(w, s.Registry.ResolveAbs,
		[]core.Entity{p1.Activity, p2.Activity, p3.Activity}, paths)
	if rep.StrictDegree() != 1 {
		t.Fatalf("..-prefixed names not coherent: %+v", rep)
	}
}

func TestRemoteExecRootOfInvoker(t *testing.T) {
	_, s := threeMachines(t)
	parent, _ := s.Spawn("unix1", "parent")
	child, err := s.RemoteExec(parent, "unix2", "child", RootOfInvoker)
	if err != nil {
		t.Fatal(err)
	}
	if child.Machine.Name != "unix2" {
		t.Fatal("child not on target machine")
	}
	// Parameter passing is coherent: the same absolute name denotes the
	// same file for parent and child.
	pGot, _ := parent.Resolve("/data/unix1.dat")
	cGot, err := child.Resolve("/data/unix1.dat")
	if err != nil {
		t.Fatal(err)
	}
	if pGot != cGot {
		t.Fatal("root-of-invoker child disagrees with parent")
	}
	// But the child does not see the executor's local files under "/".
	if _, err := child.Resolve("/data/unix2.dat"); err == nil {
		t.Fatal("root-of-invoker child unexpectedly sees executor-local file")
	}
}

func TestRemoteExecRootOfExecutor(t *testing.T) {
	_, s := threeMachines(t)
	parent, _ := s.Spawn("unix1", "parent")
	child, err := s.RemoteExec(parent, "unix2", "child", RootOfExecutor)
	if err != nil {
		t.Fatal(err)
	}
	// The child accesses executor-local objects…
	if _, err := child.Resolve("/data/unix2.dat"); err != nil {
		t.Fatalf("executor-local access failed: %v", err)
	}
	// …but parameters are not coherent: the parent's name for its own file
	// denotes a different (here: missing) entity for the child.
	pGot, _ := parent.Resolve("/etc/passwd")
	cGot, _ := child.Resolve("/etc/passwd")
	if pGot == cGot {
		t.Fatal("root-of-executor child coherent with parent; should not be")
	}
}

func TestRemoteExecBadPolicy(t *testing.T) {
	_, s := threeMachines(t)
	parent, _ := s.Spawn("unix1", "parent")
	if _, err := s.RemoteExec(parent, "unix2", "child", RootPolicy(0)); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("err = %v, want ErrBadPolicy", err)
	}
	if _, err := s.RemoteExec(parent, "nope", "child", RootOfInvoker); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("err = %v, want ErrUnknownMachine", err)
	}
}

func TestMapName(t *testing.T) {
	_, s := threeMachines(t)
	mapped, err := s.MapName("unix1", "unix2", "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if mapped != "/../unix1/etc/passwd" {
		t.Fatalf("MapName = %q", mapped)
	}
	// The mapped name, resolved by a unix2 process, denotes the unix1 file.
	p2, _ := s.Spawn("unix2", "p2")
	got, err := p2.Resolve(mapped)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Machine("unix1")
	want, _ := m1.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatal("mapped name resolves to wrong entity")
	}
}

func TestMapNameIdentityAndErrors(t *testing.T) {
	_, s := threeMachines(t)
	same, err := s.MapName("unix1", "unix1", "/x")
	if err != nil || same != "/x" {
		t.Fatalf("identity map = %q, %v", same, err)
	}
	if _, err := s.MapName("nope", "unix1", "/x"); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.MapName("unix1", "nope", "/x"); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.MapName("unix1", "unix2", "relative"); !errors.Is(err, ErrNotAbsolute) {
		t.Fatalf("err = %v", err)
	}
}

// Map-then-resolve equals resolve-at-source for every machine pair: the
// Newcastle mapping rule preserves meaning.
func TestMapNamePreservesMeaning(t *testing.T) {
	_, s := threeMachines(t)
	names := []string{"/etc/passwd", "/data/unix1.dat"}
	procs := make(map[string]*machine.Process)
	for _, mn := range s.MachineNames() {
		p, err := s.Spawn(mn, "probe")
		if err != nil {
			t.Fatal(err)
		}
		procs[mn] = p
	}
	for _, from := range s.MachineNames() {
		for _, to := range s.MachineNames() {
			for _, n := range names {
				want, errWant := procs[from].Resolve(n)
				mapped, err := s.MapName(from, to, n)
				if err != nil {
					t.Fatal(err)
				}
				got, errGot := procs[to].Resolve(mapped)
				if (errWant == nil) != (errGot == nil) || got != want {
					t.Fatalf("map %s→%s %q: got %v/%v want %v/%v",
						from, to, n, got, errGot, want, errWant)
				}
			}
		}
	}
}

func TestRootPolicyString(t *testing.T) {
	if RootOfInvoker.String() != "root-of-invoker" ||
		RootOfExecutor.String() != "root-of-executor" ||
		RootPolicy(0).String() != "unknown-policy" {
		t.Fatal("policy strings wrong")
	}
}

// Property: mapping composes — mapping a name from m1 to m2 and resolving
// there gives the same entity as mapping m1 directly to m3 and resolving
// there, for every machine triple. (Newcastle names are super-root-rooted
// after one hop, so one hop is as good as two.)
func TestMapNameComposition(t *testing.T) {
	_, s := threeMachines(t)
	procs := make(map[string]*machine.Process)
	for _, mn := range s.MachineNames() {
		p, err := s.Spawn(mn, "probe")
		if err != nil {
			t.Fatal(err)
		}
		procs[mn] = p
	}
	names := []string{"/etc/passwd", "/data/unix1.dat"}
	ms := s.MachineNames()
	for _, a := range ms {
		for _, b := range ms {
			for _, c := range ms {
				for _, n := range names {
					ab, err := s.MapName(a, b, n)
					if err != nil {
						t.Fatal(err)
					}
					// Resolve the a→b mapping at b, and the a→c mapping at c:
					// both must denote what a meant.
					ac, err := s.MapName(a, c, n)
					if err != nil {
						t.Fatal(err)
					}
					want, _ := procs[a].Resolve(n)
					gotB, _ := procs[b].Resolve(ab)
					gotC, _ := procs[c].Resolve(ac)
					if gotB != want || gotC != want {
						t.Fatalf("composition broke: %s via %s/%s: %v %v want %v",
							n, b, c, gotB, gotC, want)
					}
				}
			}
		}
	}
}
