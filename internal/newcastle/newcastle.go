package newcastle

import (
	"errors"
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
)

// RootPolicy selects the root binding of a remotely executed child (§5.1).
type RootPolicy int

// Remote-execution root policies.
const (
	// RootOfInvoker binds the child's root to the root of the machine
	// where the execution was invoked: names can be passed as parameters
	// (coherence), but the child does not see the executor's local files
	// under "/".
	RootOfInvoker RootPolicy = iota + 1
	// RootOfExecutor binds the child's root to the root of the machine
	// where the child executes: the child can access local objects, but
	// there is no coherence for parameters.
	RootOfExecutor
)

// String returns the policy tag.
func (p RootPolicy) String() string {
	switch p {
	case RootOfInvoker:
		return "root-of-invoker"
	case RootOfExecutor:
		return "root-of-executor"
	default:
		return "unknown-policy"
	}
}

// Errors returned by system operations.
var (
	ErrUnknownMachine = errors.New("unknown machine")
	ErrBadPolicy      = errors.New("unknown root policy")
	ErrNotAbsolute    = errors.New("name is not absolute")
)

// System is a Newcastle Connection: machines whose trees hang off a common
// super-root, with each machine root's ".." pointing at the super-root.
type System struct {
	// World is the shared world.
	World *core.World
	// Super is the super-root tree; its entries are the machine names.
	Super *dirtree.Tree
	// Registry maps process activities back to processes for probing.
	Registry *machine.Registry

	machines map[string]*machine.Machine
	order    []string
}

// NewSystem composes a Newcastle Connection from fresh machines with the
// given names.
func NewSystem(w *core.World, machineNames ...string) (*System, error) {
	s := &System{
		World:    w,
		Super:    dirtree.New(w, "super-root"),
		Registry: machine.NewRegistry(),
		machines: make(map[string]*machine.Machine, len(machineNames)),
	}
	for _, name := range machineNames {
		if err := s.AddMachine(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AddMachine creates a machine and attaches its tree under the super-root.
// The machine root's ".." is rebound from itself to the super-root, which
// is exactly the Newcastle construction.
func (s *System) AddMachine(name string) error {
	if _, ok := s.machines[name]; ok {
		return fmt.Errorf("add machine %q: %w", name, dirtree.ErrExists)
	}
	m := machine.New(s.World, name)
	if err := s.Super.Attach(nil, core.Name(name), m.Tree.Root); err != nil {
		return fmt.Errorf("add machine %q: %w", name, err)
	}
	rootCtx, _ := s.World.ContextOf(m.Tree.Root)
	rootCtx.Bind(dirtree.ParentName, s.Super.Root)
	s.machines[name] = m
	s.order = append(s.order, name)
	return nil
}

// Machine returns the named machine.
func (s *System) Machine(name string) (*machine.Machine, error) {
	m, ok := s.machines[name]
	if !ok {
		return nil, fmt.Errorf("machine %q: %w", name, ErrUnknownMachine)
	}
	return m, nil
}

// MachineNames returns the machine names in attachment order.
func (s *System) MachineNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Spawn creates a process on the named machine with the conventional
// Newcastle binding: root = the machine's own root.
func (s *System) Spawn(machineName, label string) (*machine.Process, error) {
	m, err := s.Machine(machineName)
	if err != nil {
		return nil, err
	}
	p := m.Spawn(label)
	s.Registry.Add(p)
	return p, nil
}

// RemoteExec executes a child for parent on the target machine under the
// given root policy.
func (s *System) RemoteExec(parent *machine.Process, target, label string, policy RootPolicy) (*machine.Process, error) {
	m, err := s.Machine(target)
	if err != nil {
		return nil, err
	}
	var child *machine.Process
	switch policy {
	case RootOfInvoker:
		child = parent.ForkOn(m, label)
	case RootOfExecutor:
		ctx := parent.Ctx.Clone()
		ctx.Bind(machine.RootName, m.Tree.Root)
		ctx.Bind(machine.CwdName, m.Tree.Root)
		child = m.SpawnWith(label, ctx)
	default:
		return nil, fmt.Errorf("remote exec on %q: %w", target, ErrBadPolicy)
	}
	s.Registry.Add(child)
	return child, nil
}

// MapName rewrites an absolute name valid on machine `from` into an
// equivalent absolute name valid on machine `to`, using the ".." notation
// to climb above the target machine's root: "/etc/passwd" on m1 becomes
// "/../m1/etc/passwd" on m2. This is the paper's "simple rule can be used
// to map names across machines". Mapping to the same machine is the
// identity.
func (s *System) MapName(from, to, name string) (string, error) {
	if _, ok := s.machines[from]; !ok {
		return "", fmt.Errorf("map from %q: %w", from, ErrUnknownMachine)
	}
	if _, ok := s.machines[to]; !ok {
		return "", fmt.Errorf("map to %q: %w", to, ErrUnknownMachine)
	}
	abs, p := core.SplitPathString(name)
	if !abs {
		return "", fmt.Errorf("map %q: %w", name, ErrNotAbsolute)
	}
	if from == to {
		return name, nil
	}
	mapped := core.PathOf(dirtree.ParentName, core.Name(from)).Join(p)
	return core.Separator + mapped.String(), nil
}
