package replsvc

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/treespec"
)

// Errors returned by the replicated service.
var (
	ErrNoReplicas  = errors.New("no replicas")
	ErrAllReplicas = errors.New("all replicas failed")
)

// ReplicaSet is a group of name servers exporting replicas of one logical
// tree. The replicas are built from a single treespec, so they have
// identical structure; every file at the same path across replicas belongs
// to one replica group in the world.
type ReplicaSet struct {
	// World holds all replica entities.
	World *core.World
	// Trees are the replica trees, in replica order.
	Trees []*dirtree.Tree

	mu        sync.Mutex
	servers   []*nameserver.Server
	listeners []net.Listener
	done      []chan struct{}
	closed    bool
}

// NewReplicaSet builds n replicas of the tree described by spec and serves
// each on its own TCP loopback listener.
func NewReplicaSet(w *core.World, spec string, n int) (*ReplicaSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("replica count %d: %w", n, ErrNoReplicas)
	}
	rs := &ReplicaSet{World: w}
	for i := 0; i < n; i++ {
		tr, err := treespec.Build(spec, w, fmt.Sprintf("replica%d", i))
		if err != nil {
			rs.Close()
			return nil, fmt.Errorf("build replica %d: %w", i, err)
		}
		rs.Trees = append(rs.Trees, tr)
	}
	if err := rs.registerGroups(); err != nil {
		rs.Close()
		return nil, err
	}
	for i, tr := range rs.Trees {
		srv := nameserver.NewServer(w, tr.RootContext())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			rs.Close()
			return nil, fmt.Errorf("listen for replica %d: %w", i, err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Serve(ln)
		}()
		rs.mu.Lock()
		rs.servers = append(rs.servers, srv)
		rs.listeners = append(rs.listeners, ln)
		rs.done = append(rs.done, done)
		rs.mu.Unlock()
	}
	return rs, nil
}

// registerGroups walks replica 0 and registers, for every file path, the
// group of the corresponding files of all replicas. Directories are not
// grouped: the model's weak coherence is about replicated objects.
func (rs *ReplicaSet) registerGroups() error {
	var firstErr error
	rs.Trees[0].Walk(func(p core.Path, e core.Entity) bool {
		if firstErr != nil {
			return false
		}
		if _, err := rs.Trees[0].File(e); err != nil {
			return true // directories continue, not grouped
		}
		members := make([]core.Entity, 0, len(rs.Trees))
		members = append(members, e)
		for _, tr := range rs.Trees[1:] {
			twin, err := tr.Lookup(p)
			if err != nil {
				firstErr = fmt.Errorf("replica missing %q: %w", p, err)
				return false
			}
			members = append(members, twin)
		}
		if _, err := rs.World.NewReplicaGroup(members...); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

// Addrs returns the wire addresses of the replica servers.
func (rs *ReplicaSet) Addrs() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, len(rs.listeners))
	for i, ln := range rs.listeners {
		out[i] = ln.Addr().String()
	}
	return out
}

// StopReplica shuts down one replica's server (simulating a failure).
// The blocking part — Server.Close joins its worker goroutines, and the
// serve-loop channel is closed by one of them — happens after rs.mu is
// released, so a stuck replica cannot wedge Addrs or a concurrent Close.
func (rs *ReplicaSet) StopReplica(i int) error {
	rs.mu.Lock()
	if i < 0 || i >= len(rs.servers) {
		rs.mu.Unlock()
		return fmt.Errorf("replica %d: %w", i, ErrNoReplicas)
	}
	srv, done := rs.servers[i], rs.done[i]
	rs.mu.Unlock()
	srv.Close()
	<-done
	return nil
}

// Close stops all replica servers.
func (rs *ReplicaSet) Close() {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return
	}
	rs.closed = true
	servers := rs.servers
	done := rs.done
	rs.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	for _, d := range done {
		<-d
	}
}

// Pool is a client of a replica set: it rotates resolution over the
// replicas and fails over when one is unreachable.
type Pool struct {
	addrs []string

	mu      sync.Mutex
	clients map[int]*nameserver.Client
	next    int
	// Failovers counts resolutions that had to skip at least one replica.
	failovers int
}

// NewPool returns a pool over the given server addresses.
func NewPool(addrs []string) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, ErrNoReplicas
	}
	return &Pool{
		addrs:   append([]string(nil), addrs...),
		clients: make(map[int]*nameserver.Client),
	}, nil
}

// Resolve resolves p at the next replica in rotation, failing over to the
// others if the connection cannot be established or dies. A RemoteError
// (the name does not resolve) is a definitive answer, not a failure.
func (p *Pool) Resolve(path core.Path) (core.Entity, error) {
	p.mu.Lock()
	start := p.next
	p.next = (p.next + 1) % len(p.addrs)
	p.mu.Unlock()

	var lastErr error
	for k := 0; k < len(p.addrs); k++ {
		i := (start + k) % len(p.addrs)
		client, err := p.clientFor(i)
		if err != nil {
			lastErr = err
			continue
		}
		e, err := client.Resolve(path)
		if err != nil {
			var re *nameserver.RemoteError
			if errors.As(err, &re) {
				return core.Undefined, err // definitive miss
			}
			// Connection-level failure: drop the client and fail over.
			p.dropClient(i)
			lastErr = err
			continue
		}
		if k > 0 {
			p.mu.Lock()
			p.failovers++
			p.mu.Unlock()
		}
		return e, nil
	}
	return core.Undefined, fmt.Errorf("%w: %w", ErrAllReplicas, lastErr)
}

func (p *Pool) clientFor(i int) (*nameserver.Client, error) {
	p.mu.Lock()
	if c, ok := p.clients[i]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := nameserver.Dial("tcp", p.addrs[i])
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	prev, raced := p.clients[i]
	if !raced {
		p.clients[i] = c
	}
	p.mu.Unlock()
	if raced {
		// Lost the dial race. Closing joins the loser's reader goroutine,
		// which must not happen under p.mu — the pool would stall every
		// resolver behind one teardown.
		_ = c.Close()
		return prev, nil
	}
	return c, nil
}

func (p *Pool) dropClient(i int) {
	p.mu.Lock()
	c, ok := p.clients[i]
	if ok {
		delete(p.clients, i)
	}
	p.mu.Unlock()
	if ok {
		_ = c.Close() // joins the reader goroutine: after unlock
	}
}

// Failovers returns how many successful resolutions needed to skip at
// least one replica.
func (p *Pool) Failovers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers
}

// Close closes all pooled connections. The map is detached under the lock
// and the connections — each Close joins a reader goroutine — are torn
// down outside it.
func (p *Pool) Close() {
	p.mu.Lock()
	clients := p.clients
	p.clients = make(map[int]*nameserver.Client)
	p.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
}
