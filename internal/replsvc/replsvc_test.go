package replsvc

import (
	"errors"
	"io"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

const spec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/passwd "root:0"
`

func newSet(t *testing.T, n int) (*core.World, *ReplicaSet, *Pool) {
	t.Helper()
	w := core.NewWorld()
	rs, err := NewReplicaSet(w, spec, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	pool, err := NewPool(rs.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return w, rs, pool
}

func TestReplicaSetErrors(t *testing.T) {
	w := core.NewWorld()
	if _, err := NewReplicaSet(w, spec, 0); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReplicaSet(w, "frob bad", 1); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := NewPool(nil); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("pool err = %v", err)
	}
}

func TestRotationYieldsReplicas(t *testing.T) {
	w, _, pool := newSet(t, 3)
	p := core.ParsePath("usr/bin/ls")
	seen := make(map[core.EntityID]bool)
	first, err := pool.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	seen[first.ID] = true
	for i := 0; i < 5; i++ {
		e, err := pool.Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		// Weak coherence: every result is a replica of the first.
		if !w.SameReplica(first, e) {
			t.Fatalf("result %v not same-replica with %v", e, first)
		}
		seen[e.ID] = true
	}
	// Strict coherence fails: rotation visited distinct replica entities.
	if len(seen) < 2 {
		t.Fatalf("rotation returned only %d distinct entities", len(seen))
	}
}

func TestDirectoriesNotGrouped(t *testing.T) {
	w, rs, _ := newSet(t, 2)
	d0, err := rs.Trees[0].Lookup(core.ParsePath("usr"))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := rs.Trees[1].Lookup(core.ParsePath("usr"))
	if err != nil {
		t.Fatal(err)
	}
	if w.SameReplica(d0, d1) {
		t.Fatal("directories should not be replica-grouped")
	}
	f0, _ := rs.Trees[0].Lookup(core.ParsePath("etc/passwd"))
	f1, _ := rs.Trees[1].Lookup(core.ParsePath("etc/passwd"))
	if !w.SameReplica(f0, f1) {
		t.Fatal("files should be replica-grouped")
	}
}

func TestDefinitiveMiss(t *testing.T) {
	_, _, pool := newSet(t, 2)
	_, err := pool.Resolve(core.ParsePath("no/such"))
	var re *nameserver.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError (definitive miss, no failover)", err)
	}
	if pool.Failovers() != 0 {
		t.Fatalf("failovers = %d on a definitive miss", pool.Failovers())
	}
}

func TestFailover(t *testing.T) {
	_, rs, pool := newSet(t, 3)
	p := core.ParsePath("usr/bin/ls")
	// Warm all connections.
	for i := 0; i < 3; i++ {
		if _, err := pool.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.StopReplica(0); err != nil {
		t.Fatal(err)
	}
	// All subsequent resolutions still succeed (skipping the dead replica).
	for i := 0; i < 6; i++ {
		if _, err := pool.Resolve(p); err != nil {
			t.Fatalf("resolve %d after failure: %v", i, err)
		}
	}
	if pool.Failovers() == 0 {
		t.Fatal("expected at least one failover")
	}
}

func TestAllReplicasDown(t *testing.T) {
	_, rs, pool := newSet(t, 2)
	p := core.ParsePath("usr/bin/ls")
	if _, err := pool.Resolve(p); err != nil {
		t.Fatal(err)
	}
	if err := rs.StopReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := rs.StopReplica(1); err != nil {
		t.Fatal(err)
	}
	_, err := pool.Resolve(p)
	if !errors.Is(err, ErrAllReplicas) {
		t.Fatalf("err = %v, want ErrAllReplicas", err)
	}
	// The last replica's own failure is wrapped too (%w, not %v), so a
	// caller can diagnose why the replicas were unreachable — here the
	// stopped server closed the connection mid-stream.
	if !errors.Is(err, io.EOF) {
		t.Fatalf("underlying connection error not in chain: %v", err)
	}
}

func TestStopReplicaBounds(t *testing.T) {
	_, rs, _ := newSet(t, 2)
	if err := rs.StopReplica(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := rs.StopReplica(9); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	w := core.NewWorld()
	rs, err := NewReplicaSet(w, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs.Close()
	rs.Close()
}
