// Package replsvc provides a replicated name service: several name servers
// each export a replica of the same logical tree, and a client pool spreads
// resolution over them with failover.
//
// Because each replica binds its own copies of the files, two resolutions
// of the same name served by different replicas return different entities —
// but entities in the same replica group. This is exactly the paper's weak
// coherence (§5): for replicated objects, agreement up to replica identity
// is sufficient, and demanding strict coherence would be "unnecessarily
// restrictive". Experiment E11 measures it over the wire.
package replsvc
