// Package sharedns implements the shared naming graph approach of §5.2 and
// Figure 4: numerous client subsystems share one (or more) naming graphs
// while keeping private local naming graphs.
//
// Each client machine attaches a shared tree into its local tree under a
// common name — Andrew attaches the shared tree under /vice; OSF DCE
// attaches the global directory under "/..." and a cell context under
// "/.:". Only entities bound in a shared graph have names that are global
// within the set of clients sharing it; names relative to the local graphs
// are incoherent across clients.
//
// Replicated commands and libraries (/bin, /lib, …) are modelled by binding
// a per-client instance in each local tree and registering the instances as
// one replica group: strict coherence fails for those names but weak
// coherence holds (§5).
//
// The same attachment machinery expresses §7's scoped name spaces: a name
// space (/users, /services) may be attached under a common name for a
// subset of clients — a group, an organization, or a whole federation —
// which is how coherence scope is traded against autonomy.
package sharedns
