package sharedns

import (
	"errors"
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
)

// Conventional attachment names.
const (
	// ViceName is the Andrew-style attachment point for the shared tree.
	ViceName core.Name = "vice"
	// CellName is the DCE-style attachment point for the local cell
	// context ("/.:" in DCE notation).
	CellName core.Name = ".:"
	// GlobalName is the DCE-style attachment point for the global
	// directory service ("/..." in DCE notation).
	GlobalName core.Name = "..."
)

// Errors returned by system operations.
var (
	ErrUnknownClient = errors.New("unknown client subsystem")
	ErrNoMembers     = errors.New("space needs at least one member")
)

// Client is one client subsystem: a machine with a private local tree into
// which shared spaces are attached.
type Client struct {
	// Name identifies the client.
	Name string
	// Machine carries the client's local tree and processes.
	Machine *machine.Machine
}

// Space is a name space shared by a set of clients under a common name.
type Space struct {
	// Name is the common attachment name (e.g. "vice", "users").
	Name core.Name
	// Tree is the shared naming graph.
	Tree *dirtree.Tree
	// Members lists the client names sharing the space.
	Members []string
}

// System is a shared-naming-graph system: clients plus shared spaces.
type System struct {
	// World is the shared world.
	World *core.World
	// Registry maps process activities to processes for probing.
	Registry *machine.Registry

	clients map[string]*Client
	order   []string
	spaces  []*Space
}

// NewSystem creates a system with the given client subsystems (no shared
// spaces yet).
func NewSystem(w *core.World, clientNames ...string) (*System, error) {
	s := &System{
		World:    w,
		Registry: machine.NewRegistry(),
		clients:  make(map[string]*Client, len(clientNames)),
	}
	for _, name := range clientNames {
		if err := s.AddClient(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AddClient creates a client subsystem with a fresh local tree.
func (s *System) AddClient(name string) error {
	if _, ok := s.clients[name]; ok {
		return fmt.Errorf("add client %q: %w", name, dirtree.ErrExists)
	}
	s.clients[name] = &Client{Name: name, Machine: machine.New(s.World, name)}
	s.order = append(s.order, name)
	return nil
}

// Client returns the named client.
func (s *System) Client(name string) (*Client, error) {
	c, ok := s.clients[name]
	if !ok {
		return nil, fmt.Errorf("client %q: %w", name, ErrUnknownClient)
	}
	return c, nil
}

// ClientNames returns the client names in creation order.
func (s *System) ClientNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Spaces returns the shared spaces in attachment order.
func (s *System) Spaces() []*Space {
	out := make([]*Space, len(s.spaces))
	copy(out, s.spaces)
	return out
}

// AttachSpace creates a fresh shared tree and attaches it under `name` in
// the local root of every listed member (all clients if members is empty).
// Several spaces may use the same name with disjoint member sets — that is
// how DCE cells and per-organization /users spaces arise.
func (s *System) AttachSpace(name core.Name, members ...string) (*Space, error) {
	if len(members) == 0 {
		members = s.ClientNames()
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("attach space %q: %w", name, ErrNoMembers)
	}
	tree := dirtree.New(s.World, "space:"+string(name))
	sp := &Space{Name: name, Tree: tree, Members: append([]string(nil), members...)}
	for _, m := range members {
		c, err := s.Client(m)
		if err != nil {
			return nil, fmt.Errorf("attach space %q: %w", name, err)
		}
		if err := c.Machine.Tree.Attach(nil, name, tree.Root); err != nil {
			return nil, fmt.Errorf("attach space %q to %q: %w", name, m, err)
		}
	}
	s.spaces = append(s.spaces, sp)
	return sp, nil
}

// AttachExistingSpace attaches an already-built tree (for example another
// system's shared space, when federating) under `name` for the listed
// members.
func (s *System) AttachExistingSpace(name core.Name, root core.Entity, members ...string) error {
	if len(members) == 0 {
		members = s.ClientNames()
	}
	for _, m := range members {
		c, err := s.Client(m)
		if err != nil {
			return fmt.Errorf("attach existing space %q: %w", name, err)
		}
		if err := c.Machine.Tree.Attach(nil, name, root); err != nil {
			return fmt.Errorf("attach existing space %q to %q: %w", name, m, err)
		}
	}
	return nil
}

// ReplicateCommand installs a per-client replica of a command or library at
// the given local path on every client and registers the instances as one
// replica group. Names such as /bin/ls then enjoy weak coherence (§5.2).
func (s *System) ReplicateCommand(path string, content string) (core.GroupID, error) {
	_, p := core.SplitPathString(path)
	if !p.IsValid() {
		return 0, fmt.Errorf("replicate %q: invalid path", path)
	}
	replicas := make([]core.Entity, 0, len(s.order))
	for _, name := range s.order {
		c := s.clients[name]
		f, err := c.Machine.Tree.Create(p, content)
		if err != nil {
			return 0, fmt.Errorf("replicate %q on %q: %w", path, name, err)
		}
		replicas = append(replicas, f)
	}
	g, err := s.World.NewReplicaGroup(replicas...)
	if err != nil {
		return 0, fmt.Errorf("replicate %q: %w", path, err)
	}
	return g, nil
}

// Spawn creates a process on the named client, rooted at the client's local
// tree, and registers it for probing.
func (s *System) Spawn(clientName, label string) (*machine.Process, error) {
	c, err := s.Client(clientName)
	if err != nil {
		return nil, err
	}
	p := c.Machine.Spawn(label)
	s.Registry.Add(p)
	return p, nil
}
