package sharedns

import (
	"errors"
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// andrewSystem builds an Andrew-style system: three clients sharing a tree
// at /vice, with local home directories and replicated /bin/ls.
func andrewSystem(t *testing.T) (*core.World, *System, *Space) {
	t.Helper()
	w := core.NewWorld()
	s, err := NewSystem(w, "ws1", "ws2", "ws3")
	if err != nil {
		t.Fatal(err)
	}
	vice, err := s.AttachSpace(ViceName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vice.Tree.Create(core.ParsePath("usr/shared.txt"), "shared payload"); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.ClientNames() {
		c, _ := s.Client(name)
		if _, err := c.Machine.Tree.Create(core.ParsePath("home/"+name+"/notes"), "local"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ReplicateCommand("/bin/ls", "#!ls"); err != nil {
		t.Fatal(err)
	}
	return w, s, vice
}

func TestAddClientDuplicate(t *testing.T) {
	w := core.NewWorld()
	s, err := NewSystem(w, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddClient("c1"); !errors.Is(err, dirtree.ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownClient(t *testing.T) {
	w := core.NewWorld()
	s, _ := NewSystem(w, "c1")
	if _, err := s.Client("nope"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Spawn("nope", "p"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.AttachSpace("x", "nope"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttachSpaceNoClients(t *testing.T) {
	w := core.NewWorld()
	s, _ := NewSystem(w)
	if _, err := s.AttachSpace("x"); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedNamesCoherent(t *testing.T) {
	w, s, _ := andrewSystem(t)
	var acts []core.Entity
	for _, cn := range s.ClientNames() {
		p, err := s.Spawn(cn, "probe")
		if err != nil {
			t.Fatal(err)
		}
		acts = append(acts, p.Activity)
	}
	// Names prefixed with the shared attachment are coherent among all
	// clients.
	rep := coherence.Measure(w, s.Registry.ResolveAbs, acts,
		[]core.Path{core.ParsePath("vice/usr/shared.txt")})
	if rep.StrictDegree() != 1 {
		t.Fatalf("shared name not coherent: %+v", rep)
	}
}

func TestLocalNamesIncoherent(t *testing.T) {
	w, s, _ := andrewSystem(t)
	p1, _ := s.Spawn("ws1", "p1")
	p2, _ := s.Spawn("ws2", "p2")
	// Each client has /home/<self>/notes locally; the *same* textual name
	// /home/ws1/notes resolves on ws1 and fails on ws2 → incoherent.
	rep := coherence.Measure(w, s.Registry.ResolveAbs,
		[]core.Entity{p1.Activity, p2.Activity},
		[]core.Path{core.ParsePath("home/ws1/notes")})
	if rep.Incoherent != 1 {
		t.Fatalf("local name coherent across clients: %+v", rep)
	}
}

func TestReplicatedCommandsWeaklyCoherent(t *testing.T) {
	w, s, _ := andrewSystem(t)
	var acts []core.Entity
	for _, cn := range s.ClientNames() {
		p, _ := s.Spawn(cn, "probe")
		acts = append(acts, p.Activity)
	}
	rep := coherence.Measure(w, s.Registry.ResolveAbs, acts,
		[]core.Path{core.ParsePath("bin/ls")})
	if rep.Weak != 1 {
		t.Fatalf("replicated command not weakly coherent: %+v", rep)
	}
	if rep.Coherent != 0 {
		t.Fatalf("replicated command unexpectedly strictly coherent: %+v", rep)
	}
}

func TestReplicateCommandErrors(t *testing.T) {
	w := core.NewWorld()
	s, _ := NewSystem(w, "c1")
	if _, err := s.ReplicateCommand("/", "x"); err == nil {
		t.Fatal("expected error for invalid path")
	}
	if _, err := s.ReplicateCommand("/bin/ls", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReplicateCommand("/bin/ls", "x"); err == nil {
		t.Fatal("expected error for duplicate replica path")
	}
}

func TestCellSpaces(t *testing.T) {
	w := core.NewWorld()
	s, err := NewSystem(w, "a1", "a2", "b1")
	if err != nil {
		t.Fatal(err)
	}
	// Two DCE cells: {a1,a2} and {b1}, both attached at "/.:".
	cellA, err := s.AttachSpace(CellName, "a1", "a2")
	if err != nil {
		t.Fatal(err)
	}
	cellB, err := s.AttachSpace(CellName, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cellA.Tree.Create(core.ParsePath("svc/db"), "db@cellA"); err != nil {
		t.Fatal(err)
	}
	if _, err := cellB.Tree.Create(core.ParsePath("svc/db"), "db@cellB"); err != nil {
		t.Fatal(err)
	}

	pa1, _ := s.Spawn("a1", "p")
	pa2, _ := s.Spawn("a2", "p")
	pb1, _ := s.Spawn("b1", "p")
	cellPath := []core.Path{core.ParsePath(".:/svc/db")}

	// Within a cell, cell-relative names are coherent.
	rep := coherence.Measure(w, s.Registry.ResolveAbs,
		[]core.Entity{pa1.Activity, pa2.Activity}, cellPath)
	if rep.StrictDegree() != 1 {
		t.Fatalf("within-cell incoherence: %+v", rep)
	}
	// Across cells, the same cell-relative name is incoherent — the
	// paper's "incoherence arises for names that are relative to the cell
	// context".
	rep = coherence.Measure(w, s.Registry.ResolveAbs,
		[]core.Entity{pa1.Activity, pb1.Activity}, cellPath)
	if rep.Incoherent != 1 {
		t.Fatalf("cross-cell coherence unexpectedly held: %+v", rep)
	}
}

func TestAttachExistingSpace(t *testing.T) {
	w := core.NewWorld()
	s1, _ := NewSystem(w, "x1")
	s2, _ := NewSystem(w, "y1")
	sp, err := s1.AttachSpace("users", "x1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Tree.Create(core.ParsePath("alice/prof"), "alice"); err != nil {
		t.Fatal(err)
	}
	// Federate: attach s1's users space into s2 under a prefix.
	if err := s2.AttachExistingSpace("org1-users", sp.Tree.Root, "y1"); err != nil {
		t.Fatal(err)
	}
	p, _ := s2.Spawn("y1", "p")
	got, err := p.Resolve("/org1-users/alice/prof")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sp.Tree.Lookup(core.ParsePath("alice/prof"))
	if got != want {
		t.Fatal("existing space attachment resolves wrongly")
	}
	if err := s2.AttachExistingSpace("z", sp.Tree.Root, "nope"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpacesList(t *testing.T) {
	_, s, _ := andrewSystem(t)
	sps := s.Spaces()
	if len(sps) != 1 || sps[0].Name != ViceName || len(sps[0].Members) != 3 {
		t.Fatalf("Spaces = %+v", sps)
	}
}

// The key contrast of §5.2: the shared graph gives coherence exactly for the
// shared prefix; a mixed probe set shows partial coherence.
func TestMixedProbeDegrees(t *testing.T) {
	w, s, _ := andrewSystem(t)
	p1, _ := s.Spawn("ws1", "p1")
	p2, _ := s.Spawn("ws2", "p2")
	acts := []core.Entity{p1.Activity, p2.Activity}
	paths := []core.Path{
		core.ParsePath("vice/usr/shared.txt"), // coherent
		core.ParsePath("bin/ls"),              // weakly coherent
		core.ParsePath("home/ws1/notes"),      // incoherent
		core.ParsePath("no/such/file"),        // vacuous
	}
	rep := coherence.Measure(w, s.Registry.ResolveAbs, acts, paths)
	if rep.Coherent != 1 || rep.Weak != 1 || rep.Incoherent != 1 || rep.Vacuous != 1 {
		t.Fatalf("mixed report = %+v", rep)
	}
	if rep.StrictDegree() != 1.0/3 {
		t.Fatalf("StrictDegree = %v", rep.StrictDegree())
	}
	if rep.WeakDegree() != 2.0/3 {
		t.Fatalf("WeakDegree = %v", rep.WeakDegree())
	}
}
