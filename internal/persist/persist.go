// Package persist saves and loads whole worlds. Snapshots are framed with
// the canonical encoding primitives from internal/snapstore — the same
// uvarint/length-prefix framing the content-addressed node blobs use — so
// the module has exactly one on-disk context encoding: a file state saved
// here is byte-identical to the same state inside a snapstore blob.
package persist

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/snapstore"
)

// ErrBadSnapshot is wrapped by load errors.
var ErrBadSnapshot = errors.New("bad snapshot")

// worldMagic and worldVersion frame every world snapshot.
const (
	worldMagic   = 'W'
	worldVersion = 1
)

// State discrimination tags, one per entityRec shape.
const (
	tagStateless = iota
	tagContext
	tagFile
	tagOpaque
)

// entityRec is the decoded form of one entity record.
type entityRec struct {
	ID       uint64
	Kind     uint8
	Label    string
	Tag      uint8
	Bindings []bindingRec // when Tag == tagContext
	Content  string       // when Tag == tagFile
	Embedded []core.Path  // when Tag == tagFile
}

type bindingRec struct {
	Name string
	To   uint64
	Kind uint8
}

// Save writes a snapshot of the world. It returns the number of entities
// whose states were opaque (present in the world but not serializable).
// The encoding is canonical: the same world always saves to the same
// bytes — entities in ID order, bindings in name order, groups in order
// of their first member.
func Save(w *core.World, out io.Writer) (opaque int, err error) {
	buf := []byte{worldMagic, worldVersion}

	entities := w.Entities()
	buf = snapstore.AppendUvarint(buf, uint64(len(entities)))
	groupIndex := make(map[core.GroupID]int)
	var groups [][]uint64
	for _, e := range entities {
		buf = snapstore.AppendUvarint(buf, uint64(e.ID))
		buf = append(buf, byte(e.Kind))
		buf = snapstore.AppendString(buf, w.Label(e))
		switch s := w.State(e).(type) {
		case nil:
			buf = append(buf, tagStateless)
		case *dirtree.FileData:
			buf = append(buf, tagFile)
			buf = snapstore.AppendFileState(buf, s.Content, s.Embedded)
		default:
			if ctx, ok := w.ContextOf(e); ok {
				buf = append(buf, tagContext)
				var bound []core.Name
				for _, n := range ctx.Names() {
					if !ctx.Lookup(n).IsUndefined() {
						bound = append(bound, n)
					}
				}
				buf = snapstore.AppendUvarint(buf, uint64(len(bound)))
				for _, n := range bound {
					to := ctx.Lookup(n)
					buf = snapstore.AppendString(buf, string(n))
					buf = snapstore.AppendUvarint(buf, uint64(to.ID))
					buf = append(buf, byte(to.Kind))
				}
			} else {
				buf = append(buf, tagOpaque)
				opaque++
			}
		}
		if g, ok := w.ReplicaGroup(e); ok {
			i, seen := groupIndex[g]
			if !seen {
				i = len(groups)
				groupIndex[g] = i
				groups = append(groups, nil)
			}
			groups[i] = append(groups[i], uint64(e.ID))
		}
	}

	// Groups in order of first member: entity iteration is ID-ordered, so
	// this is deterministic and survives group-ID renumbering on reload.
	buf = snapstore.AppendUvarint(buf, uint64(len(groups)))
	for _, members := range groups {
		buf = snapstore.AppendUvarint(buf, uint64(len(members)))
		for _, id := range members {
			buf = snapstore.AppendUvarint(buf, id)
		}
	}

	if _, err := out.Write(buf); err != nil {
		return opaque, fmt.Errorf("encode snapshot: %w", err)
	}
	return opaque, nil
}

// Load reconstructs a world from a snapshot. Entity IDs are preserved, so
// entities loaded from the same snapshot are comparable across loads.
func Load(in io.Reader) (*core.World, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("read snapshot: %w: %w", ErrBadSnapshot, err)
	}
	snap, groups, err := decode(data)
	if err != nil {
		return nil, fmt.Errorf("decode snapshot: %w: %w", ErrBadSnapshot, err)
	}
	w := core.NewWorld()

	// Recreate entities in ID order; IDs must come out identical.
	sort.Slice(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID })
	contexts := make(map[uint64]*core.BasicContext)
	for _, rec := range snap {
		var e core.Entity
		switch core.Kind(rec.Kind) {
		case core.KindActivity:
			e = w.NewActivity(rec.Label)
			if rec.Tag == tagContext {
				ctx := core.NewContext()
				if err := w.SetState(e, ctx); err != nil {
					return nil, err
				}
				contexts[rec.ID] = ctx
			}
		case core.KindObject:
			if rec.Tag == tagContext {
				var ctx *core.BasicContext
				e, ctx = w.NewContextObject(rec.Label)
				contexts[rec.ID] = ctx
			} else {
				e = w.NewObject(rec.Label)
			}
		default:
			return nil, fmt.Errorf("entity %d has kind %d: %w", rec.ID, rec.Kind, ErrBadSnapshot)
		}
		if uint64(e.ID) != rec.ID {
			return nil, fmt.Errorf("entity %d reloaded as %d (snapshot has gaps): %w",
				rec.ID, e.ID, ErrBadSnapshot)
		}
		if rec.Tag == tagFile {
			data := &dirtree.FileData{Content: rec.Content, Embedded: rec.Embedded}
			if err := w.SetState(e, data); err != nil {
				return nil, err
			}
		}
	}

	// Bindings, now that all entities exist.
	for _, rec := range snap {
		if rec.Tag != tagContext {
			continue
		}
		ctx := contexts[rec.ID]
		for _, b := range rec.Bindings {
			to := core.Entity{ID: core.EntityID(b.To), Kind: core.Kind(b.Kind)}
			if !w.Exists(to) {
				return nil, fmt.Errorf("binding %q of entity %d points at missing %d: %w",
					b.Name, rec.ID, b.To, ErrBadSnapshot)
			}
			ctx.Bind(core.Name(b.Name), to)
		}
	}

	// Replica groups (group ids are not preserved, membership is).
	for gi, ids := range groups {
		members := make([]core.Entity, 0, len(ids))
		for _, id := range ids {
			for _, k := range []core.Kind{core.KindObject, core.KindActivity} {
				e := core.Entity{ID: core.EntityID(id), Kind: k}
				if w.Exists(e) {
					members = append(members, e)
					break
				}
			}
		}
		if len(members) != len(ids) {
			return nil, fmt.Errorf("replica group %d has missing members: %w", gi, ErrBadSnapshot)
		}
		if _, err := w.NewReplicaGroup(members...); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// decode parses the canonical snapshot framing.
func decode(data []byte) ([]entityRec, [][]uint64, error) {
	r := snapstore.NewReader(data)
	if r.Byte() != worldMagic || r.Byte() != worldVersion {
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("world header: %w", snapstore.ErrTruncated)
	}
	count := r.Uvarint()
	if count > uint64(r.Len()) {
		return nil, nil, fmt.Errorf("entity count %d: %w", count, snapstore.ErrTruncated)
	}
	recs := make([]entityRec, 0, count)
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		rec := entityRec{
			ID:    r.Uvarint(),
			Kind:  r.Byte(),
			Label: r.String(),
			Tag:   r.Byte(),
		}
		switch rec.Tag {
		case tagStateless, tagOpaque:
		case tagContext:
			n := r.Uvarint()
			if n > uint64(r.Len()) {
				return nil, nil, fmt.Errorf("binding count %d: %w", n, snapstore.ErrTruncated)
			}
			for j := uint64(0); j < n && r.Err() == nil; j++ {
				rec.Bindings = append(rec.Bindings, bindingRec{
					Name: r.String(),
					To:   r.Uvarint(),
					Kind: r.Byte(),
				})
			}
		case tagFile:
			rec.Content, rec.Embedded = snapstore.ReadFileState(r)
		default:
			return nil, nil, fmt.Errorf("entity %d state tag %d: %w",
				rec.ID, rec.Tag, snapstore.ErrTruncated)
		}
		recs = append(recs, rec)
	}
	gcount := r.Uvarint()
	if gcount > uint64(r.Len()) {
		return nil, nil, fmt.Errorf("group count %d: %w", gcount, snapstore.ErrTruncated)
	}
	groups := make([][]uint64, 0, gcount)
	for i := uint64(0); i < gcount && r.Err() == nil; i++ {
		n := r.Uvarint()
		if n > uint64(r.Len())+1 {
			return nil, nil, fmt.Errorf("group size %d: %w", n, snapstore.ErrTruncated)
		}
		ids := make([]uint64, 0, n)
		for j := uint64(0); j < n; j++ {
			ids = append(ids, r.Uvarint())
		}
		groups = append(groups, ids)
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes: %w", r.Len(), snapstore.ErrTruncated)
	}
	return recs, groups, nil
}
