package persist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// ErrBadSnapshot is wrapped by load errors.
var ErrBadSnapshot = errors.New("bad snapshot")

// snapshot is the wire form of a world.
type snapshot struct {
	// Entities in ID order.
	Entities []entityRec
	// Groups maps group ids to member entity ids.
	Groups map[uint64][]uint64
}

type entityRec struct {
	ID    uint64
	Kind  uint8
	Label string
	// State discrimination: exactly one of the following is meaningful.
	HasContext bool
	Bindings   []bindingRec // when HasContext
	HasFile    bool
	Content    string     // when HasFile
	Embedded   [][]string // when HasFile
	// Opaque reports a state that could not be serialized.
	Opaque bool
}

type bindingRec struct {
	Name string
	To   uint64
	Kind uint8
}

// Save writes a snapshot of the world. It returns the number of entities
// whose states were opaque (present in the world but not serializable).
func Save(w *core.World, out io.Writer) (opaque int, err error) {
	snap := snapshot{Groups: make(map[uint64][]uint64)}
	for _, e := range w.Entities() {
		rec := entityRec{ID: uint64(e.ID), Kind: uint8(e.Kind), Label: w.Label(e)}
		switch s := w.State(e).(type) {
		case nil:
			// stateless
		case *dirtree.FileData:
			rec.HasFile = true
			rec.Content = s.Content
			for _, p := range s.Embedded {
				comp := make([]string, len(p))
				for i, n := range p {
					comp[i] = string(n)
				}
				rec.Embedded = append(rec.Embedded, comp)
			}
		default:
			if ctx, ok := w.ContextOf(e); ok {
				rec.HasContext = true
				for _, n := range ctx.Names() {
					to := ctx.Lookup(n)
					if to.IsUndefined() {
						continue
					}
					rec.Bindings = append(rec.Bindings, bindingRec{
						Name: string(n), To: uint64(to.ID), Kind: uint8(to.Kind),
					})
				}
			} else {
				rec.Opaque = true
				opaque++
			}
		}
		snap.Entities = append(snap.Entities, rec)

		if g, ok := w.ReplicaGroup(e); ok {
			snap.Groups[uint64(g)] = append(snap.Groups[uint64(g)], uint64(e.ID))
		}
	}
	if err := gob.NewEncoder(out).Encode(snap); err != nil {
		return opaque, fmt.Errorf("encode snapshot: %w", err)
	}
	return opaque, nil
}

// Load reconstructs a world from a snapshot. Entity IDs are preserved, so
// entities loaded from the same snapshot are comparable across loads.
func Load(in io.Reader) (*core.World, error) {
	var snap snapshot
	if err := gob.NewDecoder(in).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w: %w", ErrBadSnapshot, err)
	}
	w := core.NewWorld()

	// Recreate entities in ID order; IDs must come out identical.
	sort.Slice(snap.Entities, func(i, j int) bool {
		return snap.Entities[i].ID < snap.Entities[j].ID
	})
	contexts := make(map[uint64]*core.BasicContext)
	for _, rec := range snap.Entities {
		var e core.Entity
		switch core.Kind(rec.Kind) {
		case core.KindActivity:
			e = w.NewActivity(rec.Label)
			if rec.HasContext {
				ctx := core.NewContext()
				if err := w.SetState(e, ctx); err != nil {
					return nil, err
				}
				contexts[rec.ID] = ctx
			}
		case core.KindObject:
			if rec.HasContext {
				var ctx *core.BasicContext
				e, ctx = w.NewContextObject(rec.Label)
				contexts[rec.ID] = ctx
			} else {
				e = w.NewObject(rec.Label)
			}
		default:
			return nil, fmt.Errorf("entity %d has kind %d: %w", rec.ID, rec.Kind, ErrBadSnapshot)
		}
		if uint64(e.ID) != rec.ID {
			return nil, fmt.Errorf("entity %d reloaded as %d (snapshot has gaps): %w",
				rec.ID, e.ID, ErrBadSnapshot)
		}
		if rec.HasFile {
			data := &dirtree.FileData{Content: rec.Content}
			for _, comp := range rec.Embedded {
				p := make(core.Path, len(comp))
				for i, c := range comp {
					p[i] = core.Name(c)
				}
				data.Embedded = append(data.Embedded, p)
			}
			if err := w.SetState(e, data); err != nil {
				return nil, err
			}
		}
	}

	// Bindings, now that all entities exist.
	for _, rec := range snap.Entities {
		if !rec.HasContext {
			continue
		}
		ctx := contexts[rec.ID]
		for _, b := range rec.Bindings {
			to := core.Entity{ID: core.EntityID(b.To), Kind: core.Kind(b.Kind)}
			if !w.Exists(to) {
				return nil, fmt.Errorf("binding %q of entity %d points at missing %d: %w",
					b.Name, rec.ID, b.To, ErrBadSnapshot)
			}
			ctx.Bind(core.Name(b.Name), to)
		}
	}

	// Replica groups (group ids are not preserved, membership is).
	groupIDs := make([]uint64, 0, len(snap.Groups))
	for g := range snap.Groups {
		groupIDs = append(groupIDs, g)
	}
	sort.Slice(groupIDs, func(i, j int) bool { return groupIDs[i] < groupIDs[j] })
	for _, g := range groupIDs {
		ids := snap.Groups[g]
		members := make([]core.Entity, 0, len(ids))
		for _, id := range ids {
			for _, k := range []core.Kind{core.KindObject, core.KindActivity} {
				e := core.Entity{ID: core.EntityID(id), Kind: k}
				if w.Exists(e) {
					members = append(members, e)
					break
				}
			}
		}
		if len(members) != len(ids) {
			return nil, fmt.Errorf("replica group %d has missing members: %w", g, ErrBadSnapshot)
		}
		if _, err := w.NewReplicaGroup(members...); err != nil {
			return nil, err
		}
	}
	return w, nil
}
