// Package persist serializes worlds — entities, labels, context bindings,
// file payloads and replica groups — to a gob snapshot and reconstructs
// them, preserving entity identity (IDs are stable across a round trip).
//
// Context states are snapshotted through the Context interface, so wrapped
// contexts (watched, counting) are persisted as their visible bindings;
// the wrappers themselves are runtime instrumentation and are not
// recreated on load. Opaque non-FileData states are skipped and reported.
package persist
