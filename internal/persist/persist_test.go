package persist

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"namecoherence/internal/check"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/treespec"
)

const spec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /doc/main "title"
embed /doc/main "chapters/ch1"
file /doc/chapters/ch1 "one"
link /mnt /usr
`

func buildWorld(t *testing.T) (*core.World, *dirtree.Tree) {
	t.Helper()
	w := core.NewWorld()
	tr, err := treespec.Build(spec, w, "root")
	if err != nil {
		t.Fatal(err)
	}
	// Replicas and an activity for good measure.
	r1 := w.NewObject("cmd@1")
	r2 := w.NewObject("cmd@2")
	if _, err := w.NewReplicaGroup(r1, r2); err != nil {
		t.Fatal(err)
	}
	act := w.NewActivity("daemon")
	if err := tr.Attach(nil, "proc", act); err != nil {
		t.Fatal(err)
	}
	return w, tr
}

func roundTrip(t *testing.T, w *core.World) *core.World {
	t.Helper()
	var buf bytes.Buffer
	opaque, err := Save(w, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if opaque != 0 {
		t.Fatalf("opaque = %d", opaque)
	}
	w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return w2
}

func TestRoundTripStructure(t *testing.T) {
	w, tr := buildWorld(t)
	w2 := roundTrip(t, w)

	if w2.EntityCount() != w.EntityCount() {
		t.Fatalf("entity count %d != %d", w2.EntityCount(), w.EntityCount())
	}
	// The tree root has the same ID; resolution works identically.
	root2 := core.Entity{ID: tr.Root.ID, Kind: core.KindObject}
	if !w2.Exists(root2) {
		t.Fatal("root missing after load")
	}
	ctx2, ok := w2.ContextOf(root2)
	if !ok {
		t.Fatal("root not a context object after load")
	}
	e1, err1 := w.Resolve(tr.RootContext(), core.ParsePath("usr/bin/ls"))
	e2, err2 := w2.Resolve(ctx2, core.ParsePath("usr/bin/ls"))
	if err1 != nil || err2 != nil || e1 != e2 {
		t.Fatalf("resolution differs: %v/%v vs %v/%v", e1, err1, e2, err2)
	}
	// Sharing preserved.
	m2, err := w2.Resolve(ctx2, core.ParsePath("mnt/bin/ls"))
	if err != nil || m2 != e2 {
		t.Fatalf("link lost: %v %v", m2, err)
	}
	// Labels preserved.
	if w2.Label(e2) != w.Label(e1) {
		t.Fatal("label lost")
	}
}

func TestRoundTripFileData(t *testing.T) {
	w, tr := buildWorld(t)
	w2 := roundTrip(t, w)
	main1, _ := tr.Lookup(core.ParsePath("doc/main"))
	data2, ok := w2.State(core.Entity{ID: main1.ID, Kind: core.KindObject}).(*dirtree.FileData)
	if !ok {
		t.Fatal("file data lost")
	}
	if data2.Content != "title" || len(data2.Embedded) != 1 ||
		data2.Embedded[0].String() != "chapters/ch1" {
		t.Fatalf("file data = %+v", data2)
	}
}

func TestRoundTripReplicaGroups(t *testing.T) {
	w, _ := buildWorld(t)
	// Find the replicas by label.
	var r1, r2 core.Entity
	for _, e := range w.Entities() {
		switch w.Label(e) {
		case "cmd@1":
			r1 = e
		case "cmd@2":
			r2 = e
		}
	}
	w2 := roundTrip(t, w)
	if !w2.SameReplica(r1, r2) {
		t.Fatal("replica group lost")
	}
}

func TestRoundTripActivities(t *testing.T) {
	w, _ := buildWorld(t)
	w2 := roundTrip(t, w)
	found := false
	for _, e := range w2.Entities() {
		if e.IsActivity() && w2.Label(e) == "daemon" {
			found = true
		}
	}
	if !found {
		t.Fatal("activity lost")
	}
}

func TestRoundTripCheckClean(t *testing.T) {
	w, _ := buildWorld(t)
	w2 := roundTrip(t, w)
	if rep := check.World(w2); !rep.OK() {
		t.Fatalf("loaded world not clean: %s", rep)
	}
}

// Save → Load → Save is a fixed point.
func TestDoubleRoundTripFixedPoint(t *testing.T) {
	w, _ := buildWorld(t)
	var buf1, buf2 bytes.Buffer
	if _, err := Save(w, &buf1); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(w2, &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("second snapshot differs from first")
	}
}

func TestOpaqueStatesCounted(t *testing.T) {
	w := core.NewWorld()
	o := w.NewObject("weird")
	if err := w.SetState(o, 42); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opaque, err := Save(w, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if opaque != 1 {
		t.Fatalf("opaque = %d", opaque)
	}
	// Loads fine; the state is simply absent.
	w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := w2.State(core.Entity{ID: o.ID, Kind: core.KindObject}); s != nil {
		t.Fatalf("opaque state resurrected as %v", s)
	}
}

func TestLoadGarbage(t *testing.T) {
	_, err := Load(strings.NewReader("not a gob stream"))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v", err)
	}
	// The decoder's own error is wrapped too (%w, not %v): the chain
	// forks below the sentinel instead of ending at it.
	u, ok := err.(interface{ Unwrap() []error })
	if !ok || len(u.Unwrap()) != 2 {
		t.Fatalf("want two wrapped errors (sentinel and cause) in %v", err)
	}
}

func TestWatchedContextSavedAsBindings(t *testing.T) {
	w := core.NewWorld()
	d, ctx := w.NewContextObject("dir")
	leaf := w.NewObject("leaf")
	ctx.Bind("leaf", leaf)
	// Wrap with instrumentation; Save must still see the bindings.
	if err := w.SetState(d, core.Watch(ctx, func(core.Name, core.Entity) {})); err != nil {
		t.Fatal(err)
	}
	w2 := roundTripWorld(t, w)
	ctx2, ok := w2.ContextOf(core.Entity{ID: d.ID, Kind: core.KindObject})
	if !ok {
		t.Fatal("watched context not persisted as context")
	}
	if got := ctx2.Lookup("leaf"); got.ID != leaf.ID {
		t.Fatalf("binding lost: %v", got)
	}
}

func roundTripWorld(t *testing.T, w *core.World) *core.World {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Save(w, &buf); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return w2
}
