package embedded

import (
	"errors"
	"fmt"
	"strings"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// Errors returned by embedded-name resolution and assembly.
var (
	ErrEmptyChain = errors.New("empty scope chain")
	ErrCycle      = errors.New("include cycle")
	ErrTooDeep    = errors.New("include nesting too deep")
)

// ScopeError reports that no directory along the access path binds the
// first component of an embedded name.
type ScopeError struct {
	// Name is the embedded name that failed to resolve.
	Name core.Path
}

// Error implements error.
func (e *ScopeError) Error() string {
	return fmt.Sprintf("embedded name %q: no binding in any enclosing scope", e.Name)
}

// Chain builds a scope chain from a resolution starting point and the
// access trail returned by ResolveTrail: the chain runs from the outermost
// scope (the start directory) to the object itself.
func Chain(start core.Entity, trail []core.Entity) []core.Entity {
	chain := make([]core.Entity, 0, len(trail)+1)
	chain = append(chain, start)
	chain = append(chain, trail...)
	return chain
}

// Resolve resolves an embedded name per the Algol scope rule. The chain is
// the access path of the object the name was obtained from, outermost
// first, with the object itself last. The directories on the chain are
// searched from the innermost outward for one whose context binds the first
// component of the name; the name is then resolved relative to that
// directory.
//
// It returns the denoted entity together with the scope chain of the
// resolved entity (for recursive resolution of names embedded in it).
func Resolve(w *core.World, chain []core.Entity, name core.Path) (core.Entity, []core.Entity, error) {
	if len(chain) == 0 {
		return core.Undefined, nil, ErrEmptyChain
	}
	if !name.IsValid() {
		return core.Undefined, nil, fmt.Errorf("embedded name %q: %w", name, core.ErrEmptyPath)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		ctx, ok := w.ContextOf(chain[i])
		if !ok {
			continue // plain files are not scopes
		}
		if ctx.Lookup(name[0]).IsUndefined() {
			continue // no matching binding at this ancestor
		}
		e, trail, err := w.ResolveTrail(ctx, name)
		if err != nil {
			// The closest matching binding determines the scope; a failure
			// deeper in the name is a real resolution failure.
			return core.Undefined, nil, fmt.Errorf("embedded name %q at scope %d: %w", name, i, err)
		}
		newChain := make([]core.Entity, 0, i+1+len(trail))
		newChain = append(newChain, chain[:i+1]...)
		newChain = append(newChain, trail...)
		return e, newChain, nil
	}
	return core.Undefined, nil, &ScopeError{Name: name.Clone()}
}

// Assembler assembles structured objects: it concatenates a file's content
// with the content of all transitively embedded files, resolving embedded
// names with the Algol scope rule.
type Assembler struct {
	// World is the world the files live in.
	World *core.World
	// MaxDepth bounds include nesting; 0 means the default of 64.
	MaxDepth int
	// Sep separates concatenated components; defaults to "\n".
	Sep string
}

// Assemble assembles the structured object whose scope chain is given (the
// chain's last entity is the root file). Cycles among files are an error.
func (a *Assembler) Assemble(chain []core.Entity) (string, error) {
	if len(chain) == 0 {
		return "", ErrEmptyChain
	}
	maxDepth := a.MaxDepth
	if maxDepth == 0 {
		maxDepth = 64
	}
	sep := a.Sep
	if sep == "" {
		sep = "\n"
	}
	var sb strings.Builder
	onStack := make(map[core.EntityID]bool)
	err := a.assemble(chain, 0, maxDepth, sep, onStack, &sb)
	return sb.String(), err
}

func (a *Assembler) assemble(chain []core.Entity, depth, maxDepth int, sep string, onStack map[core.EntityID]bool, sb *strings.Builder) error {
	if depth > maxDepth {
		return fmt.Errorf("depth %d: %w", depth, ErrTooDeep)
	}
	file := chain[len(chain)-1]
	if onStack[file.ID] {
		return fmt.Errorf("file %v: %w", file, ErrCycle)
	}
	data, ok := a.World.State(file).(*dirtree.FileData)
	if !ok {
		return fmt.Errorf("assemble %v: not a regular file", file)
	}
	onStack[file.ID] = true
	defer delete(onStack, file.ID)

	if sb.Len() > 0 {
		sb.WriteString(sep)
	}
	sb.WriteString(data.Content)
	for _, inc := range data.Embedded {
		_, incChain, err := Resolve(a.World, chain, inc)
		if err != nil {
			return fmt.Errorf("assemble %v: %w", file, err)
		}
		if err := a.assemble(incChain, depth+1, maxDepth, sep, onStack, sb); err != nil {
			return err
		}
	}
	return nil
}

// ResolveAll resolves every name embedded in the file at the end of chain
// and returns the denoted entities in order.
func ResolveAll(w *core.World, chain []core.Entity) ([]core.Entity, error) {
	if len(chain) == 0 {
		return nil, ErrEmptyChain
	}
	file := chain[len(chain)-1]
	data, ok := w.State(file).(*dirtree.FileData)
	if !ok {
		return nil, fmt.Errorf("resolve-all %v: not a regular file", file)
	}
	out := make([]core.Entity, 0, len(data.Embedded))
	for _, inc := range data.Embedded {
		e, _, err := Resolve(w, chain, inc)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
