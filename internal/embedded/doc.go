// Package embedded implements coherence for names embedded in objects
// (§6 Example 2 and Figure 6 of the paper).
//
// Names can be embedded in files to build structured objects — documents
// whose components live in several files, programs assembled from sources.
// The meaning of the structured object depends on the objects denoted by
// the embedded names, so when the object is shared it is desirable for that
// meaning to be the same for every activity.
//
// The resolution rule is R(file): the context used to resolve an embedded
// name depends on the file the name was obtained from, determined by the
// Algol scope rule — instead of nested blocks, nested subtrees. A name
// embedded in node n is resolved using a matching binding at the closest
// ancestor along the access path: the directories on the path are searched
// from the innermost outward for one that binds the name's first component,
// and the name is resolved relative to that directory.
//
// Under this rule the embedded name has the same meaning regardless of the
// process accessing the file and its site of execution; the subtree can be
// attached in several places simultaneously, relocated, or copied without
// changing the meaning of its embedded names.
package embedded
