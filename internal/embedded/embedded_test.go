package embedded

import (
	"errors"
	"strings"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// figure6 builds the subtree of Figure 6: a project subtree containing a
// binding for "a" at an interior node n′ and, deeper, a file n that embeds
// the name a/p denoting node n″.
//
//	proj/               (n′: binds "a")
//	  a/
//	    p               (n″)
//	  src/
//	    n               (embeds "a/p")
func figure6(t *testing.T) (w *core.World, tr *dirtree.Tree, nDoublePrime core.Entity) {
	t.Helper()
	w = core.NewWorld()
	tr = dirtree.New(w, "root")
	var err error
	nDoublePrime, err = tr.Create(core.ParsePath("proj/a/p"), "n-double-prime")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("proj/src/n"), "body of n", core.ParsePath("a/p")); err != nil {
		t.Fatal(err)
	}
	return w, tr, nDoublePrime
}

// chainFor returns the scope chain for the file at path in tree tr.
func chainFor(t *testing.T, tr *dirtree.Tree, path string) []core.Entity {
	t.Helper()
	_, trail, err := tr.LookupTrail(core.ParsePath(path))
	if err != nil {
		t.Fatalf("lookup %q: %v", path, err)
	}
	return Chain(tr.Root, trail)
}

func TestResolveEmbeddedBasic(t *testing.T) {
	w, tr, want := figure6(t)
	chain := chainFor(t, tr, "proj/src/n")
	got, newChain, err := Resolve(w, chain, core.ParsePath("a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("embedded a/p = %v, want %v", got, want)
	}
	// The returned chain ends at the resolved entity and passes through the
	// scope directory.
	if newChain[len(newChain)-1] != want {
		t.Fatalf("chain end = %v", newChain[len(newChain)-1])
	}
}

func TestResolveClosestAncestorWins(t *testing.T) {
	w, tr, inner := figure6(t)
	// Add a binding for "a" at the root too: the root's a/p is a different
	// entity. The closest ancestor (proj) must win for the file inside.
	outer, err := tr.Create(core.ParsePath("a/p"), "outer-a-p")
	if err != nil {
		t.Fatal(err)
	}
	chain := chainFor(t, tr, "proj/src/n")
	got, _, err := Resolve(w, chain, core.ParsePath("a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got != inner {
		t.Fatalf("got %v, want inner %v (not outer %v)", got, inner, outer)
	}
}

func TestResolveFallsBackToOuterScope(t *testing.T) {
	w, tr, _ := figure6(t)
	lib, err := tr.Create(core.ParsePath("lib/util"), "library")
	if err != nil {
		t.Fatal(err)
	}
	// "lib/util" is not bound inside proj; the search climbs to the root.
	chain := chainFor(t, tr, "proj/src/n")
	got, _, err := Resolve(w, chain, core.ParsePath("lib/util"))
	if err != nil {
		t.Fatal(err)
	}
	if got != lib {
		t.Fatalf("got %v, want %v", got, lib)
	}
}

func TestResolveNoScopeBinds(t *testing.T) {
	w, tr, _ := figure6(t)
	chain := chainFor(t, tr, "proj/src/n")
	_, _, err := Resolve(w, chain, core.ParsePath("nosuch/name"))
	var se *ScopeError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ScopeError", err)
	}
}

func TestResolveMatchedScopeDeepFailure(t *testing.T) {
	w, tr, _ := figure6(t)
	chain := chainFor(t, tr, "proj/src/n")
	// "a" matches at proj, but a/missing does not resolve: real failure,
	// not a fall-through to outer scopes.
	if _, err := tr.Create(core.ParsePath("a/missing"), "outer has it"); err != nil {
		t.Fatal(err)
	}
	_, _, err := Resolve(w, chain, core.ParsePath("a/missing"))
	if err == nil {
		t.Fatal("expected failure; closest matching scope must not fall through")
	}
	var nf *core.NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
}

func TestResolveInvalidInputs(t *testing.T) {
	w, tr, _ := figure6(t)
	if _, _, err := Resolve(w, nil, core.ParsePath("a/p")); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err = %v", err)
	}
	chain := chainFor(t, tr, "proj/src/n")
	if _, _, err := Resolve(w, chain, nil); err == nil {
		t.Fatal("invalid name accepted")
	}
}

// The headline property of Figure 6: the embedded name keeps its meaning
// when the subtree is relocated.
func TestMeaningInvariantUnderRelocation(t *testing.T) {
	w, tr, want := figure6(t)
	if _, err := tr.MkdirAll(core.PathOf("elsewhere")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.ParsePath("proj"), core.ParsePath("elsewhere/proj")); err != nil {
		t.Fatal(err)
	}
	chain := chainFor(t, tr, "elsewhere/proj/src/n")
	got, _, err := Resolve(w, chain, core.ParsePath("a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("after relocation: %v, want %v", got, want)
	}
}

// The subtree can be attached simultaneously in two places; the embedded
// name denotes the same entity through both access paths.
func TestMeaningInvariantUnderSimultaneousAttach(t *testing.T) {
	w, tr, want := figure6(t)
	proj, err := tr.Lookup(core.PathOf("proj"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("mirror")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("mirror"), "proj2", proj); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"proj/src/n", "mirror/proj2/src/n"} {
		chain := chainFor(t, tr, path)
		got, _, err := Resolve(w, chain, core.ParsePath("a/p"))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got != want {
			t.Fatalf("%s: got %v, want %v", path, got, want)
		}
	}
}

// A copied subtree resolves its embedded names within the copy: the copy is
// self-contained, denoting the copy's own a/p.
func TestCopyResolvesWithinCopy(t *testing.T) {
	w, tr, orig := figure6(t)
	if _, err := tr.MkdirAll(core.PathOf("backup")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CopySubtree(core.PathOf("proj"), core.ParsePath("backup/proj")); err != nil {
		t.Fatal(err)
	}
	chain := chainFor(t, tr, "backup/proj/src/n")
	got, _, err := Resolve(w, chain, core.ParsePath("a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got == orig {
		t.Fatal("copy's embedded name denotes the original, not the copy")
	}
	wantCopy, err := tr.Lookup(core.ParsePath("backup/proj/a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got != wantCopy {
		t.Fatalf("got %v, want copy's %v", got, wantCopy)
	}
}

func TestAssembler(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("doc/chapters/ch1"), "chapter one"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("doc/chapters/ch2"), "chapter two"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("doc/main"), "title",
		core.ParsePath("chapters/ch1"), core.ParsePath("chapters/ch2")); err != nil {
		t.Fatal(err)
	}

	a := &Assembler{World: w}
	chain := chainFor(t, tr, "doc/main")
	got, err := a.Assemble(chain)
	if err != nil {
		t.Fatal(err)
	}
	if got != "title\nchapter one\nchapter two" {
		t.Fatalf("Assemble = %q", got)
	}
}

func TestAssemblerNested(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("d/leaf"), "leaf"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/mid"), "mid", core.ParsePath("leaf")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/top"), "top", core.ParsePath("mid")); err != nil {
		t.Fatal(err)
	}
	a := &Assembler{World: w, Sep: "|"}
	got, err := a.Assemble(chainFor(t, tr, "d/top"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "top|mid|leaf" {
		t.Fatalf("Assemble = %q", got)
	}
}

func TestAssemblerCycle(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("d/a"), "a", core.ParsePath("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/b"), "b", core.ParsePath("a")); err != nil {
		t.Fatal(err)
	}
	a := &Assembler{World: w}
	if _, err := a.Assemble(chainFor(t, tr, "d/a")); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestAssemblerDiamondIsNotACycle(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("d/shared"), "S"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/l"), "L", core.ParsePath("shared")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/r"), "R", core.ParsePath("shared")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/top"), "T",
		core.ParsePath("l"), core.ParsePath("r")); err != nil {
		t.Fatal(err)
	}
	a := &Assembler{World: w, Sep: "|"}
	got, err := a.Assemble(chainFor(t, tr, "d/top"))
	if err != nil {
		t.Fatal(err)
	}
	// The shared leaf is included twice (diamond), which is legal.
	if got != "T|L|S|R|S" {
		t.Fatalf("Assemble = %q", got)
	}
}

func TestAssemblerDepthLimit(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("d/f0"), "x"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		prev := core.ParsePath("f" + string(rune('0'+i-1)))
		if _, err := tr.Create(core.ParsePath("d/f"+string(rune('0'+i))), "x", prev); err != nil {
			t.Fatal(err)
		}
	}
	a := &Assembler{World: w, MaxDepth: 3}
	if _, err := a.Assemble(chainFor(t, tr, "d/f5")); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
}

func TestAssemblerErrors(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	a := &Assembler{World: w}
	if _, err := a.Assemble(nil); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err = %v", err)
	}
	// Assembling a directory fails.
	d, err := tr.Mkdir(nil, "d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assemble([]core.Entity{tr.Root, d}); err == nil {
		t.Fatal("assembling a directory succeeded")
	}
	// A missing include fails with context.
	if _, err := tr.Create(core.ParsePath("d/bad"), "b", core.ParsePath("ghost")); err != nil {
		t.Fatal(err)
	}
	_, err = a.Assemble(chainFor(t, tr, "d/bad"))
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveAll(t *testing.T) {
	w, tr, want := figure6(t)
	chain := chainFor(t, tr, "proj/src/n")
	got, err := ResolveAll(w, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("ResolveAll = %v", got)
	}
	if _, err := ResolveAll(w, nil); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err = %v", err)
	}
	dir, _ := tr.Lookup(core.PathOf("proj"))
	if _, err := ResolveAll(w, []core.Entity{tr.Root, dir}); err == nil {
		t.Fatal("ResolveAll on a directory succeeded")
	}
}
