package embedded

import (
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/rules"
)

func TestScopeContextLookup(t *testing.T) {
	w, tr, want := figure6(t)
	_, trail, err := tr.LookupTrail(core.ParsePath("proj/src/n"))
	if err != nil {
		t.Fatal(err)
	}
	sc := ScopeContext(w, Chain(tr.Root, trail))

	// Resolving the full compound name in the scope context equals the
	// explicit Resolve implementation.
	got, err := w.Resolve(sc, core.ParsePath("a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Unbound names are undefined.
	if e := sc.Lookup("ghost"); !e.IsUndefined() {
		t.Fatalf("ghost = %v", e)
	}
}

func TestScopeContextShadowing(t *testing.T) {
	w, tr, inner := figure6(t)
	if _, err := tr.Create(core.ParsePath("a/p"), "outer"); err != nil {
		t.Fatal(err)
	}
	_, trail, err := tr.LookupTrail(core.ParsePath("proj/src/n"))
	if err != nil {
		t.Fatal(err)
	}
	sc := ScopeContext(w, Chain(tr.Root, trail))
	got, err := w.Resolve(sc, core.ParsePath("a/p"))
	if err != nil {
		t.Fatal(err)
	}
	if got != inner {
		t.Fatalf("shadowing broken: %v, want inner %v", got, inner)
	}
}

func TestScopeContextReadOnly(t *testing.T) {
	w, tr, _ := figure6(t)
	_, trail, _ := tr.LookupTrail(core.ParsePath("proj/src/n"))
	sc := ScopeContext(w, Chain(tr.Root, trail))
	before := sc.Len()
	sc.Bind("new", tr.Root)
	sc.Unbind("a")
	if sc.Len() != before {
		t.Fatal("derived context mutated")
	}
}

func TestScopeContextNames(t *testing.T) {
	w, tr, _ := figure6(t)
	if _, err := tr.Create(core.ParsePath("rootfile"), ""); err != nil {
		t.Fatal(err)
	}
	_, trail, _ := tr.LookupTrail(core.ParsePath("proj/src/n"))
	sc := ScopeContext(w, Chain(tr.Root, trail))
	names := sc.Names()
	// Union of proj's bindings (a, src) and root's (proj, rootfile), plus
	// src's (n). Sorted and unique.
	want := map[core.Name]bool{"a": true, "src": true, "proj": true, "rootfile": true, "n": true}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i, n := range names {
		if !want[n] {
			t.Fatalf("unexpected name %q", n)
		}
		if i > 0 && names[i-1] >= n {
			t.Fatal("Names not sorted")
		}
	}
}

// The same sweep as E1's object column, now with R(file) as a first-class
// rule: embedded names are coherent across activities with disjoint
// contexts, because the scope context derives from the object's access
// trail, not from the activity.
func TestFileRuleCoherence(t *testing.T) {
	w, tr, want := figure6(t)
	a1, a2 := w.NewActivity("a1"), w.NewActivity("a2")
	assoc := rules.NewAssoc()
	for _, a := range []core.Entity{a1, a2} {
		ctx := core.NewContext()
		ctx.Bind("a", w.NewObject("private-a")) // would shadow wrongly
		assoc.Set(a, ctx)
	}
	rule := &FileRule{World: w, ActivityContexts: assoc}
	resolver := rules.NewResolver(w, rule)

	file, trail, err := tr.LookupTrail(core.ParsePath("proj/src/n"))
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain(tr.Root, trail)
	for _, a := range []core.Entity{a1, a2} {
		got, err := resolver.Resolve(rules.FromObject(a, file, chain), core.ParsePath("a/p"))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("R(file) for %v = %v, want %v", a, got, want)
		}
	}
	// Internal names fall back to the activity context.
	got, err := resolver.Resolve(rules.Internal(a1), core.PathOf("a"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Label(got) != "private-a" {
		t.Fatalf("fallback = %v (%s)", got, w.Label(got))
	}
	if rule.String() != "R(file)" {
		t.Fatalf("String = %q", rule.String())
	}
}

func TestFileRuleNoActivityContext(t *testing.T) {
	w, _, _ := figure6(t)
	a := w.NewActivity("a")
	rule := &FileRule{World: w, ActivityContexts: rules.NewAssoc()}
	if _, err := rule.Select(rules.Internal(a)); err == nil {
		t.Fatal("missing activity context accepted")
	}
	// Object source without a trail also falls back (and here fails).
	if _, err := rule.Select(rules.FromObject(a, w.NewObject("o"), nil)); err == nil {
		t.Fatal("trail-less object source accepted")
	}
}
