package embedded

import (
	"namecoherence/internal/core"
	"namecoherence/internal/rules"
)

// scopeContext is the Algol scope rule expressed as a virtual context: its
// Lookup searches the access chain from the innermost directory outward
// for a binding of the name. Because compound-name resolution only
// consults the selected context for the *first* component and then follows
// real context objects, resolving a whole compound name in a scopeContext
// is exactly the R(file) rule of Figure 6.
type scopeContext struct {
	world *core.World
	chain []core.Entity
}

var _ core.Context = (*scopeContext)(nil)

// ScopeContext returns the virtual context in which embedded names of the
// object at the end of chain are resolved. It is read-only: Bind and
// Unbind are no-ops (embedded-name scopes are derived, not stored).
func ScopeContext(w *core.World, chain []core.Entity) core.Context {
	c := make([]core.Entity, len(chain))
	copy(c, chain)
	return &scopeContext{world: w, chain: c}
}

// Lookup implements core.Context: the closest enclosing binding wins.
func (s *scopeContext) Lookup(n core.Name) core.Entity {
	for i := len(s.chain) - 1; i >= 0; i-- {
		ctx, ok := s.world.ContextOf(s.chain[i])
		if !ok {
			continue
		}
		if e := ctx.Lookup(n); !e.IsUndefined() {
			return e
		}
	}
	return core.Undefined
}

// Bind implements core.Context as a no-op (derived context).
func (s *scopeContext) Bind(core.Name, core.Entity) {}

// Unbind implements core.Context as a no-op (derived context).
func (s *scopeContext) Unbind(core.Name) {}

// Names implements core.Context: the union of all scope bindings,
// innermost occluding nothing (sorted, deduplicated).
func (s *scopeContext) Names() []core.Name {
	seen := make(map[core.Name]bool)
	var out []core.Name
	for i := len(s.chain) - 1; i >= 0; i-- {
		ctx, ok := s.world.ContextOf(s.chain[i])
		if !ok {
			continue
		}
		for _, n := range ctx.Names() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sortNames(out)
	return out
}

// Len implements core.Context.
func (s *scopeContext) Len() int { return len(s.Names()) }

func sortNames(names []core.Name) {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
}

// FileRule is the paper's R(file) closure mechanism as a rules.Rule: names
// obtained from an object are resolved in the object's derived scope
// context (built from the circumstance's access trail); other sources fall
// back to the activity's context.
type FileRule struct {
	// World resolves scope chains.
	World *core.World
	// ActivityContexts serves non-object sources.
	ActivityContexts *rules.Assoc
}

var _ rules.Rule = (*FileRule)(nil)

// Select implements rules.Rule.
func (r *FileRule) Select(m rules.Circumstance) (core.Context, error) {
	if m.Origin == rules.SourceObject && len(m.Trail) > 0 {
		return ScopeContext(r.World, m.Trail), nil
	}
	ctx, ok := r.ActivityContexts.Get(m.Activity)
	if !ok {
		return nil, &rules.NoContextError{Entity: m.Activity, Rule: r.String()}
	}
	return ctx, nil
}

// String implements rules.Rule.
func (r *FileRule) String() string { return "R(file)" }
