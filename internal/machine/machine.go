package machine

import (
	"errors"
	"fmt"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// Names of the two distinguished bindings in a process context.
const (
	// RootName binds the directory that absolute names resolve from.
	RootName core.Name = "/"
	// CwdName binds the working directory that relative names resolve from.
	CwdName core.Name = "."
)

// Machine is a computer with a local naming tree.
type Machine struct {
	// Name identifies the machine (unique within a scenario).
	Name string
	// World is the shared world all machines of a scenario live in.
	World *core.World
	// Tree is the machine's local file-system tree.
	Tree *dirtree.Tree

	mu      sync.Mutex
	nextPID int
	procs   []*Process
}

// New creates a machine with a fresh local tree. Trees carry parent links
// ("..") so that schemes like the Newcastle Connection can refer to nodes
// above a machine's root.
func New(w *core.World, name string) *Machine {
	return &Machine{
		Name:  name,
		World: w,
		Tree:  dirtree.NewWithParentLinks(w, name+":/"),
	}
}

// Process is an activity with the Unix-style two-binding context.
type Process struct {
	// PID is the machine-local process id.
	PID int
	// Activity is the entity representing the process in the world.
	Activity core.Entity
	// Machine is where the process executes.
	Machine *Machine
	// Ctx is the process context R(p), holding the "/" and "." bindings
	// (schemes may add more bindings, e.g. per-process attach points).
	Ctx *core.BasicContext
	// Parent is the process that forked or spawned this one, if any.
	Parent *Process
}

// ErrNoRoot is returned when a process resolves an absolute name without a
// root binding (or a relative name without a working-directory binding).
var ErrNoRoot = errors.New("process context lacks the required binding")

// Spawn creates a process on the machine with root and working directory
// bound to the machine tree's root — the typical Unix arrangement where
// R(p)(/) is the root of the machine on which p executes.
func (m *Machine) Spawn(label string) *Process {
	ctx := core.NewContext()
	ctx.Bind(RootName, m.Tree.Root)
	ctx.Bind(CwdName, m.Tree.Root)
	return m.adopt(label, ctx, nil)
}

// SpawnWith creates a process with an explicit context (the caller decides
// the root/cwd bindings). Used by schemes that bind roots unconventionally.
func (m *Machine) SpawnWith(label string, ctx *core.BasicContext) *Process {
	return m.adopt(label, ctx, nil)
}

func (m *Machine) adopt(label string, ctx *core.BasicContext, parent *Process) *Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextPID++
	p := &Process{
		PID:      m.nextPID,
		Activity: m.World.NewActivity(fmt.Sprintf("%s:%s", m.Name, label)),
		Machine:  m,
		Ctx:      ctx,
		Parent:   parent,
	}
	m.procs = append(m.procs, p)
	return p
}

// Processes returns the machine's processes in spawn order.
func (m *Machine) Processes() []*Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Process, len(m.procs))
	copy(out, m.procs)
	return out
}

// Fork creates a child process on the same machine; the child inherits a
// copy of the parent's context (§5.1: "a child inherits the context of its
// parent"). Parent and child have coherence for all names until one of them
// modifies its context.
func (p *Process) Fork(label string) *Process {
	return p.Machine.adopt(label, p.Ctx.Clone(), p)
}

// ForkOn creates a child on another machine, inheriting a copy of the
// parent's context — remote execution with the "root of the machine where
// the execution was invoked" policy. Use target.Spawn for the opposite
// policy (root of the machine where the child executes).
func (p *Process) ForkOn(target *Machine, label string) *Process {
	return target.adopt(label, p.Ctx.Clone(), p)
}

// SetRoot rebinds the process's root directory.
func (p *Process) SetRoot(dir core.Entity) { p.Ctx.Bind(RootName, dir) }

// SetCwd rebinds the process's working directory.
func (p *Process) SetCwd(dir core.Entity) { p.Ctx.Bind(CwdName, dir) }

// Root returns the process's root directory binding.
func (p *Process) Root() core.Entity { return p.Ctx.Lookup(RootName) }

// Cwd returns the process's working-directory binding.
func (p *Process) Cwd() core.Entity { return p.Ctx.Lookup(CwdName) }

// Resolve resolves a textual name in the process's context: absolute names
// ("/a/b") start at the root binding, relative ones at the working
// directory. "/" alone denotes the root directory itself.
func (p *Process) Resolve(name string) (core.Entity, error) {
	e, _, err := p.ResolveTrail(name)
	return e, err
}

// ResolveTrail is Resolve but also returns the access trail (the starting
// directory excluded).
func (p *Process) ResolveTrail(name string) (core.Entity, []core.Entity, error) {
	abs, path := core.SplitPathString(name)
	binding := CwdName
	if abs {
		binding = RootName
	}
	start := p.Ctx.Lookup(binding)
	if start.IsUndefined() {
		return core.Undefined, nil, fmt.Errorf("resolve %q: %q: %w", name, binding, ErrNoRoot)
	}
	if len(path) == 0 {
		return start, nil, nil
	}
	startCtx, ok := p.Machine.World.ContextOf(start)
	if !ok {
		return core.Undefined, nil, fmt.Errorf("resolve %q: start is not a directory", name)
	}
	return p.Machine.World.ResolveTrail(startCtx, path)
}

// ResolvePath resolves a pre-parsed path with explicit absoluteness.
func (p *Process) ResolvePath(abs bool, path core.Path) (core.Entity, error) {
	s := path.String()
	if abs {
		s = core.Separator + s
	}
	return p.Resolve(s)
}

// Registry maps activity entities back to processes, so that scheme-level
// resolution can be probed through the uniform coherence.ResolveFunc shape.
type Registry struct {
	mu    sync.RWMutex
	procs map[core.EntityID]*Process
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[core.EntityID]*Process)}
}

// Add registers processes.
func (r *Registry) Add(ps ...*Process) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range ps {
		r.procs[p.Activity.ID] = p
	}
}

// Get returns the process for an activity entity.
func (r *Registry) Get(a core.Entity) (*Process, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.procs[a.ID]
	return p, ok
}

// ResolveAbs resolves path as an absolute name on behalf of activity a. Its
// signature matches coherence.ResolveFunc.
func (r *Registry) ResolveAbs(a core.Entity, path core.Path) (core.Entity, error) {
	p, ok := r.Get(a)
	if !ok {
		return core.Undefined, fmt.Errorf("activity %v: no process registered", a)
	}
	return p.ResolvePath(true, path)
}

// ResolveRel resolves path as a relative name on behalf of activity a.
func (r *Registry) ResolveRel(a core.Entity, path core.Path) (core.Entity, error) {
	p, ok := r.Get(a)
	if !ok {
		return core.Undefined, fmt.Errorf("activity %v: no process registered", a)
	}
	return p.ResolvePath(false, path)
}
