package machine

import (
	"errors"
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
)

func newMachine(t *testing.T) (*core.World, *Machine) {
	t.Helper()
	w := core.NewWorld()
	m := New(w, "m1")
	if _, err := m.Tree.Create(core.ParsePath("etc/passwd"), "root:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tree.Create(core.ParsePath("home/alice/notes"), "hi"); err != nil {
		t.Fatal(err)
	}
	return w, m
}

func TestSpawnDefaults(t *testing.T) {
	_, m := newMachine(t)
	p := m.Spawn("sh")
	if p.Root() != m.Tree.Root || p.Cwd() != m.Tree.Root {
		t.Fatal("spawned process not rooted at machine tree")
	}
	if !p.Activity.IsActivity() {
		t.Fatal("process entity is not an activity")
	}
	if p.PID != 1 {
		t.Fatalf("PID = %d, want 1", p.PID)
	}
	if m.Spawn("sh2").PID != 2 {
		t.Fatal("PIDs not sequential")
	}
}

func TestProcessResolveAbsolute(t *testing.T) {
	_, m := newMachine(t)
	p := m.Spawn("sh")
	got, err := p.Resolve("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatalf("Resolve = %v, want %v", got, want)
	}
	root, err := p.Resolve("/")
	if err != nil {
		t.Fatal(err)
	}
	if root != m.Tree.Root {
		t.Fatal("\"/\" does not denote the root")
	}
}

func TestProcessResolveRelative(t *testing.T) {
	_, m := newMachine(t)
	p := m.Spawn("sh")
	home, err := p.Resolve("/home/alice")
	if err != nil {
		t.Fatal(err)
	}
	p.SetCwd(home)
	got, err := p.Resolve("notes")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Tree.Lookup(core.ParsePath("home/alice/notes"))
	if got != want {
		t.Fatalf("relative resolve = %v, want %v", got, want)
	}
	// "." alone denotes the cwd.
	dot, err := p.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if dot != home {
		t.Fatal("empty relative name does not denote cwd")
	}
}

func TestProcessResolveMissingBinding(t *testing.T) {
	_, m := newMachine(t)
	p := m.SpawnWith("bare", core.NewContext())
	if _, err := p.Resolve("/etc"); !errors.Is(err, ErrNoRoot) {
		t.Fatalf("err = %v, want ErrNoRoot", err)
	}
	if _, err := p.Resolve("etc"); !errors.Is(err, ErrNoRoot) {
		t.Fatalf("err = %v, want ErrNoRoot", err)
	}
}

func TestProcessResolveThroughFileFails(t *testing.T) {
	_, m := newMachine(t)
	p := m.Spawn("sh")
	if _, err := p.Resolve("/etc/passwd/deeper"); err == nil {
		t.Fatal("expected error resolving through a file")
	}
}

func TestForkInheritsContext(t *testing.T) {
	_, m := newMachine(t)
	parent := m.Spawn("parent")
	home, _ := parent.Resolve("/home/alice")
	parent.SetCwd(home)

	child := parent.Fork("child")
	if child.Parent != parent {
		t.Fatal("child parent not recorded")
	}
	// Coherence for all names until one modifies its context.
	pGot, _ := parent.Resolve("notes")
	cGot, _ := child.Resolve("notes")
	if pGot != cGot {
		t.Fatal("parent and child disagree right after fork")
	}

	// Child modifies its context; parent unaffected.
	child.SetCwd(m.Tree.Root)
	cGot2, err := child.Resolve("notes")
	if err == nil && cGot2 == pGot {
		t.Fatal("child cwd change did not take effect")
	}
	pGot2, _ := parent.Resolve("notes")
	if pGot2 != pGot {
		t.Fatal("child context change leaked into parent")
	}
}

func TestForkOnCarriesInvokerRoot(t *testing.T) {
	w, m1 := newMachine(t)
	m2 := New(w, "m2")
	if _, err := m2.Tree.Create(core.ParsePath("etc/passwd"), "other"); err != nil {
		t.Fatal(err)
	}

	parent := m1.Spawn("parent")
	remote := parent.ForkOn(m2, "remote-child")
	if remote.Machine != m2 {
		t.Fatal("remote child on wrong machine")
	}
	// Root-of-invoker policy: the remote child sees m1's files.
	got, err := remote.Resolve("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m1.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatal("remote child does not resolve in invoker's root")
	}

	// Contrast: a locally spawned process on m2 sees m2's files.
	local := m2.Spawn("local")
	got2, err := local.Resolve("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := m2.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got2 != want2 || got2 == got {
		t.Fatal("local process does not resolve in its own root")
	}
}

func TestProcessesList(t *testing.T) {
	_, m := newMachine(t)
	m.Spawn("a")
	m.Spawn("b")
	ps := m.Processes()
	if len(ps) != 2 || ps[0].PID != 1 || ps[1].PID != 2 {
		t.Fatalf("Processes = %v", ps)
	}
}

func TestRegistryResolve(t *testing.T) {
	w, m := newMachine(t)
	p1 := m.Spawn("p1")
	p2 := m.Spawn("p2")
	reg := NewRegistry()
	reg.Add(p1, p2)

	if _, ok := reg.Get(p1.Activity); !ok {
		t.Fatal("Get failed")
	}
	got, err := reg.ResolveAbs(p1.Activity, core.ParsePath("etc/passwd"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatalf("ResolveAbs = %v, want %v", got, want)
	}

	stranger := w.NewActivity("stranger")
	if _, err := reg.ResolveAbs(stranger, core.PathOf("etc")); err == nil {
		t.Fatal("unregistered activity resolved")
	}
	if _, err := reg.ResolveRel(stranger, core.PathOf("etc")); err == nil {
		t.Fatal("unregistered activity resolved relatively")
	}
}

// Same-machine processes with default roots are coherent for all absolute
// names — the paper's "coherence only among processes that have the same
// binding for the root directory".
func TestSameRootCoherence(t *testing.T) {
	w, m := newMachine(t)
	p1, p2 := m.Spawn("p1"), m.Spawn("p2")
	reg := NewRegistry()
	reg.Add(p1, p2)

	acts := []core.Entity{p1.Activity, p2.Activity}
	paths := []core.Path{core.ParsePath("etc/passwd"), core.ParsePath("home/alice/notes")}
	rep := coherence.Measure(w, reg.ResolveAbs, acts, paths)
	if rep.StrictDegree() != 1 {
		t.Fatalf("StrictDegree = %v, want 1; report %+v", rep.StrictDegree(), rep)
	}
}

// Processes on different machines (different roots) are incoherent for
// machine-local absolute names.
func TestDifferentRootIncoherence(t *testing.T) {
	w, m1 := newMachine(t)
	m2 := New(w, "m2")
	if _, err := m2.Tree.Create(core.ParsePath("etc/passwd"), "other"); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Spawn("p1"), m2.Spawn("p2")
	reg := NewRegistry()
	reg.Add(p1, p2)

	acts := []core.Entity{p1.Activity, p2.Activity}
	paths := []core.Path{core.ParsePath("etc/passwd")}
	rep := coherence.Measure(w, reg.ResolveAbs, acts, paths)
	if rep.Incoherent != 1 {
		t.Fatalf("expected incoherence across machines, report %+v", rep)
	}
}
