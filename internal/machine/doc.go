// Package machine models machines and processes in the style the paper
// analyses for Unix-like systems (§5.1).
//
// A Machine owns a naming tree (its local file system). A Process is an
// activity whose context R(p) carries the two bindings the paper describes:
// one for the root directory ("/") and one for the working directory (".").
// Absolute compound names resolve from the root binding, relative ones from
// the working-directory binding. A child process inherits (a copy of) its
// parent's context at fork time, which is why "a parent and a child have
// coherence for all names until one of them modifies its context".
package machine
