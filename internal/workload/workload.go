package workload

import (
	"fmt"
	"math/rand"

	"namecoherence/internal/core"
	"namecoherence/internal/rules"
)

// Generator produces deterministic synthetic workloads.
type Generator struct {
	rng *rand.Rand
}

// New returns a generator with the given seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n).
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *Generator) Float64() float64 { return g.rng.Float64() }

// Names generates n distinct simple names with the given prefix.
func (g *Generator) Names(n int, prefix string) []core.Name {
	out := make([]core.Name, n)
	for i := range out {
		out[i] = core.Name(fmt.Sprintf("%s%04d", prefix, i))
	}
	return out
}

// Paths generates n distinct compound names of the given depth.
func (g *Generator) Paths(n, depth int, prefix string) []core.Path {
	out := make([]core.Path, n)
	for i := range out {
		p := make(core.Path, depth)
		for d := 0; d < depth; d++ {
			p[d] = core.Name(fmt.Sprintf("%s%d_%d", prefix, i, d))
		}
		out[i] = p
	}
	return out
}

// Shuffle permutes a slice of paths in place.
func (g *Generator) Shuffle(paths []core.Path) {
	g.rng.Shuffle(len(paths), func(i, j int) {
		paths[i], paths[j] = paths[j], paths[i]
	})
}

// Zipf returns n sample indices in [0, k) with a Zipf(1.1) distribution —
// the classic skew of name-lookup traffic, used by the caching ablation.
func (g *Generator) Zipf(n, k int) []int {
	z := rand.NewZipf(g.rng, 1.1, 1, uint64(k-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// Population is a set of activities with per-activity contexts over a
// common probe-name vocabulary. A fraction of the names are shared: bound
// to the same entity in every context ("global names"); the rest are bound
// to private per-activity entities.
type Population struct {
	// World holds the generated entities.
	World *core.World
	// Activities are the population's activities in creation order.
	Activities []core.Entity
	// Contexts associates each activity with its context (the table behind
	// R(activity) and R(sender)).
	Contexts *rules.Assoc
	// SharedNames and LocalNames partition the vocabulary.
	SharedNames, LocalNames []core.Name
}

// ProbePaths returns the whole vocabulary as length-1 compound names.
func (p *Population) ProbePaths() []core.Path {
	out := make([]core.Path, 0, len(p.SharedNames)+len(p.LocalNames))
	for _, n := range p.SharedNames {
		out = append(out, core.PathOf(n))
	}
	for _, n := range p.LocalNames {
		out = append(out, core.PathOf(n))
	}
	return out
}

// Population builds nActs activities over a vocabulary of nNames names, of
// which sharedFrac (0..1) are shared. Shared names denote one common object
// each; local names denote a distinct object per activity.
func (g *Generator) Population(w *core.World, nActs, nNames int, sharedFrac float64) *Population {
	if sharedFrac < 0 {
		sharedFrac = 0
	}
	if sharedFrac > 1 {
		sharedFrac = 1
	}
	names := g.Names(nNames, "n")
	nShared := int(sharedFrac*float64(nNames) + 0.5)

	pop := &Population{
		World:       w,
		Contexts:    rules.NewAssoc(),
		SharedNames: names[:nShared],
		LocalNames:  names[nShared:],
	}
	sharedEnts := make([]core.Entity, nShared)
	for i := range sharedEnts {
		sharedEnts[i] = w.NewObject("shared:" + string(names[i]))
	}
	for a := 0; a < nActs; a++ {
		act := w.NewActivity(fmt.Sprintf("act%d", a))
		ctx := core.NewContext()
		for i, n := range pop.SharedNames {
			ctx.Bind(n, sharedEnts[i])
		}
		for _, n := range pop.LocalNames {
			ctx.Bind(n, w.NewObject(fmt.Sprintf("local:%s@%d", n, a)))
		}
		pop.Contexts.Set(act, ctx)
		pop.Activities = append(pop.Activities, act)
	}
	return pop
}

// ObjectContext builds a context object association for an object carrying
// embedded names: every vocabulary name is bound to a fresh entity private
// to the object, so R(object) resolves embedded names identically for all
// activities.
func (g *Generator) ObjectContext(w *core.World, pop *Population, label string) (core.Entity, *rules.Assoc) {
	obj := w.NewObject(label)
	ctx := core.NewContext()
	for _, n := range append(append([]core.Name(nil), pop.SharedNames...), pop.LocalNames...) {
		ctx.Bind(n, w.NewObject("emb:"+string(n)+"@"+label))
	}
	assoc := rules.NewAssoc()
	assoc.Set(obj, ctx)
	return obj, assoc
}
