package workload

import (
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/rules"
)

func TestNamesDistinct(t *testing.T) {
	g := New(1)
	names := g.Names(100, "x")
	seen := make(map[core.Name]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestPathsShape(t *testing.T) {
	g := New(1)
	paths := g.Paths(10, 3, "p")
	if len(paths) != 10 {
		t.Fatalf("len = %d", len(paths))
	}
	for _, p := range paths {
		if len(p) != 3 || !p.IsValid() {
			t.Fatalf("bad path %v", p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	pa := a.Paths(5, 2, "p")
	pb := b.Paths(5, 2, "p")
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatal("same seed, different paths")
		}
	}
	if a.Intn(1000) != b.Intn(1000) {
		t.Fatal("same seed, different ints")
	}
}

func TestZipfRange(t *testing.T) {
	g := New(7)
	samples := g.Zipf(1000, 50)
	if len(samples) != 1000 {
		t.Fatalf("len = %d", len(samples))
	}
	for _, s := range samples {
		if s < 0 || s >= 50 {
			t.Fatalf("sample %d out of range", s)
		}
	}
	// Zipf should be skewed: index 0 must be the most common.
	counts := make(map[int]int)
	for _, s := range samples {
		counts[s]++
	}
	for i, c := range counts {
		if i != 0 && c > counts[0] {
			t.Fatalf("index %d more common (%d) than index 0 (%d)", i, c, counts[0])
		}
	}
}

func TestPopulationSharedFraction(t *testing.T) {
	g := New(1)
	w := core.NewWorld()
	pop := g.Population(w, 4, 100, 0.3)
	if len(pop.SharedNames) != 30 || len(pop.LocalNames) != 70 {
		t.Fatalf("partition = %d/%d", len(pop.SharedNames), len(pop.LocalNames))
	}
	if len(pop.Activities) != 4 {
		t.Fatalf("activities = %d", len(pop.Activities))
	}
	if len(pop.ProbePaths()) != 100 {
		t.Fatalf("probes = %d", len(pop.ProbePaths()))
	}
}

func TestPopulationCoherenceMatchesFraction(t *testing.T) {
	g := New(1)
	w := core.NewWorld()
	pop := g.Population(w, 5, 200, 0.25)
	r := rules.NewResolver(w, &rules.ActivityRule{Contexts: pop.Contexts})
	resolve := func(a core.Entity, p core.Path) (core.Entity, error) {
		return r.Resolve(rules.Internal(a), p)
	}
	rep := coherence.Measure(w, resolve, pop.Activities, pop.ProbePaths())
	if rep.StrictDegree() != 0.25 {
		t.Fatalf("StrictDegree = %v, want 0.25", rep.StrictDegree())
	}
	if rep.Incoherent != 150 {
		t.Fatalf("Incoherent = %d, want 150", rep.Incoherent)
	}
}

func TestPopulationClamping(t *testing.T) {
	g := New(1)
	w := core.NewWorld()
	if pop := g.Population(w, 2, 10, -1); len(pop.SharedNames) != 0 {
		t.Fatal("negative fraction not clamped")
	}
	if pop := g.Population(w, 2, 10, 2); len(pop.LocalNames) != 0 {
		t.Fatal("fraction > 1 not clamped")
	}
}

func TestObjectContext(t *testing.T) {
	g := New(1)
	w := core.NewWorld()
	pop := g.Population(w, 3, 10, 0.5)
	obj, assoc := g.ObjectContext(w, pop, "doc")
	if !obj.IsObject() {
		t.Fatal("not an object")
	}
	ctx, ok := assoc.Get(obj)
	if !ok {
		t.Fatal("no context associated")
	}
	if ctx.Len() != 10 {
		t.Fatalf("object context has %d bindings, want 10", ctx.Len())
	}

	// Under R(object), embedded names are coherent for all activities.
	r := rules.NewResolver(w, &rules.ObjectRule{
		ObjectContexts:   assoc,
		ActivityContexts: pop.Contexts,
	})
	resolve := func(a core.Entity, p core.Path) (core.Entity, error) {
		return r.Resolve(rules.FromObject(a, obj, nil), p)
	}
	rep := coherence.Measure(w, resolve, pop.Activities, pop.ProbePaths())
	if rep.StrictDegree() != 1 {
		t.Fatalf("R(object) degree = %v, want 1", rep.StrictDegree())
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	g := New(3)
	paths := g.Paths(20, 1, "s")
	orig := make(map[string]bool)
	for _, p := range paths {
		orig[p.String()] = true
	}
	g.Shuffle(paths)
	for _, p := range paths {
		if !orig[p.String()] {
			t.Fatal("shuffle invented an element")
		}
	}
	if len(paths) != 20 {
		t.Fatal("shuffle changed length")
	}
}
