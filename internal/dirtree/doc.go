// Package dirtree builds tree-structured file stores on the core naming
// model: directories are context objects, files are plain objects whose
// state is a FileData payload.
//
// A Tree is the model's "naming tree" (§5.1): a distinguished root context
// object plus operations for creating directories and files, attaching
// foreign subtrees (mounts), detaching, copying and relocating subtrees.
// Attach is what the paper's schemes are made of: the Newcastle Connection
// attaches machine trees under a super-root, Andrew attaches the shared
// tree under /vice, and federations attach cross-links to remote trees.
package dirtree
