package dirtree

import (
	"errors"
	"fmt"

	"namecoherence/internal/core"
)

// ParentName is the conventional name bound from a directory to its parent
// when parent links are enabled (the Unix ".." notation, which the Newcastle
// Connection uses to refer to nodes above a machine's root).
const ParentName core.Name = ".."

// FileData is the state of a regular file: opaque content plus the compound
// names embedded in it (the paper's structured objects, §6 Example 2).
type FileData struct {
	// Content is the file payload.
	Content string
	// Embedded lists the compound names embedded in the file.
	Embedded []core.Path
}

// Clone returns a deep copy of the file data.
func (f *FileData) Clone() *FileData {
	g := &FileData{Content: f.Content, Embedded: make([]core.Path, len(f.Embedded))}
	for i, p := range f.Embedded {
		g.Embedded[i] = p.Clone()
	}
	return g
}

// Tree is a naming tree: a root context object and operations on the
// subgraph below it.
type Tree struct {
	// W is the world the tree's entities live in.
	W *core.World
	// Root is the root context object.
	Root core.Entity
	// ParentLinks, when set, makes Mkdir bind ".." in each new directory
	// to its parent.
	ParentLinks bool
}

// Errors returned by tree operations.
var (
	ErrNotDirectory = errors.New("not a directory")
	ErrExists       = errors.New("name already bound")
	ErrNotFound     = errors.New("no such name")
)

// New creates a tree with a fresh root directory labelled label.
func New(w *core.World, label string) *Tree {
	root, _ := w.NewContextObject(label)
	return &Tree{W: w, Root: root}
}

// NewWithParentLinks creates a tree whose directories carry ".." bindings.
// The root's ".." is bound to the root itself (the Unix convention); schemes
// such as the Newcastle Connection rebind it.
func NewWithParentLinks(w *core.World, label string) *Tree {
	t := New(w, label)
	t.ParentLinks = true
	rootCtx, _ := w.ContextOf(t.Root)
	rootCtx.Bind(ParentName, t.Root)
	return t
}

// RootContext returns the context of the root directory.
func (t *Tree) RootContext() core.Context {
	c, ok := t.W.ContextOf(t.Root)
	if !ok {
		panic("dirtree: root is not a context object")
	}
	return c
}

// Lookup resolves a path relative to the root. An empty path denotes the
// root itself.
func (t *Tree) Lookup(p core.Path) (core.Entity, error) {
	if len(p) == 0 {
		return t.Root, nil
	}
	return t.W.Resolve(t.RootContext(), p)
}

// LookupTrail is Lookup but returns the access trail (root excluded).
func (t *Tree) LookupTrail(p core.Path) (core.Entity, []core.Entity, error) {
	if len(p) == 0 {
		return t.Root, nil, nil
	}
	return t.W.ResolveTrail(t.RootContext(), p)
}

// dirAt resolves p to a directory and returns its context.
func (t *Tree) dirAt(p core.Path) (core.Entity, core.Context, error) {
	e, err := t.Lookup(p)
	if err != nil {
		return core.Undefined, nil, fmt.Errorf("lookup %q: %w", p, err)
	}
	c, ok := t.W.ContextOf(e)
	if !ok {
		return core.Undefined, nil, fmt.Errorf("%q: %w", p, ErrNotDirectory)
	}
	return e, c, nil
}

// Mkdir creates a directory named name under the directory at path `at`.
func (t *Tree) Mkdir(at core.Path, name core.Name) (core.Entity, error) {
	parent, parentCtx, err := t.dirAt(at)
	if err != nil {
		return core.Undefined, err
	}
	if !parentCtx.Lookup(name).IsUndefined() {
		return core.Undefined, fmt.Errorf("mkdir %q in %q: %w", name, at, ErrExists)
	}
	dir, dirCtx := t.W.NewContextObject(string(name))
	if t.ParentLinks {
		dirCtx.Bind(ParentName, parent)
	}
	parentCtx.Bind(name, dir)
	return dir, nil
}

// MkdirAll creates every missing directory along p and returns the last.
// Existing directories along the way are reused.
func (t *Tree) MkdirAll(p core.Path) (core.Entity, error) {
	cur := t.Root
	for i, n := range p {
		curCtx, ok := t.W.ContextOf(cur)
		if !ok {
			return core.Undefined, fmt.Errorf("mkdirall %q at %d: %w", p, i, ErrNotDirectory)
		}
		next := curCtx.Lookup(n)
		if next.IsUndefined() {
			dir, dirCtx := t.W.NewContextObject(string(n))
			if t.ParentLinks {
				dirCtx.Bind(ParentName, cur)
			}
			curCtx.Bind(n, dir)
			next = dir
		}
		cur = next
	}
	if _, ok := t.W.ContextOf(cur); !ok {
		return core.Undefined, fmt.Errorf("mkdirall %q: %w", p, ErrNotDirectory)
	}
	return cur, nil
}

// Create creates a file at p (creating parent directories as needed) with
// the given content and embedded names, and returns its entity.
func (t *Tree) Create(p core.Path, content string, embedded ...core.Path) (core.Entity, error) {
	if !p.IsValid() {
		return core.Undefined, fmt.Errorf("create: invalid path %q", p)
	}
	dirPath, name := p[:len(p)-1], p[len(p)-1]
	dir, err := t.MkdirAll(dirPath)
	if err != nil {
		return core.Undefined, err
	}
	dirCtx, _ := t.W.ContextOf(dir)
	if !dirCtx.Lookup(name).IsUndefined() {
		return core.Undefined, fmt.Errorf("create %q: %w", p, ErrExists)
	}
	file := t.W.NewObject(string(name))
	data := &FileData{Content: content, Embedded: embedded}
	if err := t.W.SetState(file, data); err != nil {
		return core.Undefined, err
	}
	dirCtx.Bind(name, file)
	return file, nil
}

// FileAt returns the FileData of the file at p.
func (t *Tree) FileAt(p core.Path) (*FileData, error) {
	e, err := t.Lookup(p)
	if err != nil {
		return nil, err
	}
	return t.File(e)
}

// File returns the FileData of a file entity.
func (t *Tree) File(e core.Entity) (*FileData, error) {
	data, ok := t.W.State(e).(*FileData)
	if !ok {
		return nil, fmt.Errorf("%v: not a regular file", e)
	}
	return data, nil
}

// Attach binds name in the directory at `at` to an arbitrary entity —
// typically the root of another tree (a mount or cross-link). Parent links
// of the attached subtree are not rewritten: the subtree keeps its own
// internal structure, which is what lets it be attached in several places
// simultaneously (§6).
func (t *Tree) Attach(at core.Path, name core.Name, e core.Entity) error {
	_, dirCtx, err := t.dirAt(at)
	if err != nil {
		return err
	}
	if !dirCtx.Lookup(name).IsUndefined() {
		return fmt.Errorf("attach %q at %q: %w", name, at, ErrExists)
	}
	dirCtx.Bind(name, e)
	return nil
}

// Detach removes the binding for name in the directory at `at`.
func (t *Tree) Detach(at core.Path, name core.Name) error {
	_, dirCtx, err := t.dirAt(at)
	if err != nil {
		return err
	}
	if dirCtx.Lookup(name).IsUndefined() {
		return fmt.Errorf("detach %q at %q: %w", name, at, ErrNotFound)
	}
	dirCtx.Unbind(name)
	return nil
}

// Move relocates the entity at src to dst (both full paths). The entity and
// the whole subtree below it are untouched; only the bindings change — the
// model's notion of relocation.
func (t *Tree) Move(src, dst core.Path) error {
	if !src.IsValid() || !dst.IsValid() {
		return fmt.Errorf("move: invalid path")
	}
	e, err := t.Lookup(src)
	if err != nil {
		return fmt.Errorf("move source: %w", err)
	}
	_, dstCtx, err := t.dirAt(dst[:len(dst)-1])
	if err != nil {
		return fmt.Errorf("move destination: %w", err)
	}
	dstName := dst[len(dst)-1]
	if !dstCtx.Lookup(dstName).IsUndefined() {
		return fmt.Errorf("move to %q: %w", dst, ErrExists)
	}
	_, srcCtx, err := t.dirAt(src[:len(src)-1])
	if err != nil {
		return fmt.Errorf("move source parent: %w", err)
	}
	srcCtx.Unbind(src[len(src)-1])
	dstCtx.Bind(dstName, e)
	if t.ParentLinks {
		if eCtx, ok := t.W.ContextOf(e); ok {
			parent, _, err := t.dirAt(dst[:len(dst)-1])
			if err == nil {
				eCtx.Bind(ParentName, parent)
			}
		}
	}
	return nil
}

// CopySubtree deep-copies the subtree rooted at the entity at src and binds
// the copy at dst. Directories become fresh context objects; files become
// fresh objects with cloned FileData (embedded names are copied verbatim —
// whether they still mean the same thing afterwards is exactly the
// coherence question of §6). Cycles and internal cross-links are preserved
// via an old→new entity map.
func (t *Tree) CopySubtree(src, dst core.Path) (core.Entity, error) {
	if !dst.IsValid() {
		return core.Undefined, fmt.Errorf("copy: invalid destination %q", dst)
	}
	srcEnt, err := t.Lookup(src)
	if err != nil {
		return core.Undefined, fmt.Errorf("copy source: %w", err)
	}
	_, dstCtx, err := t.dirAt(dst[:len(dst)-1])
	if err != nil {
		return core.Undefined, fmt.Errorf("copy destination: %w", err)
	}
	dstName := dst[len(dst)-1]
	if !dstCtx.Lookup(dstName).IsUndefined() {
		return core.Undefined, fmt.Errorf("copy to %q: %w", dst, ErrExists)
	}
	copied := make(map[core.EntityID]core.Entity)
	dup := t.copyEntity(srcEnt, copied)
	dstCtx.Bind(dstName, dup)
	return dup, nil
}

// copyEntity clones e (directory or file) into the world, reusing clones
// for entities already copied. Entities outside the subtree that the
// subtree points at (e.g. ".." to an outside parent, or a mount of a shared
// tree) are shared, not copied: the copy keeps pointing at the original,
// like a copied symlink target.
func (t *Tree) copyEntity(e core.Entity, copied map[core.EntityID]core.Entity) core.Entity {
	if dup, ok := copied[e.ID]; ok {
		return dup
	}
	if ctx, ok := t.W.ContextOf(e); ok {
		dup, dupCtx := t.W.NewContextObject(t.W.Label(e))
		copied[e.ID] = dup
		for _, n := range ctx.Names() {
			child := ctx.Lookup(n)
			if n == ParentName {
				// Parent links are structural, not content: the copy's
				// parent is set by the caller's binding; interior parent
				// links are rewritten to the copied parents below.
				if dupParent, ok := copied[child.ID]; ok {
					dupCtx.Bind(n, dupParent)
				}
				continue
			}
			dupCtx.Bind(n, t.copyEntity(child, copied))
		}
		return dup
	}
	if data, ok := t.W.State(e).(*FileData); ok {
		dup := t.W.NewObject(t.W.Label(e))
		_ = t.W.SetState(dup, data.Clone())
		copied[e.ID] = dup
		return dup
	}
	// Opaque entity (activity, foreign object): share it.
	copied[e.ID] = e
	return e
}

// List returns the sorted names bound in the directory at p.
func (t *Tree) List(p core.Path) ([]core.Name, error) {
	_, c, err := t.dirAt(p)
	if err != nil {
		return nil, err
	}
	return c.Names(), nil
}

// Walk visits every (path, entity) pair reachable from the root by
// depth-first traversal, skipping parent links and revisits. The visit
// function may return false to prune the subtree below the entity.
func (t *Tree) Walk(visit func(p core.Path, e core.Entity) bool) {
	seen := map[core.EntityID]bool{t.Root.ID: true}
	var rec func(p core.Path, e core.Entity)
	rec = func(p core.Path, e core.Entity) {
		c, ok := t.W.ContextOf(e)
		if !ok {
			return
		}
		for _, n := range c.Names() {
			if n == ParentName {
				continue
			}
			child := c.Lookup(n)
			if child.IsUndefined() || seen[child.ID] {
				continue
			}
			seen[child.ID] = true
			childPath := p.Append(n)
			if !visit(childPath, child) {
				continue
			}
			rec(childPath, child)
		}
	}
	rec(nil, t.Root)
}
