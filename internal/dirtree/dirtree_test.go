package dirtree

import (
	"errors"
	"testing"

	"namecoherence/internal/core"
)

func newTree(t *testing.T) (*core.World, *Tree) {
	t.Helper()
	w := core.NewWorld()
	return w, New(w, "root")
}

func TestMkdirAndLookup(t *testing.T) {
	_, tr := newTree(t)
	d, err := tr.Mkdir(nil, "usr")
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Lookup(core.PathOf("usr"))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("Lookup = %v, want %v", got, d)
	}
}

func TestMkdirDuplicate(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Mkdir(nil, "usr"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Mkdir(nil, "usr"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestMkdirUnderMissingParent(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Mkdir(core.PathOf("nope"), "x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMkdirAll(t *testing.T) {
	_, tr := newTree(t)
	d1, err := tr.MkdirAll(core.ParsePath("a/b/c"))
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent: re-creating returns the same directory.
	d2, err := tr.MkdirAll(core.ParsePath("a/b/c"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("MkdirAll not idempotent")
	}
	if got, err := tr.Lookup(core.ParsePath("a/b")); err != nil || got.IsUndefined() {
		t.Fatalf("intermediate missing: %v %v", got, err)
	}
}

func TestMkdirAllThroughFileFails(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("a/f"), "data"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.ParsePath("a/f/sub")); err == nil {
		t.Fatal("expected error creating directory through a file")
	}
}

func TestCreateAndFileAt(t *testing.T) {
	_, tr := newTree(t)
	inc := core.ParsePath("lib/common.tex")
	f, err := tr.Create(core.ParsePath("doc/main.tex"), "\\input{...}", inc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.FileAt(core.ParsePath("doc/main.tex"))
	if err != nil {
		t.Fatal(err)
	}
	if data.Content != "\\input{...}" {
		t.Fatalf("Content = %q", data.Content)
	}
	if len(data.Embedded) != 1 || !data.Embedded[0].Equal(inc) {
		t.Fatalf("Embedded = %v", data.Embedded)
	}
	if _, err := tr.File(f); err != nil {
		t.Fatal(err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("f"), "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("f"), "2"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestCreateInvalidPath(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(nil, "x"); err == nil {
		t.Fatal("expected error for empty path")
	}
}

func TestFileAtOnDirectoryFails(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Mkdir(nil, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.FileAt(core.PathOf("d")); err == nil {
		t.Fatal("expected error reading a directory as a file")
	}
}

func TestAttachDetach(t *testing.T) {
	w, tr := newTree(t)
	other := New(w, "other-root")
	if _, err := other.Create(core.ParsePath("x/y"), "data"); err != nil {
		t.Fatal(err)
	}

	if err := tr.Attach(nil, "mnt", other.Root); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Lookup(core.ParsePath("mnt/x/y"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := other.Lookup(core.ParsePath("x/y"))
	if got != want {
		t.Fatalf("through-mount lookup = %v, want %v", got, want)
	}

	if err := tr.Attach(nil, "mnt", other.Root); !errors.Is(err, ErrExists) {
		t.Fatalf("double attach err = %v", err)
	}
	if err := tr.Detach(nil, "mnt"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup(core.ParsePath("mnt/x/y")); err == nil {
		t.Fatal("lookup succeeded after detach")
	}
	if err := tr.Detach(nil, "mnt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double detach err = %v", err)
	}
}

func TestSimultaneousAttach(t *testing.T) {
	w, tr := newTree(t)
	sub := New(w, "sub")
	f, err := sub.Create(core.ParsePath("inner/f"), "payload")
	if err != nil {
		t.Fatal(err)
	}
	// The same subtree attached at two different points (§6): both paths
	// reach the same entity.
	if _, err := tr.MkdirAll(core.ParsePath("p1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.ParsePath("p2")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("p1"), "s", sub.Root); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("p2"), "s", sub.Root); err != nil {
		t.Fatal(err)
	}
	e1, err1 := tr.Lookup(core.ParsePath("p1/s/inner/f"))
	e2, err2 := tr.Lookup(core.ParsePath("p2/s/inner/f"))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if e1 != f || e2 != f {
		t.Fatalf("attachments disagree: %v %v want %v", e1, e2, f)
	}
}

func TestMove(t *testing.T) {
	_, tr := newTree(t)
	f, err := tr.Create(core.ParsePath("a/f"), "data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("b")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.ParsePath("a/f"), core.ParsePath("b/g")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup(core.ParsePath("a/f")); err == nil {
		t.Fatal("source still resolves after move")
	}
	got, err := tr.Lookup(core.ParsePath("b/g"))
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("moved entity changed identity: %v want %v", got, f)
	}
}

func TestMoveToExistingFails(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("a"), "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("b"), "2"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.PathOf("a"), core.PathOf("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestMoveSubtreePreservesInterior(t *testing.T) {
	_, tr := newTree(t)
	f, err := tr.Create(core.ParsePath("src/d/f"), "data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("dst")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.ParsePath("src/d"), core.ParsePath("dst/d")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Lookup(core.ParsePath("dst/d/f"))
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatal("interior entity changed identity under relocation")
	}
}

func TestCopySubtree(t *testing.T) {
	_, tr := newTree(t)
	orig, err := tr.Create(core.ParsePath("src/d/f"), "payload", core.ParsePath("a/b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("dst")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CopySubtree(core.ParsePath("src/d"), core.ParsePath("dst/d")); err != nil {
		t.Fatal(err)
	}

	copyEnt, err := tr.Lookup(core.ParsePath("dst/d/f"))
	if err != nil {
		t.Fatal(err)
	}
	if copyEnt == orig {
		t.Fatal("copy shares identity with original")
	}
	origData, _ := tr.FileAt(core.ParsePath("src/d/f"))
	copyData, _ := tr.FileAt(core.ParsePath("dst/d/f"))
	if copyData.Content != origData.Content {
		t.Fatal("content not copied")
	}
	if len(copyData.Embedded) != 1 || !copyData.Embedded[0].Equal(origData.Embedded[0]) {
		t.Fatal("embedded names not copied")
	}
	// Deep copy: mutating the copy's data must not affect the original.
	copyData.Content = "changed"
	origData2, _ := tr.FileAt(core.ParsePath("src/d/f"))
	if origData2.Content != "payload" {
		t.Fatal("copy aliases original data")
	}
}

func TestCopySubtreeToExistingFails(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("src/f"), "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("dst"), "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CopySubtree(core.PathOf("src"), core.PathOf("dst")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestCopySubtreeSharesForeignTargets(t *testing.T) {
	w, tr := newTree(t)
	shared := New(w, "shared")
	sf, err := shared.Create(core.ParsePath("lib"), "shared-lib")
	if err != nil {
		t.Fatal(err)
	}
	_ = sf
	if _, err := tr.MkdirAll(core.ParsePath("src/d")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.ParsePath("src/d"), "vice", shared.Root); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("dst")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CopySubtree(core.ParsePath("src/d"), core.ParsePath("dst/d")); err != nil {
		t.Fatal(err)
	}
	origMnt, _ := tr.Lookup(core.ParsePath("src/d/vice"))
	copyMnt, err := tr.Lookup(core.ParsePath("dst/d/vice"))
	if err != nil {
		t.Fatal(err)
	}
	// A mounted foreign tree is a directory (context object), so the copy
	// clones it structurally; the files below keep their payloads.
	if copyMnt.IsUndefined() {
		t.Fatal("mount not copied")
	}
	_ = origMnt
	got, err := tr.FileAt(core.ParsePath("dst/d/vice/lib"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Content != "shared-lib" {
		t.Fatalf("copied mount content = %q", got.Content)
	}
}

func TestParentLinks(t *testing.T) {
	w := core.NewWorld()
	tr := NewWithParentLinks(w, "root")
	d, err := tr.MkdirAll(core.ParsePath("a/b"))
	if err != nil {
		t.Fatal(err)
	}
	// b/.. resolves to a; a/.. resolves to root; root/.. resolves to root.
	a, err := tr.Lookup(core.PathOf("a"))
	if err != nil {
		t.Fatal(err)
	}
	dCtx, _ := w.ContextOf(d)
	if got := dCtx.Lookup(ParentName); got != a {
		t.Fatalf("b/.. = %v, want %v", got, a)
	}
	got, err := tr.Lookup(core.ParsePath("a/b/../../.."))
	if err != nil {
		t.Fatal(err)
	}
	if got != tr.Root {
		t.Fatalf("root/.. chain = %v, want root", got)
	}
}

func TestMoveRewritesParentLink(t *testing.T) {
	w := core.NewWorld()
	tr := NewWithParentLinks(w, "root")
	if _, err := tr.MkdirAll(core.ParsePath("a/sub")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("b")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.ParsePath("a/sub"), core.ParsePath("b/sub")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Lookup(core.ParsePath("b/sub/.."))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tr.Lookup(core.PathOf("b"))
	if got != b {
		t.Fatalf("moved dir's .. = %v, want %v", got, b)
	}
}

func TestList(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("d/b"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("d/a"), ""); err != nil {
		t.Fatal(err)
	}
	names, err := tr.List(core.PathOf("d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if _, err := tr.List(core.ParsePath("d/a")); err == nil {
		t.Fatal("List of a file should fail")
	}
}

func TestWalk(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("a/f1"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("a/b/f2"), ""); err != nil {
		t.Fatal(err)
	}
	visited := make(map[string]bool)
	tr.Walk(func(p core.Path, e core.Entity) bool {
		visited[p.String()] = true
		return true
	})
	for _, want := range []string{"a", "a/f1", "a/b", "a/b/f2"} {
		if !visited[want] {
			t.Errorf("Walk missed %q", want)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("a/b/f"), ""); err != nil {
		t.Fatal(err)
	}
	var visited []string
	tr.Walk(func(p core.Path, e core.Entity) bool {
		visited = append(visited, p.String())
		return p.String() != "a" // prune below a
	})
	for _, v := range visited {
		if v == "a/b" || v == "a/b/f" {
			t.Fatalf("pruned node %q visited", v)
		}
	}
}

func TestWalkCycleSafe(t *testing.T) {
	w, tr := newTree(t)
	d, err := tr.Mkdir(nil, "d")
	if err != nil {
		t.Fatal(err)
	}
	dCtx, _ := w.ContextOf(d)
	dCtx.Bind("loop", tr.Root) // cycle back to root
	count := 0
	tr.Walk(func(core.Path, core.Entity) bool {
		count++
		return count < 1000
	})
	if count >= 1000 {
		t.Fatal("Walk did not terminate on a cyclic graph")
	}
}

func TestFileDataClone(t *testing.T) {
	f := &FileData{Content: "x", Embedded: []core.Path{core.ParsePath("a/b")}}
	g := f.Clone()
	g.Embedded[0][0] = "z"
	if f.Embedded[0][0] != "a" {
		t.Fatal("Clone aliases embedded paths")
	}
}

func TestLookupTrail(t *testing.T) {
	_, tr := newTree(t)
	f, err := tr.Create(core.ParsePath("a/b/f"), "x")
	if err != nil {
		t.Fatal(err)
	}
	got, trail, err := tr.LookupTrail(core.ParsePath("a/b/f"))
	if err != nil {
		t.Fatal(err)
	}
	if got != f || len(trail) != 3 || trail[2] != f {
		t.Fatalf("got %v trail %v", got, trail)
	}
	// Empty path denotes the root with an empty trail.
	root, trail, err := tr.LookupTrail(nil)
	if err != nil || root != tr.Root || len(trail) != 0 {
		t.Fatalf("root trail = %v %v %v", root, trail, err)
	}
}

func TestFileAtErrors(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.FileAt(core.ParsePath("missing")); err == nil {
		t.Fatal("FileAt on missing path succeeded")
	}
}

func TestCopySubtreeOfPlainFile(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.Create(core.ParsePath("f"), "payload"); err != nil {
		t.Fatal(err)
	}
	dup, err := tr.CopySubtree(core.PathOf("f"), core.PathOf("g"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.File(dup)
	if err != nil || data.Content != "payload" {
		t.Fatalf("copied file: %v %v", data, err)
	}
}

func TestCopySubtreeSharedInterior(t *testing.T) {
	w, tr := newTree(t)
	// src contains the same subdirectory attached twice: the copy must
	// preserve the sharing (both names point at ONE copied dir).
	shared, sharedCtx := w.NewContextObject("shared")
	leaf := w.NewObject("leaf")
	sharedCtx.Bind("leaf", leaf)
	if _, err := tr.MkdirAll(core.PathOf("src")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("src"), "s1", shared); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("src"), "s2", shared); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CopySubtree(core.PathOf("src"), core.PathOf("dup")); err != nil {
		t.Fatal(err)
	}
	c1, err := tr.Lookup(core.ParsePath("dup/s1"))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := tr.Lookup(core.ParsePath("dup/s2"))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("interior sharing lost in copy")
	}
	if c1 == shared {
		t.Fatal("copy aliases the original shared dir")
	}
}

func TestCopySubtreeWithActivityTarget(t *testing.T) {
	w, tr := newTree(t)
	act := w.NewActivity("daemon")
	if _, err := tr.MkdirAll(core.PathOf("src")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("src"), "proc", act); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CopySubtree(core.PathOf("src"), core.PathOf("dup")); err != nil {
		t.Fatal(err)
	}
	// Opaque entities are shared, not copied.
	got, err := tr.Lookup(core.ParsePath("dup/proc"))
	if err != nil || got != act {
		t.Fatalf("activity target: %v %v", got, err)
	}
}

func TestCopySubtreeMissingSource(t *testing.T) {
	_, tr := newTree(t)
	if _, err := tr.CopySubtree(core.PathOf("nope"), core.PathOf("dst")); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := tr.CopySubtree(core.PathOf("nope"), nil); err == nil {
		t.Fatal("invalid destination accepted")
	}
}

func TestMoveInvalidPaths(t *testing.T) {
	_, tr := newTree(t)
	if err := tr.Move(nil, core.PathOf("x")); err == nil {
		t.Fatal("empty source accepted")
	}
	if err := tr.Move(core.PathOf("x"), nil); err == nil {
		t.Fatal("empty destination accepted")
	}
	if err := tr.Move(core.PathOf("missing"), core.PathOf("x")); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := tr.Create(core.ParsePath("f"), ""); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.PathOf("f"), core.ParsePath("no/dir/f")); err == nil {
		t.Fatal("missing destination dir accepted")
	}
}
