package dirtree

import (
	"fmt"
	"math/rand"
	"testing"

	"namecoherence/internal/core"
)

// randomTreeOps drives a tree through a random operation sequence while
// maintaining a shadow model (path string → entity) and checking the
// invariants after every step:
//
//  1. every live shadow path resolves to the recorded entity;
//  2. Walk visits exactly the live shadow paths;
//  3. removed paths no longer resolve.
func TestRandomTreeOpsInvariants(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := core.NewWorld()
			tr := New(w, "root")

			shadowFiles := make(map[string]core.Entity)
			shadowDirs := make(map[string]core.Entity)
			var dirPaths []string // "" = root

			dirAt := func(s string) core.Path { return core.ParsePath(s) }
			dirPaths = append(dirPaths, "")

			check := func(step int) {
				t.Helper()
				for p, want := range shadowFiles {
					got, err := tr.Lookup(core.ParsePath(p))
					if err != nil || got != want {
						t.Fatalf("step %d: file %q = %v (%v), want %v", step, p, got, err, want)
					}
				}
				for p, want := range shadowDirs {
					if p == "" {
						continue
					}
					got, err := tr.Lookup(core.ParsePath(p))
					if err != nil || got != want {
						t.Fatalf("step %d: dir %q = %v (%v), want %v", step, p, got, err, want)
					}
				}
				visited := make(map[string]bool)
				tr.Walk(func(p core.Path, e core.Entity) bool {
					visited[p.String()] = true
					return true
				})
				for p := range shadowFiles {
					if !visited[p] {
						t.Fatalf("step %d: Walk missed file %q", step, p)
					}
				}
				for p := range shadowDirs {
					if p != "" && !visited[p] {
						t.Fatalf("step %d: Walk missed dir %q", step, p)
					}
				}
				if len(visited) != len(shadowFiles)+len(shadowDirs)-1 {
					t.Fatalf("step %d: Walk visited %d, want %d",
						step, len(visited), len(shadowFiles)+len(shadowDirs)-1)
				}
			}
			shadowDirs[""] = tr.Root

			for step := 0; step < 120; step++ {
				parent := dirPaths[rng.Intn(len(dirPaths))]
				name := fmt.Sprintf("e%03d", step)
				child := name
				if parent != "" {
					child = parent + "/" + name
				}
				switch rng.Intn(3) {
				case 0: // mkdir
					d, err := tr.Mkdir(dirAt(parent), core.Name(name))
					if err != nil {
						t.Fatalf("step %d mkdir: %v", step, err)
					}
					shadowDirs[child] = d
					dirPaths = append(dirPaths, child)
				case 1: // create file
					f, err := tr.Create(core.ParsePath(child), "x")
					if err != nil {
						t.Fatalf("step %d create: %v", step, err)
					}
					shadowFiles[child] = f
				case 2: // detach a random file (if any)
					for p := range shadowFiles {
						pp := core.ParsePath(p)
						if err := tr.Detach(pp[:len(pp)-1], pp[len(pp)-1]); err != nil {
							t.Fatalf("step %d detach %q: %v", step, p, err)
						}
						delete(shadowFiles, p)
						break
					}
				}
				check(step)
			}
		})
	}
}

// Moving a subtree preserves every interior entity: the set of (relative
// path, entity) pairs under the subtree is identical before and after.
func TestMovePreservesSubtreeMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := core.NewWorld()
	tr := New(w, "root")

	// Random subtree under src/.
	if _, err := tr.MkdirAll(core.PathOf("src")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		depth := 1 + rng.Intn(3)
		p := core.PathOf("src")
		for d := 0; d < depth; d++ {
			p = p.Append(core.Name(fmt.Sprintf("d%d_%d", i, d)))
		}
		if _, err := tr.Create(p, "x"); err != nil {
			t.Fatal(err)
		}
	}

	collect := func(prefix core.Path) map[string]core.Entity {
		out := make(map[string]core.Entity)
		tr.Walk(func(p core.Path, e core.Entity) bool {
			if p.HasPrefix(prefix) && len(p) > len(prefix) {
				out[p[len(prefix):].String()] = e
			}
			return true
		})
		return out
	}

	before := collect(core.PathOf("src"))
	if _, err := tr.MkdirAll(core.PathOf("dst")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(core.PathOf("src"), core.ParsePath("dst/moved")); err != nil {
		t.Fatal(err)
	}
	after := collect(core.ParsePath("dst/moved"))

	if len(before) != len(after) {
		t.Fatalf("subtree size changed: %d -> %d", len(before), len(after))
	}
	for p, e := range before {
		if after[p] != e {
			t.Fatalf("entity at %q changed: %v -> %v", p, e, after[p])
		}
	}
}

// Copying a subtree preserves its shape and contents while giving every
// interior node a fresh identity.
func TestCopyPreservesShapeFreshIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := core.NewWorld()
	tr := New(w, "root")
	if _, err := tr.MkdirAll(core.PathOf("src")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		depth := 1 + rng.Intn(3)
		p := core.PathOf("src")
		for d := 0; d < depth; d++ {
			p = p.Append(core.Name(fmt.Sprintf("c%d_%d", i, d)))
		}
		if _, err := tr.Create(p, fmt.Sprintf("content-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.CopySubtree(core.PathOf("src"), core.PathOf("dup")); err != nil {
		t.Fatal(err)
	}

	collect := func(prefix core.Path) map[string]core.Entity {
		out := make(map[string]core.Entity)
		tr.Walk(func(p core.Path, e core.Entity) bool {
			if p.HasPrefix(prefix) && len(p) > len(prefix) {
				out[p[len(prefix):].String()] = e
			}
			return true
		})
		return out
	}
	orig := collect(core.PathOf("src"))
	dup := collect(core.PathOf("dup"))
	if len(orig) != len(dup) {
		t.Fatalf("shape differs: %d vs %d", len(orig), len(dup))
	}
	for p, e := range orig {
		d, ok := dup[p]
		if !ok {
			t.Fatalf("copy missing %q", p)
		}
		if d == e {
			t.Fatalf("copy shares identity at %q", p)
		}
		// File payloads must match.
		if data, err := tr.File(e); err == nil {
			dupData, err := tr.File(d)
			if err != nil {
				t.Fatalf("copy at %q is not a file", p)
			}
			if dupData.Content != data.Content {
				t.Fatalf("content differs at %q", p)
			}
		}
	}
}
