package pqi

import (
	"errors"
	"fmt"

	"namecoherence/internal/netsim"
)

// PID is a partially qualified process identifier (naddr, maddr, laddr).
// Zero components are unqualified. The well-formed qualification levels are
// (0,0,0), (0,0,l), (0,m,l) and (n,m,l).
type PID struct {
	Net, Mach, Local uint32
}

// Self is the pid (0,0,0), usable by any process to refer to itself.
var Self = PID{}

// Errors returned by pid operations.
var (
	ErrMalformed    = errors.New("malformed pid qualification")
	ErrUnresolvable = errors.New("pid does not resolve in this context")
	ErrBadLevel     = errors.New("qualification level out of range")
)

// String renders the pid as "(n,m,l)".
func (p PID) String() string {
	return fmt.Sprintf("(%d,%d,%d)", p.Net, p.Mach, p.Local)
}

// Level returns the qualification level: 0 for (0,0,0), 1 for (0,0,l),
// 2 for (0,m,l), 3 for (n,m,l). Malformed pids return -1.
func (p PID) Level() int {
	switch {
	case p.Net == 0 && p.Mach == 0 && p.Local == 0:
		return 0
	case p.Net == 0 && p.Mach == 0:
		return 1
	case p.Net == 0 && p.Local != 0:
		return 2
	case p.Net != 0 && p.Mach != 0 && p.Local != 0:
		return 3
	default:
		return -1
	}
}

// Valid reports whether the pid has one of the four well-formed
// qualification levels.
func (p PID) Valid() bool { return p.Level() >= 0 }

// Absolute resolves the pid in the context of a process at holder: each
// unqualified component is taken from the holder's address. This is the
// meaning of a pid relative to its context of reference.
func Absolute(p PID, holder netsim.Addr) (netsim.Addr, error) {
	switch p.Level() {
	case 0:
		return holder, nil
	case 1:
		return netsim.Addr{Net: holder.Net, Mach: holder.Mach, Local: p.Local}, nil
	case 2:
		return netsim.Addr{Net: holder.Net, Mach: p.Mach, Local: p.Local}, nil
	case 3:
		return netsim.Addr{Net: p.Net, Mach: p.Mach, Local: p.Local}, nil
	default:
		return netsim.Addr{}, fmt.Errorf("absolute of %v: %w", p, ErrMalformed)
	}
}

// Relativize returns the minimally qualified pid that denotes target in the
// context of a process at holder — "qualified only as far as necessary".
func Relativize(target, holder netsim.Addr) PID {
	switch {
	case target == holder:
		return Self
	case target.Net == holder.Net && target.Mach == holder.Mach:
		return PID{Local: target.Local}
	case target.Net == holder.Net:
		return PID{Mach: target.Mach, Local: target.Local}
	default:
		return PID{Net: target.Net, Mach: target.Mach, Local: target.Local}
	}
}

// RelativizeAt returns the pid for target in holder's context at a forced
// qualification level (1..3). It fails if the requested level cannot denote
// the target from the holder (e.g. level 1 across machines). Level 3 is the
// conventional fully qualified baseline. Used by the ablation on
// qualification level.
func RelativizeAt(target, holder netsim.Addr, level int) (PID, error) {
	switch level {
	case 1:
		if target.Net != holder.Net || target.Mach != holder.Mach {
			return PID{}, fmt.Errorf("level 1 pid for %v from %v: %w", target, holder, ErrUnresolvable)
		}
		return PID{Local: target.Local}, nil
	case 2:
		if target.Net != holder.Net {
			return PID{}, fmt.Errorf("level 2 pid for %v from %v: %w", target, holder, ErrUnresolvable)
		}
		return PID{Mach: target.Mach, Local: target.Local}, nil
	case 3:
		return PID{Net: target.Net, Mach: target.Mach, Local: target.Local}, nil
	default:
		return PID{}, fmt.Errorf("level %d: %w", level, ErrBadLevel)
	}
}

// Map implements the R(sender) resolution rule for pids embedded in
// messages: the pid is interpreted in the sender's context and re-expressed
// minimally in the receiver's context, so that it denotes the same process
// for the receiver.
func Map(p PID, sender, receiver netsim.Addr) (PID, error) {
	abs, err := Absolute(p, sender)
	if err != nil {
		return PID{}, fmt.Errorf("map %v: %w", p, err)
	}
	return Relativize(abs, receiver), nil
}
