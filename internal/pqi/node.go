package pqi

import (
	"fmt"
	"sync"

	"namecoherence/internal/netsim"
)

// Ref is a reference to a process, exchanged in messages: a subject label
// (who the reference is supposed to denote) plus a pid valid in the
// holder's context. The subject label is experiment bookkeeping — it lets
// the harness check whether the pid still denotes the intended process —
// and is not visible to the naming scheme itself.
type Ref struct {
	Subject string
	PID     PID
}

// Node is a communicating process holding pid references to peers. It wraps
// a network endpoint; its own address follows renumbering automatically.
type Node struct {
	// Name identifies the node in the experiment directory.
	Name string

	network  *netsim.Network
	endpoint *netsim.Endpoint

	mu   sync.Mutex
	held map[string]PID // subject → pid in this node's context
}

// NewNode registers a node at the given address.
func NewNode(nw *netsim.Network, addr netsim.Addr, name string) (*Node, error) {
	ep, err := nw.Register(addr)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", name, err)
	}
	return &Node{Name: name, network: nw, endpoint: ep, held: make(map[string]PID)}, nil
}

// Addr returns the node's current address (reflects renumbering).
func (n *Node) Addr() netsim.Addr { return n.endpoint.Addr() }

// Close unregisters the node's endpoint.
func (n *Node) Close() { n.endpoint.Close() }

// Hold stores a reference in the node's context.
func (n *Node) Hold(subject string, p PID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.held[subject] = p
}

// Held returns the stored reference for subject.
func (n *Node) Held(subject string) (PID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.held[subject]
	return p, ok
}

// HeldCount returns the number of references held.
func (n *Node) HeldCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.held)
}

// SendRef sends the reference held for subject to the node at `to`.
//
// When mapped is true the embedded pid is translated at the boundary
// (R(sender), the paper's scheme): the receiver stores a pid valid in its
// own context. When false the pid is copied verbatim (the R(receiver)
// baseline): whatever qualification the sender held is what the receiver
// gets, coherent only if the pid happens to be interpretable identically in
// the receiver's context.
func (n *Node) SendRef(to netsim.Addr, subject string, mapped bool) error {
	p, ok := n.Held(subject)
	if !ok {
		return fmt.Errorf("send ref %q: not held", subject)
	}
	out := p
	if mapped {
		var err error
		out, err = Map(p, n.Addr(), to)
		if err != nil {
			return fmt.Errorf("send ref %q: %w", subject, err)
		}
	}
	return n.network.Send(n.Addr(), to, Ref{Subject: subject, PID: out})
}

// Drain receives all pending messages, storing every Ref payload, and
// returns how many refs were stored.
func (n *Node) Drain() int {
	count := 0
	for {
		m, ok := n.endpoint.TryRecv()
		if !ok {
			return count
		}
		if r, ok := m.Payload.(Ref); ok {
			n.Hold(r.Subject, r.PID)
			count++
		}
	}
}

// RefValid reports whether the reference held for subject still denotes the
// process the directory lists under that name: the pid is resolved in this
// node's (current) context and compared against the target's (current)
// address. This is the "does the connection survive" check of E7.
func (n *Node) RefValid(subject string, directory map[string]*Node) bool {
	p, ok := n.Held(subject)
	if !ok {
		return false
	}
	abs, err := Absolute(p, n.Addr())
	if err != nil {
		return false
	}
	target, ok := directory[subject]
	return ok && target.Addr() == abs
}

// ValidFraction returns the fraction of held references that are still
// valid against the directory; 1 if none are held.
func (n *Node) ValidFraction(directory map[string]*Node) float64 {
	n.mu.Lock()
	subjects := make([]string, 0, len(n.held))
	for s := range n.held {
		subjects = append(subjects, s)
	}
	n.mu.Unlock()
	if len(subjects) == 0 {
		return 1
	}
	valid := 0
	for _, s := range subjects {
		if n.RefValid(s, directory) {
			valid++
		}
	}
	return float64(valid) / float64(len(subjects))
}
