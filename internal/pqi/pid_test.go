package pqi

import (
	"errors"
	"testing"
	"testing/quick"

	"namecoherence/internal/netsim"
)

func TestPIDLevelAndValid(t *testing.T) {
	tests := []struct {
		give      PID
		wantLevel int
	}{
		{PID{0, 0, 0}, 0},
		{PID{0, 0, 5}, 1},
		{PID{0, 3, 5}, 2},
		{PID{1, 3, 5}, 3},
		{PID{1, 0, 5}, -1}, // net without machine
		{PID{1, 3, 0}, -1}, // net+machine without local
		{PID{0, 3, 0}, -1}, // machine without local
	}
	for _, tt := range tests {
		t.Run(tt.give.String(), func(t *testing.T) {
			if got := tt.give.Level(); got != tt.wantLevel {
				t.Fatalf("Level = %d, want %d", got, tt.wantLevel)
			}
			if got := tt.give.Valid(); got != (tt.wantLevel >= 0) {
				t.Fatalf("Valid = %v", got)
			}
		})
	}
}

func TestAbsolute(t *testing.T) {
	holder := netsim.Addr{Net: 9, Mach: 8, Local: 7}
	tests := []struct {
		give PID
		want netsim.Addr
	}{
		{PID{0, 0, 0}, holder},
		{PID{0, 0, 3}, netsim.Addr{Net: 9, Mach: 8, Local: 3}},
		{PID{0, 5, 3}, netsim.Addr{Net: 9, Mach: 5, Local: 3}},
		{PID{2, 5, 3}, netsim.Addr{Net: 2, Mach: 5, Local: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.give.String(), func(t *testing.T) {
			got, err := Absolute(tt.give, holder)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Absolute = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := Absolute(PID{1, 0, 5}, holder); !errors.Is(err, ErrMalformed) {
		t.Fatalf("malformed err = %v", err)
	}
}

func TestRelativize(t *testing.T) {
	holder := netsim.Addr{Net: 1, Mach: 2, Local: 3}
	tests := []struct {
		name   string
		target netsim.Addr
		want   PID
	}{
		{name: "self", target: holder, want: PID{}},
		{name: "same machine", target: netsim.Addr{Net: 1, Mach: 2, Local: 9}, want: PID{0, 0, 9}},
		{name: "same network", target: netsim.Addr{Net: 1, Mach: 7, Local: 9}, want: PID{0, 7, 9}},
		{name: "other network", target: netsim.Addr{Net: 4, Mach: 7, Local: 9}, want: PID{4, 7, 9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Relativize(tt.target, holder); got != tt.want {
				t.Fatalf("Relativize = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRelativizeAt(t *testing.T) {
	holder := netsim.Addr{Net: 1, Mach: 2, Local: 3}
	sameMach := netsim.Addr{Net: 1, Mach: 2, Local: 9}
	sameNet := netsim.Addr{Net: 1, Mach: 7, Local: 9}
	otherNet := netsim.Addr{Net: 4, Mach: 7, Local: 9}

	if p, err := RelativizeAt(sameMach, holder, 1); err != nil || p != (PID{0, 0, 9}) {
		t.Fatalf("level1 = %v, %v", p, err)
	}
	if _, err := RelativizeAt(sameNet, holder, 1); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("level1 cross-machine err = %v", err)
	}
	if p, err := RelativizeAt(sameNet, holder, 2); err != nil || p != (PID{0, 7, 9}) {
		t.Fatalf("level2 = %v, %v", p, err)
	}
	if _, err := RelativizeAt(otherNet, holder, 2); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("level2 cross-network err = %v", err)
	}
	if p, err := RelativizeAt(otherNet, holder, 3); err != nil || p != (PID{4, 7, 9}) {
		t.Fatalf("level3 = %v, %v", p, err)
	}
	if _, err := RelativizeAt(otherNet, holder, 0); !errors.Is(err, ErrBadLevel) {
		t.Fatalf("level0 err = %v", err)
	}
	if _, err := RelativizeAt(otherNet, holder, 4); !errors.Is(err, ErrBadLevel) {
		t.Fatalf("level4 err = %v", err)
	}
}

// Property: Absolute(Relativize(target, holder), holder) == target for all
// complete addresses — relativization round-trips.
func TestRelativizeAbsoluteRoundTrip(t *testing.T) {
	f := func(tn, tm, tl, hn, hm, hl uint16) bool {
		target := netsim.Addr{Net: uint32(tn) + 1, Mach: uint32(tm) + 1, Local: uint32(tl) + 1}
		holder := netsim.Addr{Net: uint32(hn) + 1, Mach: uint32(hm) + 1, Local: uint32(hl) + 1}
		p := Relativize(target, holder)
		if !p.Valid() {
			return false
		}
		abs, err := Absolute(p, holder)
		return err == nil && abs == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Map preserves meaning — the mapped pid denotes, in the
// receiver's context, the same process the original denoted in the
// sender's.
func TestMapPreservesMeaning(t *testing.T) {
	f := func(tn, tm, tl, sn, sm, sl, rn, rm, rl uint8) bool {
		target := netsim.Addr{Net: uint32(tn) + 1, Mach: uint32(tm) + 1, Local: uint32(tl) + 1}
		sender := netsim.Addr{Net: uint32(sn) + 1, Mach: uint32(sm) + 1, Local: uint32(sl) + 1}
		receiver := netsim.Addr{Net: uint32(rn) + 1, Mach: uint32(rm) + 1, Local: uint32(rl) + 1}

		p := Relativize(target, sender)
		mapped, err := Map(p, sender, receiver)
		if err != nil {
			return false
		}
		absAtReceiver, err := Absolute(mapped, receiver)
		return err == nil && absAtReceiver == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapMalformed(t *testing.T) {
	s := netsim.Addr{Net: 1, Mach: 1, Local: 1}
	if _, err := Map(PID{1, 0, 1}, s, s); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

// Property: Relativize always yields the minimal qualification — no shorter
// valid pid denotes the target.
func TestRelativizeMinimal(t *testing.T) {
	f := func(tn, tm, tl, hn, hm, hl uint8) bool {
		target := netsim.Addr{Net: uint32(tn) + 1, Mach: uint32(tm) + 1, Local: uint32(tl) + 1}
		holder := netsim.Addr{Net: uint32(hn) + 1, Mach: uint32(hm) + 1, Local: uint32(hl) + 1}
		p := Relativize(target, holder)
		for lvl := 0; lvl < p.Level(); lvl++ {
			var shorter PID
			switch lvl {
			case 0:
				shorter = Self
			case 1:
				shorter = PID{Local: target.Local}
			case 2:
				shorter = PID{Mach: target.Mach, Local: target.Local}
			}
			if abs, err := Absolute(shorter, holder); err == nil && abs == target {
				return false // a shorter pid would have worked
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
