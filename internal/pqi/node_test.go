package pqi

import (
	"testing"

	"namecoherence/internal/netsim"
)

// cluster builds three nodes: a and b on machine 1, c on machine 2, all on
// network 1.
func cluster(t *testing.T) (nw *netsim.Network, a, b, c *Node, dir map[string]*Node) {
	t.Helper()
	nw = netsim.NewNetwork()
	var err error
	a, err = NewNode(nw, netsim.Addr{Net: 1, Mach: 1, Local: 1}, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewNode(nw, netsim.Addr{Net: 1, Mach: 1, Local: 2}, "b")
	if err != nil {
		t.Fatal(err)
	}
	c, err = NewNode(nw, netsim.Addr{Net: 1, Mach: 2, Local: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	dir = map[string]*Node{"a": a, "b": b, "c": c}
	return nw, a, b, c, dir
}

func TestNodeHoldAndValidity(t *testing.T) {
	_, a, b, _, dir := cluster(t)
	a.Hold("b", Relativize(b.Addr(), a.Addr()))
	if !a.RefValid("b", dir) {
		t.Fatal("fresh ref invalid")
	}
	if a.RefValid("c", dir) {
		t.Fatal("unheld ref reported valid")
	}
	if a.HeldCount() != 1 {
		t.Fatalf("HeldCount = %d", a.HeldCount())
	}
}

func TestSendRefMapped(t *testing.T) {
	_, a, b, c, dir := cluster(t)
	// a holds a minimally qualified ref to b (same machine: (0,0,2)).
	a.Hold("b", Relativize(b.Addr(), a.Addr()))
	// a sends the ref to c on another machine, with boundary mapping.
	if err := a.SendRef(c.Addr(), "b", true); err != nil {
		t.Fatal(err)
	}
	if got := c.Drain(); got != 1 {
		t.Fatalf("Drain = %d", got)
	}
	// c's stored pid must denote b in c's context.
	if !c.RefValid("b", dir) {
		t.Fatal("mapped ref not valid at receiver")
	}
	p, _ := c.Held("b")
	if p.Level() != 2 {
		t.Fatalf("mapped pid %v has level %d, want 2 (same network, other machine)", p, p.Level())
	}
}

func TestSendRefUnmappedIncoherent(t *testing.T) {
	_, a, b, c, dir := cluster(t)
	a.Hold("b", Relativize(b.Addr(), a.Addr())) // (0,0,2) in a's context
	// Without mapping (R(receiver) baseline), c interprets (0,0,2) in its
	// own context: machine 2 local 2 — the wrong process (or nothing).
	if err := a.SendRef(c.Addr(), "b", false); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if c.RefValid("b", dir) {
		t.Fatal("unmapped partially qualified ref should be incoherent at receiver")
	}
}

func TestSendRefSelf(t *testing.T) {
	_, a, _, c, dir := cluster(t)
	a.Hold("a", Self)
	if err := a.SendRef(c.Addr(), "a", true); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if !c.RefValid("a", dir) {
		t.Fatal("mapped self-ref not valid at receiver")
	}
}

func TestSendRefErrors(t *testing.T) {
	_, a, _, c, _ := cluster(t)
	if err := a.SendRef(c.Addr(), "nope", true); err == nil {
		t.Fatal("sending unheld ref should fail")
	}
}

func TestRenumberSurvival(t *testing.T) {
	nw, a, b, c, dir := cluster(t)

	// Intra-machine connection with PQI: a→b as (0,0,2).
	a.Hold("b", Relativize(b.Addr(), a.Addr()))
	// Same connection fully qualified.
	fq, err := RelativizeAt(b.Addr(), a.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	a.Hold("b-fq", fq)
	dir["b-fq"] = b
	// Cross-machine connection from c to a, fully qualified (minimal for
	// cross-machine within one network is level 2; both break equally).
	c.Hold("a", Relativize(a.Addr(), c.Addr()))

	// Renumber machine 1 → machine 9.
	if _, err := nw.RenumberMachine(1, 1, 9); err != nil {
		t.Fatal(err)
	}

	// The partially qualified intra-machine ref survives: both endpoints
	// moved together.
	if !a.RefValid("b", dir) {
		t.Fatal("PQI intra-machine ref did not survive renumbering")
	}
	// The fully qualified ref is stale: it still names machine 1.
	if a.RefValid("b-fq", dir) {
		t.Fatal("fully qualified ref survived renumbering")
	}
	// The external ref breaks in either scheme (the holder is outside the
	// renamed machine).
	if c.RefValid("a", dir) {
		t.Fatal("external ref survived renumbering")
	}
}

func TestValidFraction(t *testing.T) {
	nw, a, b, _, dir := cluster(t)
	a.Hold("b", Relativize(b.Addr(), a.Addr()))
	fq, _ := RelativizeAt(b.Addr(), a.Addr(), 3)
	a.Hold("b-fq", fq)
	dir["b-fq"] = b

	if got := a.ValidFraction(dir); got != 1 {
		t.Fatalf("pre-renumber ValidFraction = %v", got)
	}
	if _, err := nw.RenumberMachine(1, 1, 9); err != nil {
		t.Fatal(err)
	}
	if got := a.ValidFraction(dir); got != 0.5 {
		t.Fatalf("post-renumber ValidFraction = %v, want 0.5", got)
	}
}

func TestValidFractionEmpty(t *testing.T) {
	_, a, _, _, dir := cluster(t)
	if got := a.ValidFraction(dir); got != 1 {
		t.Fatalf("empty ValidFraction = %v, want 1", got)
	}
}

func TestNodeClose(t *testing.T) {
	nw, a, _, _, _ := cluster(t)
	a.Close()
	if nw.EndpointCount() != 2 {
		t.Fatalf("EndpointCount = %d after close", nw.EndpointCount())
	}
}
