// Package pqi implements partially qualified identifiers for communicating
// processes (§6 Example 1 of the paper; Radia & Pachl, "Identifiers for
// End-Points in Dynamically Connected Systems").
//
// A process with local address l on machine m and network n has, depending
// on the context of reference, the pids (0,0,0), (0,0,l), (0,m,l) and
// (n,m,l): pids are qualified only as far as necessary. A pid embedded in a
// message is valid in the context of the sender, but not necessarily of the
// receiver; the resolution rule is R(sender), implemented by mapping the
// embedded pid at the communication boundary (Map).
//
// The advantage over conventional fully qualified pids: when a machine or
// network is renumbered, pids of local processes within the renamed
// subsystem remain valid, so the subsystem maintains its internal
// connections and does not have to be shut down. Experiment E7 measures
// exactly this.
package pqi
