package treespec

import (
	"errors"
	"strings"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

const demoSpec = `
# a demo tree
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/passwd "root:0"
dir /doc/chapters
file /doc/chapters/ch1 "chapter one"
file /doc/main "title"
embed /doc/main "chapters/ch1"
link /mnt /usr
`

func TestBuildDemo(t *testing.T) {
	w := core.NewWorld()
	tr, err := Build(demoSpec, w, "demo")
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.FileAt(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if data.Content != "#!ls" {
		t.Fatalf("content = %q", data.Content)
	}
	main, err := tr.FileAt(core.ParsePath("doc/main"))
	if err != nil {
		t.Fatal(err)
	}
	if len(main.Embedded) != 1 || main.Embedded[0].String() != "chapters/ch1" {
		t.Fatalf("embedded = %v", main.Embedded)
	}
	// The link shares the entity.
	viaMnt, err := tr.Lookup(core.ParsePath("mnt/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := tr.Lookup(core.ParsePath("usr/bin/ls"))
	if viaMnt != direct {
		t.Fatal("link does not share the entity")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "unknown directive", give: "frob /x"},
		{name: "dir without path", give: "dir "},
		{name: "file without content", give: "file /x"},
		{name: "file with bad quoting", give: `file /x unquoted`},
		{name: "embed missing target", give: `embed /nope "x"`},
		{name: "embed invalid name", give: "file /f \"c\"\nembed /f \"\""},
		{name: "link wrong arity", give: "link /a"},
		{name: "link bad source", give: "link / /x"},
		{name: "link missing target", give: "link /a /nope"},
		{name: "file duplicate", give: "file /f \"a\"\nfile /f \"b\""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := core.NewWorld()
			if _, err := Build(tt.give, w, "t"); err == nil {
				t.Fatalf("spec %q accepted", tt.give)
			}
		})
	}
}

func TestParseSyntaxErrorIsTyped(t *testing.T) {
	w := core.NewWorld()
	_, err := Build("frob /x", w, "t")
	if !errors.Is(err, ErrSyntax) {
		t.Fatalf("err = %v, want ErrSyntax", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err lacks line number: %v", err)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	w := core.NewWorld()
	tr, err := Build(demoSpec, w, "demo")
	if err != nil {
		t.Fatal(err)
	}
	dump1, err := DumpString(tr)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := Build(dump1, w2, "demo2")
	if err != nil {
		t.Fatalf("re-parse failed: %v\nspec:\n%s", err, dump1)
	}
	dump2, err := DumpString(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if dump1 != dump2 {
		t.Fatalf("round trip not a fixed point:\n--- first\n%s--- second\n%s", dump1, dump2)
	}
	// Structure agrees too.
	if _, err := tr2.Lookup(core.ParsePath("mnt/bin/ls")); err != nil {
		t.Fatal("link lost in round trip")
	}
}

func TestDumpQuotesTrickyContent(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "t")
	tricky := "line1\nline2 \"quoted\" \tend"
	if _, err := tr.Create(core.ParsePath("f"), tricky); err != nil {
		t.Fatal(err)
	}
	dump, err := DumpString(tr)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := Build(dump, w2, "t2")
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr2.FileAt(core.ParsePath("f"))
	if err != nil {
		t.Fatal(err)
	}
	if data.Content != tricky {
		t.Fatalf("content = %q, want %q", data.Content, tricky)
	}
}

func TestDumpOpaqueEntities(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "t")
	act := w.NewActivity("daemon")
	if err := tr.Attach(nil, "proc", act); err != nil {
		t.Fatal(err)
	}
	dump, err := DumpString(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "# opaque /proc") {
		t.Fatalf("opaque entity not noted:\n%s", dump)
	}
	// The dump still parses (the comment is skipped).
	if _, err := Build(dump, core.NewWorld(), "t2"); err != nil {
		t.Fatal(err)
	}
}

func TestParseEmptyAndComments(t *testing.T) {
	w := core.NewWorld()
	tr, err := Build("\n# only comments\n\n", w, "t")
	if err != nil {
		t.Fatal(err)
	}
	names, err := tr.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("names = %v", names)
	}
}
