package treespec

import (
	"strings"
	"testing"

	"namecoherence/internal/core"
)

const shardedSpec = `
# demo cluster spec
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/passwd "root:0:staff"
file /etc/motd "welcome"
dir /home/alice
file /home/alice/notes "todo"
file /srv/data "payload"
link /mnt /usr
`

func TestSplitCoversEveryLine(t *testing.T) {
	plan, err := Split(shardedSpec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Specs) != 3 {
		t.Fatalf("Specs = %d, want 3", len(plan.Specs))
	}
	total := 0
	for _, s := range plan.Specs {
		for _, line := range strings.Split(s, "\n") {
			if strings.TrimSpace(line) != "" {
				total++
			}
		}
	}
	if total != 8 {
		t.Fatalf("lines across shards = %d, want 8", total)
	}
	// Every prefix is routed, and the routes point inside range.
	for _, p := range []string{"usr", "etc", "home", "srv", "mnt"} {
		shard, ok := plan.Prefixes[p]
		if !ok {
			t.Fatalf("prefix %q unrouted", p)
		}
		if shard < 0 || shard >= 3 {
			t.Fatalf("prefix %q -> shard %d out of range", p, shard)
		}
	}
}

func TestSplitColocatesLinkedPrefixes(t *testing.T) {
	plan, err := Split(shardedSpec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Prefixes["mnt"] != plan.Prefixes["usr"] {
		t.Fatalf("link prefixes split apart: mnt -> %d, usr -> %d",
			plan.Prefixes["mnt"], plan.Prefixes["usr"])
	}
	// The shard holding usr must be able to build its spec (the link's
	// target lives there).
	w := core.NewWorld()
	tr, err := Build(plan.Specs[plan.Prefixes["usr"]], w, "shard-usr")
	if err != nil {
		t.Fatalf("linked shard spec does not build: %v", err)
	}
	if _, err := tr.Lookup(core.ParsePath("mnt/bin/ls")); err != nil {
		t.Fatalf("link broken after split: %v", err)
	}
}

func TestSplitShardsBuildAndPartition(t *testing.T) {
	plan, err := Split(shardedSpec, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i, spec := range plan.Specs {
		w := core.NewWorld()
		tr, err := Build(spec, w, "shard")
		if err != nil {
			t.Fatalf("shard %d spec does not build: %v", i, err)
		}
		names, err := tr.List(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			seen[string(n)]++
			if want := plan.Prefixes[string(n)]; want != i {
				t.Fatalf("prefix %q built on shard %d but routed to %d", n, i, want)
			}
		}
	}
	for _, p := range []string{"usr", "etc", "home", "srv", "mnt"} {
		if seen[p] != 1 {
			t.Fatalf("prefix %q served by %d shards, want exactly 1", p, seen[p])
		}
	}
}

func TestSplitSingleShardIsWhole(t *testing.T) {
	plan, err := Split(shardedSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld()
	tr, err := Build(plan.Specs[0], w, "whole")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"usr/bin/ls", "etc/passwd", "home/alice/notes", "srv/data", "mnt/bin/ls"} {
		if _, err := tr.Lookup(core.ParsePath(path)); err != nil {
			t.Fatalf("lookup %q: %v", path, err)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, err := Split(shardedSpec, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(shardedSpec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range a.Prefixes {
		if b.Prefixes[p] != s {
			t.Fatalf("nondeterministic routing for %q: %d vs %d", p, s, b.Prefixes[p])
		}
	}
	for i := range a.Specs {
		if a.Specs[i] != b.Specs[i] {
			t.Fatalf("nondeterministic spec for shard %d", i)
		}
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	if _, err := Split(shardedSpec, 0); err == nil {
		t.Fatal("Split with 0 shards should fail")
	}
	if _, err := Split("frobnicate /x\n", 2); err == nil {
		t.Fatal("Split of a bad directive should fail")
	}
	if _, err := Split("link /only-one\n", 2); err == nil {
		t.Fatal("Split of a malformed link should fail")
	}
}
