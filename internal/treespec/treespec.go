package treespec

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("treespec syntax error")

// Parse reads a spec and builds a tree in the world.
func Parse(r io.Reader, w *core.World, label string) (*dirtree.Tree, error) {
	tr := dirtree.New(w, label)
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := applyLine(tr, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("read spec: %w", err)
	}
	return tr, nil
}

// Build parses a spec given as a string.
func Build(spec string, w *core.World, label string) (*dirtree.Tree, error) {
	return Parse(strings.NewReader(spec), w, label)
}

func applyLine(tr *dirtree.Tree, line string) error {
	directive, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch directive {
	case "dir":
		p := core.ParsePath(rest)
		if !p.IsValid() {
			return fmt.Errorf("dir %q: %w", rest, ErrSyntax)
		}
		_, err := tr.MkdirAll(p)
		return err
	case "file":
		pathStr, quoted, err := splitPathAndQuoted(rest)
		if err != nil {
			return fmt.Errorf("file: %w", err)
		}
		p := core.ParsePath(pathStr)
		if !p.IsValid() {
			return fmt.Errorf("file %q: %w", pathStr, ErrSyntax)
		}
		_, err = tr.Create(p, quoted)
		return err
	case "embed":
		pathStr, quoted, err := splitPathAndQuoted(rest)
		if err != nil {
			return fmt.Errorf("embed: %w", err)
		}
		data, err := tr.FileAt(core.ParsePath(pathStr))
		if err != nil {
			return fmt.Errorf("embed target: %w", err)
		}
		emb := core.ParsePath(quoted)
		if !emb.IsValid() {
			return fmt.Errorf("embed name %q: %w", quoted, ErrSyntax)
		}
		data.Embedded = append(data.Embedded, emb)
		return nil
	case "link":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return fmt.Errorf("link needs two paths: %w", ErrSyntax)
		}
		newPath := core.ParsePath(fields[0])
		if !newPath.IsValid() {
			return fmt.Errorf("link path %q: %w", fields[0], ErrSyntax)
		}
		target, err := tr.Lookup(core.ParsePath(fields[1]))
		if err != nil {
			return fmt.Errorf("link target: %w", err)
		}
		if _, err := tr.MkdirAll(newPath[:len(newPath)-1]); err != nil {
			return err
		}
		return tr.Attach(newPath[:len(newPath)-1], newPath[len(newPath)-1], target)
	default:
		return fmt.Errorf("directive %q: %w", directive, ErrSyntax)
	}
}

// splitPathAndQuoted splits `/a/b "quoted rest"` into path and unquoted
// content.
func splitPathAndQuoted(s string) (path, content string, err error) {
	path, rest, found := strings.Cut(s, " ")
	if !found {
		return "", "", fmt.Errorf("missing quoted argument: %w", ErrSyntax)
	}
	rest = strings.TrimSpace(rest)
	content, err = strconv.Unquote(rest)
	if err != nil {
		return "", "", fmt.Errorf("bad quoted argument %s: %w", rest, ErrSyntax)
	}
	return path, content, nil
}

// Dump serializes the tree in spec format. Directories come before their
// children; sharing (an entity reachable by several paths) is emitted as
// link lines for every path after the first.
func Dump(tr *dirtree.Tree, out io.Writer) error {
	firstPath := make(map[core.EntityID]string)
	var lines []string

	var walk func(prefix core.Path, e core.Entity) error
	walk = func(prefix core.Path, e core.Entity) error {
		ctx, ok := tr.W.ContextOf(e)
		if !ok {
			return nil
		}
		names := ctx.Names()
		sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
		for _, n := range names {
			if n == dirtree.ParentName {
				continue
			}
			child := ctx.Lookup(n)
			if child.IsUndefined() {
				continue
			}
			childPath := prefix.Append(n)
			pathStr := "/" + childPath.String()
			if prev, seen := firstPath[child.ID]; seen {
				lines = append(lines, fmt.Sprintf("link %s %s", pathStr, prev))
				continue
			}
			firstPath[child.ID] = pathStr
			if data, err := tr.File(child); err == nil {
				lines = append(lines, fmt.Sprintf("file %s %s", pathStr, strconv.Quote(data.Content)))
				for _, emb := range data.Embedded {
					lines = append(lines, fmt.Sprintf("embed %s %s", pathStr, strconv.Quote(emb.String())))
				}
				continue
			}
			if _, ok := tr.W.ContextOf(child); ok {
				lines = append(lines, "dir "+pathStr)
				if err := walk(childPath, child); err != nil {
					return err
				}
				continue
			}
			// Opaque entity (activity, foreign object): not representable;
			// emit a comment so dumps stay lossless about their limits.
			lines = append(lines, fmt.Sprintf("# opaque %s (%v)", pathStr, child))
		}
		return nil
	}
	if err := walk(nil, tr.Root); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(out, l); err != nil {
			return err
		}
	}
	return nil
}

// DumpString is Dump into a string.
func DumpString(tr *dirtree.Tree) (string, error) {
	var sb strings.Builder
	if err := Dump(tr, &sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}
