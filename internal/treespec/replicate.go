package treespec

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// BuildReplicas builds r independent copies of spec in w and registers
// every pair of corresponding entities (same path, distinct entity) in one
// replica group. The copies are therefore weakly coherent by construction
// (§3): a name resolved at any replica denotes a replica of the same
// replicated object, which is exactly what lets a replicated shard answer
// from whichever server is alive.
func BuildReplicas(spec string, w *core.World, label string, r int) ([]*dirtree.Tree, error) {
	if r <= 0 {
		return nil, fmt.Errorf("replica count %d: %w", r, ErrSyntax)
	}
	trees := make([]*dirtree.Tree, r)
	for i := range trees {
		lbl := label
		if r > 1 {
			lbl = fmt.Sprintf("%s-r%d", label, i)
		}
		t, err := Build(spec, w, lbl)
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		trees[i] = t
	}
	if r > 1 {
		if err := GroupReplicas(w, trees); err != nil {
			return nil, err
		}
	}
	return trees, nil
}

// GroupReplicas walks the primary tree and, for every path it binds, puts
// the entities the other trees resolve that path to into one replica group
// with the primary's entity. Aliased paths (links) resolve to an entity
// already grouped and are skipped, so each entity joins at most one group.
// It is exported for callers that obtain structurally identical trees some
// other way than BuildReplicas — e.g. restoring each replica from the same
// content-addressed snapshot root.
func GroupReplicas(w *core.World, trees []*dirtree.Tree) error {
	var paths []core.Path
	trees[0].Walk(func(p core.Path, _ core.Entity) bool {
		paths = append(paths, p.Clone())
		return true
	})
	groups := make(map[core.EntityID]core.GroupID)
	for _, p := range paths {
		primary, err := trees[0].Lookup(p)
		if err != nil {
			return fmt.Errorf("replica group %q: %w", p, err)
		}
		for i, t := range trees[1:] {
			e, err := t.Lookup(p)
			if err != nil {
				return fmt.Errorf("replica %d missing %q: %w", i+1, p, err)
			}
			if e == primary {
				continue // shared entity (e.g. an attached external root)
			}
			if _, grouped := w.ReplicaGroup(e); grouped {
				continue // reached via an alias path, already grouped
			}
			g, ok := groups[primary.ID]
			if !ok {
				g, err = w.NewReplicaGroup(primary, e)
				if err != nil {
					return fmt.Errorf("replica group %q: %w", p, err)
				}
				groups[primary.ID] = g
				continue
			}
			if err := w.AddReplica(g, e); err != nil {
				return fmt.Errorf("replica group %q: %w", p, err)
			}
		}
	}
	return nil
}
