package treespec

import (
	"bufio"
	"fmt"
	"strings"
)

// ShardPlan is the result of splitting one treespec across n shards by
// first-component prefix (the DCE-cell style partition of §5.2: each shard
// administers whole top-level subtrees of the shared graph).
type ShardPlan struct {
	// Specs[i] is the treespec of the subtrees shard i serves.
	Specs []string
	// Prefixes maps a name's first component to its shard.
	Prefixes map[string]int
	// Default is the shard for names whose first component has no entry.
	Default int
}

// Split partitions spec across n shards. Every top-level prefix is assigned
// to exactly one shard; link lines force their two prefixes onto the same
// shard (a cross-directory link must live where its target lives), and the
// remaining prefix groups are dealt round-robin in order of first
// appearance, so the split is deterministic. The default shard is 0.
func Split(spec string, n int) (*ShardPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard count %d: %w", n, ErrSyntax)
	}

	type specLine struct {
		text     string
		prefixes []string
	}
	var lines []specLine
	var order []string           // prefixes in first-appearance order
	group := map[string]string{} // union-find parent, keyed by prefix

	var find func(p string) string
	find = func(p string) string {
		if group[p] != p {
			group[p] = find(group[p])
		}
		return group[p]
	}
	note := func(p string) {
		if _, ok := group[p]; !ok {
			group[p] = p
			order = append(order, p)
		}
	}

	scanner := bufio.NewScanner(strings.NewReader(spec))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		prefixes, err := linePrefixes(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		for _, p := range prefixes {
			note(p)
		}
		// A line naming several prefixes (link) welds them together.
		for _, p := range prefixes[1:] {
			group[find(p)] = find(prefixes[0])
		}
		lines = append(lines, specLine{text: line, prefixes: prefixes})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("read spec: %w", err)
	}

	// Deal prefix groups to shards round-robin, in first-appearance order
	// of each group's representative.
	shardOf := make(map[string]int)
	next := 0
	for _, p := range order {
		root := find(p)
		if _, done := shardOf[root]; !done {
			shardOf[root] = next % n
			next++
		}
	}

	plan := &ShardPlan{
		Specs:    make([]string, n),
		Prefixes: make(map[string]int, len(order)),
		Default:  0,
	}
	for _, p := range order {
		plan.Prefixes[p] = shardOf[find(p)]
	}
	builders := make([]strings.Builder, n)
	for _, l := range lines {
		shard := plan.Default
		if len(l.prefixes) > 0 {
			shard = plan.Prefixes[l.prefixes[0]]
		}
		builders[shard].WriteString(l.text)
		builders[shard].WriteByte('\n')
	}
	for i := range builders {
		plan.Specs[i] = builders[i].String()
	}
	return plan, nil
}

// linePrefixes returns the first components of the paths a spec line binds
// (not the names embedded as content: those are data, resolved through a
// client that routes across the whole cluster).
func linePrefixes(line string) ([]string, error) {
	directive, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch directive {
	case "dir":
		p, err := firstComponent(rest)
		if err != nil {
			return nil, err
		}
		return []string{p}, nil
	case "file", "embed":
		pathStr, _, err := splitPathAndQuoted(rest)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", directive, err)
		}
		p, err := firstComponent(pathStr)
		if err != nil {
			return nil, err
		}
		return []string{p}, nil
	case "link":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return nil, fmt.Errorf("link needs two paths: %w", ErrSyntax)
		}
		a, err := firstComponent(fields[0])
		if err != nil {
			return nil, err
		}
		b, err := firstComponent(fields[1])
		if err != nil {
			return nil, err
		}
		if a == b {
			return []string{a}, nil
		}
		return []string{a, b}, nil
	default:
		return nil, fmt.Errorf("directive %q: %w", directive, ErrSyntax)
	}
}

// firstComponent returns the first component of a textual path.
func firstComponent(s string) (string, error) {
	for _, part := range strings.Split(s, "/") {
		if part != "" {
			return part, nil
		}
	}
	return "", fmt.Errorf("path %q has no components: %w", s, ErrSyntax)
}
