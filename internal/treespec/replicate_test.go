package treespec

import (
	"testing"

	"namecoherence/internal/core"
)

const replicaSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/passwd "root"
link /mnt /usr
`

func TestBuildReplicasGroupsCorrespondingEntities(t *testing.T) {
	w := core.NewWorld()
	trees, err := BuildReplicas(replicaSpec, w, "shard0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(trees))
	}
	for _, raw := range []string{"usr", "usr/bin", "usr/bin/ls", "etc/passwd", "mnt/bin/ls"} {
		p := core.ParsePath(raw)
		e0, err := trees[0].Lookup(p)
		if err != nil {
			t.Fatalf("replica 0 lookup %s: %v", raw, err)
		}
		for i, tr := range trees[1:] {
			e, err := tr.Lookup(p)
			if err != nil {
				t.Fatalf("replica %d lookup %s: %v", i+1, raw, err)
			}
			if e == e0 {
				t.Fatalf("%s: replicas %d and 0 share one entity — not replicated", raw, i+1)
			}
			if !w.SameReplica(e0, e) {
				t.Fatalf("%s: replica %d entity %v not same-replica with %v", raw, i+1, e, e0)
			}
		}
	}
	// Entities of different paths must not be welded into one group.
	ls0, _ := trees[0].Lookup(core.ParsePath("usr/bin/ls"))
	passwd1, _ := trees[1].Lookup(core.ParsePath("etc/passwd"))
	if w.SameReplica(ls0, passwd1) {
		t.Fatal("distinct files grouped as replicas")
	}
}

func TestBuildReplicasSingleCopyHasNoGroups(t *testing.T) {
	w := core.NewWorld()
	trees, err := BuildReplicas(replicaSpec, w, "solo", 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := trees[0].Lookup(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if _, grouped := w.ReplicaGroup(e); grouped {
		t.Fatal("single replica registered a group")
	}
}

func TestBuildReplicasRejectsBadInput(t *testing.T) {
	w := core.NewWorld()
	if _, err := BuildReplicas(replicaSpec, w, "x", 0); err == nil {
		t.Fatal("0 replicas should fail")
	}
	if _, err := BuildReplicas("bogus line\n", w, "x", 2); err == nil {
		t.Fatal("bad spec should fail")
	}
}
