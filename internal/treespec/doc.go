// Package treespec defines a small line-oriented text format for
// describing naming trees, used by the command-line tools to build
// exported trees and to snapshot existing ones.
//
// Format (one directive per line, '#' starts a comment):
//
//	dir   /usr/bin                    create a directory (and parents)
//	file  /usr/bin/ls "#!ls"          create a file with quoted content
//	embed /doc/main "chapters/ch1"    append an embedded name to a file
//	link  /mnt/shared /usr            bind an additional name for the
//	                                  entity at an existing path
//
// Dump serializes a tree back into the format; Parse(Dump(t)) reproduces
// the tree's structure, file contents, embedded names and sharing.
package treespec
