// Package federation implements §5.3 and Figure 5: autonomous systems, each
// with its own shared naming graph, connected by cross-links.
//
// The context of each activity is still based on its local system, extended
// to allow access to the remote naming graph; there are no global names
// between systems unless they happen to use the same prefix for a shared
// entity. Incoherence arises when names are exchanged across the boundary.
//
// The package also provides the paper's "mapping solution": a PrefixMapper,
// the closure mechanism used by humans to address incoherence by rewriting
// names with prefixes such as /org2/users when crossing scope boundaries
// (§7).
package federation
