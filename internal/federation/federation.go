package federation

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/machine"
	"namecoherence/internal/sharedns"
)

// ErrUnknownSystem is returned for systems the federation does not contain.
var ErrUnknownSystem = errors.New("unknown system")

// Federation is a set of named autonomous systems sharing one world.
type Federation struct {
	// World is the common world.
	World *core.World

	mu      sync.Mutex
	systems map[string]*sharedns.System
	order   []string
}

// New returns an empty federation.
func New(w *core.World) *Federation {
	return &Federation{World: w, systems: make(map[string]*sharedns.System)}
}

// AddSystem registers an autonomous system under a federation-wide name.
func (f *Federation) AddSystem(name string, s *sharedns.System) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.systems[name]; ok {
		return fmt.Errorf("add system %q: already present", name)
	}
	f.systems[name] = s
	f.order = append(f.order, name)
	return nil
}

// System returns the named system.
func (f *Federation) System(name string) (*sharedns.System, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.systems[name]
	if !ok {
		return nil, fmt.Errorf("system %q: %w", name, ErrUnknownSystem)
	}
	return s, nil
}

// SystemNames returns the system names in registration order.
func (f *Federation) SystemNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// CrossLink extends the naming graphs of `fromSystem`'s clients with access
// to an entity of `toSystem`: the entity at remotePath inside one of
// toSystem's shared spaces (selected by spaceName) is attached under
// linkName in the local root of every client of fromSystem (Figure 5).
func (f *Federation) CrossLink(fromSystem, linkName, toSystem string, spaceName core.Name, remotePath string) error {
	from, err := f.System(fromSystem)
	if err != nil {
		return fmt.Errorf("cross-link: %w", err)
	}
	to, err := f.System(toSystem)
	if err != nil {
		return fmt.Errorf("cross-link: %w", err)
	}
	var target core.Entity
	for _, sp := range to.Spaces() {
		if sp.Name != spaceName {
			continue
		}
		_, p := core.SplitPathString(remotePath)
		e, err := sp.Tree.Lookup(p)
		if err != nil {
			return fmt.Errorf("cross-link target %q in space %q: %w", remotePath, spaceName, err)
		}
		target = e
		break
	}
	if target.IsUndefined() {
		return fmt.Errorf("cross-link: space %q of %q: %w", spaceName, toSystem, ErrUnknownSystem)
	}
	return from.AttachExistingSpace(core.Name(linkName), target)
}

// PrefixRule rewrites one absolute-name prefix into another.
type PrefixRule struct {
	// Src is the prefix a name must start with, e.g. "/users".
	Src core.Path
	// Dst is the replacement prefix, e.g. "/org2/users".
	Dst core.Path
}

// PrefixMapper is the human closure mechanism of §7: a table of prefix
// rewrites applied to names that cross a scope boundary. "This is
// acceptable if mapping is required infrequently and the mapping rules are
// simple and intuitive."
type PrefixMapper struct {
	mu    sync.Mutex
	rules []PrefixRule
}

// NewPrefixMapper returns an empty mapper.
func NewPrefixMapper() *PrefixMapper {
	return &PrefixMapper{}
}

// AddRule adds a rewrite from srcPrefix to dstPrefix (both absolute names).
func (pm *PrefixMapper) AddRule(srcPrefix, dstPrefix string) {
	_, src := core.SplitPathString(srcPrefix)
	_, dst := core.SplitPathString(dstPrefix)
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.rules = append(pm.rules, PrefixRule{Src: src, Dst: dst})
}

// Map rewrites an absolute name using the longest matching source prefix.
// It reports whether any rule applied.
func (pm *PrefixMapper) Map(name string) (string, bool) {
	abs, p := core.SplitPathString(name)
	if !abs {
		return name, false
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	best := -1
	bestLen := -1
	for i, r := range pm.rules {
		if p.HasPrefix(r.Src) && len(r.Src) > bestLen {
			best, bestLen = i, len(r.Src)
		}
	}
	if best < 0 {
		return name, false
	}
	r := pm.rules[best]
	mapped := r.Dst.Join(p[len(r.Src):])
	return core.Separator + mapped.String(), true
}

// RuleCount returns the number of rules installed.
func (pm *PrefixMapper) RuleCount() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return len(pm.rules)
}

// ExchangeOutcome reports what happened when a name crossed a boundary.
type ExchangeOutcome struct {
	// SenderEntity and ReceiverEntity are what the name denoted on each
	// side (Undefined if unresolvable).
	SenderEntity, ReceiverEntity core.Entity
	// SentName is the name actually delivered (after mapping, if any).
	SentName string
	// Mapped reports whether a prefix rule rewrote the name.
	Mapped bool
	// Coherent reports whether both sides denote the same entity.
	Coherent bool
}

// ExchangeName simulates sending the textual name from one process to
// another across a scope boundary. If pm is non-nil its rules are applied
// to the name in transit (the human mapping closure); otherwise the name
// crosses verbatim. The outcome records whether receiver and sender agree.
func ExchangeName(sender, receiver *machine.Process, name string, pm *PrefixMapper) ExchangeOutcome {
	out := ExchangeOutcome{SentName: name}
	out.SenderEntity, _ = sender.Resolve(name)
	if pm != nil {
		out.SentName, out.Mapped = pm.Map(name)
	}
	out.ReceiverEntity, _ = receiver.Resolve(out.SentName)
	out.Coherent = !out.SenderEntity.IsUndefined() && out.SenderEntity == out.ReceiverEntity
	return out
}

// NormalizeName is a helper for building textual names from parts.
func NormalizeName(parts ...string) string {
	return core.Separator + strings.Join(parts, core.Separator)
}
