package federation

import (
	"errors"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/sharedns"
)

// twoOrgs builds the §7 scenario: two organizations, each attaching its
// users' home directories under /users in its own shared space.
func twoOrgs(t *testing.T) (*core.World, *Federation, *sharedns.System, *sharedns.System) {
	t.Helper()
	w := core.NewWorld()
	f := New(w)

	org1, err := sharedns.NewSystem(w, "o1c1", "o1c2")
	if err != nil {
		t.Fatal(err)
	}
	org2, err := sharedns.NewSystem(w, "o2c1")
	if err != nil {
		t.Fatal(err)
	}
	users1, err := org1.AttachSpace("users")
	if err != nil {
		t.Fatal(err)
	}
	users2, err := org2.AttachSpace("users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := users1.Tree.Create(core.ParsePath("alice/profile"), "alice@org1"); err != nil {
		t.Fatal(err)
	}
	if _, err := users2.Tree.Create(core.ParsePath("bob/profile"), "bob@org2"); err != nil {
		t.Fatal(err)
	}

	if err := f.AddSystem("org1", org1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSystem("org2", org2); err != nil {
		t.Fatal(err)
	}
	return w, f, org1, org2
}

func TestAddSystemDuplicate(t *testing.T) {
	w, f, org1, _ := func() (*core.World, *Federation, *sharedns.System, *sharedns.System) {
		w := core.NewWorld()
		f := New(w)
		s, _ := sharedns.NewSystem(w, "c")
		_ = f.AddSystem("s", s)
		return w, f, s, nil
	}()
	_ = w
	if err := f.AddSystem("s", org1); err == nil {
		t.Fatal("duplicate AddSystem succeeded")
	}
	if _, err := f.System("nope"); !errors.Is(err, ErrUnknownSystem) {
		t.Fatalf("err = %v", err)
	}
}

func TestSystemNames(t *testing.T) {
	_, f, _, _ := twoOrgs(t)
	names := f.SystemNames()
	if len(names) != 2 || names[0] != "org1" || names[1] != "org2" {
		t.Fatalf("SystemNames = %v", names)
	}
}

func TestCrossLink(t *testing.T) {
	_, f, _, _ := twoOrgs(t)
	// org1 attaches org2's /users space under /org2-users in every client.
	if err := f.CrossLink("org1", "org2-users", "org2", "users", "/"); err != nil {
		t.Fatal(err)
	}
	org1, _ := f.System("org1")
	p, err := org1.Spawn("o1c1", "p")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Resolve("/org2-users/bob/profile")
	if err != nil {
		t.Fatal(err)
	}
	org2, _ := f.System("org2")
	var want core.Entity
	for _, sp := range org2.Spaces() {
		if sp.Name == "users" {
			want, _ = sp.Tree.Lookup(core.ParsePath("bob/profile"))
		}
	}
	if got != want {
		t.Fatal("cross-link resolves to wrong entity")
	}
}

func TestCrossLinkErrors(t *testing.T) {
	_, f, _, _ := twoOrgs(t)
	if err := f.CrossLink("nope", "x", "org2", "users", "/"); !errors.Is(err, ErrUnknownSystem) {
		t.Fatalf("err = %v", err)
	}
	if err := f.CrossLink("org1", "x", "nope", "users", "/"); !errors.Is(err, ErrUnknownSystem) {
		t.Fatalf("err = %v", err)
	}
	if err := f.CrossLink("org1", "x", "org2", "no-space", "/"); err == nil {
		t.Fatal("missing space accepted")
	}
	if err := f.CrossLink("org1", "x", "org2", "users", "/missing/path"); err == nil {
		t.Fatal("missing path accepted")
	}
}

func TestPrefixMapper(t *testing.T) {
	pm := NewPrefixMapper()
	pm.AddRule("/users", "/org2-users")
	pm.AddRule("/users/special", "/override")

	tests := []struct {
		give       string
		want       string
		wantMapped bool
	}{
		{give: "/users/bob/profile", want: "/org2-users/bob/profile", wantMapped: true},
		{give: "/users", want: "/org2-users", wantMapped: true},
		// Longest prefix wins.
		{give: "/users/special/x", want: "/override/x", wantMapped: true},
		{give: "/other/x", want: "/other/x", wantMapped: false},
		{give: "relative/name", want: "relative/name", wantMapped: false},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, mapped := pm.Map(tt.give)
			if got != tt.want || mapped != tt.wantMapped {
				t.Fatalf("Map(%q) = (%q, %v), want (%q, %v)",
					tt.give, got, mapped, tt.want, tt.wantMapped)
			}
		})
	}
	if pm.RuleCount() != 2 {
		t.Fatalf("RuleCount = %d", pm.RuleCount())
	}
}

func TestExchangeNameWithoutMapping(t *testing.T) {
	_, f, org1, org2 := twoOrgs(t)
	_ = f
	sender, err := org2.Spawn("o2c1", "sender")
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := org1.Spawn("o1c1", "receiver")
	if err != nil {
		t.Fatal(err)
	}
	// /users/bob/profile exists in org2 and not in org1: verbatim exchange
	// is incoherent.
	out := ExchangeName(sender, receiver, "/users/bob/profile", nil)
	if out.Coherent {
		t.Fatal("verbatim cross-boundary exchange unexpectedly coherent")
	}
	if out.SenderEntity.IsUndefined() {
		t.Fatal("sender could not resolve its own name")
	}
}

func TestExchangeNameWithMapping(t *testing.T) {
	_, f, org1, org2 := twoOrgs(t)
	if err := f.CrossLink("org1", "org2-users", "org2", "users", "/"); err != nil {
		t.Fatal(err)
	}
	sender, _ := org2.Spawn("o2c1", "sender")
	receiver, _ := org1.Spawn("o1c1", "receiver")

	pm := NewPrefixMapper()
	pm.AddRule("/users", "/org2-users")

	out := ExchangeName(sender, receiver, "/users/bob/profile", pm)
	if !out.Mapped {
		t.Fatal("mapping did not apply")
	}
	if out.SentName != "/org2-users/bob/profile" {
		t.Fatalf("SentName = %q", out.SentName)
	}
	if !out.Coherent {
		t.Fatal("mapped exchange incoherent")
	}
}

// Names that collide across boundaries are worse than missing ones: the
// receiver resolves them to a different entity.
func TestExchangeNameCollision(t *testing.T) {
	_, _, org1, org2 := twoOrgs(t)
	// org1 also has an alice under /users — same textual name, different
	// entity than org2's files.
	sender, _ := org1.Spawn("o1c1", "sender")
	receiver2, _ := org2.Spawn("o2c1", "receiver")

	// Create a colliding path in org2's users space.
	for _, sp := range org2.Spaces() {
		if sp.Name == "users" {
			if _, err := sp.Tree.Create(core.ParsePath("alice/profile"), "impostor"); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := ExchangeName(sender, receiver2, "/users/alice/profile", nil)
	if out.Coherent {
		t.Fatal("colliding names reported coherent")
	}
	if out.ReceiverEntity.IsUndefined() {
		t.Fatal("receiver should resolve the colliding name (to the wrong entity)")
	}
}

func TestNormalizeName(t *testing.T) {
	if got := NormalizeName("a", "b", "c"); got != "/a/b/c" {
		t.Fatalf("NormalizeName = %q", got)
	}
}
