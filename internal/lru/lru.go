package lru

import "container/list"

// Cache is a fixed-capacity map with least-recently-used eviction. Both Get
// and Put count as use. The zero value is not usable; call New. Cache is not
// safe for concurrent use — callers hold their own locks (the nameserver and
// cluster clients already serialize cache access).
type Cache[K comparable, V any] struct {
	capacity int
	order    *list.List // front = most recently used
	items    map[K]*list.Element
}

// entry is what the list elements hold.
type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most capacity entries. A capacity
// of zero or less yields a cache that stores nothing.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get returns the value bound to key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put binds key to val, evicting the least recently used entry if the cache
// is full. Rebinding an existing key updates the value in place.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[K, V]).key)
		}
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
}

// Delete removes key if present and reports whether it was there.
func (c *Cache[K, V]) Delete(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// DeleteFunc removes every entry for which keep returns false and returns
// how many entries were removed. It visits entries in recency order.
func (c *Cache[K, V]) DeleteFunc(keep func(key K, val V) bool) int {
	removed := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry[K, V])
		if !keep(e.key, e.val) {
			c.order.Remove(el)
			delete(c.items, e.key)
			removed++
		}
		el = next
	}
	return removed
}

// Clear removes every entry.
func (c *Cache[K, V]) Clear() {
	c.order.Init()
	clear(c.items)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return c.order.Len() }

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }
