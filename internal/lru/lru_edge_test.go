package lru

import (
	"fmt"
	"sync"
	"testing"
)

// A capacity-1 cache degenerates to "remember the last thing": every new
// key evicts the previous one, and touching the resident key keeps it.
func TestCapacityOne(t *testing.T) {
	c := New[string, int](1)
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf(`Get("a") = %d, %v; want 1, true`, v, ok)
	}
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal(`"a" survived eviction in a capacity-1 cache`)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf(`Get("b") = %d, %v; want 2, true`, v, ok)
	}
	// Rebinding the resident key must not evict it.
	c.Put("b", 3)
	if v, ok := c.Get("b"); !ok || v != 3 {
		t.Fatalf(`Get("b") after rebind = %d, %v; want 3, true`, v, ok)
	}
}

// Rebinding an existing key updates in place: Len stays fixed, the value
// is replaced, and the entry's recency is bumped so it outlives a key
// that was untouched for longer.
func TestPutExistingUpdatesInPlace(t *testing.T) {
	c := New[string, int](2)
	c.Put("old", 1)
	c.Put("fresh", 2)
	c.Put("old", 3) // rebind: "old" becomes most recently used
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after rebind", c.Len())
	}
	if v, _ := c.Get("old"); v != 3 {
		t.Fatalf(`Get("old") = %d, want rebound value 3`, v)
	}
	c.Put("third", 4) // evicts "fresh", the least recently used
	if _, ok := c.Get("fresh"); ok {
		t.Fatal(`"fresh" survived; rebind did not bump "old"'s recency`)
	}
	if _, ok := c.Get("old"); !ok {
		t.Fatal(`"old" evicted despite being most recently used`)
	}
}

// The documented usage pattern under concurrency: the cache itself is not
// safe for concurrent use, so callers serialize access with their own
// mutex (as the nameserver and cluster clients do). Run under -race.
func TestConcurrentAccessWithExternalLock(t *testing.T) {
	var mu sync.Mutex
	c := New[string, int](8)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				mu.Lock()
				if _, ok := c.Get(key); !ok {
					c.Put(key, g*1000+i)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if c.Len() > c.Cap() {
		t.Fatalf("Len = %d exceeds Cap = %d", c.Len(), c.Cap())
	}
}
