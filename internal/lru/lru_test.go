package lru

import "testing"

func TestPutGet(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	// Touch a so b becomes the eviction victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := c.Get(k); !ok || v != want {
			t.Fatalf("Get(%s) = %d, %v; want %d", k, v, ok, want)
		}
	}
}

func TestRebindUpdatesInPlace(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 9) // no eviction: a already present
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("Get(a) = %d, want 9", v)
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted by an in-place rebind")
	}
}

func TestDeterministicEvictionOrder(t *testing.T) {
	// The motivating property: a fixed access sequence always leaves the
	// same residue (the old map-based cache evicted an arbitrary entry).
	run := func() []string {
		c := New[string, bool](3)
		for _, k := range []string{"a", "b", "c", "a", "d", "e", "b"} {
			if _, ok := c.Get(k); !ok {
				c.Put(k, true)
			}
		}
		var got []string
		for _, k := range []string{"a", "b", "c", "d", "e"} {
			if _, ok := c.Get(k); ok {
				got = append(got, k)
			}
		}
		return got
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: residue %v != %v", i, again, first)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d: residue %v != %v", i, again, first)
			}
		}
	}
}

func TestDeleteFuncAndClear(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 6; i++ {
		c.Put(i, i*i)
	}
	removed := c.DeleteFunc(func(k, _ int) bool { return k%2 == 0 })
	if removed != 3 || c.Len() != 3 {
		t.Fatalf("DeleteFunc removed %d, Len = %d", removed, c.Len())
	}
	if !c.Delete(2) || c.Delete(2) {
		t.Fatal("Delete(2) should succeed once")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	// The cache stays usable after Clear.
	c.Put(7, 49)
	if v, ok := c.Get(7); !ok || v != 49 {
		t.Fatal("cache unusable after Clear")
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New[string, int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok || c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}
