// Package lru provides a small least-recently-used cache shared by the
// name-server client and the cluster client, so cache-eviction behaviour
// (and therefore every cache benchmark) is deterministic across runs.
package lru
