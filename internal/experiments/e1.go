package experiments

import (
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/rules"
	"namecoherence/internal/workload"
)

// E1Config parameterizes experiment E1 (Figure 1 + §4): the coherence
// degree obtained for each combination of name source and resolution rule.
type E1Config struct {
	// Activities is the number of activities probing each name.
	Activities int
	// Names is the vocabulary size.
	Names int
	// SharedFrac is the fraction of names that are global (bound to the
	// same entity in every activity context).
	SharedFrac float64
	// Seed drives the workload generator.
	Seed int64
}

// DefaultE1 returns the standard configuration.
func DefaultE1() E1Config {
	return E1Config{Activities: 8, Names: 200, SharedFrac: 0.25, Seed: 1}
}

// E1 measures the strict coherence degree for every (source, rule) cell.
// The paper's §4 analysis predicts: under R(activity) only global names are
// coherent regardless of source; R(sender) makes message-borne names fully
// coherent; R(object) makes embedded names fully coherent; a single global
// context is coherent for everything.
func E1(cfg E1Config) *Table {
	gen := workload.New(cfg.Seed)
	w := core.NewWorld()
	pop := gen.Population(w, cfg.Activities, cfg.Names, cfg.SharedFrac)
	obj, objAssoc := gen.ObjectContext(w, pop, "doc")
	sender := pop.Activities[0]

	globalCtx, _ := pop.Contexts.Get(sender) // one context shared by all
	ruleSet := []rules.Rule{
		&rules.ActivityRule{Contexts: pop.Contexts},
		&rules.SenderRule{Contexts: pop.Contexts},
		&rules.ObjectRule{ObjectContexts: objAssoc, ActivityContexts: pop.Contexts},
		&rules.FixedRule{Context: globalCtx},
	}
	sources := []struct {
		name string
		circ func(a core.Entity) rules.Circumstance
	}{
		{name: "internal", circ: rules.Internal},
		{name: "message", circ: func(a core.Entity) rules.Circumstance {
			return rules.Received(a, sender)
		}},
		{name: "object", circ: func(a core.Entity) rules.Circumstance {
			return rules.FromObject(a, obj, nil)
		}},
	}

	t := &Table{
		ID:     "E1",
		Title:  "coherence degree by name source and resolution rule",
		Header: append([]string{"rule"}, "internal", "message", "object"),
		Notes: []string{
			"paper §4: R(activity) coheres only for global names; R(sender) coheres",
			"message-borne names; R(object) coheres embedded names; a global context",
			"coheres everything.",
		},
	}
	probes := pop.ProbePaths()
	for _, rl := range ruleSet {
		resolver := rules.NewResolver(w, rl)
		row := []string{rl.String()}
		for _, src := range sources {
			resolve := func(a core.Entity, p core.Path) (core.Entity, error) {
				return resolver.Resolve(src.circ(a), p)
			}
			rep := coherence.Measure(w, resolve, pop.Activities, probes)
			row = append(row, f2(rep.StrictDegree()))
		}
		t.AddRow(row...)
	}
	return t
}
