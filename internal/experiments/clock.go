// The single wall-clock seam for the experiments package. Experiments
// must be deterministic given a seed (detrand enforces this); latency
// measurement is the one legitimate wall-clock use, so it is funneled
// through these two hooks, which a test can stub.

//namingvet:file-ignore detrand -- sole wall-clock seam; everything else in the package goes through now/since

package experiments

import "time"

// now reads the wall clock. Stubbed in tests that need fixed timings.
var now = time.Now

// since reports the elapsed time from start, via the now hook.
func since(start time.Time) time.Duration {
	return now().Sub(start)
}
