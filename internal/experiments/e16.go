package experiments

import (
	"fmt"
	"os"
	"sort"

	"namecoherence/internal/cluster"
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/snapstore"
)

// E16Config parameterizes experiment E16: the durable content-addressed
// snapshot store under restart churn.
type E16Config struct {
	// Shards is the cluster size; Replicas is servers per shard.
	Shards, Replicas int
	// Prefixes is the number of top-level subtrees; FilesPerPrefix the
	// names under each.
	Prefixes, FilesPerPrefix int
	// Lives is how many times the cluster is brought up over the same
	// store. Life 1 builds from the spec; every later life is a recovery.
	Lives int
}

// DefaultE16 returns the standard configuration.
func DefaultE16() E16Config {
	return E16Config{
		Shards:         4,
		Replicas:       3,
		Prefixes:       8,
		FilesPerPrefix: 4,
		Lives:          3,
	}
}

// treeResolver adapts a shard subtree to the coherence probe interface.
type treeResolver struct{ tr *dirtree.Tree }

func (r treeResolver) Resolve(p core.Path) (core.Entity, error) { return r.tr.Lookup(p) }

// E16 measures the durability story of §4's shared naming graph: replicas
// of one subtree are content-addressed into one set of blobs (dedup ratio
// ≥ the replica count), a killed-and-restarted cluster recovers every
// shard from the store at its committed revision, replicas are brought up
// by hash-diff catch-up rather than full transfer, and the store-restored
// replicas still satisfy weak coherence — every name names "the same
// replicated object" across them.
func E16(cfg E16Config) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "content-addressed snapshot store: dedup, crash recovery, catch-up",
		Header: []string{"life", "recovered", "caught-up", "copied", "pruned",
			"blobs", "dedup-ratio", "weak-coherence", "roots-agree"},
		Notes: []string{
			"replicas of one shard subtree hash to one Merkle root, so R",
			"replicas snapshot into one blob set (dedup-ratio ≈ R); every",
			"life after the first recovers all shards from the manifest and",
			"transfers only missing subtrees (shared ones are pruned whole",
			"by one hash check); store-restored replicas keep weak",
			"coherence at 1.0.",
		},
	}
	dir, err := os.MkdirTemp("", "e16-snapstore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	spec, paths := e14Spec(cfg.Prefixes, cfg.FilesPerPrefix)
	for life := 1; life <= cfg.Lives; life++ {
		row, err := e16Life(cfg, dir, spec, paths, life)
		if err != nil {
			return nil, fmt.Errorf("life %d: %w", life, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// e16Life is one bring-up/serve/mutate/kill cycle over the shared store.
func e16Life(cfg E16Config, dir, spec string, paths []core.Path, life int) ([]string, error) {
	st, err := snapstore.Open(dir)
	if err != nil {
		return nil, err
	}
	w := core.NewWorld()
	cl, err := cluster.NewReplicated(w, spec, cfg.Shards, cfg.Replicas,
		cluster.WithSnapStore(st))
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	recovered := 0
	for i := 0; i < cl.Shards(); i++ {
		if _, ok := cl.Recovered(i); ok {
			recovered++
		}
	}
	copied, pruned := 0, 0
	catchUps := cl.CatchUps()
	for _, s := range catchUps {
		copied += s.Copied
		pruned += s.Skipped
	}

	// Earlier lives' mutations must have survived the kill.
	routes := cl.Routes()
	for l := 1; l < life; l++ {
		for _, p := range e16Extras(cl, l) {
			if _, err := cl.Trees[routes.ShardFor(p)].Lookup(p); err != nil {
				return nil, fmt.Errorf("life %d mutation lost: %q: %w", l, p, err)
			}
		}
	}

	// Snapshot every replica of every shard into the one store: replicas
	// are hash-identical, so this is where content addressing collapses R
	// copies into one blob set.
	rootsAgree := true
	for i := 0; i < cl.Shards(); i++ {
		primary, err := cl.ShardRoot(st, i, 0)
		if err != nil {
			return nil, err
		}
		for r := 1; r < cl.ReplicasPerShard(); r++ {
			h, err := cl.ShardRoot(st, i, r)
			if err != nil {
				return nil, err
			}
			rootsAgree = rootsAgree && h == primary
		}
	}

	// Weak coherence across the (possibly store-restored) replicas of each
	// shard, probed shard-locally: a replica only serves its own subtree.
	byShard := make(map[int][]core.Path)
	for _, p := range paths {
		s := routes.ShardFor(p)
		byShard[s] = append(byShard[s], p)
	}
	meaningful, weak := 0, 0
	for i := 0; i < cl.Shards(); i++ {
		resolvers := make([]coherence.Resolver, cl.ReplicasPerShard())
		for r := range resolvers {
			resolvers[r] = treeResolver{tr: cl.ReplicaTrees[i][r]}
		}
		rep := coherence.MeasureResolvers(w, resolvers, byShard[i])
		meaningful += rep.Meaningful()
		weak += rep.Coherent + rep.Weak
	}
	weakDegree := 1.0
	if meaningful > 0 {
		weakDegree = float64(weak) / float64(meaningful)
	}

	// Mutate each shard and commit the new root: the next life must
	// recover this, not the spec.
	for _, p := range e16Extras(cl, life) {
		i := routes.ShardFor(p)
		if _, err := cl.Trees[i].Create(p, fmt.Sprintf("life-%d", life)); err != nil {
			return nil, err
		}
		root, err := cl.ShardRoot(st, i, 0)
		if err != nil {
			return nil, err
		}
		if err := st.Commit(i, cl.Server(i).Revision(), root); err != nil {
			return nil, err
		}
	}

	stats := st.CAS().Stats()
	return []string{
		itoa(life), itoa(recovered), itoa(len(catchUps)), itoa(copied), itoa(pruned),
		itoa(stats.Stored), f2(stats.DedupRatio()), f2(weakDegree), yesNo(rootsAgree),
	}, nil
}

// e16Extras returns one new path per shard for the given life, placed
// under the lexically first prefix each shard serves.
func e16Extras(cl *cluster.Cluster, life int) []core.Path {
	firstPrefix := make(map[int]string)
	for prefix, shard := range cl.Plan.Prefixes {
		if cur, ok := firstPrefix[shard]; !ok || prefix < cur {
			firstPrefix[shard] = prefix
		}
	}
	shards := make([]int, 0, len(firstPrefix))
	for shard := range firstPrefix {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	var out []core.Path
	for _, shard := range shards {
		out = append(out, core.ParsePath(fmt.Sprintf("%s/extra%02d", firstPrefix[shard], life)))
	}
	return out
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
