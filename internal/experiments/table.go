package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is one experiment's result: titled rows of cells, plus free-form
// notes (the paper claim the numbers speak to).
type Table struct {
	// ID is the experiment id (E1..E10, A1..).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells.
	Rows [][]string
	// Notes record the paper's qualitative claim and any caveats.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f2 formats a fraction with two decimals.
func f2(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// itoa formats an int.
func itoa(v int) string { return strconv.Itoa(v) }
