package experiments

// All runs every experiment and ablation at its default configuration and
// returns the tables in index order.
func All() ([]*Table, error) {
	var tables []*Table

	tables = append(tables, E1(DefaultE1()))
	tables = append(tables, E2(DefaultE2()))

	for _, build := range []func() (*Table, error){
		func() (*Table, error) { return E3(DefaultE3()) },
		func() (*Table, error) { return E4(DefaultE4()) },
		func() (*Table, error) { return E5(DefaultE5()) },
		func() (*Table, error) { return E6(DefaultE6()) },
		func() (*Table, error) { return E7(DefaultE7()) },
		func() (*Table, error) { return E8(DefaultE8()) },
		func() (*Table, error) { return E9(DefaultE9()) },
		func() (*Table, error) { return E10(DefaultE10()) },
		func() (*Table, error) { return E11(DefaultE11()) },
		func() (*Table, error) { return E12(DefaultE12()) },
		func() (*Table, error) { return E13(DefaultE13()) },
		func() (*Table, error) { return E14(DefaultE14()) },
		func() (*Table, error) { return E15(DefaultE15()) },
		func() (*Table, error) { return E16(DefaultE16()) },
		func() (*Table, error) { return E17(DefaultE17()) },
		func() (*Table, error) { return A1(DefaultA1()) },
		func() (*Table, error) { return A3(DefaultA3()) },
		func() (*Table, error) { return A4(DefaultA4()) },
		func() (*Table, error) { return A5(DefaultA5()) },
	} {
		t, err := build()
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
