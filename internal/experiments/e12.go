package experiments

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/exchange"
	"namecoherence/internal/machine"
	"namecoherence/internal/newcastle"
)

// E12Config parameterizes experiment E12: boundary translators on the
// message substrate (§6 approach I for textual names).
type E12Config struct {
	// Machines is the Newcastle system size.
	Machines int
	// NamesPerPair is how many names each ordered machine pair exchanges.
	NamesPerPair int
}

// DefaultE12 returns the standard configuration.
func DefaultE12() E12Config {
	return E12Config{Machines: 3, NamesPerPair: 5}
}

// E12 exchanges local absolute names between every ordered pair of
// Newcastle machines through the message substrate, under the identity
// (R(receiver)) baseline and the Newcastle mapping translator (R(sender)),
// and counts coherent deliveries.
func E12(cfg E12Config) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "boundary translation for exchanged names (message substrate)",
		Header: []string{"translator", "coherent", "of", "same-machine coherent", "of"},
		Notes: []string{
			"§6 I applied to file names: R(sender), implemented by translating the",
			"embedded name at the communication boundary, restores coherence that",
			"the verbatim baseline only has within a machine.",
		},
	}
	for _, mapped := range []bool{false, true} {
		w := core.NewWorld()
		names := make([]string, cfg.Machines)
		for i := range names {
			names[i] = fmt.Sprintf("m%d", i+1)
		}
		s, err := newcastle.NewSystem(w, names...)
		if err != nil {
			return nil, err
		}
		var exchanged []string
		for i := 0; i < cfg.NamesPerPair; i++ {
			name := fmt.Sprintf("/shared/f%02d", i)
			for _, mn := range names {
				m, _ := s.Machine(mn)
				_, p := core.SplitPathString(name)
				if _, err := m.Tree.Create(p, "content@"+mn); err != nil {
					return nil, err
				}
			}
			exchanged = append(exchanged, name)
		}

		var tr exchange.Translator
		label := "identity (R(receiver))"
		if mapped {
			tr = &exchange.NewcastleTranslator{System: s}
			label = "newcastle mapping (R(sender))"
		}
		x := exchange.NewExchanger(tr)
		parties := make(map[string]*exchange.Party, len(names))
		var procs []*machine.Process
		for _, mn := range names {
			p, err := s.Spawn(mn, "party")
			if err != nil {
				return nil, err
			}
			procs = append(procs, p)
			party, err := x.Join(p, mn)
			if err != nil {
				return nil, err
			}
			parties[mn] = party
		}
		_ = procs

		crossCoherent, crossTotal := 0, 0
		sameCoherent, sameTotal := 0, 0
		for _, from := range names {
			// Same-machine control: a forked sibling.
			sibling, err := x.Join(parties[from].Proc.Fork("sibling"), from)
			if err != nil {
				return nil, err
			}
			for _, name := range exchanged {
				ok, _, err := x.RoundTrip(parties[from], sibling, name)
				if err != nil {
					return nil, err
				}
				sameTotal++
				if ok {
					sameCoherent++
				}
			}
			for _, to := range names {
				if from == to {
					continue
				}
				for _, name := range exchanged {
					ok, _, err := x.RoundTrip(parties[from], parties[to], name)
					if err != nil {
						return nil, err
					}
					crossTotal++
					if ok {
						crossCoherent++
					}
				}
			}
		}
		t.AddRow(label, itoa(crossCoherent), itoa(crossTotal),
			itoa(sameCoherent), itoa(sameTotal))
	}
	return t, nil
}
