package experiments

import (
	"fmt"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/machine"
	"namecoherence/internal/newcastle"
)

// E3Config parameterizes experiment E3 (Figure 3, §5.1): the Newcastle
// Connection.
type E3Config struct {
	// Machines is the number of machines composed under the super-root.
	Machines int
	// FilesPerMachine is the number of same-textual-name files created on
	// every machine.
	FilesPerMachine int
	// ProcsPerMachine is the number of probe processes per machine.
	ProcsPerMachine int
}

// DefaultE3 returns the Figure 3 setup (three machines).
func DefaultE3() E3Config {
	return E3Config{Machines: 3, FilesPerMachine: 20, ProcsPerMachine: 2}
}

// buildE3 constructs the system plus probe processes.
func buildE3(cfg E3Config) (*core.World, *newcastle.System, [][]*machine.Process, error) {
	w := core.NewWorld()
	names := make([]string, cfg.Machines)
	for i := range names {
		names[i] = fmt.Sprintf("unix%d", i+1)
	}
	s, err := newcastle.NewSystem(w, names...)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, mn := range names {
		m, err := s.Machine(mn)
		if err != nil {
			return nil, nil, nil, err
		}
		for f := 0; f < cfg.FilesPerMachine; f++ {
			p := core.ParsePath(fmt.Sprintf("shared/f%03d", f))
			if _, err := m.Tree.Create(p, "content@"+mn); err != nil {
				return nil, nil, nil, err
			}
		}
		if _, err := m.Tree.Create(core.ParsePath("only/"+mn), "local"); err != nil {
			return nil, nil, nil, err
		}
	}
	procs := make([][]*machine.Process, cfg.Machines)
	for i, mn := range names {
		for k := 0; k < cfg.ProcsPerMachine; k++ {
			p, err := s.Spawn(mn, fmt.Sprintf("probe%d", k))
			if err != nil {
				return nil, nil, nil, err
			}
			procs[i] = append(procs[i], p)
		}
	}
	return w, s, procs, nil
}

// E3 measures the Newcastle Connection: same-machine coherence, cross-
// machine incoherence for "/"-rooted names, full coherence for names that
// climb through the super-root, and the two remote-execution root policies.
func E3(cfg E3Config) (*Table, error) {
	w, s, procs, err := buildE3(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E3",
		Title:  "Newcastle Connection (single naming tree from per-machine trees)",
		Header: []string{"probe", "strict-degree"},
		Notes: []string{
			"paper §5.1: only processes with the same root binding have coherence for",
			"names starting with '/'; there is incoherence across machine boundaries;",
			"'..' names through the super-root and the root-of-invoker remote-exec",
			"policy restore coherence.",
		},
	}

	localPaths := make([]core.Path, 0, cfg.FilesPerMachine)
	for f := 0; f < cfg.FilesPerMachine; f++ {
		localPaths = append(localPaths, core.ParsePath(fmt.Sprintf("shared/f%03d", f)))
	}

	// Same machine: all probes on machine 0.
	var sameActs []core.Entity
	for _, p := range procs[0] {
		sameActs = append(sameActs, p.Activity)
	}
	rep := coherence.Measure(w, s.Registry.ResolveAbs, sameActs, localPaths)
	t.AddRow("/ names, same machine", f2(rep.StrictDegree()))

	// Across machines: one process from each machine.
	var crossActs []core.Entity
	for i := range procs {
		crossActs = append(crossActs, procs[i][0].Activity)
	}
	rep = coherence.Measure(w, s.Registry.ResolveAbs, crossActs, localPaths)
	t.AddRow("/ names, across machines", f2(rep.StrictDegree()))

	// Super-root-relative names: coherent everywhere.
	superPaths := make([]core.Path, 0, len(s.MachineNames()))
	for _, mn := range s.MachineNames() {
		superPaths = append(superPaths, core.ParsePath("../"+mn+"/shared/f000"))
	}
	rep = coherence.Measure(w, s.Registry.ResolveAbs, crossActs, superPaths)
	t.AddRow("../machine/... names, across machines", f2(rep.StrictDegree()))

	// Remote execution, both policies.
	parent := procs[0][0]
	target := s.MachineNames()[1]
	for _, pol := range []newcastle.RootPolicy{newcastle.RootOfInvoker, newcastle.RootOfExecutor} {
		child, err := s.RemoteExec(parent, target, "rx", pol)
		if err != nil {
			return nil, err
		}
		rep := coherence.Measure(w, s.Registry.ResolveAbs,
			[]core.Entity{parent.Activity, child.Activity}, localPaths)
		t.AddRow("remote exec params, "+pol.String(), f2(rep.StrictDegree()))

		_, errLocal := child.Resolve("/only/" + target)
		visible := 0.0
		if errLocal == nil {
			visible = 1.0
		}
		t.AddRow("remote exec executor-local access, "+pol.String(), f2(visible))
	}
	return t, nil
}
