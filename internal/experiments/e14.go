package experiments

import (
	"fmt"
	"strings"
	"sync"

	"namecoherence/internal/cluster"
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/workload"
)

// E14Config parameterizes experiment E14: strict coherence and wire
// traffic of a prefix-sharded naming cluster under concurrent clients and
// batched resolution.
type E14Config struct {
	// ShardCounts is the sweep of cluster sizes.
	ShardCounts []int
	// BatchSizes is the sweep of names per round-trip (1 = unbatched).
	BatchSizes []int
	// Clients is how many concurrent cluster clients drive the workload.
	Clients int
	// Prefixes is the number of top-level subtrees (the units of
	// prefix delegation).
	Prefixes int
	// FilesPerPrefix is how many names live under each prefix.
	FilesPerPrefix int
	// Lookups is the number of (Zipf-distributed) lookups per client.
	Lookups int
	// CacheSize is each client's LRU capacity.
	CacheSize int
	// Seed drives the per-client Zipf samplers.
	Seed int64
}

// DefaultE14 returns the standard configuration.
func DefaultE14() E14Config {
	return E14Config{
		ShardCounts:    []int{1, 2, 4, 8},
		BatchSizes:     []int{1, 8, 64},
		Clients:        8,
		Prefixes:       16,
		FilesPerPrefix: 8,
		Lookups:        200,
		CacheSize:      64,
		Seed:           23,
	}
}

// e14Spec builds the cluster's treespec and the probe paths.
func e14Spec(prefixes, filesPerPrefix int) (string, []core.Path) {
	var sb strings.Builder
	var paths []core.Path
	for d := 0; d < prefixes; d++ {
		for f := 0; f < filesPerPrefix; f++ {
			p := fmt.Sprintf("sub%02d/f%02d", d, f)
			fmt.Fprintf(&sb, "file /%s %q\n", p, "x")
			paths = append(paths, core.ParsePath(p))
		}
	}
	return sb.String(), paths
}

// E14 measures §5.2's strict-coherence claim over a real sharded
// deployment: one logical naming graph partitioned across N name servers
// by prefix, driven by concurrent batching clients with revision-tracked
// LRU caches. Fig. 4's collection of servers jointly administering one
// shared graph must look like a single coherent space — strict degree 1.0
// for every shared-prefix name, at any shard count and batch size — while
// batching collapses wire requests by the batch factor.
func E14(cfg E14Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "sharded naming cluster: coherence and wire traffic vs shards and batch size",
		Header: []string{"shards", "batch", "lookups", "wire-reqs", "reqs/lookup",
			"hit-rate", "strict-coherence"},
		Notes: []string{
			"§5.2 / Fig. 4: prefix-delegated shards of one shared graph stay",
			"strictly coherent for every client of every shard; batching",
			"divides wire crossings without touching coherence.",
		},
	}
	for _, shards := range cfg.ShardCounts {
		for _, batch := range cfg.BatchSizes {
			row, err := e14Row(cfg, shards, batch)
			if err != nil {
				return nil, fmt.Errorf("shards=%d batch=%d: %w", shards, batch, err)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// e14Row runs one (shards, batch) cell: concurrent clients drive Zipf
// lookups, then every client is probed for every name.
func e14Row(cfg E14Config, shards, batch int) ([]string, error) {
	spec, paths := e14Spec(cfg.Prefixes, cfg.FilesPerPrefix)
	w := core.NewWorld()
	cl, err := cluster.New(w, spec, shards)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	clients := make([]*cluster.Client, cfg.Clients)
	for i := range clients {
		clients[i], err = cluster.Dial("tcp", cl.Addrs()[i%len(cl.Addrs())],
			cluster.WithLRU(cfg.CacheSize))
		if err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients)
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client *cluster.Client) {
			defer wg.Done()
			gen := workload.New(cfg.Seed + int64(i))
			idx := gen.Zipf(cfg.Lookups, len(paths))
			for at := 0; at < len(idx); at += batch {
				end := min(at+batch, len(idx))
				req := make([]core.Path, 0, end-at)
				for _, k := range idx[at:end] {
					req = append(req, paths[k])
				}
				results, err := client.ResolveBatch(req)
				if err != nil {
					errs <- err
					return
				}
				for _, res := range results {
					if res.Err != nil {
						errs <- res.Err
						return
					}
				}
			}
		}(i, client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	wireReqs := cl.Served()
	lookups := cfg.Clients * cfg.Lookups
	hits, misses := 0, 0
	for _, client := range clients {
		h, m := client.Stats()
		hits += h
		misses += m
	}

	// The coherence probe: every client of every shard, every name.
	resolvers := make([]coherence.Resolver, len(clients))
	for i, client := range clients {
		resolvers[i] = client
	}
	rep := coherence.MeasureResolvers(w, resolvers, paths)

	return []string{
		itoa(shards), itoa(batch), itoa(lookups), itoa(wireReqs),
		f2(float64(wireReqs) / float64(lookups)),
		f2(float64(hits) / float64(hits+misses)),
		f2(rep.StrictDegree()),
	}, nil
}
