package experiments

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/embedded"
)

// E6Config parameterizes experiment E6 (Figure 6, §6 Example 2): embedded
// file names under the Algol scope rule.
type E6Config struct {
	// EmbeddedNames is the number of embedded references in the subtree.
	EmbeddedNames int
}

// DefaultE6 returns the standard configuration.
func DefaultE6() E6Config {
	return E6Config{EmbeddedNames: 20}
}

// e6World builds a project subtree with cfg.EmbeddedNames source files,
// each embedding a name (lib/tNNN) that the project root binds, and returns
// the tree, the project-relative source paths, and the entities the
// embedded names originally denote.
func e6World(cfg E6Config) (*core.World, *dirtree.Tree, []core.Path, []core.Entity, error) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	srcs := make([]core.Path, 0, cfg.EmbeddedNames)
	wants := make([]core.Entity, 0, cfg.EmbeddedNames)
	for i := 0; i < cfg.EmbeddedNames; i++ {
		e, err := tr.Create(core.ParsePath(fmt.Sprintf("proj/lib/t%03d", i)), "target")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		src := core.ParsePath(fmt.Sprintf("src/s%03d", i))
		if _, err := tr.Create(core.PathOf("proj").Join(src), "source",
			core.ParsePath(fmt.Sprintf("lib/t%03d", i))); err != nil {
			return nil, nil, nil, nil, err
		}
		srcs = append(srcs, src)
		wants = append(wants, e)
	}
	return w, tr, srcs, wants, nil
}

// e6Measure resolves every source file's embedded name, accessing the files
// at the given full paths, and counts how many denote the expected entity.
// With scoped=true the Algol scope rule is used; otherwise the baseline
// resolves embedded names against the accessor's root.
func e6Measure(w *core.World, tr *dirtree.Tree, srcs []core.Path, wants []core.Entity, scoped bool) (int, error) {
	preserved := 0
	for i, src := range srcs {
		file, trail, err := tr.LookupTrail(src)
		if err != nil {
			return 0, fmt.Errorf("lookup %q: %w", src, err)
		}
		data, err := tr.File(file)
		if err != nil {
			return 0, err
		}
		emb := data.Embedded[0]
		var got core.Entity
		if scoped {
			got, _, err = embedded.Resolve(w, embedded.Chain(tr.Root, trail), emb)
		} else {
			got, err = tr.Lookup(emb)
		}
		if err == nil && got == wants[i] {
			preserved++
		}
	}
	return preserved, nil
}

// graft prefixes every project-relative source path with the given access
// path of the project directory.
func graft(prefix core.Path, srcs []core.Path) []core.Path {
	out := make([]core.Path, len(srcs))
	for i, s := range srcs {
		out[i] = prefix.Join(s)
	}
	return out
}

// E6 measures meaning preservation for embedded names across the operations
// Figure 6 promises are safe: relocation, simultaneous attachment, and
// copying — under the Algol scope rule and the accessor-root baseline.
func E6(cfg E6Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "embedded names: Algol scope rule vs accessor-root baseline",
		Header: []string{"operation", "R(file)-scoped", "R(activity)-baseline", "of"},
		Notes: []string{
			"paper §6 Ex.2: under the scope rule the name has the same meaning",
			"regardless of the accessing process; the subtree can be relocated,",
			"copied, or attached in several places without changing the meaning of",
			"its embedded names. The baseline breaks as soon as the subtree moves.",
		},
	}
	total := itoa(cfg.EmbeddedNames)

	run := func(label string, w *core.World, tr *dirtree.Tree, srcs []core.Path, wants []core.Entity) error {
		s, err := e6Measure(w, tr, srcs, wants, true)
		if err != nil {
			return err
		}
		b, err := e6Measure(w, tr, srcs, wants, false)
		if err != nil {
			return err
		}
		t.AddRow(label, itoa(s), itoa(b), total)
		return nil
	}

	// In place: even the baseline works only if the embedded names happen
	// to resolve from the root — here they do not (lib/ lives under proj/).
	{
		w, tr, srcs, wants, err := e6World(cfg)
		if err != nil {
			return nil, err
		}
		if err := run("in place", w, tr, graft(core.PathOf("proj"), srcs), wants); err != nil {
			return nil, err
		}
	}

	// Baseline-friendly layout: attach the project at the root under the
	// very name its embedded references assume ("lib" reachable from the
	// accessor root). This is the one layout where the baseline works.
	{
		w, tr, srcs, wants, err := e6World(cfg)
		if err != nil {
			return nil, err
		}
		proj, err := tr.Lookup(core.PathOf("proj"))
		if err != nil {
			return nil, err
		}
		projCtx, _ := w.ContextOf(proj)
		tr.RootContext().Bind("lib", projCtx.Lookup("lib"))
		if err := run("baseline-friendly layout", w, tr, graft(core.PathOf("proj"), srcs), wants); err != nil {
			return nil, err
		}
	}

	// Relocated.
	{
		w, tr, srcs, wants, err := e6World(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := tr.MkdirAll(core.PathOf("elsewhere")); err != nil {
			return nil, err
		}
		if err := tr.Move(core.PathOf("proj"), core.ParsePath("elsewhere/proj")); err != nil {
			return nil, err
		}
		if err := run("after relocation", w, tr, graft(core.ParsePath("elsewhere/proj"), srcs), wants); err != nil {
			return nil, err
		}
	}

	// Simultaneously attached at a second point; accessed via the mirror.
	{
		w, tr, srcs, wants, err := e6World(cfg)
		if err != nil {
			return nil, err
		}
		proj, err := tr.Lookup(core.PathOf("proj"))
		if err != nil {
			return nil, err
		}
		if _, err := tr.MkdirAll(core.PathOf("mirror")); err != nil {
			return nil, err
		}
		if err := tr.Attach(core.PathOf("mirror"), "proj", proj); err != nil {
			return nil, err
		}
		if err := run("via simultaneous attachment", w, tr, graft(core.ParsePath("mirror/proj"), srcs), wants); err != nil {
			return nil, err
		}
	}

	// Copied: the copy must be self-contained — embedded names denote the
	// copy's own targets.
	{
		w, tr, srcs, _, err := e6World(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := tr.MkdirAll(core.PathOf("backup")); err != nil {
			return nil, err
		}
		if _, err := tr.CopySubtree(core.PathOf("proj"), core.ParsePath("backup/proj")); err != nil {
			return nil, err
		}
		copyWants := make([]core.Entity, len(srcs))
		for i := range srcs {
			want, err := tr.Lookup(core.ParsePath(fmt.Sprintf("backup/proj/lib/t%03d", i)))
			if err != nil {
				return nil, err
			}
			copyWants[i] = want
		}
		if err := run("copy resolves within copy", w, tr, graft(core.ParsePath("backup/proj"), srcs), copyWants); err != nil {
			return nil, err
		}
	}
	return t, nil
}
