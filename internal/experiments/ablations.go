package experiments

import (
	"fmt"
	"net"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/netsim"
	"namecoherence/internal/pqi"
	"namecoherence/internal/workload"
)

// A1Config parameterizes ablation A1: the effect of client-side caching on
// remote name resolution.
type A1Config struct {
	// Names is the number of distinct remote names.
	Names int
	// Lookups is the number of (Zipf-distributed) lookups issued.
	Lookups int
	// CacheSizes is the sweep (0 = no cache).
	CacheSizes []int
	// Seed drives the Zipf sampler.
	Seed int64
}

// DefaultA1 returns the standard configuration.
func DefaultA1() A1Config {
	return A1Config{Names: 100, Lookups: 2000, CacheSizes: []int{0, 8, 64, 512}, Seed: 11}
}

// A1 measures how many requests reach the name server as the client cache
// grows, under a Zipf lookup distribution.
func A1(cfg A1Config) (*Table, error) {
	w := core.NewWorld()
	tr := dirtree.New(w, "export")
	paths := make([]core.Path, cfg.Names)
	for i := range paths {
		p := core.ParsePath(fmt.Sprintf("dir/f%04d", i))
		if _, err := tr.Create(p, "x"); err != nil {
			return nil, err
		}
		paths[i] = p
	}

	t := &Table{
		ID:     "A1",
		Title:  "name-server requests vs client cache size (Zipf lookups)",
		Header: []string{"cache-size", "lookups", "server-requests", "hit-rate"},
		Notes: []string{
			"ablation: remote resolution cost is dominated by wire crossings; a",
			"small cache absorbs most of a skewed lookup stream (at the price of",
			"staleness — caches are never invalidated here).",
		},
	}
	for _, size := range cfg.CacheSizes {
		server := nameserver.NewServer(w, tr.RootContext())
		serverEnd, clientEnd := net.Pipe()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			server.ServeConn(serverEnd)
		}()

		var opts []nameserver.ClientOption
		if size > 0 {
			opts = append(opts, nameserver.WithCache(size))
		}
		client := nameserver.NewClient(clientEnd, opts...)
		gen := workload.New(cfg.Seed)
		for _, idx := range gen.Zipf(cfg.Lookups, cfg.Names) {
			if _, err := client.Resolve(paths[idx]); err != nil {
				return nil, err
			}
		}
		hits, misses := client.Stats()
		if err := client.Close(); err != nil {
			return nil, err
		}
		wg.Wait()
		t.AddRow(itoa(size), itoa(cfg.Lookups), itoa(server.Served()),
			f2(float64(hits)/float64(hits+misses)))
	}
	return t, nil
}

// A3Config parameterizes ablation A3: forced pid qualification level.
type A3Config struct {
	// Topology as in E7.
	Networks, MachinesPerNet, ProcsPerMachine int
	// RefsPerProc is how many peer references each process holds.
	RefsPerProc int
	// Seed drives peer selection.
	Seed int64
}

// DefaultA3 returns the standard configuration.
func DefaultA3() A3Config {
	return A3Config{Networks: 2, MachinesPerNet: 3, ProcsPerMachine: 3, RefsPerProc: 8, Seed: 13}
}

// A3 forces every reference to a fixed qualification level (1..3) and
// reports how many references are expressible at that level at all, and how
// many survive a machine renumbering. Minimal qualification (E7's scheme)
// is the per-reference best case; this ablation shows both why level 3
// (fully qualified) is fragile and why a fixed low level cannot express
// distant references.
func A3(cfg A3Config) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "forced pid qualification level: expressibility and survival",
		Header: []string{"level", "expressible", "survive-renumber", "of"},
		Notes: []string{
			"level 1 = (0,0,l): intra-machine only; level 2 = (0,m,l): intra-network;",
			"level 3 = (n,m,l): anywhere but stale after any renumbering it spans.",
		},
	}
	for level := 1; level <= 3; level++ {
		network := netsim.NewNetwork()
		var nodes []*pqi.Node
		dir := make(map[string]*pqi.Node)
		for n := 1; n <= cfg.Networks; n++ {
			for m := 1; m <= cfg.MachinesPerNet; m++ {
				for l := 1; l <= cfg.ProcsPerMachine; l++ {
					name := fmt.Sprintf("p-%d-%d-%d", n, m, l)
					node, err := pqi.NewNode(network, netsim.Addr{
						Net: uint32(n), Mach: uint32(m), Local: uint32(l),
					}, name)
					if err != nil {
						return nil, err
					}
					nodes = append(nodes, node)
					dir[name] = node
				}
			}
		}
		gen := workload.New(cfg.Seed)
		type held struct {
			holder  *pqi.Node
			subject string
		}
		var refs []held
		total, expressible := 0, 0
		for _, n := range nodes {
			for r := 0; r < cfg.RefsPerProc; r++ {
				target := nodes[gen.Intn(len(nodes))]
				if target == n {
					continue
				}
				total++
				p, err := pqi.RelativizeAt(target.Addr(), n.Addr(), level)
				if err != nil {
					continue // not expressible at this level
				}
				expressible++
				n.Hold(target.Name, p)
				refs = append(refs, held{holder: n, subject: target.Name})
			}
		}
		if _, err := network.RenumberMachine(1, 1, 9); err != nil {
			return nil, err
		}
		survived := 0
		for _, r := range refs {
			if r.holder.RefValid(r.subject, dir) {
				survived++
			}
		}
		t.AddRow(itoa(level), itoa(expressible), itoa(survived), itoa(total))
	}
	return t, nil
}
