package experiments

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/embedded"
	"namecoherence/internal/federation"
	"namecoherence/internal/sharedns"
)

// E5Config parameterizes experiment E5 (Figure 5, §5.3): cross-linked
// autonomous systems.
type E5Config struct {
	// Users is the number of user homes in each organization's /users.
	Users int
	// CollidingUsers is how many user names exist in both organizations
	// (colliding textual names denoting different entities).
	CollidingUsers int
}

// DefaultE5 returns the standard configuration.
func DefaultE5() E5Config {
	return E5Config{Users: 20, CollidingUsers: 5}
}

// E5 measures name exchange across a federation boundary: verbatim names
// are incoherent (missing or, worse, colliding), the human prefix-mapping
// closure restores coherence for plain names, and the Algol-scoped rule for
// embedded names restores coherence for structured objects accessed through
// the cross-link.
func E5(cfg E5Config) (*Table, error) {
	w := core.NewWorld()
	f := federation.New(w)

	org1, err := sharedns.NewSystem(w, "o1c1")
	if err != nil {
		return nil, err
	}
	org2, err := sharedns.NewSystem(w, "o2c1")
	if err != nil {
		return nil, err
	}
	users1, err := org1.AttachSpace("users")
	if err != nil {
		return nil, err
	}
	users2, err := org2.AttachSpace("users")
	if err != nil {
		return nil, err
	}
	if err := f.AddSystem("org1", org1); err != nil {
		return nil, err
	}
	if err := f.AddSystem("org2", org2); err != nil {
		return nil, err
	}

	// org2's users; the first CollidingUsers also exist in org1.
	var exchanged []string
	for i := 0; i < cfg.Users; i++ {
		user := fmt.Sprintf("u%03d", i)
		p := core.ParsePath(user + "/profile")
		if _, err := users2.Tree.Create(p, user+"@org2"); err != nil {
			return nil, err
		}
		if i < cfg.CollidingUsers {
			if _, err := users1.Tree.Create(p, user+"@org1"); err != nil {
				return nil, err
			}
		}
		exchanged = append(exchanged, "/users/"+user+"/profile")
	}

	// A structured object in org2's users space: a document whose parts are
	// linked by embedded names scoped to the subtree.
	if _, err := users2.Tree.Create(core.ParsePath("u000/doc/parts/intro"), "intro text"); err != nil {
		return nil, err
	}
	if _, err := users2.Tree.Create(core.ParsePath("u000/doc/main"), "main text",
		core.ParsePath("parts/intro")); err != nil {
		return nil, err
	}

	// Cross-link org2's users space into org1 under /org2-users.
	if err := f.CrossLink("org1", "org2-users", "org2", "users", "/"); err != nil {
		return nil, err
	}

	sender, err := org2.Spawn("o2c1", "sender")
	if err != nil {
		return nil, err
	}
	receiver, err := org1.Spawn("o1c1", "receiver")
	if err != nil {
		return nil, err
	}
	pm := federation.NewPrefixMapper()
	pm.AddRule("/users", "/org2-users")

	countCoherent := func(mapper *federation.PrefixMapper) (coherent, collisions int) {
		for _, name := range exchanged {
			out := federation.ExchangeName(sender, receiver, name, mapper)
			if out.Coherent {
				coherent++
			} else if !out.ReceiverEntity.IsUndefined() {
				collisions++
			}
		}
		return coherent, collisions
	}
	cohPlain, collPlain := countCoherent(nil)
	cohMapped, collMapped := countCoherent(pm)

	t := &Table{
		ID:     "E5",
		Title:  "cross-linked autonomous systems (federation)",
		Header: []string{"exchange", "coherent", "wrong-entity", "of"},
		Notes: []string{
			"paper §5.3/§7: incoherence arises when names are exchanged across system",
			"boundaries; the human prefix-mapping closure (add /org2) restores it;",
			"embedded names need the scoped rule of §6 — prefixes cannot reach them.",
		},
	}
	t.AddRow("verbatim across boundary", itoa(cohPlain), itoa(collPlain), itoa(len(exchanged)))
	t.AddRow("with prefix mapping", itoa(cohMapped), itoa(collMapped), itoa(len(exchanged)))

	// Embedded names inside the shared structured object, accessed from
	// org1 through the cross-link. Baseline: resolve the embedded name
	// against the receiver's root (R(activity)) — it fails, and no prefix
	// rule helps because humans never see embedded names. Scoped rule:
	// resolve along the access trail — coherent.
	intro2, err := users2.Tree.Lookup(core.ParsePath("u000/doc/parts/intro"))
	if err != nil {
		return nil, err
	}
	embName := core.ParsePath("parts/intro")

	_, baselineErr := receiver.Resolve("/" + embName.String())
	baselineOK := 0
	if baselineErr == nil {
		baselineOK = 1
	}
	t.AddRow("embedded name, receiver-root rule", itoa(baselineOK), "0", "1")

	recvRoot, err := receiver.Resolve("/")
	if err != nil {
		return nil, err
	}
	_, trail, err := receiver.ResolveTrail("/org2-users/u000/doc/main")
	if err != nil {
		return nil, err
	}
	chain := embedded.Chain(recvRoot, trail)
	got, _, err := embedded.Resolve(w, chain, embName)
	scopedOK := 0
	if err == nil && got == intro2 {
		scopedOK = 1
	}
	t.AddRow("embedded name, Algol-scope rule", itoa(scopedOK), "0", "1")
	return t, nil
}
