package experiments

import (
	"fmt"

	"namecoherence/internal/netsim"
	"namecoherence/internal/pqi"
	"namecoherence/internal/workload"
)

// E7Config parameterizes experiment E7 (§6 Example 1): connection survival
// under machine and network renumbering, partially qualified identifiers
// versus the fully qualified baseline.
type E7Config struct {
	// Networks, MachinesPerNet and ProcsPerMachine shape the topology.
	Networks, MachinesPerNet, ProcsPerMachine int
	// RefsPerProc is how many peer references each process holds.
	RefsPerProc int
	// Seed drives peer selection.
	Seed int64
}

// DefaultE7 returns the standard configuration.
func DefaultE7() E7Config {
	return E7Config{Networks: 2, MachinesPerNet: 3, ProcsPerMachine: 4, RefsPerProc: 6, Seed: 7}
}

// e7Event is a renumbering event plus the scope predicate that classifies
// addresses as inside the renamed subsystem.
type e7Event struct {
	name   string
	apply  func(*netsim.Network) error
	inside func(netsim.Addr) bool
}

// e7Run builds the topology, distributes refs under the given qualification
// scheme (minimal PQI or fully qualified), applies the event, and returns
// survival counts per ref class: "intra" (both endpoints inside the renamed
// subsystem), "outward" (held inside, pointing out), "inward" (held
// outside, pointing in), "untouched" (neither endpoint inside).
func e7Run(cfg E7Config, minimal bool, ev e7Event) (map[string][2]int, error) {
	network := netsim.NewNetwork()
	var nodes []*pqi.Node
	dir := make(map[string]*pqi.Node)
	for n := 1; n <= cfg.Networks; n++ {
		for m := 1; m <= cfg.MachinesPerNet; m++ {
			for l := 1; l <= cfg.ProcsPerMachine; l++ {
				name := fmt.Sprintf("p-%d-%d-%d", n, m, l)
				node, err := pqi.NewNode(network, netsim.Addr{
					Net: uint32(n), Mach: uint32(m), Local: uint32(l),
				}, name)
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, node)
				dir[name] = node
			}
		}
	}

	gen := workload.New(cfg.Seed)
	type held struct {
		holder  *pqi.Node
		subject string
		class   string
	}
	var refs []held
	for i, n := range nodes {
		// Every process holds a reference to its machine-local neighbour
		// (the subsystem's internal connections the paper cares about),
		// plus RefsPerProc-1 random peers.
		targets := make([]*pqi.Node, 0, cfg.RefsPerProc)
		if cfg.ProcsPerMachine > 1 {
			neighbour := i - i%cfg.ProcsPerMachine + (i+1)%cfg.ProcsPerMachine
			targets = append(targets, nodes[neighbour])
		}
		for len(targets) < cfg.RefsPerProc {
			targets = append(targets, nodes[gen.Intn(len(nodes))])
		}
		for _, target := range targets {
			if target == n {
				continue
			}
			var p pqi.PID
			if minimal {
				p = pqi.Relativize(target.Addr(), n.Addr())
			} else {
				var err error
				p, err = pqi.RelativizeAt(target.Addr(), n.Addr(), 3)
				if err != nil {
					return nil, err
				}
			}
			n.Hold(target.Name, p)
			class := "untouched"
			hIn, tIn := ev.inside(n.Addr()), ev.inside(target.Addr())
			switch {
			case hIn && tIn:
				class = "intra"
			case hIn:
				class = "outward"
			case tIn:
				class = "inward"
			}
			refs = append(refs, held{holder: n, subject: target.Name, class: class})
		}
	}

	if err := ev.apply(network); err != nil {
		return nil, err
	}
	out := make(map[string][2]int) // class → [survived, total]
	for _, r := range refs {
		c := out[r.class]
		c[1]++
		if r.holder.RefValid(r.subject, dir) {
			c[0]++
		}
		out[r.class] = c
	}
	return out, nil
}

// E7 measures the fraction of connections that survive a machine
// renumbering and a network renumbering under each identifier scheme.
func E7(cfg E7Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "pid validity under renumbering: partially vs fully qualified",
		Header: []string{"event", "scheme", "intra", "outward", "inward", "untouched"},
		Notes: []string{
			"paper §6 Ex.1: with partially qualified pids, pids of local processes",
			"within the renamed machine or network remain valid, so the subsystem",
			"maintains its internal connections; fully qualified pids into or inside",
			"the renamed subsystem all go stale.",
		},
	}
	events := []e7Event{
		{
			name: "renumber machine (1,1)→(1,9)",
			apply: func(n *netsim.Network) error {
				_, err := n.RenumberMachine(1, 1, 9)
				return err
			},
			inside: func(a netsim.Addr) bool { return a.Net == 1 && a.Mach == 1 },
		},
		{
			name: "renumber network 1→9",
			apply: func(n *netsim.Network) error {
				_, err := n.RenumberNetwork(1, 9)
				return err
			},
			inside: func(a netsim.Addr) bool { return a.Net == 1 },
		},
	}
	schemes := []struct {
		name    string
		minimal bool
	}{
		{name: "partially qualified", minimal: true},
		{name: "fully qualified", minimal: false},
	}
	for _, ev := range events {
		for _, sc := range schemes {
			counts, err := e7Run(cfg, sc.minimal, ev)
			if err != nil {
				return nil, err
			}
			row := []string{ev.name, sc.name}
			for _, class := range []string{"intra", "outward", "inward", "untouched"} {
				c := counts[class]
				if c[1] == 0 {
					row = append(row, "n/a")
					continue
				}
				row = append(row, fmt.Sprintf("%s (%d/%d)",
					f2(float64(c[0])/float64(c[1])), c[0], c[1]))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
