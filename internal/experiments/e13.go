package experiments

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
	"namecoherence/internal/perproc"
)

// E13Config parameterizes experiment E13: context divergence after fork
// under copy vs shared (union) namespace semantics.
type E13Config struct {
	// InitialAttaches is how many subsystems the parent has before forking.
	InitialAttaches int
	// MutationSweep is how many post-fork parent attaches to apply per row.
	MutationSweep []int
}

// DefaultE13 returns the standard configuration.
func DefaultE13() E13Config {
	return E13Config{InitialAttaches: 4, MutationSweep: []int{0, 2, 4, 8}}
}

// E13 quantifies §5.1's "a parent and a child have coherence for all names
// until one of them modifies its context": after a copy-fork, every parent
// context mutation erodes parent/child coherence, while a shared (union)
// fork tracks the parent and stays fully coherent.
func E13(cfg E13Config) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "parent/child coherence vs post-fork context mutations",
		Header: []string{"post-fork attaches", "copy-fork coherence", "shared-fork coherence"},
		Notes: []string{
			"§5.1: copy-at-fork gives coherence only until the contexts diverge;",
			"union namespaces (Plan 9 style) keep the child's view tracking the",
			"parent, at the price of sharing mutations.",
		},
	}
	for _, mutations := range cfg.MutationSweep {
		w := core.NewWorld()
		m := machine.New(w, "m")
		parent, err := perproc.New(m, "parent")
		if err != nil {
			return nil, err
		}
		attach := func(i int) (core.Path, error) {
			sub := dirtree.New(w, fmt.Sprintf("sub%d", i))
			p := core.ParsePath("files/f")
			if _, err := sub.Create(p, "x"); err != nil {
				return nil, err
			}
			name := core.Name(fmt.Sprintf("sub%d", i))
			if err := parent.Attach(nil, name, sub.Root); err != nil {
				return nil, err
			}
			return core.PathOf(name).Join(p), nil
		}

		var probes []core.Path
		for i := 0; i < cfg.InitialAttaches; i++ {
			p, err := attach(i)
			if err != nil {
				return nil, err
			}
			probes = append(probes, p)
		}
		copied, err := parent.Fork("copied")
		if err != nil {
			return nil, err
		}
		shared, err := parent.ForkShared("shared")
		if err != nil {
			return nil, err
		}
		for i := 0; i < mutations; i++ {
			p, err := attach(cfg.InitialAttaches + i)
			if err != nil {
				return nil, err
			}
			probes = append(probes, p)
		}

		agree := func(child *perproc.Proc) float64 {
			ok := 0
			for _, p := range probes {
				want, err1 := parent.Resolve("/" + p.String())
				got, err2 := child.Resolve("/" + p.String())
				if err1 == nil && err2 == nil && want == got {
					ok++
				}
			}
			return float64(ok) / float64(len(probes))
		}
		t.AddRow(itoa(mutations), f2(agree(copied)), f2(agree(shared)))
	}
	return t, nil
}
