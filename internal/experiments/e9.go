package experiments

import (
	"fmt"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/sharedns"
)

// E9Config parameterizes experiment E9 (§5): weak coherence for replicated
// objects as the client count grows.
type E9Config struct {
	// ClientCounts is the sweep of system sizes.
	ClientCounts []int
	// Commands is the number of replicated commands.
	Commands int
}

// DefaultE9 returns the standard configuration.
func DefaultE9() E9Config {
	return E9Config{ClientCounts: []int{2, 4, 8, 16}, Commands: 10}
}

// E9 sweeps the number of clients and reports strict vs weak coherence for
// replicated command names: strict coherence fails at any scale, weak
// coherence holds at every scale — the paper's point that strict coherence
// is "unnecessarily restrictive" for replicated objects.
func E9(cfg E9Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "weak coherence for replicated commands vs system size",
		Header: []string{"clients", "strict-degree", "weak-degree"},
		Notes: []string{
			"paper §5: for replicated objects, coherence as defined is unnecessarily",
			"restrictive; weak coherence (same replica group) is sufficient and",
			"holds independent of scale.",
		},
	}
	for _, n := range cfg.ClientCounts {
		w := core.NewWorld()
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("c%02d", i)
		}
		s, err := sharedns.NewSystem(w, names...)
		if err != nil {
			return nil, err
		}
		var paths []core.Path
		for c := 0; c < cfg.Commands; c++ {
			p := fmt.Sprintf("/bin/cmd%02d", c)
			if _, err := s.ReplicateCommand(p, "#!"); err != nil {
				return nil, err
			}
			_, pp := core.SplitPathString(p)
			paths = append(paths, pp)
		}
		var acts []core.Entity
		for _, cn := range names {
			p, err := s.Spawn(cn, "probe")
			if err != nil {
				return nil, err
			}
			acts = append(acts, p.Activity)
		}
		rep := coherence.Measure(w, s.Registry.ResolveAbs, acts, paths)
		t.AddRow(itoa(n), f2(rep.StrictDegree()), f2(rep.WeakDegree()))
	}
	return t, nil
}
