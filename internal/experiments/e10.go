package experiments

import (
	"fmt"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/federation"
	"namecoherence/internal/sharedns"
)

// E10Config parameterizes experiment E10 (§7): name spaces shared in
// limited scopes — group, organization, federation.
type E10Config struct {
	// Orgs and GroupsPerOrg shape the hierarchy; each group has
	// ClientsPerGroup client subsystems.
	Orgs, GroupsPerOrg, ClientsPerGroup int
	// NamesPerSpace sizes each shared space.
	NamesPerSpace int
}

// DefaultE10 returns the standard configuration.
func DefaultE10() E10Config {
	return E10Config{Orgs: 2, GroupsPerOrg: 2, ClientsPerGroup: 2, NamesPerSpace: 10}
}

// E10 builds a federation of organizations with group-scoped (/proj),
// org-scoped (/users) and federation-scoped (/services) name spaces, and
// measures coherence between activity pairs at increasing scope distance.
// The probe set is the union of one name from each space class.
func E10(cfg E10Config) (*Table, error) {
	w := core.NewWorld()
	fed := federation.New(w)

	type clientRef struct {
		org, group int
		name       string
	}
	var clients []clientRef
	systems := make([]*sharedns.System, cfg.Orgs)

	// Build per-org systems with their clients.
	for o := 0; o < cfg.Orgs; o++ {
		var names []string
		for g := 0; g < cfg.GroupsPerOrg; g++ {
			for c := 0; c < cfg.ClientsPerGroup; c++ {
				n := fmt.Sprintf("o%dg%dc%d", o, g, c)
				names = append(names, n)
				clients = append(clients, clientRef{org: o, group: g, name: n})
			}
		}
		s, err := sharedns.NewSystem(w, names...)
		if err != nil {
			return nil, err
		}
		systems[o] = s
		if err := fed.AddSystem(fmt.Sprintf("org%d", o), s); err != nil {
			return nil, err
		}
	}

	fill := func(sp *sharedns.Space, label string) error {
		for i := 0; i < cfg.NamesPerSpace; i++ {
			p := core.ParsePath(fmt.Sprintf("e%03d", i))
			if _, err := sp.Tree.Create(p, label); err != nil {
				return err
			}
		}
		return nil
	}

	// Group-scoped spaces: /proj shared within each group.
	for o := 0; o < cfg.Orgs; o++ {
		for g := 0; g < cfg.GroupsPerOrg; g++ {
			var members []string
			for _, c := range clients {
				if c.org == o && c.group == g {
					members = append(members, c.name)
				}
			}
			sp, err := systems[o].AttachSpace("proj", members...)
			if err != nil {
				return nil, err
			}
			if err := fill(sp, fmt.Sprintf("proj@o%dg%d", o, g)); err != nil {
				return nil, err
			}
		}
	}
	// Org-scoped spaces: /users shared across each whole organization.
	for o := 0; o < cfg.Orgs; o++ {
		sp, err := systems[o].AttachSpace("users")
		if err != nil {
			return nil, err
		}
		if err := fill(sp, fmt.Sprintf("users@o%d", o)); err != nil {
			return nil, err
		}
	}
	// Federation-scoped space: /services shared by every client everywhere.
	services, err := systems[0].AttachSpace("services")
	if err != nil {
		return nil, err
	}
	if err := fill(services, "services@fed"); err != nil {
		return nil, err
	}
	for o := 1; o < cfg.Orgs; o++ {
		if err := systems[o].AttachExistingSpace("services", services.Tree.Root); err != nil {
			return nil, err
		}
	}

	// Probe processes: one per client.
	procs := make(map[string]core.Entity)
	for _, c := range clients {
		p, err := systems[c.org].Spawn(c.name, "probe")
		if err != nil {
			return nil, err
		}
		procs[c.name] = p.Activity
	}
	// Each activity is registered with exactly one org's system; route the
	// probe to it.
	resolve := func(a core.Entity, p core.Path) (core.Entity, error) {
		for _, s := range systems {
			if _, ok := s.Registry.Get(a); ok {
				return s.Registry.ResolveAbs(a, p)
			}
		}
		return core.Undefined, fmt.Errorf("activity %v not registered", a)
	}

	probes := []core.Path{
		core.ParsePath("proj/e000"),
		core.ParsePath("users/e000"),
		core.ParsePath("services/e000"),
	}

	pairAt := func(distance string) [2]string {
		switch distance {
		case "same group":
			return [2]string{clients[0].name, clients[1].name}
		case "same org, different group":
			return [2]string{clients[0].name, clients[cfg.ClientsPerGroup].name}
		default: // different org
			return [2]string{clients[0].name, clients[cfg.GroupsPerOrg*cfg.ClientsPerGroup].name}
		}
	}

	t := &Table{
		ID:     "E10",
		Title:  "coherence vs scope distance with group/org/federation spaces",
		Header: []string{"pair", "proj", "users", "services", "strict-degree"},
		Notes: []string{
			"paper §7: it is sufficient to share name spaces in limited scopes among",
			"activities with a high degree of interaction; coherence falls off as the",
			"scope boundary is crossed, and only wider-scoped spaces stay coherent.",
		},
	}
	for _, dist := range []string{"same group", "same org, different group", "different org"} {
		pr := pairAt(dist)
		acts := []core.Entity{procs[pr[0]], procs[pr[1]]}
		row := []string{dist}
		coherentCount := 0
		for _, p := range probes {
			out := coherence.CheckName(w, resolve, acts, p)
			row = append(row, out.String())
			if out == coherence.Coherent {
				coherentCount++
			}
		}
		row = append(row, f2(float64(coherentCount)/float64(len(probes))))
		t.AddRow(row...)
	}
	return t, nil
}
