// Package experiments builds the scenarios that operationalize every figure
// and claim of the paper and measures the coherence the paper predicts
// qualitatively. Each experiment returns a Table whose rows are the series
// recorded in EXPERIMENTS.md; cmd/cohbench prints them and bench_test.go
// times them.
//
// Index (see DESIGN.md for the full mapping):
//
//	E1  Figure 1 + §4  sources of names × resolution rules
//	E2  Figure 2       context selection for exchanged/embedded names
//	E3  Figure 3 §5.1  the Newcastle Connection
//	E4  Figure 4 §5.2  the shared naming graph (Andrew, DCE cells)
//	E5  Figure 5 §5.3  cross-linked federations and prefix mapping
//	E6  Figure 6 §6    embedded names under the Algol scope rule
//	E7  §6 Ex. 1       partially qualified pids under renumbering
//	E8  §6 II / §7     per-process namespaces and remote execution
//	E9  §5             weak coherence for replicated objects
//	E10 §7             name spaces shared in limited scopes
//	A1  ablation       name-server caching
//	A3  ablation       pid qualification level
package experiments
