package experiments

import (
	"fmt"
	"net"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/workload"
)

// A4Config parameterizes ablation A4: stale reads under binding churn for
// each cache discipline.
type A4Config struct {
	// Names is the number of distinct remote names.
	Names int
	// Lookups is the number of lookups issued.
	Lookups int
	// ChurnEvery rebinds one random name every this many lookups.
	ChurnEvery int
	// CacheSize sizes the caches under test.
	CacheSize int
	// Seed drives lookup and churn choices.
	Seed int64
}

// DefaultA4 returns the standard configuration.
func DefaultA4() A4Config {
	return A4Config{Names: 50, Lookups: 1000, ChurnEvery: 25, CacheSize: 64, Seed: 17}
}

// a4Scheme describes one cache discipline under test.
type a4Scheme struct {
	name string
	opts []nameserver.ClientOption
}

// A4 interleaves lookups with server-side rebinding and counts stale reads
// (lookups that returned an entity other than the current binding) for the
// no-cache, plain-cache and coherent-cache disciplines.
func A4(cfg A4Config) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "stale reads under binding churn, by cache discipline",
		Header: []string{"cache", "lookups", "stale-reads", "server-requests", "hit-rate"},
		Notes: []string{
			"extension of the paper's coherence concern to name caches: an",
			"uninvalidated cache serves stale meanings indefinitely; the",
			"revision-tracked cache bounds staleness to one round-trip.",
		},
	}
	schemes := []a4Scheme{
		{name: "none"},
		{name: "plain", opts: []nameserver.ClientOption{nameserver.WithCache(cfg.CacheSize)}},
		{name: "coherent", opts: []nameserver.ClientOption{nameserver.WithCoherentCache(cfg.CacheSize)}},
	}
	for _, scheme := range schemes {
		stale, served, hitRate, err := a4Run(cfg, scheme)
		if err != nil {
			return nil, err
		}
		t.AddRow(scheme.name, itoa(cfg.Lookups), itoa(stale), itoa(served), f2(hitRate))
	}
	return t, nil
}

func a4Run(cfg A4Config, scheme a4Scheme) (stale, served int, hitRate float64, err error) {
	w := core.NewWorld()
	tr := dirtree.New(w, "export")
	paths := make([]core.Path, cfg.Names)
	truth := make([]core.Entity, cfg.Names)
	for i := range paths {
		p := core.ParsePath(fmt.Sprintf("dir/f%04d", i))
		e, err := tr.Create(p, "x")
		if err != nil {
			return 0, 0, 0, err
		}
		paths[i] = p
		truth[i] = e
	}
	dirEnt, err := tr.Lookup(core.PathOf("dir"))
	if err != nil {
		return 0, 0, 0, err
	}

	server := nameserver.NewServer(w, tr.RootContext())
	server.WatchExport(tr.Root)
	serverEnd, clientEnd := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server.ServeConn(serverEnd)
	}()
	client := nameserver.NewClient(clientEnd, scheme.opts...)
	defer func() {
		_ = client.Close()
		wg.Wait()
	}()

	gen := workload.New(cfg.Seed)
	lookupSeq := gen.Zipf(cfg.Lookups, cfg.Names)
	dirCtx, _ := w.ContextOf(dirEnt)
	for i, idx := range lookupSeq {
		if cfg.ChurnEvery > 0 && i > 0 && i%cfg.ChurnEvery == 0 {
			victim := gen.Intn(cfg.Names)
			fresh := w.NewObject("fresh")
			dirCtx.Bind(paths[victim][len(paths[victim])-1], fresh)
			truth[victim] = fresh
		}
		got, err := client.Resolve(paths[idx])
		if err != nil {
			return 0, 0, 0, err
		}
		if got != truth[idx] {
			stale++
		}
	}
	hits, misses := client.Stats()
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return stale, server.Served(), hitRate, nil
}
