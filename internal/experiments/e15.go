package experiments

import (
	"fmt"
	"sync"
	"time"

	"namecoherence/internal/cluster"
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/faultnet"
	"namecoherence/internal/workload"
)

// E15Config parameterizes experiment E15: availability and coherence of a
// replicated sharded cluster while one replica per shard is down.
type E15Config struct {
	// Shards is the cluster size; Replicas is servers per shard.
	Shards, Replicas int
	// Prefixes is the number of top-level subtrees; FilesPerPrefix the
	// names under each.
	Prefixes, FilesPerPrefix int
	// Clients is how many concurrent failover clients drive the workload.
	Clients int
	// Lookups is the number of (Zipf-distributed) lookups per client per
	// phase.
	Lookups int
	// CacheSize is each client's LRU capacity.
	CacheSize int
	// Timeout bounds every dial and round-trip; Retries is the extra
	// attempts after a transport failure.
	Timeout time.Duration
	Retries int
	// Seed drives the per-client Zipf samplers.
	Seed int64
}

// DefaultE15 returns the standard configuration.
func DefaultE15() E15Config {
	return E15Config{
		Shards:         4,
		Replicas:       2,
		Prefixes:       8,
		FilesPerPrefix: 4,
		Clients:        4,
		Lookups:        100,
		// Smaller than the name set, so lookups keep crossing the wire
		// (an over-sized cache would hide the faults entirely).
		CacheSize: 16,
		Timeout:   250 * time.Millisecond,
		Retries:   3,
		Seed:      29,
	}
}

// Budget is the worst-case wall time one lookup may take under the
// failure model: per attempt one bounded dial plus one bounded
// round-trip, for 1+Retries attempts, plus the (capped) backoff waits.
func (cfg E15Config) Budget() time.Duration {
	attempts := time.Duration(cfg.Retries + 1)
	return attempts*2*cfg.Timeout + attempts*200*time.Millisecond
}

// E15 measures the fault-tolerance claim behind weak coherence (§3): when
// every shard of the Fig. 4 shared graph is served by R replicas of the
// same subtree, killing one replica per shard must leave every name
// resolvable (availability 1.0) and every pair of clients agreeing at
// least up to replica groups (weak-coherence degree 1.0), with no lookup
// blocking past its deadline budget.
func E15(cfg E15Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "replicated cluster under fault injection: availability and coherence",
		Header: []string{"phase", "lookups", "ok", "availability", "failovers",
			"max-ms", "budget-ms", "weak-coherence", "strict-coherence"},
		Notes: []string{
			"§3 weak coherence as a fault-tolerance contract: replicas of one",
			"shard subtree are one replica group, so failover across them keeps",
			"every name meaning 'the same replicated object' even while a",
			"replica per shard is down; deadlines bound every lookup.",
		},
	}
	spec, paths := e14Spec(cfg.Prefixes, cfg.FilesPerPrefix)
	w := core.NewWorld()
	cl, err := cluster.NewReplicated(w, spec, cfg.Shards, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	clients := make([]*cluster.Client, cfg.Clients)
	for i := range clients {
		clients[i], err = cluster.Dial("tcp", cl.Addrs()[i%len(cl.Addrs())],
			cluster.WithLRU(cfg.CacheSize),
			cluster.WithTimeout(cfg.Timeout),
			cluster.WithRetries(cfg.Retries),
			cluster.WithBackoff(time.Millisecond),
			cluster.WithBreaker(2, 100*time.Millisecond))
		if err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}

	phases := []struct {
		name   string
		inject func()
	}{
		{"healthy", func() {}},
		{"one-down", func() {
			// One replica per shard dies; rotating the victim index mixes
			// dead primaries with dead secondaries.
			for shard := 0; shard < cl.Shards(); shard++ {
				cl.Fault(shard, shard%cfg.Replicas).SetMode(faultnet.Reset)
			}
		}},
	}
	for _, phase := range phases {
		phase.inject()
		row, err := e15Phase(cfg, cl, clients, paths, phase.name)
		if err != nil {
			return nil, fmt.Errorf("phase %s: %w", phase.name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// e15Phase drives one phase's concurrent Zipf lookups and probes
// coherence across every client afterwards.
func e15Phase(cfg E15Config, cl *cluster.Cluster, clients []*cluster.Client,
	paths []core.Path, name string) ([]string, error) {
	failoversBefore := 0
	for _, c := range clients {
		failoversBefore += c.Failovers()
	}

	type outcome struct {
		ok, total int
		maxWait   time.Duration
	}
	outcomes := make([]outcome, len(clients))
	var wg sync.WaitGroup
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client *cluster.Client) {
			defer wg.Done()
			gen := workload.New(cfg.Seed + int64(i))
			for _, k := range gen.Zipf(cfg.Lookups, len(paths)) {
				start := now()
				_, err := client.Resolve(paths[k])
				wait := since(start)
				outcomes[i].total++
				if err == nil {
					outcomes[i].ok++
				}
				if wait > outcomes[i].maxWait {
					outcomes[i].maxWait = wait
				}
			}
		}(i, client)
	}
	wg.Wait()

	ok, total, failovers := 0, 0, -failoversBefore
	var maxWait time.Duration
	for i, c := range clients {
		ok += outcomes[i].ok
		total += outcomes[i].total
		failovers += c.Failovers()
		if outcomes[i].maxWait > maxWait {
			maxWait = outcomes[i].maxWait
		}
	}

	// The coherence probe: every client, every name, failover included.
	resolvers := make([]coherence.Resolver, len(clients))
	for i, client := range clients {
		resolvers[i] = client
	}
	rep := coherence.MeasureResolvers(cl.World, resolvers, paths)

	return []string{
		name, itoa(total), itoa(ok),
		f2(float64(ok) / float64(total)),
		itoa(failovers),
		itoa(int(maxWait.Milliseconds())),
		itoa(int(cfg.Budget().Milliseconds())),
		f2(rep.WeakDegree()),
		f2(rep.StrictDegree()),
	}, nil
}
