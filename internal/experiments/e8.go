package experiments

import (
	"fmt"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
	"namecoherence/internal/perproc"
)

// E8Config parameterizes experiment E8 (§6 approach II, §7): per-process
// namespaces and remote execution.
type E8Config struct {
	// Subsystems is the number of subsystem trees the parent attaches.
	Subsystems int
	// FilesPerSubsystem sizes each subsystem tree.
	FilesPerSubsystem int
}

// DefaultE8 returns the standard configuration.
func DefaultE8() E8Config {
	return E8Config{Subsystems: 3, FilesPerSubsystem: 10}
}

// E8 measures parameter coherence for remote execution with per-process
// namespaces against the per-machine baseline, and executor-local access
// for both.
func E8(cfg E8Config) (*Table, error) {
	w := core.NewWorld()
	m1 := machine.New(w, "m1")
	m2 := machine.New(w, "m2")
	if _, err := m2.Tree.Create(core.ParsePath("data/local"), "on m2"); err != nil {
		return nil, err
	}

	parent, err := perproc.New(m1, "parent")
	if err != nil {
		return nil, err
	}
	var paramPaths []core.Path
	for s := 0; s < cfg.Subsystems; s++ {
		sub := dirtree.New(w, fmt.Sprintf("sub%d", s))
		for f := 0; f < cfg.FilesPerSubsystem; f++ {
			p := core.ParsePath(fmt.Sprintf("files/f%03d", f))
			if _, err := sub.Create(p, "payload"); err != nil {
				return nil, err
			}
			paramPaths = append(paramPaths, core.PathOf(core.Name(fmt.Sprintf("sub%d", s))).Join(p))
		}
		if err := parent.Attach(nil, core.Name(fmt.Sprintf("sub%d", s)), sub.Root); err != nil {
			return nil, err
		}
	}

	child, err := perproc.RemoteExec(parent, m2, "child")
	if err != nil {
		return nil, err
	}
	baseline := m2.Spawn("baseline")

	reg := machine.NewRegistry()
	reg.Add(parent.Process, child.Process, baseline)

	t := &Table{
		ID:     "E8",
		Title:  "per-process namespaces: remote execution parameter coherence",
		Header: []string{"scheme", "param-coherence", "executor-local access"},
		Notes: []string{
			"paper §6 II: with a per-process view, the remotely executing process",
			"uses the parent's arranged context — names passed as parameters are",
			"coherent without global names, and /local still reaches the executor.",
		},
	}

	measure := func(childAct core.Entity) float64 {
		rep := coherence.Measure(w, reg.ResolveAbs,
			[]core.Entity{parent.Activity(), childAct}, paramPaths)
		return rep.StrictDegree()
	}
	localAccess := func(p *machine.Process, name string) string {
		if _, err := p.Resolve(name); err == nil {
			return "1.00"
		}
		return "0.00"
	}

	t.AddRow("per-process remote exec",
		f2(measure(child.Activity())),
		localAccess(child.Process, "/local/data/local"))
	t.AddRow("per-machine baseline",
		f2(measure(baseline.Activity)),
		localAccess(baseline, "/data/local"))
	return t, nil
}
