package experiments

import (
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/rules"
	"namecoherence/internal/workload"
)

// E2Config parameterizes experiment E2 (Figure 2): how the coherent
// fraction depends on the overlap between contexts, for each context-
// selection choice.
type E2Config struct {
	// Activities and Names size the population.
	Activities, Names int
	// Overlaps are the shared-name fractions swept.
	Overlaps []float64
	// Seed drives the generator.
	Seed int64
}

// DefaultE2 returns the standard configuration.
func DefaultE2() E2Config {
	return E2Config{
		Activities: 6,
		Names:      200,
		Overlaps:   []float64{0, 0.25, 0.5, 0.75, 1},
		Seed:       2,
	}
}

// E2 sweeps the context overlap g and reports the coherent fraction for
// names exchanged in messages under R(receiver) vs R(sender), and for
// names obtained from an object under R(activity) vs R(object). Figure 2's
// point measured: selecting the receiver's (or accessor's) context yields
// coherence only for the overlapping (global) names — degree g — while
// selecting the sender's (or object's) context yields full coherence.
func E2(cfg E2Config) *Table {
	t := &Table{
		ID:    "E2",
		Title: "coherent fraction vs context overlap, by context selection",
		Header: []string{
			"overlap",
			"msg/R(receiver)", "msg/R(sender)",
			"obj/R(activity)", "obj/R(object)",
		},
		Notes: []string{
			"paper Fig.2: resolving in the receiver's (accessor's) context is coherent",
			"only for global names; resolving in the sender's (object's) context is",
			"coherent for all names exchanged (embedded).",
		},
	}
	for i, g := range cfg.Overlaps {
		gen := workload.New(cfg.Seed + int64(i))
		w := core.NewWorld()
		pop := gen.Population(w, cfg.Activities, cfg.Names, g)
		obj, objAssoc := gen.ObjectContext(w, pop, "doc")
		sender := pop.Activities[0]
		probes := pop.ProbePaths()

		receiverRule := rules.NewResolver(w, &rules.ActivityRule{Contexts: pop.Contexts})
		senderRule := rules.NewResolver(w, &rules.SenderRule{Contexts: pop.Contexts})
		objectRule := rules.NewResolver(w, &rules.ObjectRule{
			ObjectContexts:   objAssoc,
			ActivityContexts: pop.Contexts,
		})

		msgCirc := func(a core.Entity) rules.Circumstance { return rules.Received(a, sender) }
		objCirc := func(a core.Entity) rules.Circumstance { return rules.FromObject(a, obj, nil) }

		cell := func(r *rules.Resolver, circ func(core.Entity) rules.Circumstance) string {
			resolve := func(a core.Entity, p core.Path) (core.Entity, error) {
				return r.Resolve(circ(a), p)
			}
			return f2(coherence.Measure(w, resolve, pop.Activities, probes).StrictDegree())
		}
		t.AddRow(
			f2(g),
			cell(receiverRule, msgCirc),
			cell(senderRule, msgCirc),
			cell(receiverRule, objCirc),
			cell(objectRule, objCirc),
		)
	}
	return t
}
