package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"namecoherence/internal/cluster"
	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
)

// E17Config parameterizes experiment E17: coherence degree under
// concurrent writer/reader churn, poll-validated vs push-invalidated.
type E17Config struct {
	// Shards is the cluster size; Replicas is servers per shard.
	Shards, Replicas int
	// Prefixes and FilesPerPrefix shape the base tree (see e14Spec).
	Prefixes, FilesPerPrefix int
	// Readers is the number of caching clients resolving throughout the
	// churn; Cache is each reader's LRU capacity.
	Readers, Cache int
	// Writers is the number of mutating clients; each performs
	// WritesPerWriter rebind cycles (mkcontext + unbind + bind) against
	// its own set of victim names.
	Writers, WritesPerWriter int
}

// DefaultE17 returns the standard configuration.
func DefaultE17() E17Config {
	return E17Config{
		Shards:          4,
		Replicas:        2,
		Prefixes:        8,
		FilesPerPrefix:  6,
		Readers:         4,
		Cache:           128,
		Writers:         4,
		WritesPerWriter: 8,
	}
}

// routedResolver answers probes from the cluster's own primary subtrees —
// the ground truth the caching readers are compared against. Without it a
// uniformly stale set of readers would agree with each other and read as
// coherent; disagreement with the authoritative graph is what makes
// staleness visible to the probe.
type routedResolver struct{ cl *cluster.Cluster }

func (r routedResolver) Resolve(p core.Path) (core.Entity, error) {
	return r.cl.Trees[r.cl.Routes().ShardFor(p)].Lookup(p)
}

// E17 measures what the wire-level write path does to §5's coherence
// story. Caching readers resolve continuously while writers rebind live
// names over the wire (every rebind retargets a name at a freshly created
// context, so a stale cache entry is a visibly different entity). With
// poll validation a reader only learns of a revision move on its next
// cache miss — a cache full of hits never learns, and the probe finds the
// stale entries incoherent against the authoritative graph. With push
// invalidation the server's frames purge the caches as the writes commit,
// and coherence survives the churn.
func E17(cfg E17Config) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "write churn vs caching readers: poll validation vs push invalidation",
		Header: []string{"mode", "writes", "lookups", "hits", "invalidations",
			"strict-coherence", "weak-coherence"},
		Notes: []string{
			"writers rebind live names to fresh contexts through the wire",
			"write path while readers resolve from coherent LRU caches; the",
			"probe compares every reader against the cluster's own subtrees.",
			"poll mode: a reader revalidates only on a cache miss, so hits",
			"keep serving the old binding. push mode: subscribed readers are",
			"purged by server frames as each write commits.",
		},
	}
	for _, push := range []bool{false, true} {
		row, err := e17Phase(cfg, push)
		if err != nil {
			mode := "poll"
			if push {
				mode = "push"
			}
			return nil, fmt.Errorf("%s phase: %w", mode, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// e17Phase runs one churn round on a fresh cluster and probes coherence.
func e17Phase(cfg E17Config, push bool) ([]string, error) {
	spec, paths := e14Spec(cfg.Prefixes, cfg.FilesPerPrefix)
	w := core.NewWorld()
	cl, err := cluster.NewReplicated(w, spec, cfg.Shards, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	readers := make([]*cluster.Client, cfg.Readers)
	for i := range readers {
		opts := []cluster.ClientOption{cluster.WithLRU(cfg.Cache)}
		if push {
			opts = append(opts, cluster.WithPushInvalidation())
		}
		readers[i], err = cluster.Dial("tcp", cl.Addrs()[0], opts...)
		if err != nil {
			return nil, err
		}
		defer readers[i].Close()
	}
	writers := make([]*cluster.Client, cfg.Writers)
	for i := range writers {
		writers[i], err = cluster.Dial("tcp", cl.Addrs()[0])
		if err != nil {
			return nil, err
		}
		defer writers[i].Close()
	}

	// Prime every reader's cache over the whole base tree.
	for _, r := range readers {
		for _, p := range paths {
			if _, err := r.Resolve(p); err != nil {
				return nil, err
			}
		}
	}

	// Victims are the names the writers will rebind, partitioned
	// round-robin so no two writers touch the same name.
	nVictims := cfg.Writers * cfg.WritesPerWriter
	if nVictims > len(paths) {
		nVictims = len(paths)
	}
	victims := paths[:nVictims]

	// Readers churn until stopped; writers rebind their victims. Every
	// rebind is mkcontext (a fresh entity), unbind, bind — the name now
	// names something a stale cache entry visibly is not.
	stop := make(chan struct{})
	var lookups atomic.Int64
	var rg sync.WaitGroup
	for _, r := range readers {
		rg.Add(1)
		go func(r *cluster.Client) {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range paths {
					if _, err := r.Resolve(p); err == nil {
						lookups.Add(1)
					}
				}
			}
		}(r)
	}
	writeErrs := make([]error, cfg.Writers)
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for wi := range writers {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			wr := writers[wi]
			for i := wi; i < len(victims); i += cfg.Writers {
				dir, name := victims[i][:len(victims[i])-1], victims[i][len(victims[i])-1]
				fresh, err := wr.Mkcontext(dir, core.Name(fmt.Sprintf("w%02dc%02d", wi, i)))
				if err == nil {
					err = wr.Unbind(dir, name)
				}
				if err == nil {
					err = wr.Bind(dir, name, fresh)
				}
				if err != nil {
					writeErrs[wi] = fmt.Errorf("writer %d victim %q: %w", wi, victims[i], err)
					return
				}
				wrote.Add(3)
			}
		}(wi)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	for _, err := range writeErrs {
		if err != nil {
			return nil, err
		}
	}

	// In push mode, wait for the invalidation stream to quiesce: writers
	// have stopped, so once the per-reader counts hold still across two
	// sleeps every coalesced frame has landed. Bounded — coalescing makes
	// an exact expected count unknowable.
	invals := func() int {
		n := 0
		for _, r := range readers {
			n += r.Invalidations()
		}
		return n
	}
	if push {
		prev := -1
		for i := 0; i < 500; i++ {
			cur := invals()
			if cur > 0 && cur == prev {
				break
			}
			prev = cur
			time.Sleep(2 * time.Millisecond)
		}
	}
	cl.DrainReplication()

	// Probe the rebound names: every reader against the ground truth.
	resolvers := make([]coherence.Resolver, 0, len(readers)+1)
	for _, r := range readers {
		resolvers = append(resolvers, r)
	}
	resolvers = append(resolvers, routedResolver{cl})
	rep := coherence.MeasureResolvers(w, resolvers, victims)

	hits := 0
	for _, r := range readers {
		h, _ := r.Stats()
		hits += h
	}
	mode := "poll"
	if push {
		mode = "push"
	}
	return []string{
		mode, itoa(int(wrote.Load())), itoa(int(lookups.Load())), itoa(hits),
		itoa(invals()), f2(rep.StrictDegree()), f2(rep.WeakDegree()),
	}, nil
}
