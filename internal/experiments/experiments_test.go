package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// cell returns Rows[r][c] with bounds checking.
func cell(t *testing.T, tb *Table, r, c int) string {
	t.Helper()
	if r >= len(tb.Rows) || c >= len(tb.Rows[r]) {
		t.Fatalf("%s: no cell (%d,%d); rows=%v", tb.ID, r, c, tb.Rows)
	}
	return tb.Rows[r][c]
}

// rowByLabel returns the first row whose first cell equals label.
func rowByLabel(t *testing.T, tb *Table, label string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == label {
			return row
		}
	}
	t.Fatalf("%s: no row %q; rows=%v", tb.ID, label, tb.Rows)
	return nil
}

func TestE1Matrix(t *testing.T) {
	tb := E1(DefaultE1())
	// Rows: R(activity), R(sender), R(object), R(global).
	// Columns: rule, internal, message, object.
	want := [][]string{
		{"R(activity)", "0.25", "0.25", "0.25"},
		{"R(sender)", "0.25", "1.00", "0.25"},
		{"R(object)", "0.25", "0.25", "1.00"},
		{"R(global)", "1.00", "1.00", "1.00"},
	}
	if len(tb.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for r := range want {
		for c := range want[r] {
			if got := cell(t, tb, r, c); got != want[r][c] {
				t.Errorf("E1[%d][%d] = %q, want %q", r, c, got, want[r][c])
			}
		}
	}
}

func TestE2Sweep(t *testing.T) {
	tb := E2(DefaultE2())
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		overlap := row[0]
		// Receiver-side selections track the overlap; sender/object-side
		// selections are always fully coherent.
		if row[1] != overlap {
			t.Errorf("msg/R(receiver) at overlap %s = %s", overlap, row[1])
		}
		if row[3] != overlap {
			t.Errorf("obj/R(activity) at overlap %s = %s", overlap, row[3])
		}
		if row[2] != "1.00" || row[4] != "1.00" {
			t.Errorf("sender/object rules not fully coherent at %s: %v", overlap, row)
		}
	}
}

func TestE3Newcastle(t *testing.T) {
	tb, err := E3(DefaultE3())
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]string{
		"/ names, same machine":                               "1.00",
		"/ names, across machines":                            "0.00",
		"../machine/... names, across machines":               "1.00",
		"remote exec params, root-of-invoker":                 "1.00",
		"remote exec executor-local access, root-of-invoker":  "0.00",
		"remote exec params, root-of-executor":                "0.00",
		"remote exec executor-local access, root-of-executor": "1.00",
	}
	for label, want := range expect {
		row := rowByLabel(t, tb, label)
		if row[1] != want {
			t.Errorf("%q = %s, want %s", label, row[1], want)
		}
	}
}

func TestE4SharedGraph(t *testing.T) {
	tb, err := E4(DefaultE4())
	if err != nil {
		t.Fatal(err)
	}
	// label → [strict, weak]
	expect := map[string][2]string{
		"/vice (shared graph), all clients": {"1.00", "1.00"},
		"local names, all clients":          {"0.00", "0.00"},
		"replicated /bin, all clients":      {"0.00", "1.00"},
		"/.: cell names, within cell":       {"1.00", "1.00"},
		"/.: cell names, across cells":      {"0.00", "0.00"},
	}
	for label, want := range expect {
		row := rowByLabel(t, tb, label)
		if row[1] != want[0] || row[2] != want[1] {
			t.Errorf("%q = (%s,%s), want %v", label, row[1], row[2], want)
		}
	}
}

func TestE5Federation(t *testing.T) {
	tb, err := E5(DefaultE5())
	if err != nil {
		t.Fatal(err)
	}
	verbatim := rowByLabel(t, tb, "verbatim across boundary")
	if verbatim[1] != "0" {
		t.Errorf("verbatim coherent = %s, want 0", verbatim[1])
	}
	if verbatim[2] != "5" {
		t.Errorf("verbatim wrong-entity = %s, want 5 (the colliding users)", verbatim[2])
	}
	mapped := rowByLabel(t, tb, "with prefix mapping")
	if mapped[1] != "20" || mapped[2] != "0" {
		t.Errorf("mapped = %v", mapped)
	}
	if row := rowByLabel(t, tb, "embedded name, receiver-root rule"); row[1] != "0" {
		t.Errorf("embedded baseline = %s, want 0", row[1])
	}
	if row := rowByLabel(t, tb, "embedded name, Algol-scope rule"); row[1] != "1" {
		t.Errorf("embedded scoped = %s, want 1", row[1])
	}
}

func TestE6Embedded(t *testing.T) {
	tb, err := E6(DefaultE6())
	if err != nil {
		t.Fatal(err)
	}
	n := itoa(DefaultE6().EmbeddedNames)
	// The scope rule preserves all meanings under every operation; the
	// baseline works only in the purpose-built friendly layout.
	for _, row := range tb.Rows {
		if row[1] != n {
			t.Errorf("scoped %q = %s, want %s", row[0], row[1], n)
		}
		wantBaseline := "0"
		if row[0] == "baseline-friendly layout" {
			wantBaseline = n
		}
		if row[2] != wantBaseline {
			t.Errorf("baseline %q = %s, want %s", row[0], row[2], wantBaseline)
		}
	}
}

func TestE7Renumbering(t *testing.T) {
	tb, err := E7(DefaultE7())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		scheme, intra, inward, untouched := row[1], row[2], row[4], row[5]
		if intra == "n/a" {
			t.Fatalf("no intra refs sampled: %v", row)
		}
		// The paper's claim: intra refs survive iff partially qualified.
		wantIntra := "0.00"
		if scheme == "partially qualified" {
			wantIntra = "1.00"
		}
		if !strings.HasPrefix(intra, wantIntra) {
			t.Errorf("%v: intra = %s, want prefix %s", row[:2], intra, wantIntra)
		}
		// Inward refs break under both schemes; untouched survive both.
		if !strings.HasPrefix(inward, "0.00") {
			t.Errorf("%v: inward = %s", row[:2], inward)
		}
		if !strings.HasPrefix(untouched, "1.00") {
			t.Errorf("%v: untouched = %s", row[:2], untouched)
		}
	}
}

func TestE8PerProcess(t *testing.T) {
	tb, err := E8(DefaultE8())
	if err != nil {
		t.Fatal(err)
	}
	pp := rowByLabel(t, tb, "per-process remote exec")
	if pp[1] != "1.00" || pp[2] != "1.00" {
		t.Errorf("per-process row = %v", pp)
	}
	base := rowByLabel(t, tb, "per-machine baseline")
	if base[1] != "0.00" {
		t.Errorf("baseline param coherence = %s, want 0.00", base[1])
	}
}

func TestE9WeakCoherence(t *testing.T) {
	tb, err := E9(DefaultE9())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(DefaultE9().ClientCounts) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "0.00" || row[2] != "1.00" {
			t.Errorf("clients=%s: strict=%s weak=%s, want 0.00/1.00", row[0], row[1], row[2])
		}
	}
}

func TestE10ScopeDistance(t *testing.T) {
	tb, err := E10(DefaultE10())
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]string{
		"same group":                "1.00",
		"same org, different group": "0.67",
		"different org":             "0.33",
	}
	for label, want := range expect {
		row := rowByLabel(t, tb, label)
		if row[len(row)-1] != want {
			t.Errorf("%q degree = %s, want %s", label, row[len(row)-1], want)
		}
	}
	// The services (federation-scoped) column stays coherent everywhere.
	for _, row := range tb.Rows {
		if row[3] != "coherent" {
			t.Errorf("services at %q = %s", row[0], row[3])
		}
	}
}

func TestA1Caching(t *testing.T) {
	tb, err := A1(DefaultA1())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(DefaultA1().CacheSizes) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Server requests must be monotonically non-increasing with cache size.
	prev := -1
	for i, row := range tb.Rows {
		reqs := row[2]
		var v int
		if _, err := fmtSscan(reqs, &v); err != nil {
			t.Fatalf("bad cell %q", reqs)
		}
		if prev >= 0 && v > prev {
			t.Errorf("row %d: requests %d > previous %d", i, v, prev)
		}
		prev = v
	}
	// Without a cache, every lookup hits the server.
	if tb.Rows[0][2] != tb.Rows[0][1] {
		t.Errorf("no-cache row: served %s != lookups %s", tb.Rows[0][2], tb.Rows[0][1])
	}
}

func TestA3QualificationLevels(t *testing.T) {
	tb, err := A3(DefaultA3())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var expr [3]int
	for i, row := range tb.Rows {
		if _, err := fmtSscan(row[1], &expr[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Higher levels express strictly more references; level 3 expresses all.
	if !(expr[0] <= expr[1] && expr[1] <= expr[2]) {
		t.Errorf("expressibility not monotone: %v", expr)
	}
	var total int
	if _, err := fmtSscan(tb.Rows[2][3], &total); err != nil {
		t.Fatal(err)
	}
	if expr[2] != total {
		t.Errorf("level 3 expresses %d of %d", expr[2], total)
	}
}

// E16's headline claims: replicated subtrees dedup into one blob set
// (ratio above the replica count would be even better, above 1 is the
// contract), every life after the first recovers all shards, replicas
// come up by catch-up, and store-restored replicas stay weakly coherent.
func TestE16(t *testing.T) {
	cfg := DefaultE16()
	tb, err := E16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != cfg.Lives {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), cfg.Lives)
	}
	for i, row := range tb.Rows {
		life := i + 1
		var recovered, caughtUp, copied int
		var dedup, weak float64
		if _, err := fmtSscan(row[1], &recovered); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[2], &caughtUp); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[3], &copied); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscan(row[6], &dedup); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscan(row[7], &weak); err != nil {
			t.Fatal(err)
		}
		if dedup <= 1 {
			t.Errorf("life %d: dedup ratio %v, want > 1 (replicated subtrees must share blobs)", life, dedup)
		}
		if weak != 1 {
			t.Errorf("life %d: weak coherence %v, want 1.0", life, weak)
		}
		if row[8] != "yes" {
			t.Errorf("life %d: replica roots disagree", life)
		}
		if life == 1 && recovered != 0 {
			t.Errorf("life 1 recovered %d shards from an empty store", recovered)
		}
		if life > 1 {
			if recovered != cfg.Shards {
				t.Errorf("life %d recovered %d shards, want %d", life, recovered, cfg.Shards)
			}
			if caughtUp != cfg.Shards*(cfg.Replicas-1) {
				t.Errorf("life %d caught up %d replicas, want %d",
					life, caughtUp, cfg.Shards*(cfg.Replicas-1))
			}
			if copied == 0 {
				t.Errorf("life %d catch-up copied no blobs", life)
			}
		}
	}
}

func TestAllRuns(t *testing.T) {
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 21 {
		t.Fatalf("tables = %d, want 21", len(tables))
	}
	seen := make(map[string]bool)
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || len(tb.Rows) == 0 {
			t.Errorf("table %q malformed", tb.ID)
		}
		if seen[tb.ID] {
			t.Errorf("duplicate table id %q", tb.ID)
		}
		seen[tb.ID] = true
		if s := tb.String(); !strings.Contains(s, tb.ID) {
			t.Errorf("String missing ID for %q", tb.ID)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"n1"},
	}
	tb.AddRow("x", "y")
	s := tb.String()
	for _, want := range []string{"== T: demo ==", "a", "x", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

// fmtSscan adapts fmt.Sscan for terse use in assertions.
func fmtSscan(s string, v *int) (int, error) {
	return fmt.Sscan(s, v)
}

func TestA4CacheChurn(t *testing.T) {
	tb, err := A4(DefaultA4())
	if err != nil {
		t.Fatal(err)
	}
	var staleByScheme = map[string]int{}
	var servedByScheme = map[string]int{}
	for _, row := range tb.Rows {
		var stale, served int
		if _, err := fmtSscan(row[2], &stale); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[3], &served); err != nil {
			t.Fatal(err)
		}
		staleByScheme[row[0]] = stale
		servedByScheme[row[0]] = served
	}
	// No cache: never stale, every lookup served remotely.
	if staleByScheme["none"] != 0 || servedByScheme["none"] != DefaultA4().Lookups {
		t.Errorf("none: %d stale, %d served", staleByScheme["none"], servedByScheme["none"])
	}
	// Plain cache: substantially stale under churn.
	if staleByScheme["plain"] == 0 {
		t.Error("plain cache shows no staleness under churn")
	}
	// Coherent cache: strictly less stale than plain, at higher traffic.
	if staleByScheme["coherent"] >= staleByScheme["plain"] {
		t.Errorf("coherent (%d) not better than plain (%d)",
			staleByScheme["coherent"], staleByScheme["plain"])
	}
	if servedByScheme["coherent"] <= servedByScheme["plain"] {
		t.Errorf("coherent traffic (%d) not higher than plain (%d) — suspicious",
			servedByScheme["coherent"], servedByScheme["plain"])
	}
}

func TestA5RootBottleneck(t *testing.T) {
	tb, err := A5(DefaultA5())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(DefaultA5().Fanouts) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var lookups, rootLoad, maxL1, maxDeeper int
		for i, dst := range []*int{&lookups, &rootLoad, &maxL1, &maxDeeper} {
			if _, err := fmtSscan(row[i+1], dst); err != nil {
				t.Fatal(err)
			}
		}
		// The root serves every resolution.
		if rootLoad != lookups {
			t.Errorf("fanout %s: root load %d != lookups %d", row[0], rootLoad, lookups)
		}
		// Load strictly decreases down the tree.
		if !(rootLoad > maxL1 && maxL1 > maxDeeper) {
			t.Errorf("fanout %s: load not decreasing: %d, %d, %d",
				row[0], rootLoad, maxL1, maxDeeper)
		}
	}
}

func TestE11ReplicatedService(t *testing.T) {
	tb, err := E11(DefaultE11())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		var replicas, distinct int
		if _, err := fmtSscan(row[0], &replicas); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[2], &distinct); err != nil {
			t.Fatal(err)
		}
		// Rotation visits every replica: strict coherence impossible.
		if distinct != replicas {
			t.Errorf("replicas=%d: distinct = %d", replicas, distinct)
		}
		// Weak coherence and post-failure availability are total.
		if row[3] != "1.00" {
			t.Errorf("replicas=%d: weak-coherent = %s", replicas, row[3])
		}
		if row[4] != "1.00" {
			t.Errorf("replicas=%d: post-failure success = %s", replicas, row[4])
		}
	}
}

func TestE12BoundaryTranslation(t *testing.T) {
	tb, err := E12(DefaultE12())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var crossOK, crossTotal, sameOK, sameTotal int
		for i, dst := range []*int{&crossOK, &crossTotal, &sameOK, &sameTotal} {
			if _, err := fmtSscan(row[i+1], dst); err != nil {
				t.Fatal(err)
			}
		}
		// Same-machine exchange is always coherent.
		if sameOK != sameTotal {
			t.Errorf("%s: same-machine %d/%d", row[0], sameOK, sameTotal)
		}
		// Cross-machine: 0 for identity, all for the mapping translator.
		if strings.HasPrefix(row[0], "identity") && crossOK != 0 {
			t.Errorf("identity cross-machine coherent = %d", crossOK)
		}
		if strings.HasPrefix(row[0], "newcastle") && crossOK != crossTotal {
			t.Errorf("mapped cross-machine %d/%d", crossOK, crossTotal)
		}
	}
}

func TestE13ForkDivergence(t *testing.T) {
	tb, err := E13(DefaultE13())
	if err != nil {
		t.Fatal(err)
	}
	init := DefaultE13().InitialAttaches
	for _, row := range tb.Rows {
		var mutations int
		if _, err := fmtSscan(row[0], &mutations); err != nil {
			t.Fatal(err)
		}
		wantCopy := fmt.Sprintf("%.2f", float64(init)/float64(init+mutations))
		if row[1] != wantCopy {
			t.Errorf("mutations=%d: copy coherence = %s, want %s", mutations, row[1], wantCopy)
		}
		if row[2] != "1.00" {
			t.Errorf("mutations=%d: shared coherence = %s, want 1.00", mutations, row[2])
		}
	}
}

func TestE14ShardedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("full shard x batch sweep over TCP")
	}
	tb, err := E14(DefaultE14())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultE14()
	if want := len(cfg.ShardCounts) * len(cfg.BatchSizes); len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	// Strict coherence must hold for every client of every shard at every
	// shard count and batch size: the shards are one shared graph.
	wire := map[[2]int]int{} // (shards, batch) -> wire requests
	for _, row := range tb.Rows {
		var shards, batch, lookups, reqs int
		for i, dst := range []*int{&shards, &batch, &lookups, &reqs} {
			if _, err := fmtSscan(row[i], dst); err != nil {
				t.Fatal(err)
			}
		}
		if lookups != cfg.Clients*cfg.Lookups {
			t.Errorf("shards=%d batch=%d: lookups = %d, want %d",
				shards, batch, lookups, cfg.Clients*cfg.Lookups)
		}
		if got := row[len(row)-1]; got != "1.00" {
			t.Errorf("shards=%d batch=%d: strict coherence = %s, want 1.00",
				shards, batch, got)
		}
		wire[[2]int{shards, batch}] = reqs
	}
	// Batching amortizes the wire: at every shard count, batch 64 must
	// need at most half the wire requests of unbatched resolution.
	for _, shards := range cfg.ShardCounts {
		one, big := wire[[2]int{shards, 1}], wire[[2]int{shards, 64}]
		if big*2 > one {
			t.Errorf("shards=%d: batch-64 wire requests %d not < half of unbatched %d",
				shards, big, one)
		}
	}
}

func TestE15FailoverAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected TCP cluster sweep")
	}
	cfg := DefaultE15()
	tb, err := E15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (healthy, one-down)", len(tb.Rows))
	}
	budget := cfg.Budget().Milliseconds()
	for _, label := range []string{"healthy", "one-down"} {
		row := rowByLabel(t, tb, label)
		// Every name must resolve — with one replica per shard down,
		// failover across the surviving replicas keeps availability 1.0.
		if row[3] != "1.00" {
			t.Errorf("%s: availability = %s, want 1.00 (row %v)", label, row[3], row)
		}
		// Weak coherence must hold across every client: replicas of one
		// shard subtree are one replica group.
		if row[7] != "1.00" {
			t.Errorf("%s: weak coherence = %s, want 1.00 (row %v)", label, row[7], row)
		}
		var maxMs int
		if _, err := fmtSscan(row[5], &maxMs); err != nil {
			t.Fatal(err)
		}
		// No request may block past its deadline budget.
		if int64(maxMs) > budget {
			t.Errorf("%s: max lookup %dms exceeds budget %dms", label, maxMs, budget)
		}
	}
	// The one-down phase must actually have exercised failover.
	var failovers int
	if _, err := fmtSscan(rowByLabel(t, tb, "one-down")[4], &failovers); err != nil {
		t.Fatal(err)
	}
	if failovers == 0 {
		t.Error("one-down phase recorded no failovers — fault injection is vacuous")
	}
}

// E17's headline claim: under live write churn, push invalidation keeps
// caching readers coherent (degree >= 0.99 is the acceptance bar; the
// mechanism actually delivers 1.0) while poll validation leaves caches
// full of hits that never revalidate — visibly stale against the
// authoritative graph.
func TestE17(t *testing.T) {
	tb, err := E17(DefaultE17())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (poll, push)", len(tb.Rows))
	}
	degrees := map[string]float64{}
	for _, row := range tb.Rows {
		var weak float64
		if _, err := fmt.Sscan(row[6], &weak); err != nil {
			t.Fatal(err)
		}
		degrees[row[0]] = weak
		var writes int
		if _, err := fmtSscan(row[1], &writes); err != nil {
			t.Fatal(err)
		}
		if writes == 0 {
			t.Errorf("%s: no writes applied — the churn is vacuous", row[0])
		}
	}
	if degrees["push"] < 0.99 {
		t.Errorf("push-invalidated coherence = %v, want >= 0.99", degrees["push"])
	}
	if degrees["poll"] >= degrees["push"] {
		t.Errorf("poll degree %v >= push degree %v — push invalidation bought nothing",
			degrees["poll"], degrees["push"])
	}
	var invals int
	if _, err := fmtSscan(rowByLabel(t, tb, "push")[4], &invals); err != nil {
		t.Fatal(err)
	}
	if invals == 0 {
		t.Error("push phase recorded no invalidation frames")
	}
}
