package experiments

import (
	"fmt"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/sharedns"
)

// E4Config parameterizes experiment E4 (Figure 4, §5.2): the shared naming
// graph approach.
type E4Config struct {
	// Clients is the number of client subsystems (split into two DCE cells).
	Clients int
	// SharedFiles, LocalFiles, ReplicatedCommands size the name classes.
	SharedFiles, LocalFiles, ReplicatedCommands int
}

// DefaultE4 returns the standard configuration.
func DefaultE4() E4Config {
	return E4Config{Clients: 4, SharedFiles: 20, LocalFiles: 20, ReplicatedCommands: 10}
}

// E4 measures the shared naming graph: names under the shared attachment
// are coherent among all clients, local names are not, replicated commands
// are weakly coherent, and DCE-style cell-relative names are coherent only
// within a cell.
func E4(cfg E4Config) (*Table, error) {
	w := core.NewWorld()
	names := make([]string, cfg.Clients)
	for i := range names {
		names[i] = fmt.Sprintf("ws%d", i+1)
	}
	s, err := sharedns.NewSystem(w, names...)
	if err != nil {
		return nil, err
	}
	vice, err := s.AttachSpace(sharedns.ViceName)
	if err != nil {
		return nil, err
	}
	var vicePaths []core.Path
	for i := 0; i < cfg.SharedFiles; i++ {
		p := core.ParsePath(fmt.Sprintf("usr/s%03d", i))
		if _, err := vice.Tree.Create(p, "shared"); err != nil {
			return nil, err
		}
		vicePaths = append(vicePaths, core.PathOf(sharedns.ViceName).Join(p))
	}

	var localPaths []core.Path
	for i := 0; i < cfg.LocalFiles; i++ {
		p := core.ParsePath(fmt.Sprintf("home/l%03d", i))
		localPaths = append(localPaths, p)
		for _, cn := range names {
			c, _ := s.Client(cn)
			if _, err := c.Machine.Tree.Create(p, "local@"+cn); err != nil {
				return nil, err
			}
		}
	}

	var binPaths []core.Path
	for i := 0; i < cfg.ReplicatedCommands; i++ {
		p := fmt.Sprintf("/bin/cmd%03d", i)
		if _, err := s.ReplicateCommand(p, "#!cmd"); err != nil {
			return nil, err
		}
		_, pp := core.SplitPathString(p)
		binPaths = append(binPaths, pp)
	}

	// Two DCE cells over the client halves, both attached at "/.:".
	half := cfg.Clients / 2
	if half == 0 {
		half = 1
	}
	cellA, err := s.AttachSpace(sharedns.CellName, names[:half]...)
	if err != nil {
		return nil, err
	}
	if _, err := cellA.Tree.Create(core.ParsePath("svc/db"), "db@A"); err != nil {
		return nil, err
	}
	if half < cfg.Clients {
		cellB, err := s.AttachSpace(sharedns.CellName, names[half:]...)
		if err != nil {
			return nil, err
		}
		if _, err := cellB.Tree.Create(core.ParsePath("svc/db"), "db@B"); err != nil {
			return nil, err
		}
	}
	cellPaths := []core.Path{core.PathOf(sharedns.CellName, "svc", "db")}

	var allActs []core.Entity
	for _, cn := range names {
		p, err := s.Spawn(cn, "probe")
		if err != nil {
			return nil, err
		}
		allActs = append(allActs, p.Activity)
	}

	t := &Table{
		ID:     "E4",
		Title:  "shared naming graph (Andrew /vice, DCE cells)",
		Header: []string{"name class", "strict-degree", "weak-degree"},
		Notes: []string{
			"paper §5.2: coherence for names in the shared graph and weak coherence",
			"for replicated commands; incoherence for local names and for names",
			"relative to the cell context across cells.",
		},
	}
	add := func(label string, acts []core.Entity, paths []core.Path) {
		rep := coherence.Measure(w, s.Registry.ResolveAbs, acts, paths)
		t.AddRow(label, f2(rep.StrictDegree()), f2(rep.WeakDegree()))
	}
	add("/vice (shared graph), all clients", allActs, vicePaths)
	add("local names, all clients", allActs, localPaths)
	add("replicated /bin, all clients", allActs, binPaths)
	add("/.: cell names, within cell", allActs[:half], cellPaths)
	if half < cfg.Clients {
		add("/.: cell names, across cells", []core.Entity{allActs[0], allActs[half]}, cellPaths)
	}
	return t, nil
}
