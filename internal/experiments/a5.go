package experiments

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/trace"
	"namecoherence/internal/workload"
)

// A5Config parameterizes ablation A5: lookup-load concentration along a
// naming tree.
type A5Config struct {
	// Depth and Fanouts shape the trees swept.
	Depth   int
	Fanouts []int
	// Lookups is the number of random full-depth resolutions.
	Lookups int
	// Seed drives leaf selection.
	Seed int64
}

// DefaultA5 returns the standard configuration.
func DefaultA5() A5Config {
	return A5Config{Depth: 3, Fanouts: []int{4, 16}, Lookups: 5000, Seed: 23}
}

// A5 builds complete trees, drives uniform random leaf resolutions through
// them, and reports how lookup load concentrates: the root context serves
// every resolution while individual lower directories serve ~1/fanout^level
// of it — the root-bottleneck argument for caching upper-level bindings
// and for per-process roots.
func A5(cfg A5Config) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "lookup-load concentration along the naming tree",
		Header: []string{"fanout", "lookups", "root-load", "max-level1-load", "max-deeper-load"},
		Notes: []string{
			"every compound name resolves its first component in the root context,",
			"so the root serves 100% of the traffic and load fans out by 1/fanout",
			"per level — the bottleneck that motivates caching and per-process roots.",
		},
	}
	for _, fanout := range cfg.Fanouts {
		w := core.NewWorld()
		tr := dirtree.New(w, "root")

		// Complete tree: depth levels of directories, files at the bottom.
		var leaves []core.Path
		var grow func(prefix core.Path, level int) error
		grow = func(prefix core.Path, level int) error {
			if level == cfg.Depth {
				p := prefix.Append("f")
				if _, err := tr.Create(p, "x"); err != nil {
					return err
				}
				leaves = append(leaves, p)
				return nil
			}
			for i := 0; i < fanout; i++ {
				child := prefix.Append(core.Name(fmt.Sprintf("d%02d", i)))
				if _, err := tr.MkdirAll(child); err != nil {
					return err
				}
				if err := grow(child, level+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := grow(nil, 0); err != nil {
			return nil, err
		}

		counter := trace.NewCounter()
		trace.InstrumentReachable(w, tr.Root, counter)

		gen := workload.New(cfg.Seed)
		for i := 0; i < cfg.Lookups; i++ {
			p := leaves[gen.Intn(len(leaves))]
			if _, err := tr.Lookup(p); err != nil {
				return nil, err
			}
		}

		// Record the workload's root load before any probe lookups below
		// add to it.
		rootLoad := counter.Count(tr.Root)

		level1 := make(map[core.EntityID]bool, fanout)
		var maxL1 int64
		for i := 0; i < fanout; i++ {
			d1, err := tr.Lookup(core.PathOf(core.Name(fmt.Sprintf("d%02d", i))))
			if err != nil {
				return nil, err
			}
			level1[d1.ID] = true
			if c := counter.Count(d1); c > maxL1 {
				maxL1 = c
			}
		}
		// The busiest context below level 1.
		var maxDeeper int64
		for _, l := range counter.Top(1 << 20) {
			if l.Entity == tr.Root.ID || level1[l.Entity] {
				continue
			}
			if l.Count > maxDeeper {
				maxDeeper = l.Count
			}
		}
		t.AddRow(itoa(fanout), itoa(cfg.Lookups),
			fmt.Sprintf("%d", rootLoad),
			fmt.Sprintf("%d", maxL1),
			fmt.Sprintf("%d", maxDeeper))
	}
	return t, nil
}
