package experiments

import (
	"namecoherence/internal/core"
	"namecoherence/internal/replsvc"
)

// E11Config parameterizes experiment E11: weak coherence of a replicated
// name service over the wire, with failover.
type E11Config struct {
	// ReplicaCounts is the sweep of replica-set sizes.
	ReplicaCounts []int
	// Resolutions per phase.
	Resolutions int
}

// DefaultE11 returns the standard configuration.
func DefaultE11() E11Config {
	return E11Config{ReplicaCounts: []int{2, 4}, Resolutions: 24}
}

const e11Spec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/passwd "root:0"
`

// E11 drives resolutions through a rotating replica pool: strict coherence
// fails (distinct replica entities come back), weak coherence holds (all
// results are replicas of one another), and after one replica dies the
// pool keeps answering via failover.
func E11(cfg E11Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "replicated name service: weak coherence and failover",
		Header: []string{
			"replicas", "resolutions", "distinct-entities",
			"weak-coherent", "post-failure-success",
		},
		Notes: []string{
			"§5 at the service level: a replicated service cannot give strict",
			"coherence (each replica answers with its own entity), but gives weak",
			"coherence — which also buys availability: the pool survives a replica",
			"failure.",
		},
	}
	for _, n := range cfg.ReplicaCounts {
		w := core.NewWorld()
		rs, err := replsvc.NewReplicaSet(w, e11Spec, n)
		if err != nil {
			return nil, err
		}
		pool, err := replsvc.NewPool(rs.Addrs())
		if err != nil {
			rs.Close()
			return nil, err
		}

		p := core.ParsePath("usr/bin/ls")
		distinct := make(map[core.EntityID]bool)
		weak := 0
		var first core.Entity
		for i := 0; i < cfg.Resolutions; i++ {
			e, err := pool.Resolve(p)
			if err != nil {
				pool.Close()
				rs.Close()
				return nil, err
			}
			if i == 0 {
				first = e
			}
			distinct[e.ID] = true
			if w.SameReplica(first, e) {
				weak++
			}
		}

		// Kill replica 0; count post-failure successes.
		if err := rs.StopReplica(0); err != nil {
			pool.Close()
			rs.Close()
			return nil, err
		}
		succ := 0
		for i := 0; i < cfg.Resolutions; i++ {
			if _, err := pool.Resolve(p); err == nil {
				succ++
			}
		}
		pool.Close()
		rs.Close()

		t.AddRow(itoa(n), itoa(cfg.Resolutions), itoa(len(distinct)),
			f2(float64(weak)/float64(cfg.Resolutions)),
			f2(float64(succ)/float64(cfg.Resolutions)))
	}
	return t, nil
}
