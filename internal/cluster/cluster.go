package cluster

import (
	"fmt"
	"net"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/treespec"
)

// Cluster is a sharded deployment of one logical naming graph: every
// top-level prefix of the spec is served by exactly one shard, and all
// shards live in one World so coherence across them is a meaningful,
// checkable property.
type Cluster struct {
	// World holds every shard's entities.
	World *core.World
	// Trees are the per-shard subtrees, indexed by shard.
	Trees []*dirtree.Tree
	// Plan records how the spec was split and routed.
	Plan *treespec.ShardPlan

	routes *nameserver.RouteInfo

	mu        sync.Mutex
	servers   []*nameserver.Server
	listeners []net.Listener
	done      []chan struct{}
	closed    bool
}

// New splits spec across the given number of shards and serves each shard
// on its own TCP loopback listener. Every server watches its subtree (so
// binding changes bump that shard's revision) and carries the cluster's
// routing table for client bootstrap.
func New(w *core.World, spec string, shards int) (*Cluster, error) {
	plan, err := treespec.Split(spec, shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{World: w, Plan: plan}
	for i, shardSpec := range plan.Specs {
		tr, err := treespec.Build(shardSpec, w, fmt.Sprintf("shard%d", i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("build shard %d: %w", i, err)
		}
		c.Trees = append(c.Trees, tr)
	}
	addrs := make([]string, shards)
	for i, tr := range c.Trees {
		srv := nameserver.NewServer(w, tr.RootContext())
		srv.WatchExport(tr.Root)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("listen for shard %d: %w", i, err)
		}
		addrs[i] = ln.Addr().String()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Serve(ln)
		}()
		c.mu.Lock()
		c.servers = append(c.servers, srv)
		c.listeners = append(c.listeners, ln)
		c.done = append(c.done, done)
		c.mu.Unlock()
	}
	c.routes = &nameserver.RouteInfo{
		Prefixes: plan.Prefixes,
		Default:  plan.Default,
		Addrs:    addrs,
	}
	for _, srv := range c.servers {
		srv.SetRoutes(c.routes)
	}
	return c, nil
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.Trees) }

// Routes returns the cluster's routing table (prefix → shard, shard →
// address).
func (c *Cluster) Routes() *nameserver.RouteInfo { return c.routes.Clone() }

// Addrs returns the shards' dial addresses.
func (c *Cluster) Addrs() []string {
	return append([]string(nil), c.routes.Addrs...)
}

// Server returns shard i's name server (for revision bumps and stats).
func (c *Cluster) Server(i int) *nameserver.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[i]
}

// Served sums the wire requests handled across all shards.
func (c *Cluster) Served() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, s := range c.servers {
		total += s.Served()
	}
	return total
}

// Resolved sums the names resolved across all shards (batch elements
// count individually).
func (c *Cluster) Resolved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, s := range c.servers {
		total += s.Resolved()
	}
	return total
}

// Close stops every shard server.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	servers := c.servers
	done := c.done
	c.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	for _, d := range done {
		<-d
	}
}
