package cluster

import (
	"fmt"
	"net"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/faultnet"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/treespec"
)

// Cluster is a sharded deployment of one logical naming graph: every
// top-level prefix of the spec is served by exactly one shard, each shard
// by one or more replica servers, and all shards live in one World so
// coherence across them is a meaningful, checkable property. Replicas of a
// shard serve replicas of the same subtree (registered in replica groups),
// so any replica can answer for its shard — weak coherence by construction.
type Cluster struct {
	// World holds every shard's entities.
	World *core.World
	// Trees are the per-shard primary subtrees, indexed by shard.
	Trees []*dirtree.Tree
	// ReplicaTrees are every replica's subtree, indexed [shard][replica];
	// ReplicaTrees[i][0] == Trees[i].
	ReplicaTrees [][]*dirtree.Tree
	// Plan records how the spec was split and routed.
	Plan *treespec.ShardPlan

	routes *nameserver.RouteInfo

	// catchUps and recovered are filled during construction (before any
	// server goroutine starts) and immutable afterwards.
	catchUps  []CatchUpStat
	recovered []recoveredShard

	mu          sync.Mutex
	servers     [][]*nameserver.Server
	listeners   [][]*faultnet.Listener
	replicators []*replicator // per shard, replicated clusters only
	done        []chan struct{}
	closed      bool
}

type serverOptsOption struct{ opts []nameserver.ServerOption }

func (o serverOptsOption) apply(opts *options) {
	opts.serverOpts = append(opts.serverOpts, o.opts...)
}

// WithServerOptions passes options through to every replica server of
// every shard — e.g. nameserver.WithReadOnly() to serve a frozen cluster.
func WithServerOptions(o ...nameserver.ServerOption) Option {
	return serverOptsOption{opts: o}
}

// New splits spec across the given number of shards and serves each shard
// on its own TCP loopback listener. Every server watches its subtree (so
// binding changes bump that shard's revision) and carries the cluster's
// routing table for client bootstrap.
func New(w *core.World, spec string, shards int, opts ...Option) (*Cluster, error) {
	return NewReplicated(w, spec, shards, 1, opts...)
}

// NewReplicated is New with replicas servers per shard. Each replica gets
// an independent copy of the shard's subtree, built in the same World with
// corresponding entities registered as replica groups, and its own
// listener wrapped in a fault injector (see Fault) so tests and
// experiments can take replicas down deterministically. The routing table
// lists every replica, so failover clients can try them all.
func NewReplicated(w *core.World, spec string, shards, replicas int, opts ...Option) (*Cluster, error) {
	plan, err := treespec.Split(spec, shards)
	if err != nil {
		return nil, err
	}
	if replicas < 1 {
		return nil, fmt.Errorf("replica count %d: need at least 1", replicas)
	}
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	c := &Cluster{World: w, Plan: plan}
	for i, shardSpec := range plan.Specs {
		trees, err := c.bringUpShard(&o, i, shardSpec, fmt.Sprintf("shard%d", i), replicas)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("build shard %d: %w", i, err)
		}
		c.ReplicaTrees = append(c.ReplicaTrees, trees)
		c.Trees = append(c.Trees, trees[0])
	}
	addrs := make([]string, shards)
	replicaAddrs := make([][]string, shards)
	for i, trees := range c.ReplicaTrees {
		shardServers := make([]*nameserver.Server, 0, replicas)
		shardListeners := make([]*faultnet.Listener, 0, replicas)
		for r, tr := range trees {
			srv := nameserver.NewServer(w, tr.RootContext(), o.serverOpts...)
			srv.WatchExport(tr.Root)
			if rev, ok := c.Recovered(i); ok {
				// A restored shard resumes at its snapshot's revision so
				// surviving clients never see the revision move backwards.
				srv.SetRevision(rev)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("listen for shard %d replica %d: %w", i, r, err)
			}
			fln := faultnet.Wrap(ln)
			replicaAddrs[i] = append(replicaAddrs[i], fln.Addr().String())
			done := make(chan struct{})
			go func() {
				defer close(done)
				srv.Serve(fln)
			}()
			shardServers = append(shardServers, srv)
			shardListeners = append(shardListeners, fln)
			c.mu.Lock()
			c.done = append(c.done, done)
			c.mu.Unlock()
		}
		addrs[i] = replicaAddrs[i][0]
		c.mu.Lock()
		c.servers = append(c.servers, shardServers)
		c.listeners = append(c.listeners, shardListeners)
		c.mu.Unlock()
	}
	c.routes = &nameserver.RouteInfo{
		Prefixes: plan.Prefixes,
		Default:  plan.Default,
		Addrs:    addrs,
		Replicas: replicaAddrs,
	}
	c.mu.Lock()
	servers := c.servers
	c.mu.Unlock()
	for _, shard := range servers {
		for _, srv := range shard {
			srv.SetRoutes(c.routes)
		}
	}
	// Replicated shards get a write replicator: the primary's committed
	// mutations are re-applied on each backup over the wire (through the
	// fault injectors), so backups converge with the primary and the
	// replica groups stay truthful under writes.
	if replicas > 1 {
		for i := range c.ReplicaTrees {
			rep := newReplicator("tcp", i, replicaAddrs[i][1:], defaultTimeout)
			servers[i][0].OnMutation(rep.enqueue)
			c.mu.Lock()
			c.replicators = append(c.replicators, rep)
			c.mu.Unlock()
		}
	}
	return c, nil
}

// DrainReplication blocks until every write committed so far has been
// applied on every backup replica — the convergence point to wait on
// after healing faults and before probing coherence. With no replicators
// (unreplicated cluster) it returns immediately.
func (c *Cluster) DrainReplication() {
	c.mu.Lock()
	reps := c.replicators
	c.mu.Unlock()
	for _, r := range reps {
		r.drain()
	}
}

// ReplicationPending reports how many committed writes are still queued
// for (or in flight to) backup replicas.
func (c *Cluster) ReplicationPending() int {
	c.mu.Lock()
	reps := c.replicators
	c.mu.Unlock()
	n := 0
	for _, r := range reps {
		n += r.pending()
	}
	return n
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.Trees) }

// ReplicasPerShard returns how many replica servers serve each shard.
func (c *Cluster) ReplicasPerShard() int {
	if len(c.ReplicaTrees) == 0 {
		return 0
	}
	return len(c.ReplicaTrees[0])
}

// Routes returns the cluster's routing table (prefix → shard, shard →
// replica addresses).
func (c *Cluster) Routes() *nameserver.RouteInfo { return c.routes.Clone() }

// Addrs returns the shards' primary dial addresses.
func (c *Cluster) Addrs() []string {
	return append([]string(nil), c.routes.Addrs...)
}

// Server returns shard i's primary name server (for revision bumps and
// stats).
func (c *Cluster) Server(i int) *nameserver.Server {
	return c.ReplicaServer(i, 0)
}

// ReplicaServer returns the name server of one replica of shard i.
func (c *Cluster) ReplicaServer(i, r int) *nameserver.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[i][r]
}

// Fault returns the fault injector in front of one replica of shard i.
// Setting it to faultnet.Reset makes the replica look crashed; Hang makes
// it look wedged; Pass heals it.
func (c *Cluster) Fault(i, r int) *faultnet.Listener {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.listeners[i][r]
}

// Served sums the wire requests handled across all shards and replicas.
func (c *Cluster) Served() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, shard := range c.servers {
		for _, s := range shard {
			total += s.Served()
		}
	}
	return total
}

// Resolved sums the names resolved across all shards and replicas (batch
// elements count individually).
func (c *Cluster) Resolved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, shard := range c.servers {
		for _, s := range shard {
			total += s.Resolved()
		}
	}
	return total
}

// Close stops every replica server of every shard.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	servers := c.servers
	reps := c.replicators
	done := c.done
	c.mu.Unlock()
	// Stop forwarding before stopping servers, so appliers do not spend
	// their timeout retrying into listeners that are going away.
	for _, r := range reps {
		r.close()
	}
	for _, shard := range servers {
		for _, s := range shard {
			s.Close()
		}
	}
	for _, d := range done {
		<-d
	}
}
