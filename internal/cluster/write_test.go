package cluster

import (
	"fmt"
	"testing"
	"time"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/faultnet"
)

// lookupReplica resolves p in one replica's subtree directly (no wire).
func lookupReplica(t *testing.T, cl *Cluster, shard, r int, p core.Path) (core.Entity, error) {
	t.Helper()
	return cl.ReplicaTrees[shard][r].Lookup(p)
}

// TestClusterWriteReplication drives every mutation verb through the
// cluster write path and checks the backups converge: each backup holds a
// replica of every written binding, and every replica server's revision
// reaches the primary's commit revision (the monotonic SetRevision
// adoption).
func TestClusterWriteReplication(t *testing.T) {
	cl := startReplicated(t, 2, 3)
	client, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	target, err := client.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Bind(core.ParsePath("usr/bin"), "ls2", target); err != nil {
		t.Fatal(err)
	}
	dir, err := client.Mkcontext(core.ParsePath("usr"), "local")
	if err != nil {
		t.Fatal(err)
	}
	if dir.IsUndefined() {
		t.Fatal("Mkcontext returned undefined entity")
	}
	if err := client.Bind(core.ParsePath("usr/local"), "tool", target); err != nil {
		t.Fatal(err)
	}
	if err := client.Unbind(core.ParsePath("usr/bin"), "cat"); err != nil {
		t.Fatal(err)
	}
	cl.DrainReplication()
	if n := cl.ReplicationPending(); n != 0 {
		t.Fatalf("ReplicationPending = %d after drain", n)
	}

	shard := cl.Routes().ShardFor(core.ParsePath("usr/bin/ls2"))
	for r := 0; r < cl.ReplicasPerShard(); r++ {
		for _, raw := range []string{"usr/bin/ls2", "usr/local/tool"} {
			e, err := lookupReplica(t, cl, shard, r, core.ParsePath(raw))
			if err != nil {
				t.Fatalf("replica %d: %s missing after drain: %v", r, raw, err)
			}
			if e != target && !cl.World.SameReplica(e, target) {
				t.Fatalf("replica %d: %s = %v, not a replica of %v", r, raw, e, target)
			}
		}
		if _, err := lookupReplica(t, cl, shard, r, core.ParsePath("usr/bin/cat")); err == nil {
			t.Fatalf("replica %d still has the unbound name", r)
		}
		// Backups adopt the primary's revision tag, never exceeding it on
		// account of replication alone.
		if pr, rr := cl.Server(shard).Revision(), cl.ReplicaServer(shard, r).Revision(); rr != pr {
			t.Fatalf("replica %d revision = %d, primary = %d", r, rr, pr)
		}
	}

	// The created directory is a replica group: every backup's copy of
	// usr/local is SameReplica with the primary's.
	for r := 1; r < cl.ReplicasPerShard(); r++ {
		e, err := lookupReplica(t, cl, shard, r, core.ParsePath("usr/local"))
		if err != nil {
			t.Fatal(err)
		}
		if !cl.World.SameReplica(e, dir) {
			t.Fatalf("replica %d usr/local = %v, not grouped with created %v", r, e, dir)
		}
	}
}

// TestWriteChurnDuringReplicaOutage is the faultnet regression: writes
// arriving while a backup is down must apply on the primary with a
// revision tag, queue for the backup, and converge once it heals — weak
// coherence across the recovery, not lost writes.
func TestWriteChurnDuringReplicaOutage(t *testing.T) {
	cl := startReplicated(t, 2, 2)
	client, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	target, err := client.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	shard := cl.Routes().ShardFor(core.ParsePath("usr/bin/x"))

	// Take the shard's backup down, then churn writes. Every write must
	// succeed: the primary is up, and replication is asynchronous.
	cl.Fault(shard, 1).SetMode(faultnet.Reset)
	const churn = 8
	for i := 0; i < churn; i++ {
		if err := client.Bind(core.ParsePath("usr/bin"), core.Name(fmt.Sprintf("churn%d", i)), target); err != nil {
			t.Fatalf("write %d during backup outage: %v", i, err)
		}
	}
	// The primary has all of them; the dead backup has none.
	for i := 0; i < churn; i++ {
		p := core.ParsePath(fmt.Sprintf("usr/bin/churn%d", i))
		if _, err := lookupReplica(t, cl, shard, 0, p); err != nil {
			t.Fatalf("primary missing churn%d: %v", i, err)
		}
	}
	if cl.ReplicationPending() == 0 {
		t.Fatal("no writes pending for the dead backup")
	}

	// Heal and wait for convergence.
	cl.Fault(shard, 1).SetMode(faultnet.Pass)
	cl.DrainReplication()
	for i := 0; i < churn; i++ {
		p := core.ParsePath(fmt.Sprintf("usr/bin/churn%d", i))
		e, err := lookupReplica(t, cl, shard, 1, p)
		if err != nil {
			t.Fatalf("backup missing churn%d after heal+drain: %v", i, err)
		}
		if e != target && !cl.World.SameReplica(e, target) {
			t.Fatalf("backup churn%d = %v, not a replica of %v", i, e, target)
		}
	}
	if pr, rr := cl.Server(shard).Revision(), cl.ReplicaServer(shard, 1).Revision(); rr != pr {
		t.Fatalf("backup revision = %d after convergence, primary = %d", rr, pr)
	}

	// Weak coherence across the recovery: independent clients — including
	// one that can only reach the healed backup — agree up to replicas.
	paths := make([]core.Path, 0, churn)
	for i := 0; i < churn; i++ {
		paths = append(paths, core.ParsePath(fmt.Sprintf("usr/bin/churn%d", i)))
	}
	second, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	cl.Fault(shard, 0).SetMode(faultnet.Reset) // now only the backup serves
	rep := coherence.MeasureResolvers(cl.World, []coherence.Resolver{client, second}, paths)
	if rep.WeakDegree() != 1.0 {
		t.Fatalf("weak coherence degree = %v after recovery, want 1.0 (%+v)", rep.WeakDegree(), rep)
	}
}

// TestWriteFailsCleanlyWhenPrimaryDead checks the no-failover write rule:
// with the shard's primary unreachable a write returns a transport error —
// it is not silently retried against a backup (a non-idempotent retry
// could double-apply) and nothing changes anywhere.
func TestWriteFailsCleanlyWhenPrimaryDead(t *testing.T) {
	cl := startReplicated(t, 2, 2)
	client, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Fault the primary before the client ever reaches it: a write must
	// then fail at dial time, before any request could partially apply.
	// (Faulting an established connection can instead lose just the
	// response after the server applied the mutation — the exact hazard
	// that rules out retrying writes.)
	shard := cl.Routes().ShardFor(core.ParsePath("usr/bin/dead"))
	cl.Fault(shard, 0).SetMode(faultnet.Reset)
	target, err := cl.Trees[shard].Lookup(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}

	if err := client.Bind(core.ParsePath("usr/bin"), "dead", target); err == nil {
		t.Fatal("write succeeded with the primary dead")
	}
	for r := 0; r < cl.ReplicasPerShard(); r++ {
		if _, err := lookupReplica(t, cl, shard, r, core.ParsePath("usr/bin/dead")); err == nil {
			t.Fatalf("replica %d has the failed write", r)
		}
	}

	// Reads still fail over to the backup, and once the primary heals the
	// same write goes through.
	if _, err := client.Resolve(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatalf("read with primary dead: %v", err)
	}
	cl.Fault(shard, 0).SetMode(faultnet.Pass)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := client.Bind(core.ParsePath("usr/bin"), "dead", target); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write still failing after primary healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterPushInvalidation checks the push path end to end through the
// cluster client: a subscribed reader's cache is purged by the server's
// frame, not by the reader's next validation round-trip.
func TestClusterPushInvalidation(t *testing.T) {
	cl := startReplicated(t, 2, 2)
	reader, err := Dial("tcp", cl.Addrs()[0], fastOpts(WithLRU(64), WithPushInvalidation())...)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	writer, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	// Prime the reader's cache on the shard about to change.
	p := core.ParsePath("usr/bin/ls")
	target, err := reader.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Bind(core.ParsePath("usr/bin"), "pushed", target); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reader.Invalidations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no pushed invalidation reached the subscribed reader")
		}
		time.Sleep(time.Millisecond)
	}
	// The fresh name resolves through the reader immediately.
	e, err := reader.Resolve(core.ParsePath("usr/bin/pushed"))
	if err != nil {
		t.Fatal(err)
	}
	if e != target && !cl.World.SameReplica(e, target) {
		t.Fatalf("pushed name = %v, not a replica of %v", e, target)
	}
}
