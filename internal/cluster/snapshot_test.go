package cluster

import (
	"testing"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/snapstore"
)

const snapSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /etc/passwd "root:0:staff"
file /home/alice/notes "todo"
`

func newSnapStore(t *testing.T) *snapstore.Store {
	t.Helper()
	st, err := snapstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// A cluster built over a fresh snap store commits each shard's initial
// root, and a second cluster over the same store restores from those
// roots instead of the spec — the crash-recovery path — resuming at the
// committed revision.
func TestClusterRecoversFromSnapStore(t *testing.T) {
	st := newSnapStore(t)

	w1 := core.NewWorld()
	c1, err := NewReplicated(w1, snapSpec, 2, 1, WithSnapStore(st))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c1.Shards(); i++ {
		if _, ok := st.Latest(i); !ok {
			t.Fatalf("shard %d has no committed root after fresh bring-up", i)
		}
		if _, ok := c1.Recovered(i); ok {
			t.Fatalf("fresh shard %d claims to be recovered", i)
		}
	}
	// The shard serving /usr, advanced and re-committed as a keeper would.
	s := c1.Plan.Prefixes["usr"]
	for j := 0; j < 5; j++ {
		c1.Server(s).Bump()
	}
	rootS, err := c1.ShardRoot(st, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(s, c1.Server(s).Revision(), rootS); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Restart: same store, fresh world.
	w2 := core.NewWorld()
	c2, err := NewReplicated(w2, snapSpec, 2, 1, WithSnapStore(st))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rev, ok := c2.Recovered(s)
	if !ok || rev != 5 {
		t.Fatalf("Recovered(%d) = %d, %v; want 5, true", s, rev, ok)
	}
	if got := c2.Server(s).Revision(); got != 5 {
		t.Fatalf("recovered server revision = %d, want 5", got)
	}
	// The restored shard serves the full graph over the wire, reporting
	// the recovered revision.
	cl, err := nameserver.Dial("tcp", c2.Addrs()[s])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	_, gotRev, err := cl.ResolveRev(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatalf("restored shard cannot resolve: %v", err)
	}
	if gotRev != 5 {
		t.Fatalf("wire revision after recovery = %d, want 5", gotRev)
	}
	// Structural identity: re-snapshotting the restored shard reproduces
	// the committed root.
	again, err := c2.ShardRoot(st, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again != rootS {
		t.Fatalf("restored shard re-snapshots to %s, want %s", again, rootS)
	}
}

// Replicas brought up from a committed root transfer blobs by hash-diff
// catch-up, and every replica's subtree hashes to the same root as the
// primary's — structural weak coherence.
func TestReplicaBringUpByCatchUp(t *testing.T) {
	st := newSnapStore(t)

	// First life: single replica, commit initial roots.
	w1 := core.NewWorld()
	c1, err := NewReplicated(w1, snapSpec, 2, 1, WithSnapStore(st))
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Second life: three replicas per shard, restored + caught up.
	w2 := core.NewWorld()
	c2, err := NewReplicated(w2, snapSpec, 2, 3, WithSnapStore(st))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	stats := c2.CatchUps()
	if len(stats) != 2*2 { // replicas 1 and 2 of each of 2 shards
		t.Fatalf("catch-up stats = %+v, want 4 entries", stats)
	}
	for _, s := range stats {
		if s.Copied == 0 {
			t.Fatalf("replica %d of shard %d copied no blobs", s.Replica, s.Shard)
		}
	}

	scratch := snapstore.New(cas.NewStore(cas.NewMem()))
	for i := 0; i < c2.Shards(); i++ {
		primary, err := c2.ShardRoot(scratch, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r < c2.ReplicasPerShard(); r++ {
			h, err := c2.ShardRoot(scratch, i, r)
			if err != nil {
				t.Fatal(err)
			}
			if h != primary {
				t.Fatalf("shard %d replica %d root %s != primary %s", i, r, h, primary)
			}
		}
	}

	// Replica groups were registered on the restored trees: corresponding
	// entities across replicas of the /usr shard are grouped.
	s := c2.Plan.Prefixes["usr"]
	a, err := c2.ReplicaTrees[s][0].Lookup(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c2.ReplicaTrees[s][1].Lookup(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if !c2.World.SameReplica(a, b) {
		t.Fatal("restored replicas not registered in a replica group")
	}
}
