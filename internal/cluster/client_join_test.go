package cluster

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

// TestResolveNonCanonicalFailsFast pins the cluster client's §6 boundary:
// a non-canonical name is rejected locally — no retries, no failover.
func TestResolveNonCanonicalFailsFast(t *testing.T) {
	cl := startCluster(t, 4)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for _, p := range []core.Path{{}, {"usr", "bin/ls"}, {"usr", ""}} {
		if _, err := client.Resolve(p); !errors.Is(err, nameserver.ErrNotCanonical) {
			t.Fatalf("Resolve(%q) err = %v, want ErrNotCanonical", p, err)
		}
	}
	if n := client.Failovers(); n != 0 {
		t.Fatalf("Failovers = %d after local rejections, want 0", n)
	}

	// Mixed batch: the bad name fails in its slot, the good one resolves.
	out, err := client.ResolveBatch([]core.Path{
		core.ParsePath("usr/bin/ls"),
		{"etc", "pass/wd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil {
		t.Fatalf("good slot failed: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, nameserver.ErrNotCanonical) {
		t.Fatalf("bad slot err = %v, want ErrNotCanonical", out[1].Err)
	}
}

// TestCloseWaitsForBatchGoroutines pins the join discipline goroleak
// demands: Close must not return while per-shard batch goroutines are
// still running.
func TestCloseWaitsForBatchGoroutines(t *testing.T) {
	cl := startCluster(t, 4)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	var joins atomic.Int32
	batchJoinHook = func() {
		<-release
		joins.Add(1)
	}
	defer func() { batchJoinHook = nil }()

	paths := make([]core.Path, len(testPaths))
	for i, raw := range testPaths {
		paths[i] = core.ParsePath(raw)
	}
	if _, err := client.ResolveBatch(paths); err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		client.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while batch goroutines were still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after batch goroutines finished")
	}
	if joins.Load() == 0 {
		t.Fatal("no batch goroutines ran; the test exercised nothing")
	}

	// After Close, batches fail fast with ErrClientClosed in every slot.
	out, err := client.ResolveBatch(paths)
	if !errors.Is(err, ErrClientClosed) {
		t.Fatalf("ResolveBatch after Close: err = %v, want ErrClientClosed", err)
	}
	for i, r := range out {
		if !errors.Is(r.Err, ErrClientClosed) {
			t.Fatalf("slot %d err = %v, want ErrClientClosed", i, r.Err)
		}
	}
}
