// Cluster client write path and push invalidation. Writes are routed by
// the name being written (its first component picks the shard, exactly as
// resolution would route it) and go to the shard's primary replica only —
// primary-per-shard is the write rule; backups receive the mutation from
// the primary's replicator, not from clients. A write is one attempt with
// no failover: retrying a non-idempotent mutation after a lost response
// could double-apply, so an unreachable primary fails cleanly instead.

package cluster

import (
	"errors"
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

type pushOption struct{}

func (pushOption) apply(c *Client) { c.push = true }

// WithPushInvalidation subscribes every shared connection for server-push
// invalidation frames: each shard's revision advances reach the client as
// unsolicited frames that purge that shard's cache entries immediately,
// instead of at the next cache miss. The cache goes from poll-validated
// to push-invalidated; staleness after a write shrinks from "until my
// next round-trip to that shard" to one frame's flight time.
func WithPushInvalidation() ClientOption {
	return pushOption{}
}

// maybeSubscribe runs on each freshly installed shared connection (the
// replicaSet's onDial hook, outside any lock). A subscription failure is
// not fatal: the connection still resolves, and the cache falls back to
// poll validation on it.
func (c *Client) maybeSubscribe(shard int, conn *sharedConn) {
	c.mu.Lock()
	push := c.push
	c.mu.Unlock()
	if !push {
		return
	}
	_ = conn.Subscribe(func(rev uint64) { c.pushRevision(shard, rev) })
}

// pushRevision consumes one pushed invalidation: count it and feed the
// per-shard purge rule, exactly as a response carrying this revision
// would have.
func (c *Client) pushRevision(shard int, rev uint64) {
	c.mu.Lock()
	c.invalidations++
	c.noteRevision(shard, rev, nil)
	c.mu.Unlock()
}

// Invalidations returns how many pushed invalidation frames this client
// has consumed across all connections (0 without WithPushInvalidation).
func (c *Client) Invalidations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidations
}

// Bind binds name in the cluster directory at dir to target. The write
// goes to the primary of the shard that serves (and will resolve) the
// resulting name.
func (c *Client) Bind(dir core.Path, name core.Name, target core.Entity) error {
	shard, conn, err := c.writeConn(dir, name)
	if err != nil {
		return err
	}
	rev, err := conn.Bind(dir, name, target)
	return c.writeDone(shard, conn, rev, err)
}

// Unbind removes the binding for name in the cluster directory at dir.
func (c *Client) Unbind(dir core.Path, name core.Name) error {
	shard, conn, err := c.writeConn(dir, name)
	if err != nil {
		return err
	}
	rev, err := conn.Unbind(dir, name)
	return c.writeDone(shard, conn, rev, err)
}

// Mkcontext creates a directory bound as name under the cluster directory
// at dir and returns the created entity.
func (c *Client) Mkcontext(dir core.Path, name core.Name) (core.Entity, error) {
	shard, conn, err := c.writeConn(dir, name)
	if err != nil {
		return core.Undefined, err
	}
	e, rev, err := conn.Mkcontext(dir, name)
	if err := c.writeDone(shard, conn, rev, err); err != nil {
		return core.Undefined, err
	}
	return e, nil
}

// writeConn routes a write to its shard's primary connection. The shard
// is chosen by the full path of the binding being written — dir plus
// name — so the mutation lands on the server that resolves it.
func (c *Client) writeConn(dir core.Path, name core.Name) (int, *sharedConn, error) {
	full := make(core.Path, 0, len(dir)+1)
	full = append(append(full, dir...), name)
	// A non-canonical name fails here, before the dial: the wire client
	// re-canonicalizes, but routing a bad name would burn a connection.
	if _, err := nameserver.CanonicalWirePath(full); err != nil {
		return 0, nil, err
	}
	shard := c.routes.ShardFor(full)
	conn, err := c.shards[shard].getReplica(0)
	if err != nil {
		if errors.Is(err, ErrClientClosed) {
			return shard, nil, err
		}
		return shard, nil, fmt.Errorf("shard %d primary: %w", shard, err)
	}
	return shard, conn, nil
}

// writeDone settles one write attempt: the reply's revision feeds the
// purge rule (a remote refusal still answered at a revision), and a
// transport failure retires the poisoned primary connection and fails the
// write cleanly — no retry, no failover to a backup.
func (c *Client) writeDone(shard int, conn *sharedConn, rev uint64, err error) error {
	c.mu.Lock()
	c.noteRevision(shard, rev, err)
	c.mu.Unlock()
	if err == nil {
		c.shards[shard].ok(conn.replica)
		return nil
	}
	if isRemote(err) {
		return err
	}
	c.shards[shard].retire(conn)
	c.noteFailover(0)
	return fmt.Errorf("shard %d primary: %w", shard, err)
}
