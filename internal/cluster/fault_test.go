package cluster

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/faultnet"
)

// startReplicated builds a replicated cluster over the test spec.
func startReplicated(t *testing.T, shards, replicas int) *Cluster {
	t.Helper()
	w := core.NewWorld()
	c, err := NewReplicated(w, testSpec, shards, replicas)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// fastOpts makes failures cheap for tests: short deadline, quick retries.
func fastOpts(extra ...ClientOption) []ClientOption {
	opts := []ClientOption{
		WithTimeout(500 * time.Millisecond),
		WithBackoff(time.Millisecond),
	}
	return append(opts, extra...)
}

func TestReplicatedClusterServesFromAllReplicas(t *testing.T) {
	cl := startReplicated(t, 2, 3)
	if cl.ReplicasPerShard() != 3 {
		t.Fatalf("ReplicasPerShard = %d, want 3", cl.ReplicasPerShard())
	}
	routes := cl.Routes()
	for shard := 0; shard < cl.Shards(); shard++ {
		if got := len(routes.ReplicaAddrs(shard)); got != 3 {
			t.Fatalf("shard %d: %d replica addrs, want 3", shard, got)
		}
	}
	client, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, raw := range testPaths {
		p := core.ParsePath(raw)
		e, err := client.Resolve(p)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", raw, err)
		}
		shard := routes.ShardFor(p)
		want, err := cl.Trees[shard].Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		// Any replica's entity is acceptable — they are one replica group.
		if e != want && !cl.World.SameReplica(e, want) {
			t.Fatalf("Resolve(%s) = %v, not a replica of %v", raw, e, want)
		}
	}
}

func TestFailoverSurvivesDeadReplica(t *testing.T) {
	cl := startReplicated(t, 2, 2)
	client, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Warm: pooled connections now point at the primaries.
	for _, raw := range testPaths {
		if _, err := client.Resolve(core.ParsePath(raw)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the primary replica of every shard.
	for shard := 0; shard < cl.Shards(); shard++ {
		cl.Fault(shard, 0).SetMode(faultnet.Reset)
	}
	// Every name must still resolve, via the surviving replicas.
	for _, raw := range testPaths {
		p := core.ParsePath(raw)
		e, err := client.Resolve(p)
		if err != nil {
			t.Fatalf("Resolve(%s) with primaries dead: %v", raw, err)
		}
		want, err := cl.Trees[cl.Routes().ShardFor(p)].Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		if e != want && !cl.World.SameReplica(e, want) {
			t.Fatalf("Resolve(%s) = %v, not a replica of %v", raw, e, want)
		}
	}
	if client.Failovers() == 0 {
		t.Fatal("Failovers = 0 — the dead primaries were never noticed")
	}
}

func TestFailoverKeepsWeakCoherence(t *testing.T) {
	cl := startReplicated(t, 2, 2)
	const nClients = 4
	clients := make([]coherence.Resolver, nClients)
	for i := range clients {
		client, err := Dial("tcp", cl.Addrs()[i%len(cl.Addrs())], fastOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		clients[i] = client
	}
	// Half the clients warm against healthy primaries, then the primaries
	// die and the other half resolve against the secondaries.
	paths := make([]core.Path, len(testPaths))
	for i, raw := range testPaths {
		paths[i] = core.ParsePath(raw)
	}
	for _, p := range paths {
		if _, err := clients[0].Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	for shard := 0; shard < cl.Shards(); shard++ {
		cl.Fault(shard, 0).SetMode(faultnet.Reset)
	}
	rep := coherence.MeasureResolvers(cl.World, clients, paths)
	if rep.WeakDegree() != 1.0 {
		t.Fatalf("weak coherence degree = %v, want 1.0 (report %+v)", rep.WeakDegree(), rep)
	}
	if rep.Incoherent != 0 {
		t.Fatalf("%d names incoherent across replicas", rep.Incoherent)
	}
}

func TestResolveTimeoutBoundsHungShard(t *testing.T) {
	cl := startReplicated(t, 1, 1)
	client, err := Dial("tcp", cl.Addrs()[0],
		WithTimeout(100*time.Millisecond), WithRetries(1), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Resolve(core.ParsePath("etc/motd")); err != nil {
		t.Fatal(err)
	}

	cl.Fault(0, 0).SetMode(faultnet.Hang)
	start := time.Now()
	_, err = client.Resolve(core.ParsePath("usr/bin/ls"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Resolve against a hung shard succeeded")
	}
	// Two attempts at 100ms each plus dial and backoff: well under 2s,
	// and emphatically not forever.
	if elapsed > 2*time.Second {
		t.Fatalf("Resolve blocked %v — deadline not enforced", elapsed)
	}
	var netErr interface{ Timeout() bool }
	if !errors.As(err, &netErr) || !netErr.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
}

func TestBreakerStopsDialingDeadReplica(t *testing.T) {
	cl := startReplicated(t, 1, 2)
	client, err := Dial("tcp", cl.Addrs()[0],
		fastOpts(WithRetries(1), WithBreaker(2, time.Hour))...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	dead := cl.Fault(0, 0)
	dead.SetMode(faultnet.Reset)
	p := core.ParsePath("etc/motd")
	// Enough resolutions to trip the 2-failure breaker on replica 0.
	for i := 0; i < 4; i++ {
		if _, err := client.Resolve(p); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
	}
	drops := dead.Drops()
	if drops == 0 {
		t.Fatal("dead replica saw no connection attempts — test is vacuous")
	}
	for i := 0; i < 8; i++ {
		if _, err := client.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := dead.Drops(); got != drops {
		t.Fatalf("dead replica dialed %d more times after breaker opened", got-drops)
	}
}

func TestResolveBatchPartialFailure(t *testing.T) {
	cl := startReplicated(t, 2, 1)
	client, err := Dial("tcp", cl.Addrs()[0],
		fastOpts(WithRetries(0))...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pUsr := core.ParsePath("usr/bin/ls")
	pEtc := core.ParsePath("etc/motd")
	usrShard := cl.Routes().ShardFor(pUsr)
	etcShard := cl.Routes().ShardFor(pEtc)
	if usrShard == etcShard {
		t.Fatalf("test spec routed usr and etc to the same shard %d", usrShard)
	}
	cl.Fault(etcShard, 0).SetMode(faultnet.Reset)

	results, err := client.ResolveBatch([]core.Path{pUsr, pEtc})
	if err != nil {
		t.Fatalf("ResolveBatch = %v, want nil error with per-item failures", err)
	}
	if results[0].Err != nil {
		t.Fatalf("healthy shard result discarded: %v", results[0].Err)
	}
	want, _ := cl.Trees[usrShard].Lookup(pUsr)
	if results[0].Entity != want {
		t.Fatalf("results[0] = %v, want %v", results[0].Entity, want)
	}
	if results[1].Err == nil {
		t.Fatal("dead shard's name resolved without error")
	}
	if isRemote(results[1].Err) {
		t.Fatalf("dead shard's error %v looks like a server answer, want transport", results[1].Err)
	}

	// With every touched shard dead and nothing cached, the batch as a
	// whole fails.
	cl.Fault(usrShard, 0).SetMode(faultnet.Reset)
	fresh, err := Dial("tcp", cl.Addrs()[etcShard], fastOpts(WithRetries(0))...)
	if err == nil {
		defer fresh.Close()
		results, err = fresh.ResolveBatch([]core.Path{pUsr, pEtc})
		if err == nil {
			t.Fatal("ResolveBatch with nothing resolvable returned nil error")
		}
		for i, r := range results {
			if r.Err == nil {
				t.Fatalf("results[%d] has no error despite total failure", i)
			}
		}
	}
}

func TestResolveBatchPartialFailureStillCaches(t *testing.T) {
	cl := startReplicated(t, 2, 1)
	client, err := Dial("tcp", cl.Addrs()[0],
		fastOpts(WithRetries(0), WithLRU(16))...)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pUsr := core.ParsePath("usr/bin/ls")
	pEtc := core.ParsePath("etc/motd")
	etcShard := cl.Routes().ShardFor(pEtc)
	cl.Fault(etcShard, 0).SetMode(faultnet.Reset)
	if _, err := client.ResolveBatch([]core.Path{pUsr, pEtc}); err != nil {
		t.Fatal(err)
	}
	// The healthy answer was cached: a repeat is a hit, not a round-trip.
	served := cl.Served()
	if _, err := client.Resolve(pUsr); err != nil {
		t.Fatal(err)
	}
	if cl.Served() != served {
		t.Fatal("healthy-shard batch result was not cached under partial failure")
	}
}

func TestPoolGetFailsAfterClose(t *testing.T) {
	cl := startReplicated(t, 1, 1)
	client, err := Dial("tcp", cl.Addrs()[0], fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Resolve(core.ParsePath("etc/motd")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	// A resolve racing or following Close must fail, not dial a fresh
	// connection that nothing will ever close.
	if _, err := client.Resolve(core.ParsePath("etc/motd")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Resolve after Close = %v, want ErrClientClosed", err)
	}
	set := client.shards[0]
	if _, err := set.get(-1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("replicaSet.get after close = %v, want ErrClientClosed", err)
	}
}

func TestPoolCloseRacesResolve(t *testing.T) {
	cl := startReplicated(t, 2, 1)
	for round := 0; round < 8; round++ {
		client, err := Dial("tcp", cl.Addrs()[0], fastOpts(WithRetries(0))...)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				p := core.ParsePath(testPaths[g%len(testPaths)])
				// Either outcome is fine; what must not happen is a leak
				// or a deadlock (the race detector and -timeout watch).
				_, _ = client.Resolve(p)
			}(g)
		}
		client.Close()
		wg.Wait()
	}
}

// TestCoalescedFailureSharedAndNotReused is the singleflight failure
// contract: waiters coalesced onto a failing flight observe the same
// error, and the next call starts a fresh flight with a fresh dial rather
// than reusing the poisoned one.
func TestCoalescedFailureSharedAndNotReused(t *testing.T) {
	cl := startReplicated(t, 1, 1)
	client, err := Dial("tcp", cl.Addrs()[0],
		WithTimeout(300*time.Millisecond), WithRetries(0), WithBackoff(0))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cl.Fault(0, 0).SetMode(faultnet.Hang)
	p := core.ParsePath("usr/bin/ls")
	const concurrent = 6
	var wg sync.WaitGroup
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Resolve(p)
		}(i)
	}
	// Wait until all but the leader share its flight, then let the hang
	// time out.
	for client.Coalesced() < concurrent-1 {
		runtime.Gosched()
	}
	wg.Wait()

	if errs[0] == nil {
		t.Fatal("hung flight succeeded")
	}
	for i := 1; i < concurrent; i++ {
		if errs[i] != errs[0] {
			t.Fatalf("waiter %d error %v is not the flight's error %v", i, errs[i], errs[0])
		}
	}
	_, misses := client.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (one shared failing flight)", misses)
	}

	// Heal the shard: the next resolve must re-dial on a fresh flight.
	cl.Fault(0, 0).SetMode(faultnet.Pass)
	e, err := client.Resolve(p)
	if err != nil {
		t.Fatalf("Resolve after heal: %v (poisoned flight reused?)", err)
	}
	want, _ := cl.Trees[0].Lookup(p)
	if e != want {
		t.Fatalf("Resolve after heal = %v, want %v", e, want)
	}
	if _, misses := client.Stats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (second call started its own flight)", misses)
	}
}
