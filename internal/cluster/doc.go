// Package cluster partitions one logical naming graph across several name
// servers by first-component prefix — the paper's shared naming graph
// (§5.2, Fig. 4) as a collection of servers jointly administering one
// coherent space, the way Andrew's /vice servers and OSF DCE cells carve a
// shared tree into prefix-delegated subtrees.
//
// Cluster is the server side: it splits a treespec into per-shard subtrees
// (treespec.Split), serves each shard from its own name server, and
// installs the routing table on every member so a client can bootstrap
// from any of them.
//
// Client is the scalable front end: it routes each name to its shard,
// pools connections per shard, batches multi-name resolutions into one
// round-trip per shard, coalesces concurrent identical lookups
// (singleflight), and keeps a revision-tracked LRU cache whose entries are
// purged per shard when that shard's binding revision advances — the same
// one-round-trip staleness bound nameserver.WithCoherentCache gives a
// single server, preserved across the whole cluster.
package cluster
