package cluster

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
)

const testSpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /usr/bin/cat "#!cat"
file /etc/passwd "root:0:staff"
file /etc/motd "welcome"
file /home/alice/notes "todo"
file /srv/data "payload"
link /mnt /usr
`

var testPaths = []string{
	"usr/bin/ls", "usr/bin/cat", "etc/passwd", "etc/motd",
	"home/alice/notes", "srv/data", "mnt/bin/ls",
}

// startCluster builds a 4-shard cluster over the test spec.
func startCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	w := core.NewWorld()
	c, err := New(w, testSpec, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterResolveAcrossShards(t *testing.T) {
	cl := startCluster(t, 4)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for _, raw := range testPaths {
		p := core.ParsePath(raw)
		e, err := client.Resolve(p)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", raw, err)
		}
		// The answer must match a direct lookup in the owning shard's tree.
		shard := cl.Routes().ShardFor(p)
		want, err := cl.Trees[shard].Lookup(p)
		if err != nil {
			t.Fatalf("shard %d does not hold %s: %v", shard, raw, err)
		}
		if e != want {
			t.Fatalf("Resolve(%s) = %v, want %v", raw, e, want)
		}
	}
	// The link and its target route to the same shard and the same entity.
	viaLink, err := client.Resolve(core.ParsePath("mnt/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := client.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if viaLink != direct {
		t.Fatalf("mnt/bin/ls = %v, usr/bin/ls = %v — sharding broke the link", viaLink, direct)
	}
}

func TestClusterDialFromEveryMember(t *testing.T) {
	cl := startCluster(t, 3)
	for i, addr := range cl.Addrs() {
		client, err := Dial("tcp", addr)
		if err != nil {
			t.Fatalf("Dial via shard %d: %v", i, err)
		}
		if _, err := client.Resolve(core.ParsePath("etc/motd")); err != nil {
			t.Fatalf("resolve via shard-%d bootstrap: %v", i, err)
		}
		client.Close()
	}
}

func TestClusterResolveMiss(t *testing.T) {
	cl := startCluster(t, 2)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Resolve(core.ParsePath("no/such/name")); !isRemote(err) {
		t.Fatalf("Resolve(miss) = %v, want RemoteError", err)
	}
}

func TestClusterBatchOneRoundTripPerShard(t *testing.T) {
	cl := startCluster(t, 4)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	paths := make([]core.Path, 0, len(testPaths)+1)
	for _, raw := range testPaths {
		paths = append(paths, core.ParsePath(raw))
	}
	paths = append(paths, core.ParsePath("usr/bin/ls")) // duplicate

	servedBefore := cl.Served()
	results, err := client.ResolveBatch(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("results[%d] (%s): %v", i, paths[i], r.Err)
		}
	}
	if results[len(results)-1].Entity != results[0].Entity {
		t.Fatal("duplicate path resolved differently")
	}
	// Shards touched = number of distinct shards among the paths; each
	// fields exactly one wire request.
	shardsTouched := make(map[int]bool)
	for _, p := range paths {
		shardsTouched[cl.Routes().ShardFor(p)] = true
	}
	if got := cl.Served() - servedBefore; got != len(shardsTouched) {
		t.Fatalf("wire requests = %d, want %d (one per shard)", got, len(shardsTouched))
	}
	// The duplicate was deduplicated on the wire.
	if cl.Resolved() != len(testPaths) {
		t.Fatalf("Resolved = %d, want %d", cl.Resolved(), len(testPaths))
	}
}

func TestClusterLRURevisionPurgePerShard(t *testing.T) {
	cl := startCluster(t, 4)
	client, err := Dial("tcp", cl.Addrs()[0], WithLRU(32))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pEtc := core.ParsePath("etc/motd")
	pUsr := core.ParsePath("usr/bin/ls")
	for _, p := range []core.Path{pEtc, pUsr} {
		if _, err := client.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	// Repeats are cache hits.
	served := cl.Served()
	if _, err := client.Resolve(pEtc); err != nil {
		t.Fatal(err)
	}
	if cl.Served() != served {
		t.Fatal("repeat resolve crossed the wire despite LRU")
	}

	// Mutate the shard holding etc: its WatchExport bumps the revision.
	etcShard := cl.Routes().ShardFor(pEtc)
	usrShard := cl.Routes().ShardFor(pUsr)
	if etcShard == usrShard {
		t.Fatalf("test spec routed etc and usr to the same shard %d", etcShard)
	}
	etcDir, err := cl.Trees[etcShard].Lookup(core.ParsePath("etc"))
	if err != nil {
		t.Fatal(err)
	}
	etcCtx, _ := cl.World.ContextOf(etcDir)
	newMotd := cl.World.NewObject("new-motd")
	etcCtx.Bind("motd", newMotd)

	// The next round-trip to that shard purges its entries and refetches.
	got, err := client.Resolve(core.ParsePath("etc/passwd"))
	if err != nil || got.IsUndefined() {
		t.Fatalf("resolve etc/passwd after churn: %v, %v", got, err)
	}
	if client.Purges() != 1 {
		t.Fatalf("Purges = %d, want 1", client.Purges())
	}
	got, err = client.Resolve(pEtc)
	if err != nil {
		t.Fatal(err)
	}
	if got != newMotd {
		t.Fatalf("Resolve(etc/motd) = %v, want the rebound %v", got, newMotd)
	}
	// The usr shard's entry survived the purge: still a cache hit.
	served = cl.Served()
	if _, err := client.Resolve(pUsr); err != nil {
		t.Fatal(err)
	}
	if cl.Served() != served {
		t.Fatal("usr entry was purged by an etc revision advance (purge must be per shard)")
	}
}

// gateContext blocks lookups of a trigger name until released, letting the
// test pile up concurrent identical lookups deterministically.
type gateContext struct {
	core.Context
	trigger core.Name
	gate    chan struct{}
}

func (c *gateContext) Lookup(n core.Name) core.Entity {
	if n == c.trigger {
		<-c.gate
	}
	return c.Context.Lookup(n)
}

func TestClusterSingleflightCoalescing(t *testing.T) {
	w := core.NewWorld()
	cl, err := New(w, testSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close() // only the tree and plan are reused; serve a gated copy

	gate := &gateContext{
		Context: cl.Trees[0].RootContext(),
		trigger: "usr",
		gate:    make(chan struct{}),
	}
	srv := nameserver.NewServer(w, gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	routes := &nameserver.RouteInfo{
		Prefixes: map[string]int{},
		Default:  0,
		Addrs:    []string{ln.Addr().String()},
	}
	client := NewClient("tcp", routes)
	defer client.Close()

	p := core.ParsePath("usr/bin/ls")
	const concurrent = 8
	var wg sync.WaitGroup
	got := make([]core.Entity, concurrent)
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = client.Resolve(p)
		}(i)
	}
	// Wait until all but the leader are coalesced onto the flight, then
	// let the server answer.
	for client.Coalesced() < concurrent-1 {
		runtime.Gosched()
	}
	close(gate.gate)
	wg.Wait()

	want, err := cl.Trees[0].Lookup(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < concurrent; i++ {
		if errs[i] != nil || got[i] != want {
			t.Fatalf("resolver %d: %v, %v", i, got[i], errs[i])
		}
	}
	_, misses := client.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight shares one round-trip)", misses)
	}
	if client.Coalesced() != concurrent-1 {
		t.Fatalf("Coalesced = %d, want %d", client.Coalesced(), concurrent-1)
	}
	if srv.Resolved() != 1 {
		t.Fatalf("server resolved %d names, want 1", srv.Resolved())
	}
}

// TestClusterCoherenceAcrossClients is the Fig. 4 claim over a real
// sharded deployment: every client of every shard agrees on every
// shared-prefix name, even with caches and concurrent use.
func TestClusterCoherenceAcrossClients(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-client TCP stress test")
	}
	cl := startCluster(t, 4)
	const nClients = 8
	clients := make([]coherence.Resolver, nClients)
	for i := range clients {
		client, err := Dial("tcp", cl.Addrs()[i%len(cl.Addrs())], WithLRU(16))
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		clients[i] = client
	}

	// Warm every client concurrently (fills caches in different orders).
	var wg sync.WaitGroup
	for _, r := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for _, raw := range testPaths {
				if _, err := c.Resolve(core.ParsePath(raw)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r.(*Client))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	paths := make([]core.Path, len(testPaths))
	for i, raw := range testPaths {
		paths[i] = core.ParsePath(raw)
	}
	rep := coherence.MeasureResolvers(cl.World, clients, paths)
	if rep.StrictDegree() != 1.0 {
		t.Fatalf("strict coherence degree = %v, want 1.0; report %+v", rep.StrictDegree(), rep)
	}
}

func TestClusterConcurrentMixedUse(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent TCP stress test")
	}
	cl := startCluster(t, 4)
	client, err := Dial("tcp", cl.Addrs()[0], WithLRU(16))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	paths := make([]core.Path, len(testPaths))
	for i, raw := range testPaths {
		paths[i] = core.ParsePath(raw)
	}
	const goroutines, rounds = 8, 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if r%3 == 0 {
					results, err := client.ResolveBatch(paths)
					if err != nil {
						t.Error(err)
						return
					}
					for i, res := range results {
						if res.Err != nil {
							t.Errorf("batch[%d]: %v", i, res.Err)
							return
						}
					}
					continue
				}
				p := paths[(g+r)%len(paths)]
				if _, err := client.Resolve(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClusterSingleShardDegeneratesToOneServer(t *testing.T) {
	cl := startCluster(t, 1)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, raw := range testPaths {
		if _, err := client.Resolve(core.ParsePath(raw)); err != nil {
			t.Fatalf("Resolve(%s): %v", raw, err)
		}
	}
	if cl.Shards() != 1 {
		t.Fatalf("Shards = %d", cl.Shards())
	}
}

func TestSharedConnReuse(t *testing.T) {
	cl := startCluster(t, 2)
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Sequential resolves to one shard multiplex over one shared conn.
	p := core.ParsePath("etc/motd")
	shard := cl.Routes().ShardFor(p)
	for i := 0; i < 10; i++ {
		if _, err := client.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	set := client.shards[shard]
	set.mu.Lock()
	up := 0
	for _, conn := range set.conns {
		if conn != nil {
			up++
		}
	}
	set.mu.Unlock()
	if up != 1 {
		t.Fatalf("shared connections = %d, want 1 (sequential use shares one conn)", up)
	}
}

func TestClusterRejectsBadSpec(t *testing.T) {
	w := core.NewWorld()
	if _, err := New(w, "bogus /x\n", 2); err == nil {
		t.Fatal("New with a bad spec should fail")
	}
	if _, err := New(w, testSpec, 0); err == nil {
		t.Fatal("New with 0 shards should fail")
	}
}

func ExampleClient_ResolveBatch() {
	w := core.NewWorld()
	cl, err := New(w, "file /a/x \"1\"\nfile /b/y \"2\"\n", 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close()
	client, err := Dial("tcp", cl.Addrs()[0])
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()
	results, _ := client.ResolveBatch([]core.Path{
		core.ParsePath("a/x"), core.ParsePath("b/y"),
	})
	fmt.Println(len(results), results[0].Err == nil, results[1].Err == nil)
	// Output: 2 true true
}

// TestClusterCodecInterop runs the cross-version cluster matrix: a
// gob-pinned client against binary-default servers (the hello is never
// sent, the servers fall back per connection), and a default binary
// client against gob-pinned servers (the hello is answered with the
// downgrade byte). Both fleets must resolve across shards and mutate.
func TestClusterCodecInterop(t *testing.T) {
	run := func(t *testing.T, serverOpts []Option, clientOpts []ClientOption) {
		w := core.NewWorld()
		cl, err := New(w, testSpec, 2, serverOpts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := Dial("tcp", cl.Addrs()[0], clientOpts...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		for _, raw := range testPaths {
			if _, err := client.Resolve(core.ParsePath(raw)); err != nil {
				t.Fatalf("Resolve(%s): %v", raw, err)
			}
		}
		target, err := client.Resolve(core.ParsePath("usr/bin/ls"))
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Bind(core.ParsePath("usr/bin"), "twin", target); err != nil {
			t.Fatalf("Bind: %v", err)
		}
		if got, err := client.Resolve(core.ParsePath("usr/bin/twin")); err != nil || got != target {
			t.Fatalf("Resolve of bound name = %v, %v; want %v", got, err, target)
		}
	}
	t.Run("gob-client/binary-servers", func(t *testing.T) {
		run(t, nil, []ClientOption{WithCodec(nameserver.CodecGob)})
	})
	t.Run("binary-client/gob-servers", func(t *testing.T) {
		run(t, []Option{WithServerOptions(nameserver.WithServerCodec(nameserver.CodecGob))}, nil)
	})
}
