package cluster

import (
	"fmt"

	"namecoherence/internal/cas"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/snapstore"
	"namecoherence/internal/treespec"
)

// Option configures cluster construction.
type Option interface {
	apply(*options)
}

type options struct {
	snap       *snapstore.Store
	serverOpts []nameserver.ServerOption
}

type snapStoreOption struct{ st *snapstore.Store }

func (o snapStoreOption) apply(opts *options) { opts.snap = o.st }

// WithSnapStore backs the cluster with a content-addressed snapshot
// store. Shards whose manifest names a committed root are restored from
// it instead of rebuilt from the spec — the crash-recovery path — and
// additional replicas are brought up by hash-diff catch-up: each replica
// fetches into its own scratch CAS only the blobs it is missing, then
// restores from that. Shards with no committed root are built from the
// spec and their initial snapshot is committed at revision 0.
func WithSnapStore(st *snapstore.Store) Option {
	return snapStoreOption{st}
}

// CatchUpStat records one replica bring-up transfer: how many blobs were
// fetched and how many already-present subtrees were pruned.
type CatchUpStat struct {
	Shard, Replica  int
	Copied, Skipped int
}

// bringUpShard produces shard i's replica trees. With no snap store (or
// on a fresh store with no committed root) the trees are built from the
// spec; with a committed root they are restored from the blob graph.
func (c *Cluster) bringUpShard(o *options, i int, shardSpec, label string, replicas int) ([]*dirtree.Tree, error) {
	if o.snap == nil {
		return treespec.BuildReplicas(shardSpec, c.World, label, replicas)
	}
	last, ok := o.snap.Latest(i)
	if !ok {
		trees, err := treespec.BuildReplicas(shardSpec, c.World, label, replicas)
		if err != nil {
			return nil, err
		}
		root, err := o.snap.Snapshot(c.World, trees[0].Root)
		if err != nil {
			return nil, fmt.Errorf("initial snapshot of shard %d: %w", i, err)
		}
		if err := o.snap.Commit(i, 0, root); err != nil {
			return nil, fmt.Errorf("commit shard %d: %w", i, err)
		}
		return trees, nil
	}

	root, err := last.RootHash()
	if err != nil {
		return nil, fmt.Errorf("shard %d manifest: %w", i, err)
	}
	trees := make([]*dirtree.Tree, replicas)
	for r := range trees {
		lbl := label
		if replicas > 1 {
			lbl = fmt.Sprintf("%s-r%d", label, r)
		}
		// The primary restores straight from the store; every further
		// replica first catches up a private CAS — fetching only blobs it
		// does not already hold — and restores from that, exactly the
		// transfer a remote replica would perform.
		src := o.snap
		if r > 0 {
			scratch := cas.NewMem()
			copied, skipped, err := o.snap.CatchUp(scratch, root)
			if err != nil {
				return nil, fmt.Errorf("catch up shard %d replica %d: %w", i, r, err)
			}
			c.catchUps = append(c.catchUps, CatchUpStat{
				Shard: i, Replica: r, Copied: copied, Skipped: skipped,
			})
			src = snapstore.New(cas.NewStore(scratch))
		}
		tr, err := src.Restore(root, c.World, lbl)
		if err != nil {
			return nil, fmt.Errorf("restore shard %d replica %d: %w", i, r, err)
		}
		trees[r] = tr
	}
	if replicas > 1 {
		if err := treespec.GroupReplicas(c.World, trees); err != nil {
			return nil, fmt.Errorf("group restored replicas of shard %d: %w", i, err)
		}
	}
	c.recovered = append(c.recovered, recoveredShard{shard: i, rev: last.Rev})
	return trees, nil
}

// recoveredShard records that a shard was restored from a snapshot
// committed at the given revision (so its servers resume there).
type recoveredShard struct {
	shard int
	rev   uint64
}

// CatchUps returns the replica bring-up transfers performed during
// construction — empty unless the cluster was built over a snap store
// with committed roots and more than one replica per shard.
func (c *Cluster) CatchUps() []CatchUpStat {
	return append([]CatchUpStat(nil), c.catchUps...)
}

// Recovered reports whether shard i was restored from a committed
// snapshot, and at which revision.
func (c *Cluster) Recovered(i int) (rev uint64, ok bool) {
	for _, r := range c.recovered {
		if r.shard == i {
			return r.rev, true
		}
	}
	return 0, false
}

// ShardRoot snapshots the current state of one replica's subtree into st
// and returns its root hash. Replicas of one shard hold structurally
// identical subtrees, so their roots hash identically — weak coherence
// made checkable with one comparison.
func (c *Cluster) ShardRoot(st *snapstore.Store, i, r int) (cas.Hash, error) {
	return st.Snapshot(c.World, c.ReplicaTrees[i][r].Root)
}
