// Write replication, primary-per-shard: every mutation a shard's primary
// commits is re-issued, in commit order, to each backup replica over the
// ordinary wire protocol (so it crosses the same faultnet injectors the
// read path does). Delivery is at-least-once with unbounded buffering —
// a backup that is down or partitioned accumulates a queue and converges
// when it heals — and the replica-side apply is idempotent and tagged
// with the primary's revision, so re-sends and recoveries converge
// instead of diverging. Writes during an outage therefore apply on the
// primary immediately and reach the backup eventually; nothing blocks
// the primary's write path beyond an in-memory enqueue.

package cluster

import (
	"sync"
	"time"

	"namecoherence/internal/nameserver"
)

// replApplyBackoff is the pause between re-dial/re-apply attempts against
// an unreachable backup. Short: faultnet tests heal in milliseconds, and
// a real outage pays one failed dial per tick, not a hot loop.
const replApplyBackoff = 5 * time.Millisecond

// replicator fans one shard's committed mutations out to its backup
// replicas. One goroutine per backup drains a private FIFO, so a slow or
// dead backup never delays the others — per-backup order is all the
// idempotent apply needs.
type replicator struct {
	shard   int
	network string
	timeout time.Duration
	stopC   chan struct{}
	feeds   []*backupFeed
	wg      sync.WaitGroup
}

// backupFeed is the mutation queue of one backup replica.
type backupFeed struct {
	addr string

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []nameserver.AppliedMutation
	applying bool // a mutation is popped but not yet acknowledged
	stopped  bool
	skipped  int                // mutations the backup refused (divergence, counted not retried)
	conn     *nameserver.Client // current wire connection; closed by close() to unstick the applier
}

// newReplicator starts one applier goroutine per backup address. The
// returned replicator's enqueue is meant to be installed as the primary
// server's OnMutation hook.
func newReplicator(network string, shard int, backups []string, timeout time.Duration) *replicator {
	r := &replicator{
		shard:   shard,
		network: network,
		timeout: timeout,
		stopC:   make(chan struct{}),
	}
	for _, addr := range backups {
		f := &backupFeed{addr: addr}
		f.cond = sync.NewCond(&f.mu)
		r.feeds = append(r.feeds, f)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.apply(f)
		}()
	}
	return r
}

// enqueue appends one committed mutation to every backup's queue. It is
// called under the primary's write mutex (OnMutation), so queues receive
// mutations in commit order; it only appends to in-memory slices, never
// blocks, and never performs I/O.
func (r *replicator) enqueue(m nameserver.AppliedMutation) {
	for _, f := range r.feeds {
		f.mu.Lock()
		if !f.stopped {
			f.queue = append(f.queue, m)
			f.cond.Broadcast()
		}
		f.mu.Unlock()
	}
}

// apply is one backup's applier loop: peek the queue head, apply it over
// the wire, pop on success, retry after a pause on transport failure. The
// head stays queued until acknowledged, so a crash of the backup between
// apply and ack just causes an idempotent re-apply.
func (r *replicator) apply(f *backupFeed) {
	for {
		f.mu.Lock()
		for len(f.queue) == 0 && !f.stopped {
			f.cond.Wait()
		}
		if f.stopped {
			f.mu.Unlock()
			return
		}
		m := f.queue[0]
		f.applying = true
		f.mu.Unlock()

		ok, remote := r.applyOne(f, m)
		f.mu.Lock()
		if ok {
			f.queue = f.queue[1:]
			if remote {
				f.skipped++
			}
		}
		f.applying = false
		f.cond.Broadcast()
		f.mu.Unlock()
		if !ok {
			select {
			case <-r.stopC:
				return
			case <-time.After(replApplyBackoff):
			}
		}
	}
}

// applyOne performs one wire apply. ok reports whether the mutation is
// settled (applied, or definitively refused); remote marks the refused
// case. A transport failure retires the connection and reports !ok so the
// caller retries the same mutation against a fresh one.
func (r *replicator) applyOne(f *backupFeed, m nameserver.AppliedMutation) (ok, remote bool) {
	conn := r.feedConn(f)
	if conn == nil {
		return false, false
	}
	_, err := conn.ReplicaApply(m)
	switch {
	case err == nil:
		return true, false
	case isRemote(err):
		// The backup answered and refused: re-sending cannot change its
		// mind. Count the divergence and move on so the queue stays live.
		return true, true
	default:
		r.dropConn(f, conn)
		return false, false
	}
}

// feedConn returns the feed's wire connection, dialing one if needed.
// Dialing happens outside the feed lock (it is wire I/O); the established
// connection is parked under the lock so close() can reach in and fail an
// in-flight apply fast.
func (r *replicator) feedConn(f *backupFeed) *nameserver.Client {
	f.mu.Lock()
	conn := f.conn
	stopped := f.stopped
	f.mu.Unlock()
	if conn != nil || stopped {
		return conn
	}
	nc, err := nameserver.DialTimeout(r.network, f.addr, r.timeout,
		nameserver.WithTimeout(r.timeout))
	if err != nil {
		return nil
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		_ = nc.Close()
		return nil
	}
	f.conn = nc
	f.mu.Unlock()
	return nc
}

// dropConn retires a poisoned connection so the next attempt redials.
func (r *replicator) dropConn(f *backupFeed, conn *nameserver.Client) {
	f.mu.Lock()
	if f.conn == conn {
		f.conn = nil
	}
	f.mu.Unlock()
	_ = conn.Close()
}

// drain blocks until every backup's queue is empty and no apply is in
// flight — the convergence point tests and experiments wait on after
// healing faults. Backups that cannot be reached keep drain waiting, so
// heal first. Returns immediately once the replicator is closed.
func (r *replicator) drain() {
	for _, f := range r.feeds {
		f.mu.Lock()
		for (len(f.queue) > 0 || f.applying) && !f.stopped {
			f.cond.Wait()
		}
		f.mu.Unlock()
	}
}

// pending reports how many mutations are queued or in flight across all
// backups.
func (r *replicator) pending() int {
	n := 0
	for _, f := range r.feeds {
		f.mu.Lock()
		n += len(f.queue)
		if f.applying {
			n++
		}
		f.mu.Unlock()
	}
	return n
}

// close stops every applier and joins them. Queued mutations that were
// not yet applied are dropped — close is cluster teardown, not a flush;
// call drain first when convergence matters.
func (r *replicator) close() {
	close(r.stopC)
	for _, f := range r.feeds {
		f.mu.Lock()
		f.stopped = true
		conn := f.conn
		f.conn = nil
		f.cond.Broadcast()
		f.mu.Unlock()
		if conn != nil {
			_ = conn.Close() // fail a blocked in-flight apply fast
		}
	}
	r.wg.Wait()
}
