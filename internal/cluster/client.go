package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"namecoherence/internal/core"
	"namecoherence/internal/lru"
	"namecoherence/internal/nameserver"
)

// Client fronts a sharded cluster: it routes every name to the shard
// serving its prefix, shares one multiplexed connection per replica (the
// wire client pipelines concurrent requests, so shard lookups overlap on
// a single conn), answers repeats from a revision-tracked LRU cache,
// coalesces concurrent identical lookups, and resolves batches with one
// round-trip per shard. Every round-trip runs under a deadline; transport
// failures retire the poisoned connection and are retried with
// exponential backoff across the shard's replicas, and replicas that keep
// failing are circuit-broken so they stop absorbing dials.
type Client struct {
	network string
	routes  *nameserver.RouteInfo
	shards  []*replicaSet
	retries int
	backoff time.Duration

	// wg joins the per-shard batch goroutines; Close waits on it after
	// flipping closed, so no request goroutine outlives the client.
	wg sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	cache     *lru.Cache[string, cacheEntry]
	revs      []uint64 // per-shard binding revision last seen
	flights   map[string]*flight
	hits      int
	misses    int
	coalesced int
	purges    int
	failovers int
	// push invalidation (see WithPushInvalidation): every shared
	// connection subscribes on dial, and pushed revisions feed the
	// per-shard purge rule without waiting for the next miss.
	push          bool
	invalidations int
}

// batchJoinHook, when non-nil, runs as each batch goroutine finishes but
// before it leaves the join group — the close-join regression test uses it
// to prove Close waited.
var batchJoinHook func()

// cacheEntry tags each cached binding with its shard, so a revision
// advance purges exactly the entries that shard vouched for.
type cacheEntry struct {
	entity core.Entity
	shard  int
}

// flight is one in-progress resolution that concurrent identical lookups
// wait on instead of issuing their own round-trips.
type flight struct {
	done chan struct{}
	e    core.Entity
	err  error
}

// ErrClientClosed is returned by requests that race or follow Close.
var ErrClientClosed = errors.New("cluster: client closed")

// Failure-model defaults. A request makes 1+defaultRetries attempts, each
// bounded by defaultTimeout (dial and round-trip alike); attempts after
// the first wait defaultBackoffBase·2^(n-1) plus equal jitter. A replica
// with defaultBreakerThreshold consecutive failures is skipped for
// defaultBreakerCooldown.
const (
	defaultTimeout          = 5 * time.Second
	defaultRetries          = 2
	defaultBackoffBase      = 2 * time.Millisecond
	maxBackoff              = 100 * time.Millisecond
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 250 * time.Millisecond
)

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type lruOption int

func (o lruOption) apply(c *Client) {
	c.cache = lru.New[string, cacheEntry](int(o))
}

// WithLRU enables a revision-tracked LRU cache of at most n entries.
// Every response carries its shard's binding revision; when a shard's
// revision advances, that shard's entries are purged before anything new
// is trusted — the coherent-cache staleness bound, per shard.
func WithLRU(n int) ClientOption {
	return lruOption(n)
}

type poolOption int

func (poolOption) apply(*Client) {}

// WithPoolSize is a no-op kept for compatibility: requests to one shard
// used to check out exclusive pooled connections, but the multiplexed
// wire client pipelines concurrent requests over one shared connection
// per replica, so there is no idle pool left to size.
func WithPoolSize(n int) ClientOption {
	return poolOption(n)
}

type timeoutOption time.Duration

func (o timeoutOption) apply(c *Client) {
	for _, p := range c.shards {
		p.timeout = time.Duration(o)
	}
}

// WithTimeout bounds every dial and round-trip (default 5s; 0 disables).
// A hung replica then costs one timeout, not a wedged client: the
// per-call timer fails only the waiting call, and the poisoned connection
// is retired on the way out.
func WithTimeout(d time.Duration) ClientOption {
	return timeoutOption(d)
}

type retriesOption int

func (o retriesOption) apply(c *Client) { c.retries = int(o) }

// WithRetries sets how many extra attempts follow a transport failure
// (default 2). Retries prefer a different replica of the shard, so with
// replication a single dead replica is survived within one request.
func WithRetries(n int) ClientOption {
	return retriesOption(n)
}

type backoffOption time.Duration

func (o backoffOption) apply(c *Client) { c.backoff = time.Duration(o) }

// WithBackoff sets the base delay before retry n to base·2^(n-1) plus
// equal jitter, capped at 100ms (default base 2ms; 0 disables waiting).
func WithBackoff(base time.Duration) ClientOption {
	return backoffOption(base)
}

type breakerOption struct {
	threshold int
	cooldown  time.Duration
}

func (o breakerOption) apply(c *Client) {
	for _, p := range c.shards {
		p.breakerThreshold = o.threshold
		p.breakerCooldown = o.cooldown
	}
}

// WithBreaker configures the per-replica circuit breaker: after threshold
// consecutive failures a replica is skipped for cooldown, then probed
// again (default 3 failures, 250ms; threshold 0 disables breaking).
func WithBreaker(threshold int, cooldown time.Duration) ClientOption {
	return breakerOption{threshold: threshold, cooldown: cooldown}
}

type codecOption nameserver.Codec

func (o codecOption) apply(c *Client) {
	for _, p := range c.shards {
		p.codec = nameserver.Codec(o)
	}
}

// WithCodec pins the wire codec for every replica connection, including
// the bootstrap seed. The default (binary) negotiates per connection and
// falls back to gob against older servers; pin gob to talk to servers
// that predate the negotiation handshake entirely.
func WithCodec(codec nameserver.Codec) ClientOption {
	return codecOption(codec)
}

// NewClient returns a client over an already-known routing table.
func NewClient(network string, routes *nameserver.RouteInfo, opts ...ClientOption) *Client {
	c := &Client{
		network: network,
		routes:  routes.Clone(),
		shards:  make([]*replicaSet, len(routes.Addrs)),
		revs:    make([]uint64, len(routes.Addrs)),
		flights: make(map[string]*flight),
		retries: defaultRetries,
		backoff: defaultBackoffBase,
	}
	for i := range routes.Addrs {
		c.shards[i] = &replicaSet{
			network:          network,
			addrs:            c.routes.ReplicaAddrs(i),
			timeout:          defaultTimeout,
			breakerThreshold: defaultBreakerThreshold,
			breakerCooldown:  defaultBreakerCooldown,
		}
		c.shards[i].conns = make([]*sharedConn, len(c.shards[i].addrs))
		c.shards[i].breakers = make([]breaker, len(c.shards[i].addrs))
		shard := i
		c.shards[i].onDial = func(conn *sharedConn) { c.maybeSubscribe(shard, conn) }
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// Dial bootstraps a cluster client from any one member: it fetches the
// routing table from the seed server and connects per shard on demand.
// The bootstrap round-trip is bounded by the default timeout. A close
// error on the one-shot seed connection is ignored once the routing table
// is in hand — the routes are valid regardless.
func Dial(network, seedAddr string, opts ...ClientOption) (*Client, error) {
	seedOpts := []nameserver.ClientOption{nameserver.WithTimeout(defaultTimeout)}
	for _, o := range opts {
		// The one-shot seed connection honors a pinned codec too: a
		// gob-pinned fleet must not send the binary hello to its seed.
		if co, ok := o.(codecOption); ok {
			seedOpts = append(seedOpts, nameserver.WithCodec(nameserver.Codec(co)))
		}
	}
	seed, err := nameserver.DialTimeout(network, seedAddr, defaultTimeout, seedOpts...)
	if err != nil {
		return nil, fmt.Errorf("dial cluster seed: %w", err)
	}
	routes, err := seed.Routes()
	_ = seed.Close()
	if err != nil {
		return nil, fmt.Errorf("bootstrap routes from %s: %w", seedAddr, err)
	}
	return NewClient(network, routes, opts...), nil
}

// Routes returns the routing table the client operates with.
func (c *Client) Routes() *nameserver.RouteInfo { return c.routes.Clone() }

// Resolve resolves one compound name: from the cache if possible, else by
// one round-trip to the shard serving the name's prefix, failing over
// across the shard's replicas on transport errors. Concurrent resolutions
// of the same name share one round-trip (and its outcome, including a
// failure — but a failed flight is never reused by later calls).
func (c *Client) Resolve(p core.Path) (core.Entity, error) {
	// A non-canonical name fails here, not after three replica retries:
	// the server would reject it as firmly as the first replica did.
	if _, err := nameserver.CanonicalWirePath(p); err != nil {
		return core.Undefined, err
	}
	key := p.String()
	c.mu.Lock()
	if c.cache != nil {
		if entry, ok := c.cache.Get(key); ok {
			c.hits++
			c.mu.Unlock()
			return entry.entity, nil
		}
	}
	if f, ok := c.flights[key]; ok {
		// Someone is already fetching this name: share their answer.
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.e, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	shard := c.routes.ShardFor(p)
	e, rev, err := c.resolveAtShard(shard, p)

	c.mu.Lock()
	c.noteRevision(shard, rev, err)
	if err == nil && c.cache != nil {
		c.cache.Put(key, cacheEntry{entity: e, shard: shard})
	}
	delete(c.flights, key)
	c.mu.Unlock()
	f.e, f.err = e, err
	close(f.done)
	return e, err
}

// resolveAtShard runs one single-name round-trip against the shard, with
// bounded retry: each transport failure retires the poisoned shared
// connection, records it against the replica's breaker, backs off, and
// prefers a different replica on the next attempt.
func (c *Client) resolveAtShard(shard int, p core.Path) (core.Entity, uint64, error) {
	set := c.shards[shard]
	var lastErr error
	avoid := -1
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoffDelay(attempt))
		}
		conn, err := set.get(avoid)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return core.Undefined, 0, err
			}
			lastErr = fmt.Errorf("shard %d: %w", shard, err)
			continue
		}
		e, rev, err := conn.ResolveRev(p)
		if err == nil || isRemote(err) {
			set.ok(conn.replica)
			return e, rev, err
		}
		// Transport failure: the shared connection is poisoned, retire it
		// and charge the replica's breaker.
		set.retire(conn)
		c.noteFailover(attempt)
		avoid = conn.replica
		lastErr = fmt.Errorf("shard %d replica %d: %w", shard, conn.replica, err)
	}
	return core.Undefined, 0, lastErr
}

// batchAtShard is resolveAtShard for one wire batch.
func (c *Client) batchAtShard(shard int, keys []core.Path) ([]BatchResult, uint64, error) {
	set := c.shards[shard]
	var lastErr error
	avoid := -1
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoffDelay(attempt))
		}
		conn, err := set.get(avoid)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return nil, 0, err
			}
			lastErr = fmt.Errorf("shard %d: %w", shard, err)
			continue
		}
		results, rev, err := conn.ResolveBatchRev(keys)
		if err == nil {
			set.ok(conn.replica)
			return results, rev, nil
		}
		set.retire(conn)
		c.noteFailover(attempt)
		avoid = conn.replica
		lastErr = fmt.Errorf("shard %d replica %d: %w", shard, conn.replica, err)
	}
	return nil, 0, lastErr
}

// backoffDelay returns the wait before retry attempt (1-based): the base
// doubled per retry, capped, plus uniform jitter of the same magnitude so
// concurrent retries spread out.
func (c *Client) backoffDelay(attempt int) time.Duration {
	if c.backoff <= 0 {
		return 0
	}
	d := c.backoff << (attempt - 1)
	if d > maxBackoff {
		d = maxBackoff
	}
	return d + rand.N(d)
}

// noteFailover counts retried transport failures (attempt 0 counts too:
// it is the failure that triggers failing over).
func (c *Client) noteFailover(int) {
	c.mu.Lock()
	c.failovers++
	c.mu.Unlock()
}

// noteRevision applies the per-shard purge rule. Callers hold c.mu. The
// revision is trusted only from successful or remote-failed responses
// (rev 0 from a transport error must not purge anything).
func (c *Client) noteRevision(shard int, rev uint64, err error) {
	if err != nil && !isRemote(err) {
		return
	}
	if c.cache == nil || rev == c.revs[shard] {
		return
	}
	// The shard's subtree changed since its entries were fetched: purge
	// everything that shard vouched for before trusting anything new.
	if removed := c.cache.DeleteFunc(func(_ string, e cacheEntry) bool {
		return e.shard != shard
	}); removed > 0 {
		c.purges++
	}
	c.revs[shard] = rev
}

// BatchResult is one outcome of a batched cluster resolution.
type BatchResult = nameserver.BatchResult

// ResolveBatch resolves every path with at most one round-trip per shard:
// cache hits are answered locally, the rest are grouped by shard,
// deduplicated, and sent as wire batches in parallel, each with the same
// retry/failover policy as Resolve. Results are in argument order. A shard
// that stays unreachable yields per-item errors for its names only —
// healthy shards' results are always returned; the error is non-nil only
// when nothing at all was resolvable.
func (c *Client) ResolveBatch(paths []core.Path) ([]BatchResult, error) {
	out := make([]BatchResult, len(paths))
	if len(paths) == 0 {
		return out, nil
	}

	// Partition into per-shard work lists of unique keys.
	type shardWork struct {
		keys  []core.Path
		index map[string][]int // key -> positions in paths
	}
	work := make(map[int]*shardWork)
	answered := 0 // paths with a definitive outcome (cache, success, or remote error)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		for i := range out {
			out[i] = BatchResult{Entity: core.Undefined, Err: ErrClientClosed}
		}
		return out, ErrClientClosed
	}
	for i, p := range paths {
		if _, err := nameserver.CanonicalWirePath(p); err != nil {
			// A non-canonical name fails in its slot without touching the
			// cache or the wire; the rest of the batch proceeds.
			out[i] = BatchResult{Entity: core.Undefined, Err: err}
			answered++
			continue
		}
		key := p.String()
		if c.cache != nil {
			if entry, ok := c.cache.Get(key); ok {
				c.hits++
				out[i] = BatchResult{Entity: entry.entity}
				answered++
				continue
			}
		}
		c.misses++
		shard := c.routes.ShardFor(p)
		w := work[shard]
		if w == nil {
			w = &shardWork{index: make(map[string][]int)}
			work[shard] = w
		}
		if _, seen := w.index[key]; !seen {
			w.keys = append(w.keys, p)
		}
		w.index[key] = append(w.index[key], i)
	}
	// Register the shard goroutines with the join group while the closed
	// check above is still fresh: Close flips closed under this mutex
	// before waiting, so it either sees these Adds or we see closed.
	c.wg.Add(len(work))
	c.mu.Unlock()
	if len(work) == 0 {
		return out, nil
	}

	// One concurrent wire batch per shard.
	type shardAnswer struct {
		shard   int
		results []BatchResult
		rev     uint64
		err     error
	}
	answers := make(chan shardAnswer, len(work))
	runShard := func(shard int, w *shardWork) {
		if batchJoinHook != nil {
			defer batchJoinHook()
		}
		results, rev, err := c.batchAtShard(shard, w.keys)
		answers <- shardAnswer{shard: shard, results: results, rev: rev, err: err}
	}
	for shard, w := range work {
		if len(work) == 1 {
			// One shard: run on the caller's goroutine. A spawn here buys no
			// concurrency and charges a fresh stack (grown through the codec's
			// reflection) to every single-shard batch.
			func() {
				defer c.wg.Done()
				runShard(shard, w)
			}()
			continue
		}
		go func(shard int, w *shardWork) {
			defer c.wg.Done()
			runShard(shard, w)
		}(shard, w)
	}

	var firstErr error
	for range work {
		a := <-answers
		w := work[a.shard]
		if a.err != nil {
			// The shard stayed unreachable through every retry: its names
			// fail individually; other shards' answers stand.
			if firstErr == nil {
				firstErr = a.err
			}
			for _, positions := range w.index {
				for _, i := range positions {
					out[i] = BatchResult{Entity: core.Undefined, Err: a.err}
				}
			}
			continue
		}
		c.mu.Lock()
		c.noteRevision(a.shard, a.rev, nil)
		for k, res := range a.results {
			key := w.keys[k].String()
			if res.Err == nil && c.cache != nil {
				c.cache.Put(key, cacheEntry{entity: res.Entity, shard: a.shard})
			}
			for _, i := range w.index[key] {
				out[i] = res
				answered++
			}
		}
		c.mu.Unlock()
	}
	if firstErr != nil && answered == 0 {
		return out, firstErr
	}
	return out, nil
}

// Stats returns cache hits and misses so far (coalesced lookups count as
// neither; see Coalesced).
func (c *Client) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Coalesced returns how many lookups were answered by piggybacking on a
// concurrent identical request instead of their own round-trip.
func (c *Client) Coalesced() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Purges returns how many times a shard revision advance purged that
// shard's cache entries.
func (c *Client) Purges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.purges
}

// Failovers returns how many transport failures triggered a retry or
// replica failover.
func (c *Client) Failovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Close closes every shared connection, fails requests that race or
// follow it with ErrClientClosed, and waits for in-flight batch
// goroutines to finish — after Close returns, the client owns no
// goroutines.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, p := range c.shards {
		p.close()
	}
	c.wg.Wait()
}

// isRemote reports whether err is a definitive server-side answer (the
// name does not resolve) rather than a transport failure.
func isRemote(err error) bool {
	var re *nameserver.RemoteError
	return errors.As(err, &re)
}

// breaker tracks one replica's consecutive transport failures. Once they
// reach the set's threshold the replica is skipped until the cooldown
// passes; the next probe then either resets it or re-opens it.
type breaker struct {
	failures  int
	openUntil time.Time
}

// allows reports whether the replica may be dialed.
func (b *breaker) allows(now time.Time, threshold int) bool {
	return threshold <= 0 || b.failures < threshold || !now.Before(b.openUntil)
}

// sharedConn is a multiplexed wire connection tagged with the replica it
// reaches. Any number of shard requests use it concurrently; the wire
// client pipelines them.
type sharedConn struct {
	*nameserver.Client
	replica int
}

// replicaSet maintains at most one shared connection per replica of one
// shard. Concurrent requests multiplex over the same connection instead
// of checking out exclusive ones; a connection leaves the set only when a
// transport failure retires it (retire) or the set closes.
type replicaSet struct {
	network          string
	addrs            []string // replica addresses, primary first
	timeout          time.Duration
	codec            nameserver.Codec // zero value negotiates binary
	breakerThreshold int
	breakerCooldown  time.Duration
	// onDial, when non-nil, runs once for each connection installed as the
	// shared one, outside the set's mutex (it may perform wire I/O — the
	// push-invalidation subscription rides it).
	onDial func(*sharedConn)

	mu       sync.Mutex
	conns    []*sharedConn // per-replica shared connection, nil until dialed
	closed   bool
	breakers []breaker
}

// get returns the shared connection of a healthy replica, dialing one if
// none is up: the primary first, then the rest, skipping replicas whose
// breaker is open and trying the replica the caller just saw fail (avoid,
// -1 for none) last. It fails once the set is closed — including a dial
// that raced close, so no connection leaks past Close.
func (p *replicaSet) get(avoid int) (*sharedConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	now := time.Now()
	candidates := make([]int, 0, len(p.addrs))
	for r := range p.addrs {
		if r != avoid && p.breakers[r].allows(now, p.breakerThreshold) {
			candidates = append(candidates, r)
		}
	}
	if avoid >= 0 && avoid < len(p.addrs) && p.breakers[avoid].allows(now, p.breakerThreshold) {
		candidates = append(candidates, avoid)
	}
	// Reuse before dialing: the first candidate already up wins.
	for _, r := range candidates {
		if conn := p.conns[r]; conn != nil {
			p.mu.Unlock()
			return conn, nil
		}
	}
	p.mu.Unlock()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("all %d replicas cooling down after repeated failures", len(p.addrs))
	}
	var lastErr error
	for _, r := range candidates {
		conn, err := p.dialReplica(r)
		if err != nil {
			p.bad(r)
			lastErr = err
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil, ErrClientClosed
		}
		if winner := p.conns[r]; winner != nil {
			// Lost a dial race; the winner's connection is the shared one.
			p.mu.Unlock()
			_ = conn.Close()
			return winner, nil
		}
		p.conns[r] = conn
		p.mu.Unlock()
		if p.onDial != nil {
			p.onDial(conn)
		}
		return conn, nil
	}
	return nil, lastErr
}

// getReplica returns the shared connection to one specific replica,
// dialing it if needed. Unlike get it neither fails over nor consults the
// breaker — the write path uses it to reach the shard's primary and only
// the primary, failing cleanly when the primary is unreachable.
func (p *replicaSet) getReplica(r int) (*sharedConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClientClosed
	}
	if conn := p.conns[r]; conn != nil {
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()
	conn, err := p.dialReplica(r)
	if err != nil {
		p.bad(r)
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClientClosed
	}
	if winner := p.conns[r]; winner != nil {
		p.mu.Unlock()
		_ = conn.Close()
		return winner, nil
	}
	p.conns[r] = conn
	p.mu.Unlock()
	if p.onDial != nil {
		p.onDial(conn)
	}
	return conn, nil
}

// dialReplica dials one replica under the set's timeout, outside any lock
// (dialing is wire I/O; lockheld).
func (p *replicaSet) dialReplica(r int) (*sharedConn, error) {
	var nc *nameserver.Client
	var err error
	if p.timeout > 0 {
		nc, err = nameserver.DialTimeout(p.network, p.addrs[r], p.timeout,
			nameserver.WithTimeout(p.timeout), nameserver.WithCodec(p.codec))
	} else {
		nc, err = nameserver.Dial(p.network, p.addrs[r], nameserver.WithCodec(p.codec))
	}
	if err != nil {
		return nil, err
	}
	return &sharedConn{Client: nc, replica: r}, nil
}

// ok resets a replica's breaker after a successful round-trip.
func (p *replicaSet) ok(replica int) {
	p.mu.Lock()
	p.breakers[replica] = breaker{}
	p.mu.Unlock()
}

// bad charges one transport failure to a replica's breaker, opening it at
// the threshold.
func (p *replicaSet) bad(replica int) {
	p.mu.Lock()
	b := &p.breakers[replica]
	b.failures++
	if p.breakerThreshold > 0 && b.failures >= p.breakerThreshold {
		b.openUntil = time.Now().Add(p.breakerCooldown)
	}
	p.mu.Unlock()
}

// retire charges a transport failure against conn's replica and drops
// conn from the set if it is still the shared one (a concurrent request
// may already have replaced it). The poisoned connection is closed either
// way; concurrent calls still on it fail fast and retry on a fresh one.
func (p *replicaSet) retire(conn *sharedConn) {
	p.mu.Lock()
	b := &p.breakers[conn.replica]
	b.failures++
	if p.breakerThreshold > 0 && b.failures >= p.breakerThreshold {
		b.openUntil = time.Now().Add(p.breakerCooldown)
	}
	if p.conns[conn.replica] == conn {
		p.conns[conn.replica] = nil
	}
	p.mu.Unlock()
	_ = conn.Close()
}

// close closes every shared connection; in-flight calls on them fail, and
// get fails from now on.
func (p *replicaSet) close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = make([]*sharedConn, len(p.addrs))
	p.closed = true
	p.mu.Unlock()
	for _, conn := range conns {
		if conn != nil {
			_ = conn.Close()
		}
	}
}
