package cluster

import (
	"errors"
	"fmt"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/lru"
	"namecoherence/internal/nameserver"
)

// Client fronts a sharded cluster: it routes every name to the shard
// serving its prefix, pools connections per shard, answers repeats from a
// revision-tracked LRU cache, coalesces concurrent identical lookups, and
// resolves batches with one round-trip per shard.
type Client struct {
	network string
	routes  *nameserver.RouteInfo
	pools   []*connPool

	mu        sync.Mutex
	cache     *lru.Cache[string, cacheEntry]
	revs      []uint64 // per-shard binding revision last seen
	flights   map[string]*flight
	hits      int
	misses    int
	coalesced int
	purges    int
}

// cacheEntry tags each cached binding with its shard, so a revision
// advance purges exactly the entries that shard vouched for.
type cacheEntry struct {
	entity core.Entity
	shard  int
}

// flight is one in-progress resolution that concurrent identical lookups
// wait on instead of issuing their own round-trips.
type flight struct {
	done chan struct{}
	e    core.Entity
	err  error
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type lruOption int

func (o lruOption) apply(c *Client) {
	c.cache = lru.New[string, cacheEntry](int(o))
}

// WithLRU enables a revision-tracked LRU cache of at most n entries.
// Every response carries its shard's binding revision; when a shard's
// revision advances, that shard's entries are purged before anything new
// is trusted — the coherent-cache staleness bound, per shard.
func WithLRU(n int) ClientOption {
	return lruOption(n)
}

type poolOption int

func (o poolOption) apply(c *Client) {
	for _, p := range c.pools {
		p.max = int(o)
	}
}

// WithPoolSize caps the idle connections kept per shard (default 2).
// Concurrent requests beyond the cap still run — they dial and discard.
func WithPoolSize(n int) ClientOption {
	return poolOption(n)
}

// defaultPoolSize is the idle-connection cap per shard.
const defaultPoolSize = 2

// NewClient returns a client over an already-known routing table.
func NewClient(network string, routes *nameserver.RouteInfo, opts ...ClientOption) *Client {
	c := &Client{
		network: network,
		routes:  routes.Clone(),
		pools:   make([]*connPool, len(routes.Addrs)),
		revs:    make([]uint64, len(routes.Addrs)),
		flights: make(map[string]*flight),
	}
	for i, addr := range routes.Addrs {
		c.pools[i] = &connPool{network: network, addr: addr, max: defaultPoolSize}
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// Dial bootstraps a cluster client from any one member: it fetches the
// routing table from the seed server and connects per shard on demand.
func Dial(network, seedAddr string, opts ...ClientOption) (*Client, error) {
	seed, err := nameserver.Dial(network, seedAddr)
	if err != nil {
		return nil, fmt.Errorf("dial cluster seed: %w", err)
	}
	routes, err := seed.Routes()
	closeErr := seed.Close()
	if err != nil {
		return nil, fmt.Errorf("bootstrap routes from %s: %w", seedAddr, err)
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return NewClient(network, routes, opts...), nil
}

// Routes returns the routing table the client operates with.
func (c *Client) Routes() *nameserver.RouteInfo { return c.routes.Clone() }

// Resolve resolves one compound name: from the cache if possible, else by
// one round-trip to the shard serving the name's prefix. Concurrent
// resolutions of the same name share one round-trip.
func (c *Client) Resolve(p core.Path) (core.Entity, error) {
	key := p.String()
	c.mu.Lock()
	if c.cache != nil {
		if entry, ok := c.cache.Get(key); ok {
			c.hits++
			c.mu.Unlock()
			return entry.entity, nil
		}
	}
	if f, ok := c.flights[key]; ok {
		// Someone is already fetching this name: share their answer.
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.e, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	shard := c.routes.ShardFor(p)
	e, rev, err := c.resolveAtShard(shard, p)

	c.mu.Lock()
	c.noteRevision(shard, rev, err)
	if err == nil && c.cache != nil {
		c.cache.Put(key, cacheEntry{entity: e, shard: shard})
	}
	delete(c.flights, key)
	c.mu.Unlock()
	f.e, f.err = e, err
	close(f.done)
	return e, err
}

// resolveAtShard runs one single-name round-trip against a pooled
// connection of the shard.
func (c *Client) resolveAtShard(shard int, p core.Path) (core.Entity, uint64, error) {
	conn, err := c.pools[shard].get()
	if err != nil {
		return core.Undefined, 0, err
	}
	e, rev, err := conn.ResolveRev(p)
	if err != nil && !isRemote(err) {
		// Transport failure: the connection is poisoned, drop it.
		_ = conn.Close()
		return core.Undefined, 0, err
	}
	c.pools[shard].put(conn)
	return e, rev, err
}

// noteRevision applies the per-shard purge rule. Callers hold c.mu. The
// revision is trusted only from successful or remote-failed responses
// (rev 0 from a transport error must not purge anything).
func (c *Client) noteRevision(shard int, rev uint64, err error) {
	if err != nil && !isRemote(err) {
		return
	}
	if c.cache == nil || rev == c.revs[shard] {
		return
	}
	// The shard's subtree changed since its entries were fetched: purge
	// everything that shard vouched for before trusting anything new.
	if removed := c.cache.DeleteFunc(func(_ string, e cacheEntry) bool {
		return e.shard != shard
	}); removed > 0 {
		c.purges++
	}
	c.revs[shard] = rev
}

// BatchResult is one outcome of a batched cluster resolution.
type BatchResult = nameserver.BatchResult

// ResolveBatch resolves every path with at most one round-trip per shard:
// cache hits are answered locally, the rest are grouped by shard,
// deduplicated, and sent as wire batches in parallel. Results are in
// argument order; the returned error reports a transport failure.
func (c *Client) ResolveBatch(paths []core.Path) ([]BatchResult, error) {
	out := make([]BatchResult, len(paths))
	if len(paths) == 0 {
		return out, nil
	}

	// Partition into per-shard work lists of unique keys.
	type shardWork struct {
		keys  []core.Path
		index map[string][]int // key -> positions in paths
	}
	work := make(map[int]*shardWork)
	c.mu.Lock()
	for i, p := range paths {
		key := p.String()
		if c.cache != nil {
			if entry, ok := c.cache.Get(key); ok {
				c.hits++
				out[i] = BatchResult{Entity: entry.entity}
				continue
			}
		}
		c.misses++
		shard := c.routes.ShardFor(p)
		w := work[shard]
		if w == nil {
			w = &shardWork{index: make(map[string][]int)}
			work[shard] = w
		}
		if _, seen := w.index[key]; !seen {
			w.keys = append(w.keys, p)
		}
		w.index[key] = append(w.index[key], i)
	}
	c.mu.Unlock()
	if len(work) == 0 {
		return out, nil
	}

	// One concurrent wire batch per shard.
	type shardAnswer struct {
		shard   int
		results []BatchResult
		rev     uint64
		err     error
	}
	answers := make(chan shardAnswer, len(work))
	for shard, w := range work {
		go func(shard int, w *shardWork) {
			conn, err := c.pools[shard].get()
			if err != nil {
				answers <- shardAnswer{shard: shard, err: err}
				return
			}
			results, rev, err := conn.ResolveBatchRev(w.keys)
			if err != nil {
				_ = conn.Close()
				answers <- shardAnswer{shard: shard, err: err}
				return
			}
			c.pools[shard].put(conn)
			answers <- shardAnswer{shard: shard, results: results, rev: rev}
		}(shard, w)
	}

	var firstErr error
	for range work {
		a := <-answers
		if a.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", a.shard, a.err)
			}
			continue
		}
		w := work[a.shard]
		c.mu.Lock()
		c.noteRevision(a.shard, a.rev, nil)
		for k, res := range a.results {
			key := w.keys[k].String()
			if res.Err == nil && c.cache != nil {
				c.cache.Put(key, cacheEntry{entity: res.Entity, shard: a.shard})
			}
			for _, i := range w.index[key] {
				out[i] = res
			}
		}
		c.mu.Unlock()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Stats returns cache hits and misses so far (coalesced lookups count as
// neither; see Coalesced).
func (c *Client) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Coalesced returns how many lookups were answered by piggybacking on a
// concurrent identical request instead of their own round-trip.
func (c *Client) Coalesced() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Purges returns how many times a shard revision advance purged that
// shard's cache entries.
func (c *Client) Purges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.purges
}

// Close closes every pooled connection.
func (c *Client) Close() {
	for _, p := range c.pools {
		p.close()
	}
}

// isRemote reports whether err is a definitive server-side answer (the
// name does not resolve) rather than a transport failure.
func isRemote(err error) bool {
	var re *nameserver.RemoteError
	return errors.As(err, &re)
}

// connPool keeps idle connections to one shard. Concurrent requests each
// get their own connection, so lookups to one shard can overlap; at most
// max idle connections are retained.
type connPool struct {
	network string
	addr    string
	max     int

	mu     sync.Mutex
	free   []*nameserver.Client
	closed bool
}

// get pops an idle connection or dials a new one.
func (p *connPool) get() (*nameserver.Client, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		conn := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()
	return nameserver.Dial(p.network, p.addr)
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or closed).
func (p *connPool) put(conn *nameserver.Client) {
	p.mu.Lock()
	if p.closed || len(p.free) >= p.max {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	p.free = append(p.free, conn)
	p.mu.Unlock()
}

// close closes every idle connection; in-flight connections are closed on
// put.
func (p *connPool) close() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.closed = true
	p.mu.Unlock()
	for _, conn := range free {
		_ = conn.Close()
	}
}
