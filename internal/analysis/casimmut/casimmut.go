// Package casimmut guards the content-addressed store's two foundational
// promises. Blobs are immutable: a caller who hands a byte slice to
// Store.Put or Backend.Put gives up the right to write into it, because
// backends are free to retain the slice (Mem does) and a later mutation
// would silently corrupt a blob whose hash no longer matches its bytes —
// Get would then report ErrCorrupt for data that was never damaged on
// disk. And Puts are durable: a file-writing Backend.Put that returns
// success has fsynced what it wrote, because snapstore commits manifest
// entries naming those blobs the moment Put returns nil, and a crash
// after an unsynced success would leave the manifest pointing at blobs
// the filesystem never persisted.
//
// The first check is caller-side and lexical: inside one function, any
// write into a []byte value (index assignment, copy into it, append to
// it) after that value was passed to a cas Put is flagged, until the
// variable is rebound to a fresh slice. The second is implementor-side:
// inside cas packages, a method named Put that writes files must call
// File.Sync, and must not write again after its final Sync.
package casimmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the durability check to packages whose import path
// contains one of these substrings. The immutability check is global:
// blob buffers are handed to Put from anywhere.
var Scope = []string{"cas"}

// Analyzer is the casimmut analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "casimmut",
	Doc:  "forbids mutating a blob after cas Put returns and unsynced file writes in Backend.Put",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrozenBlobs(pass, fd)
			if fd.Recv != nil && fd.Name.Name == "Put" && inScope(pass.Pkg.Path()) {
				checkPutDurability(pass, fd)
			}
		}
	}
	return nil, nil
}

// event is one lexically ordered fact about a blob variable inside a
// function: it was handed to Put (frozen), written into (mutation), or
// rebound to a fresh slice (thawed).
type event struct {
	pos  token.Pos
	kind int // evPut, evMutate, evRebind
	obj  types.Object
	verb string // for evMutate: how the blob is written
}

const (
	evPut = iota
	evMutate
	evRebind
)

// checkFrozenBlobs enforces the caller-side immutability promise within
// one function body: collect the Put/mutate/rebind events in source
// order, then replay them, reporting every write into a still-frozen
// blob. Object identity (not the variable's name) is tracked, so a
// shadowing := starts a fresh, writable slice.
func checkFrozenBlobs(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			events = append(events, callEvents(pass, n)...)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := baseVar(pass, indexBase(lhs)); obj != nil && lhs != indexBase(lhs) {
					events = append(events, event{pos: lhs.Pos(), kind: evMutate, obj: obj, verb: "index write into"})
				} else if obj := baseVar(pass, lhs); obj != nil {
					// Whole-variable rebinding takes effect after the
					// statement, so an append(x, ...) on the RHS is
					// still judged against the frozen x.
					events = append(events, event{pos: n.End(), kind: evRebind, obj: obj})
				}
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	frozen := make(map[types.Object]bool)
	for _, e := range events {
		switch e.kind {
		case evPut:
			frozen[e.obj] = true
		case evRebind:
			delete(frozen, e.obj)
		case evMutate:
			if frozen[e.obj] {
				pass.Reportf(e.pos,
					"%s blob %s after Put returned; stored bytes must stay immutable (rebind the variable to a fresh slice instead)",
					e.verb, e.obj.Name())
			}
		}
	}
}

// callEvents extracts the events one call contributes: freezing every
// []byte identifier handed to a cas Put, or mutating the destination of
// a builtin copy/append.
func callEvents(pass *analysis.Pass, call *ast.CallExpr) []event {
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil &&
		fn.Name() == "Put" && fn.Pkg() != nil && inScope(fn.Pkg().Path()) {
		var evs []event
		for _, arg := range call.Args {
			if obj := baseVar(pass, arg); obj != nil {
				// Frozen from the moment the call returns.
				evs = append(evs, event{pos: call.End(), kind: evPut, obj: obj})
			}
		}
		return evs
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
		return nil
	}
	var verb string
	switch id.Name {
	case "copy":
		verb = "copy into"
	case "append":
		verb = "append to"
	default:
		return nil
	}
	if obj := baseVar(pass, call.Args[0]); obj != nil {
		return []event{{pos: call.Args[0].Pos(), kind: evMutate, obj: obj, verb: verb}}
	}
	return nil
}

// indexBase strips index and slice expressions: data[i] and data[i:j]
// both write into (or alias) data's backing array.
func indexBase(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// baseVar resolves e to the variable it names, if e is a plain
// identifier of byte-slice type.
func baseVar(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	sl, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ifObj(ok && b.Kind() == types.Byte, obj)
}

func ifObj(ok bool, obj types.Object) types.Object {
	if !ok {
		return nil
	}
	return obj
}

// checkPutDurability enforces the implementor-side durability promise:
// a Put method that writes files must fsync what it wrote. Lexically, a
// body with file writes needs at least one File.Sync, and nothing may
// be written after the final Sync — those bytes would be unsynced when
// Put reports success.
func checkPutDurability(pass *analysis.Pass, fd *ast.FuncDecl) {
	var writes, syncs []token.Pos
	firstWriteName := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "WriteFile":
			writes = append(writes, call.Pos())
			if firstWriteName == "" {
				firstWriteName = "os.WriteFile"
			}
		case sig != nil && sig.Recv() != nil && analysis.IsNamedType(sig.Recv().Type(), "os", "File"):
			switch fn.Name() {
			case "Write", "WriteString", "WriteAt":
				writes = append(writes, call.Pos())
				if firstWriteName == "" {
					firstWriteName = "File." + fn.Name()
				}
			case "Sync":
				syncs = append(syncs, call.Pos())
			}
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	if len(syncs) == 0 {
		pass.Reportf(writes[0],
			"file-writing Put must reach fsync before success: %s is not durable when Put returns nil", firstWriteName)
		return
	}
	lastWrite, lastSync := writes[len(writes)-1], syncs[len(syncs)-1]
	if lastWrite > lastSync {
		pass.Reportf(lastWrite,
			"write after the final fsync in Put: these bytes are not durable when Put returns nil")
	}
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}
