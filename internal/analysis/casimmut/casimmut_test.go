package casimmut_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/casimmut"
)

func TestCasImmut(t *testing.T) {
	analysistest.Run(t, casimmut.Analyzer, "cas")
}
