// Package cas exercises casimmut's durability check: a file-writing Put
// must fsync before reporting success. (The directory is named cas so
// the testdata package path lands in the analyzer's scope.)
package cas

import "os"

// Hash stands in for the real blob hash.
type Hash [32]byte

// mem retains the slice it is given — the reason callers must not write
// into a blob after Put returns. No file I/O, so no durability finding.
type mem struct{ m map[Hash][]byte }

func (s *mem) Put(h Hash, data []byte) error {
	s.m[h] = data
	return nil
}

// unsynced writes the blob with os.WriteFile, which never fsyncs: the
// blob can vanish in a crash after Put reported success.
type unsynced struct{ dir string }

func (b *unsynced) Put(h Hash, data []byte) error {
	return os.WriteFile(b.dir, data, 0o666) // want `file-writing Put must reach fsync before success`
}

// synced is the canonical durable shape: write, fsync, then succeed.
type synced struct{ dir string }

func (b *synced) Put(h Hash, data []byte) error {
	f, err := os.Create(b.dir)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// lateWrite fsyncs, then writes more: the tail bytes are not durable
// when Put returns nil.
type lateWrite struct{ dir string }

func (b *lateWrite) Put(h Hash, data []byte) error {
	f, err := os.Create(b.dir)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.WriteString("trailer"); err != nil { // want `write after the final fsync in Put`
		return err
	}
	return f.Close()
}

// get is not a Put: unsynced file writes elsewhere are other analyzers'
// business.
func (b *synced) Touch(data []byte) error {
	return os.WriteFile(b.dir, data, 0o666)
}
