// Caller-side fixtures: a blob handed to Put is frozen until the
// variable is rebound to a fresh slice.
package cas

func badIndexWrite(s *mem, data []byte) {
	_ = s.Put(Hash{}, data)
	data[0] = 'x' // want `index write into blob data after Put returned`
}

func badCopy(s *mem, data, other []byte) {
	_ = s.Put(Hash{}, data)
	copy(data, other) // want `copy into blob data after Put returned`
}

func badAppend(s *mem, data []byte) []byte {
	_ = s.Put(Hash{}, data)
	data = append(data, 'x') // want `append to blob data after Put returned`
	return data
}

func badSliceWrite(s *mem, data []byte) {
	_ = s.Put(Hash{}, data)
	data[1:3][0] = 'x' // want `index write into blob data after Put returned`
}

// okWriteBefore: the freeze starts when Put returns, not before.
func okWriteBefore(s *mem, data []byte) {
	data[0] = 'x'
	_ = s.Put(Hash{}, data)
}

// okRebind: a whole-variable rebinding yields a fresh, writable slice.
func okRebind(s *mem, data []byte) {
	_ = s.Put(Hash{}, data)
	data = make([]byte, 8)
	data[0] = 'x'
}

// okShadow: tracking is by object, not by name — the inner data is a
// different variable.
func okShadow(s *mem, data []byte) {
	_ = s.Put(Hash{}, data)
	{
		data := make([]byte, 8)
		data[0] = 'x'
	}
}

// okRead: reading a frozen blob is fine; only writes are forbidden.
func okRead(s *mem, data []byte) byte {
	_ = s.Put(Hash{}, data)
	return data[0]
}

// okOtherVar: freezing data says nothing about other slices.
func okOtherVar(s *mem, data, scratch []byte) {
	_ = s.Put(Hash{}, data)
	scratch[0] = 'x'
	copy(scratch, data)
}

// okUnrelatedPut: a Put method declared outside cas packages does not
// freeze its arguments (exercised in the analyzer's unit tests via the
// package-path scope; here every Put is in scope).
func okAppendFresh(s *mem, data []byte) []byte {
	out := append([]byte(nil), data...)
	_ = s.Put(Hash{}, data)
	return append(out, 'x')
}
