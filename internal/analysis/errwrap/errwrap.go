// Package errwrap keeps the error chain intact across package boundaries.
// The cluster's retry, failover, and breaker logic dispatches on
// errors.Is/errors.As (ErrClientClosed, RemoteError, io.EOF); both break
// silently if a sentinel is compared with == or a cause is formatted with
// %v instead of wrapped with %w. Two checks:
//
//  1. comparing error values with == or != (except against nil) — use
//     errors.Is, which sees through fmt.Errorf("%w", …) wrapping;
//  2. fmt.Errorf formatting an error-typed argument with %v, %s, or %q —
//     use %w so callers' errors.Is/errors.As keep working.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"

	"namecoherence/internal/analysis"
)

// Analyzer is the errwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "requires errors.Is over == for sentinels and %w over %v when wrapping errors",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, node)
			case *ast.CallExpr:
				checkErrorf(pass, node)
			}
			return true
		})
	}
	return nil, nil
}

// checkCompare flags == and != between error values (nil excepted).
func checkCompare(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	x, y := pass.TypesInfo.Types[e.X], pass.TypesInfo.Types[e.Y]
	if x.IsNil() || y.IsNil() {
		return
	}
	if analysis.ErrorType(x.Type) || analysis.ErrorType(y.Type) {
		pass.Reportf(e.OpPos,
			"error compared with %s; use errors.Is so wrapped sentinels still match", e.Op)
	}
}

// checkErrorf flags fmt.Errorf arguments of error type formatted with a
// display verb instead of %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // indexed or otherwise exotic format; out of scope
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		t := pass.TypesInfo.Types[args[i]].Type
		if t != nil && analysis.ErrorType(t) && !isNilInterface(pass, args[i]) {
			pass.Reportf(args[i].Pos(),
				"error formatted with %%%c; use %%w so errors.Is sees the cause", verb)
		}
	}
}

func isNilInterface(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].IsNil()
}

// parseVerbs returns the verb letter consuming each successive argument of
// a Printf-style format. Width/precision stars consume an argument slot
// (reported as verb '*'); explicit argument indexes make the mapping
// positional-unsafe, so parsing reports !ok and the call is skipped.
func parseVerbs(format string) (verbs []rune, ok bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		for i < len(runes) {
			c := runes[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs, true
}
