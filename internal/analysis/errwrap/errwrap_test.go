package errwrap_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, errwrap.Analyzer, "a")
}
