// Package a exercises errwrap: sentinels are matched with errors.Is, and
// causes are wrapped with %w, never displayed away with %v.
package a

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed is a package sentinel like cluster.ErrClientClosed.
var ErrClosed = errors.New("closed")

func badCompare(err error) bool {
	return err == ErrClosed // want `error compared with ==; use errors\.Is`
}

func badCompareNeq(err error) bool {
	if err != io.EOF { // want `error compared with !=; use errors\.Is`
		return false
	}
	return true
}

func badWrapV(err error) error {
	return fmt.Errorf("resolve failed: %v", err) // want `error formatted with %v; use %w`
}

func badWrapMixed(err error) error {
	return fmt.Errorf("decode: %w: %v", ErrClosed, err) // want `error formatted with %v; use %w`
}

func badWrapS(err error) error {
	return fmt.Errorf("shard %d: %s", 3, err) // want `error formatted with %s; use %w`
}

func okIs(err error) bool {
	return errors.Is(err, ErrClosed) || err == nil || nil != err
}

func okWrap(err error) error {
	return fmt.Errorf("resolve failed: %w", err)
}

func okDoubleWrap(err error) error {
	return fmt.Errorf("decode: %w: %w", ErrClosed, err)
}

func okNonError(name string, n int) error {
	return fmt.Errorf("entity %v of %q: %d", name, name, n)
}

func okErrorMethod(err error) string {
	return fmt.Sprintf("%v", err) // Sprintf displays; only Errorf wraps
}
