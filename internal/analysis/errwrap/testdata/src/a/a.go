// Package a exercises errwrap: sentinels are matched with errors.Is, and
// causes are wrapped with %w, never displayed away with %v.
package a

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed is a package sentinel like cluster.ErrClientClosed.
var ErrClosed = errors.New("closed")

func badCompare(err error) bool {
	return err == ErrClosed // want `error compared with ==; use errors\.Is`
}

func badCompareNeq(err error) bool {
	if err != io.EOF { // want `error compared with !=; use errors\.Is`
		return false
	}
	return true
}

func badWrapV(err error) error {
	return fmt.Errorf("resolve failed: %v", err) // want `error formatted with %v; use %w`
}

func badWrapMixed(err error) error {
	return fmt.Errorf("decode: %w: %v", ErrClosed, err) // want `error formatted with %v; use %w`
}

func badWrapS(err error) error {
	return fmt.Errorf("shard %d: %s", 3, err) // want `error formatted with %s; use %w`
}

func okIs(err error) bool {
	return errors.Is(err, ErrClosed) || err == nil || nil != err
}

func okWrap(err error) error {
	return fmt.Errorf("resolve failed: %w", err)
}

func okDoubleWrap(err error) error {
	return fmt.Errorf("decode: %w: %w", ErrClosed, err)
}

func okNonError(name string, n int) error {
	return fmt.Errorf("entity %v of %q: %d", name, name, n)
}

func okErrorMethod(err error) string {
	return fmt.Sprintf("%v", err) // Sprintf displays; only Errorf wraps
}

// Multi-verb formats: the verb-to-argument mapping must stay aligned
// through literal percents, star widths, and mixed argument types.

func badMultiVerbFirst(errA, errB error) error {
	return fmt.Errorf("%v then %w", errA, errB) // want `error formatted with %v; use %w`
}

func badStarWidth(err error) error {
	// The * consumes the width argument (7); the %s still lands on err.
	return fmt.Errorf("pad %*d then %s", 7, 42, err) // want `error formatted with %s; use %w`
}

func badDoublePercent(err error) error {
	// %% consumes no argument, so the %s maps to err.
	return fmt.Errorf("100%% done: %s", err) // want `error formatted with %s; use %w`
}

func badManyArgs(err error) error {
	return fmt.Errorf("shard %d of %d at %q: %v", 1, 3, "addr", err) // want `error formatted with %v; use %w`
}

func okIndexedSkipped(err error) error {
	// Explicit argument indexes break positional mapping; the call is
	// out of scope rather than mis-reported.
	return fmt.Errorf("%[1]s", err)
}

func okMultiVerbMix(err error) error {
	return fmt.Errorf("try %d of %d: %+v gave %w", 1, 3, struct{ N int }{1}, err)
}

func okStarWidthNonError(err error) error {
	_ = err
	return fmt.Errorf("pad %*d", 7, 42)
}
