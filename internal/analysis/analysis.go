// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface this repository needs. The
// container image carries no module proxy, so the framework is built on the
// standard library alone: go/ast and go/types for inspection, go list
// -export for loading, and the stdlib gc importer for dependency type
// information. Analyzers written against it enforce the repo's coherence,
// locking, and deadline invariants mechanically (see cmd/namingvet).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc states the invariant the analyzer guards.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) (any, error)
}

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts holds this package's interprocedural summaries (merged with
	// the summaries imported from its dependencies). Computed once per
	// package by the driver and shared by every analyzer.
	Facts *PackageFacts

	// Report delivers one diagnostic. Diagnostics on _test.go files and
	// diagnostics suppressed by a namingvet:ignore directive are dropped
	// by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic resolved to a position, tagged with its analyzer.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Posn.Filename, f.Posn.Line, f.Posn.Column, f.Analyzer, f.Message)
}

// ignoreIndex records which analyzers are suppressed where, from
//
//	//namingvet:ignore name1,name2 -- reason
//
// directives (suppressing the directive's line and the following line, so
// the comment may sit above or beside the flagged expression) and
//
//	//namingvet:file-ignore name -- reason
//
// directives (suppressing a whole file).
type ignoreIndex struct {
	files map[string]map[string]bool // filename -> analyzer -> ignored
	lines map[string]map[int]map[string]bool
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{
		files: make(map[string]map[string]bool),
		lines: make(map[string]map[int]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, fileWide := strings.CutPrefix(c.Text, "//namingvet:file-ignore ")
				if !fileWide {
					var ok bool
					text, ok = strings.CutPrefix(c.Text, "//namingvet:ignore ")
					if !ok {
						continue
					}
				}
				names, _, _ := strings.Cut(text, "--")
				posn := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if fileWide {
						if idx.files[posn.Filename] == nil {
							idx.files[posn.Filename] = make(map[string]bool)
						}
						idx.files[posn.Filename][name] = true
						continue
					}
					byLine := idx.lines[posn.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						idx.lines[posn.Filename] = byLine
					}
					for _, line := range []int{posn.Line, posn.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = make(map[string]bool)
						}
						byLine[line][name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx *ignoreIndex) ignored(analyzer string, posn token.Position) bool {
	if idx.files[posn.Filename][analyzer] {
		return true
	}
	return idx.lines[posn.Filename][posn.Line][analyzer]
}

// RunAnalyzers runs every analyzer over one type-checked package and
// returns the surviving findings plus the package's merged summaries
// (imported ∪ own) for feeding into dependent packages. Findings on
// _test.go files are dropped: tests legitimately compare sentinel
// identity, hold locks over pipe I/O, and read wall clocks, and the
// invariants guard production paths.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, imported Summaries) ([]Finding, Summaries, error) {
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	facts := ComputeFacts(pkg, imported)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.Report = func(d Diagnostic) {
			posn := pkg.Fset.Position(d.Pos)
			if strings.HasSuffix(posn.Filename, "_test.go") {
				return
			}
			if idx.ignored(a.Name, posn) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Posn: posn, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	return findings, facts.All, nil
}

// WalkWithStack walks every file, calling fn with each node and the stack
// of its ancestors (outermost first, not including the node itself).
func WalkWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// ErrorType reports whether t implements the error interface.
func ErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// CalleeFunc resolves the called function or method of call, or nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// HasMethods reports whether t's method set includes every named method
// (by name only — the conn-ish duck test used by lockheld/conndeadline).
func HasMethods(t types.Type, names ...string) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for _, name := range names {
		found := false
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
