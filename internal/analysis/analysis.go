// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface this repository needs. The
// container image carries no module proxy, so the framework is built on the
// standard library alone: go/ast and go/types for inspection, go list
// -export for loading, and the stdlib gc importer for dependency type
// information. Analyzers written against it enforce the repo's coherence,
// locking, and deadline invariants mechanically (see cmd/namingvet).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc states the invariant the analyzer guards.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) (any, error)
}

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts holds this package's interprocedural summaries (merged with
	// the summaries imported from its dependencies). Computed once per
	// package by the driver and shared by every analyzer.
	Facts *PackageFacts

	// Report delivers one diagnostic. Diagnostics on _test.go files and
	// diagnostics suppressed by a namingvet:ignore directive are dropped
	// by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic resolved to a position, tagged with its analyzer.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Posn.Filename, f.Posn.Line, f.Posn.Column, f.Analyzer, f.Message)
}

// SuppressName tags the findings of the unused-suppression audit: a
// directive that suppresses no diagnostic is itself reported, so stale
// exemptions get burned down instead of rotting.
const SuppressName = "suppress"

// ignoreDirective is one parsed //namingvet:ignore or file-ignore comment,
// shared by every line it covers so suppressions can be traced back to it.
type ignoreDirective struct {
	names    []string
	fileWide bool
	posn     token.Position
	used     map[string]bool // analyzer name -> suppressed something
}

// ignoreIndex records which analyzers are suppressed where, from
//
//	//namingvet:ignore name1,name2 -- reason
//
// directives (suppressing the directive's line and the following line, so
// the comment may sit above or beside the flagged expression) and
//
//	//namingvet:file-ignore name -- reason
//
// directives (suppressing a whole file).
type ignoreIndex struct {
	files      map[string][]*ignoreDirective         // filename -> file-wide directives
	lines      map[string]map[int][]*ignoreDirective // filename -> line -> directives
	directives []*ignoreDirective
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{
		files: make(map[string][]*ignoreDirective),
		lines: make(map[string]map[int][]*ignoreDirective),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, fileWide := strings.CutPrefix(c.Text, "//namingvet:file-ignore ")
				if !fileWide {
					var ok bool
					text, ok = strings.CutPrefix(c.Text, "//namingvet:ignore ")
					if !ok {
						continue
					}
				}
				rawNames, _, _ := strings.Cut(text, "--")
				d := &ignoreDirective{
					fileWide: fileWide,
					posn:     fset.Position(c.Pos()),
					used:     make(map[string]bool),
				}
				for _, name := range strings.Split(rawNames, ",") {
					if name = strings.TrimSpace(name); name != "" {
						d.names = append(d.names, name)
					}
				}
				if len(d.names) == 0 {
					continue
				}
				idx.directives = append(idx.directives, d)
				if fileWide {
					idx.files[d.posn.Filename] = append(idx.files[d.posn.Filename], d)
					continue
				}
				byLine := idx.lines[d.posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]*ignoreDirective)
					idx.lines[d.posn.Filename] = byLine
				}
				for _, line := range []int{d.posn.Line, d.posn.Line + 1} {
					byLine[line] = append(byLine[line], d)
				}
			}
		}
	}
	return idx
}

func (d *ignoreDirective) matches(analyzer string) bool {
	for _, name := range d.names {
		if name == analyzer {
			return true
		}
	}
	return false
}

// ignored reports whether a diagnostic at posn is suppressed, marking every
// directive that suppresses it as used for the audit.
func (idx *ignoreIndex) ignored(analyzer string, posn token.Position) bool {
	hit := false
	for _, d := range idx.files[posn.Filename] {
		if d.matches(analyzer) {
			d.used[analyzer] = true
			hit = true
		}
	}
	for _, d := range idx.lines[posn.Filename][posn.Line] {
		if d.matches(analyzer) {
			d.used[analyzer] = true
			hit = true
		}
	}
	return hit
}

// audit reports, after every analyzer has run, each directive name that
// matched no diagnostic. Names outside the run set are skipped — a partial
// run (a single-analyzer test) has no evidence either way — as are
// directives in _test.go files, which never see diagnostics at all.
func (idx *ignoreIndex) audit(ran map[string]bool) []Finding {
	var findings []Finding
	for _, d := range idx.directives {
		if strings.HasSuffix(d.posn.Filename, "_test.go") {
			continue
		}
		kind := "ignore"
		if d.fileWide {
			kind = "file-ignore"
		}
		for _, name := range d.names {
			if !ran[name] || d.used[name] {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: SuppressName,
				Posn:     d.posn,
				Message:  fmt.Sprintf("unused suppression: this %s directive matches no %s diagnostic", kind, name),
			})
		}
	}
	return findings
}

// RunAnalyzers runs every analyzer over one type-checked package and
// returns the surviving findings plus the package's merged summaries
// (imported ∪ own) for feeding into dependent packages. Findings on
// _test.go files are dropped: tests legitimately compare sentinel
// identity, hold locks over pipe I/O, and read wall clocks, and the
// invariants guard production paths.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, imported Summaries) ([]Finding, Summaries, error) {
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	facts := ComputeFacts(pkg, imported)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.Report = func(d Diagnostic) {
			posn := pkg.Fset.Position(d.Pos)
			if strings.HasSuffix(posn.Filename, "_test.go") {
				return
			}
			if idx.ignored(a.Name, posn) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Posn: posn, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	findings = append(findings, idx.audit(ran)...)
	if ran["allocfree"] {
		findings = append(findings, auditAllocExempt(pkg, facts)...)
	}
	return findings, facts.All, nil
}

// WalkWithStack walks every file, calling fn with each node and the stack
// of its ancestors (outermost first, not including the node itself).
func WalkWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// ErrorType reports whether t implements the error interface.
func ErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// CalleeFunc resolves the called function or method of call, or nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// HasMethods reports whether t's method set includes every named method
// (by name only — the conn-ish duck test used by lockheld/conndeadline).
func HasMethods(t types.Type, names ...string) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for _, name := range names {
		found := false
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
