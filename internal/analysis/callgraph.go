package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallSite is one static call made from a declared function's body. Calls
// through function values, interface methods without a static callee, and
// built-ins are not recorded — the summary layer treats them as opaque.
type CallSite struct {
	// Callee is the statically resolved target.
	Callee *types.Func
	// Pos is the call's position (used for lexical ordering against
	// deadline events and for call-site diagnostics).
	Pos token.Pos
}

// CallGraph is the static call structure of one package: every declared
// function, in declaration order, with the calls its body makes. Nested
// function literals are folded into the enclosing declaration — for the
// summary properties (reaches conn I/O, sets a deadline, canonicalizes) a
// closure's work is the declaring function's work.
type CallGraph struct {
	// Order lists the package's declared functions in source order.
	Order []*types.Func
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls maps each declared function to its static call sites, in
	// lexical order.
	Calls map[*types.Func][]CallSite
}

// BuildCallGraph computes the package's call graph. Same-package edges
// carry the callee's declaration; cross-package callees are recorded by
// their types.Func only (their properties come from imported facts).
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Calls: make(map[*types.Func][]CallSite),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			g.Order = append(g.Order, obj)
			g.Decls[obj] = fn
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeFunc(pkg.Info, call); callee != nil {
					g.Calls[obj] = append(g.Calls[obj], CallSite{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
		}
	}
	return g
}
