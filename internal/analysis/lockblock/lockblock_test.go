package lockblock_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/lockblock"
)

func TestLockblock(t *testing.T) {
	analysistest.Run(t, lockblock.Analyzer, "a")
}
