// Package lockblock flags operations that can park the goroutine
// indefinitely while a sync mutex is held: channel sends and receives,
// select statements with no default, ranging over a channel,
// sync.WaitGroup.Wait, and sync.Cond.Wait held alongside a second lock —
// plus calls, across packages via .vetx facts, to any function whose
// ChanBlocks summary says it reaches one of those. It generalizes
// lockheld's I/O-under-lock rule to all blocking: a pusher goroutine
// parked on a full invalidation channel is just as wedged behind a held
// server mutex as one parked on a peer's TCP window.
//
// Structurally non-blocking operations never reach this analyzer: the
// facts layer drops selects that contain a default clause and sends on a
// function-local channel whose constant capacity provably exceeds the
// body's send count (see analysis.localBufferedChans). Cond.Wait holding
// exactly the cond's one lock is the primitive's documented contract —
// Wait releases it while parked — and is exempt.
package lockblock

import (
	"namecoherence/internal/analysis"
)

// Analyzer is the lockblock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockblock",
	Doc:  "flags channel operations, WaitGroup.Wait, and calls that may park indefinitely while a sync mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, ff := range pass.Facts.Own {
		for _, op := range ff.BlockOps {
			if len(op.Held) == 0 || op.Exempt {
				continue
			}
			pass.Reportf(op.Pos, "%s while %s is held: the goroutine can park indefinitely holding the lock",
				op.Desc, op.Held[len(op.Held)-1].ID)
		}
		for _, lc := range ff.LockCalls {
			if len(lc.Held) == 0 {
				continue
			}
			cal := pass.Facts.All[analysis.FuncKey(lc.Callee)]
			if !cal.ChanBlocks {
				continue
			}
			pass.Reportf(lc.Pos, "call to %s, which may block (%s), while %s is held",
				lc.Callee.Name(), cal.ChanVia, lc.Held[len(lc.Held)-1].ID)
		}
	}
	return nil, nil
}
