// Package inner parks on a channel; callers in the enclosing fixture
// package inherit the hazard through the exported ChanBlocks fact.
package inner

// Park blocks until the channel yields.
func Park(ch chan struct{}) {
	<-ch
}
