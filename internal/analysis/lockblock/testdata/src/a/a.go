// Positive and negative cases for lockblock: channel traffic, WaitGroup
// joins, and blocking calls reached while a mutex is held, against the
// structural exemptions (select with default, provably buffered local
// handoff, Cond.Wait's contract).
package a

import (
	"sync"

	"namecoherence/internal/analysis/lockblock/testdata/src/a/inner"
)

type S struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

func (s *S) SendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while \(\*a\.S\)\.mu is held`
}

func (s *S) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while \(\*a\.S\)\.mu is held`
}

func (s *S) WaitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `sync\.WaitGroup\.Wait while \(\*a\.S\)\.mu is held`
}

func (s *S) RangeUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range s.ch { // want `range over channel while \(\*a\.S\)\.mu is held`
		total += v
	}
	return total
}

func (s *S) SelectUnderLock(other chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default while \(\*a\.S\)\.mu is held`
	case v := <-s.ch:
		_ = v
	case other <- 1:
	}
}

// blocker parks on a channel; callers under a lock inherit the hazard
// through its ChanBlocks summary.
func (s *S) blocker() {
	<-s.ch
}

func (s *S) CallBlockerUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocker() // want `call to blocker, which may block \(channel receive`
}

func (s *S) CrossPackageUnderLock(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inner.Park(ch) // want `call to Park, which may block \(channel receive`
}

// F pairs a cond with the one lock it guards.
type F struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

// WaitCond holds exactly the cond's lock across Wait — the primitive's
// documented contract (Wait releases it while parked). No report.
func (f *F) WaitCond() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.ready {
		f.cond.Wait()
	}
}

// WaitCondTwoLocks parks holding a second lock that Wait does not
// release: that one wedges for as long as the cond stays unsignalled.
func (f *F) WaitCondTwoLocks(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cond.Wait() // want `sync\.Cond\.Wait while \(\*a\.F\)\.mu is held`
}

// SelectDefaultUnderLock cannot park: the default clause makes the
// channel ops opportunistic. No report.
func (s *S) SelectDefaultUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// BufferedLocalUnderLock sends on a local channel whose constant capacity
// covers the body's one send and which never leaves the function: a
// handoff, not a rendezvous. No report.
func (s *S) BufferedLocalUnderLock() int {
	done := make(chan int, 1)
	s.mu.Lock()
	done <- 1
	s.mu.Unlock()
	return <-done
}

// LeakedBufferedUnderLock passes the channel to a callee, forfeiting the
// local-producer proof: an unknown producer could have filled the buffer.
func (s *S) LeakedBufferedUnderLock() {
	done := make(chan int, 1)
	fill(done)
	s.mu.Lock()
	done <- 1 // want `channel send while \(\*a\.S\)\.mu is held`
	s.mu.Unlock()
}

func fill(ch chan int) {
	select {
	case ch <- 0:
	default:
	}
}

// NoLockNoReport: all the blocking shapes are fine with nothing held.
func (s *S) NoLockNoReport(other chan int) {
	s.ch <- 1
	<-s.ch
	s.wg.Wait()
	select {
	case v := <-s.ch:
		_ = v
	case other <- 1:
	}
}

// SpawnedBlockingIsNotTheSpawner: the pusher-goroutine pattern — the
// literal parks on the channel, but the spawner returns immediately, so
// calling Spawn under a lock is fine (no ChanBlocks propagation from
// go-literals).
func (s *S) Spawn() {
	go func() {
		for range s.ch {
		}
	}()
}

func (s *S) CallSpawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Spawn()
}
