// A file-wide suppression with nothing to suppress: every lockblock
// diagnostic in this fixture lives in a.go, so the audit reports the
// directive here.
//
//namingvet:file-ignore lockblock -- stale: the push path moved elsewhere // want `unused suppression: this file-ignore directive matches no lockblock diagnostic`
package a

func harmless() int { return 1 }
