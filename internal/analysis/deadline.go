package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deadlineFlow computes, per function, the lexical deadline events (direct
// Set*Deadline calls and calls to functions whose summary SetsDeadline),
// marks each wire-I/O atom guarded or not, applies the idle-read exemption,
// exonerates callee functions whose every call site is guarded, and runs
// the UnguardedIO fixpoint. The result lands in each FuncFacts' Events and
// Summary.UnguardedIO — everything conndeadline v2 reports from.
func deadlineFlow(pkg *Package, pf *PackageFacts, obs map[*types.Func]*atoms) {
	// guardPos holds, per function, every position after which I/O is
	// considered deadline-guarded.
	guardPos := make(map[*types.Func][]token.Pos, len(pf.Own))
	for _, ff := range pf.Own {
		a := obs[ff.Fn]
		pos := append([]token.Pos(nil), a.deadlinePos...)
		for _, cs := range a.calls {
			if summaryOf(pf, cs.Callee).SetsDeadline {
				pos = append(pos, cs.Pos)
			}
		}
		guardPos[ff.Fn] = pos
	}
	guarded := func(fn *types.Func, pos token.Pos) bool {
		for _, g := range guardPos[fn] {
			if g < pos {
				return true
			}
		}
		return false
	}

	// Exoneration: an unexported function that is never used as a value
	// and whose every same-package call site is guarded has discharged
	// its deadline obligation onto its callers — and they have met it.
	valueRef := valueReferences(pkg, pf)
	sites := make(map[*types.Func][]bool) // callee -> guardedness of each call site
	for _, ff := range pf.Own {
		for _, cs := range obs[ff.Fn].calls {
			if pf.byFn[cs.Callee] != nil {
				sites[cs.Callee] = append(sites[cs.Callee], guarded(ff.Fn, cs.Pos))
			}
		}
	}
	for _, ff := range pf.Own {
		if ff.Fn.Exported() || valueRef[ff.Fn] {
			continue
		}
		ss := sites[ff.Fn]
		if len(ss) == 0 {
			continue
		}
		ok := true
		for _, g := range ss {
			ok = ok && g
		}
		ff.Exonerated = ok
	}

	// Direct problems: unguarded, non-idle-exempt I/O atoms.
	directProblem := make(map[*types.Func]bool, len(pf.Own))
	for _, ff := range pf.Own {
		for _, io := range obs[ff.Fn].ios {
			if !guarded(ff.Fn, io.pos) && !idleExempt(pkg, pf, ff, io) {
				directProblem[ff.Fn] = true
				break
			}
		}
	}

	// UnguardedIO fixpoint: a function has it if it is not exonerated and
	// either does unguarded I/O itself or makes an unguarded call to a
	// function that has it.
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.Own {
			if ff.Summary.UnguardedIO || ff.Exonerated {
				continue
			}
			bad := directProblem[ff.Fn]
			if !bad {
				for _, cs := range obs[ff.Fn].calls {
					if summaryOf(pf, cs.Callee).UnguardedIO && !guarded(ff.Fn, cs.Pos) {
						bad = true
						break
					}
				}
			}
			if bad {
				ff.Summary.UnguardedIO = true
				changed = true
			}
		}
	}

	// Final event lists for reporting: every unguarded, non-exempt atom
	// and every unguarded call to an UnguardedIO callee, in lexical order.
	// Exonerated functions keep an empty list — their callers answered
	// for them.
	for _, ff := range pf.Own {
		if ff.Exonerated {
			continue
		}
		for _, io := range obs[ff.Fn].ios {
			if !guarded(ff.Fn, io.pos) && !idleExempt(pkg, pf, ff, io) {
				ff.Events = append(ff.Events, WireEvent{Pos: io.pos, Desc: io.desc})
			}
		}
		for _, cs := range obs[ff.Fn].calls {
			if summaryOf(pf, cs.Callee).UnguardedIO && !guarded(ff.Fn, cs.Pos) {
				ff.Events = append(ff.Events, WireEvent{Pos: cs.Pos, Desc: "call", Callee: cs.Callee})
			}
		}
	}
}

// summaryOf looks a callee up in the package's own facts first (they may
// still be settling during a fixpoint), then the imported table.
func summaryOf(pf *PackageFacts, callee *types.Func) FuncSummary {
	if ff := pf.byFn[callee]; ff != nil {
		return ff.Summary
	}
	return pf.All[FuncKey(callee)]
}

// valueReferences finds package functions that are referenced as values
// (stored, passed, deferred through a variable, …) rather than only
// called. Such functions can be invoked from anywhere, so call-site
// exoneration does not apply to them.
func valueReferences(pkg *Package, pf *PackageFacts) map[*types.Func]bool {
	callIdents := make(map[*ast.Ident]bool)
	refs := make(map[*types.Func]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callIdents[fun] = true
				case *ast.SelectorExpr:
					callIdents[fun.Sel] = true
				}
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callIdents[id] {
				return true
			}
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok && pf.byFn[fn] != nil {
				refs[fn] = true
			}
			return true
		})
	}
	return refs
}

// idleExempt reports whether io is an idle-loop read: a decode/read inside
// an unconditional for-loop of a method whose receiver type's Close
// (transitively, same package) closes a conn-shaped value. Such a read
// blocks until the peer speaks or the owner's Close closes the conn under
// it — a deadline would turn idle connections into spurious errors.
func idleExempt(pkg *Package, pf *PackageFacts, ff *FuncFacts, io ioAtom) bool {
	if !io.read || ff.Decl.Recv == nil || len(ff.Decl.Recv.List) == 0 {
		return false
	}
	if !inBareLoop(ff.Decl.Body, io.pos) {
		return false
	}
	recv := pkg.Info.Defs[recvIdent(ff.Decl)]
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return closeClosesConn(pkg, pf, named)
}

// recvIdent returns the receiver's name identifier, or nil for `func (T)`.
func recvIdent(decl *ast.FuncDecl) *ast.Ident {
	if len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return decl.Recv.List[0].Names[0]
}

// inBareLoop reports whether pos sits inside a `for { … }` loop (no
// condition, no post statement) within body.
func inBareLoop(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if ok && loop.Cond == nil && loop.Post == nil && loop.Init == nil &&
			loop.Body.Pos() <= pos && pos < loop.Body.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// closeClosesConn reports whether the named type has a Close method in this
// package that — directly or through same-package calls — calls Close on a
// conn-shaped value.
func closeClosesConn(pkg *Package, pf *PackageFacts, named *types.Named) bool {
	var closeFn *types.Func
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == "Close" {
			closeFn = m
			break
		}
	}
	if closeFn == nil || pf.byFn[closeFn] == nil {
		return false
	}
	seen := make(map[*types.Func]bool)
	var reaches func(fn *types.Func) bool
	reaches = func(fn *types.Func) bool {
		if seen[fn] {
			return false
		}
		seen[fn] = true
		ff := pf.byFn[fn]
		if ff == nil {
			return false
		}
		found := false
		ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeFunc(pkg.Info, call)
			if callee == nil || callee.Name() != "Close" {
				return true
			}
			recv := callee.Type().(*types.Signature).Recv()
			if recv != nil && HasMethods(recv.Type(), "Read", "Write", "SetDeadline") {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
		for _, cs := range pf.Graph.Calls[fn] {
			if pf.byFn[cs.Callee] != nil && reaches(cs.Callee) {
				return true
			}
		}
		return false
	}
	return reaches(closeFn)
}
