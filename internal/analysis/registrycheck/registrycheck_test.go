package registrycheck_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/registrycheck"
)

func TestRegistrycheck(t *testing.T) {
	analysistest.Run(t, registrycheck.Analyzer, "nameserver")
}
