package registrycheck_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/registrycheck"
)

func TestRegistrycheck(t *testing.T) {
	analysistest.Run(t, registrycheck.Analyzer, "nameserver")
}

// TestRegistrycheckBinaryCodec covers the completeness rule for packages
// that hand-roll a binary codec beside gob: missing append/parse pairs
// and skipped fields are errors there, while the gob-only fixture above
// proves the rule stays silent when no codec functions exist.
func TestRegistrycheckBinaryCodec(t *testing.T) {
	analysistest.Run(t, registrycheck.Analyzer, "nameserver_binary")
}
