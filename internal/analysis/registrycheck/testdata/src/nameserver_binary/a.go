// Package nameserver exercises registrycheck's binary-codec completeness
// rule: once a package defines append<T>/parse<T> for any registered wire
// type, every registered type needs both functions and each must touch
// every field. (The directory path contains "nameserver" so the package
// lands in the analyzer's scope; the gob-only fixture next door proves
// the rule stays silent without codec functions.)
package nameserver

import (
	"encoding/gob"
	"io"
)

// request has a binary codec pair below; the encoder forgets Seq.
type request struct {
	ID   uint64
	Path []string
	Seq  uint64
}

// ack is registered and crosses the gob wire but has no binary codec
// functions at all — with the rule armed, that is two missing functions.
type ack struct {
	OK bool
}

var wireTypes = map[string]any{
	"request": request{},
	"ack":     ack{}, // want `wire type ack has no binary codec function`
}

func serve(rw io.ReadWriter) error {
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	var req request
	if err := dec.Decode(&req); err != nil {
		return err
	}
	use(req.ID, req.Path, req.Seq)
	return enc.Encode(&ack{OK: true})
}

func use(...any) {}

// appendRequest covers ID and Path but skips Seq: the field would vanish
// from every binary frame without a runtime error.
func appendRequest(b []byte, req *request) []byte { // want `binary codec function appendRequest never touches request.Seq`
	b = append(b, byte(req.ID))
	for _, s := range req.Path {
		b = append(b, s...)
	}
	return b
}

// parseRequest touches every field: no complaint.
func parseRequest(data []byte, req *request) error {
	req.ID = uint64(data[0])
	req.Path = []string{string(data[1:])}
	req.Seq = 0
	return nil
}
