// Package nameserver exercises registrycheck: the wireTypes registry must
// list exactly the package-local structs reachable from gob encoders, and
// every request field must be read by some handler. (The directory is
// named nameserver so the testdata package path lands in the analyzer's
// scope.)
package nameserver

import (
	"encoding/gob"
	"io"
)

// request is the wire request; Watch is a kind no handler ever looks at.
type request struct {
	Op    string
	Path  []string
	Watch bool // want `request field Watch is never read in this package: a request kind no handler serves`
}

// response crosses the wire and drags result along through its field.
type response struct {
	Results []result
	Err     string
}

// result is reachable only through response.Results, which is enough.
type result struct {
	Addr string
}

// orphan crosses the wire below but was never registered.
type orphan struct { // want `wire type orphan reaches a gob encoder/decoder but is missing from the wireTypes registry`
	X int
}

// stale is registered but nothing ever encodes or decodes it.
type stale struct {
	Y int
}

// unrelated neither crosses the wire nor is registered: no complaint.
type unrelated struct {
	Z int
}

var wireTypes = map[string]any{
	"request":  request{},
	"response": response{},
	"result":   result{},
	"stale":    stale{}, // want `wireTypes entry stale never reaches a gob encoder/decoder; dead registry entries hide real gaps`
}

func serve(rw io.ReadWriter) error {
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	var req request
	if err := dec.Decode(&req); err != nil {
		return err
	}
	var resp response
	switch req.Op {
	case "resolve":
		resp.Results = []result{{Addr: join(req.Path)}}
	default:
		resp.Err = "unknown op"
	}
	return enc.Encode(&resp)
}

func leak(w io.Writer) error {
	return gob.NewEncoder(w).Encode(orphan{X: 1})
}

func join(parts []string) string {
	out := ""
	for _, p := range parts {
		out += "/" + p
	}
	return out
}

var _ = unrelated{}
