// Package registrycheck keeps the gob wire registry exhaustive. The
// nameserver's wire.go declares a wireTypes map naming every struct that
// crosses the wire; gob silently accepts unregistered concrete types until
// the first mixed-version peer decodes garbage, so the registry — not the
// encoder — is the source of truth. The analyzer computes the closure of
// package-local struct types reachable from gob Encode/Decode call
// arguments through exported struct fields and demands it equal the
// registry, in both directions. It also checks handler exhaustiveness:
// every field of the request struct must be read somewhere in the package,
// or a request kind exists that the server silently ignores.
//
// Packages that hand-roll a binary codec beside gob get a third rule: once
// any registered type has an append<T>/parse<T> codec function, every
// registered type must have both, and each must touch every field of its
// type — a field the binary encoder skips is silently dropped from frames
// with no runtime error, exactly the corruption mode the registry exists
// to prevent. Packages with no such functions (gob-only) are unaffected.
package registrycheck

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to packages that own a wire registry.
var Scope = []string{"nameserver"}

// RegistryVar is the name of the registry map the analyzer audits; the
// check is silent in packages that do not declare it.
const RegistryVar = "wireTypes"

// RequestType is the struct whose fields the handler-exhaustiveness rule
// covers.
const RequestType = "request"

// Analyzer is the registrycheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "registrycheck",
	Doc:  "requires every gob-encoded wire type to appear in the wireTypes registry, every request field to be handled, and every registered type's binary codec functions to cover all fields",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	registry, positions := registryEntries(pass)
	if registry == nil {
		return nil, nil
	}

	reachable := wireClosure(pass)

	// Direction 1: every type that crosses the wire is registered.
	for _, named := range sortedTypes(reachable) {
		if !registry[named] {
			pass.Reportf(reachable[named].Pos(),
				"wire type %s reaches a gob encoder/decoder but is missing from the %s registry",
				named.Obj().Name(), RegistryVar)
		}
	}
	// Direction 2: every registered type actually crosses the wire.
	for _, named := range sortedTypes(positions) {
		if _, ok := reachable[named]; !ok {
			pass.Reportf(positions[named].Pos(),
				"%s entry %s never reaches a gob encoder/decoder; dead registry entries hide real gaps",
				RegistryVar, named.Obj().Name())
		}
	}

	checkRequestFields(pass)
	checkBinaryCodec(pass, positions)
	return nil, nil
}

// codecFuncNames maps a registered type name to its binary codec function
// names ("request" → appendRequest/parseRequest).
func codecFuncNames(typeName string) (appendName, parseName string) {
	upper := strings.ToUpper(typeName[:1]) + typeName[1:]
	return "append" + upper, "parse" + upper
}

// checkBinaryCodec enforces binary-codec completeness over the registry.
// The rule arms only once the package defines an append<T> or parse<T>
// function for some registered type; from then on every registered type
// needs the full pair, and each function must touch every field of its
// type. "Touch" is any selection of the field in the function body —
// encoders read fields, decoders assign them, and either appears as a
// selector — so a new wire field that only one side handles is caught at
// the side that forgot it.
func checkBinaryCodec(pass *analysis.Pass, positions map[*types.Named]ast.Node) {
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
				decls[fd.Name.Name] = fd
			}
		}
	}
	armed := false
	for named := range positions {
		a, p := codecFuncNames(named.Obj().Name())
		if decls[a] != nil || decls[p] != nil {
			armed = true
			break
		}
	}
	if !armed {
		return
	}
	for _, named := range sortedTypes(positions) {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		appendName, parseName := codecFuncNames(named.Obj().Name())
		for _, fnName := range []string{appendName, parseName} {
			fd := decls[fnName]
			if fd == nil {
				pass.Reportf(positions[named].Pos(),
					"wire type %s has no binary codec function %s: frames of this type cannot cross the binary wire",
					named.Obj().Name(), fnName)
				continue
			}
			touched := fieldsTouched(pass, fd)
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if !touched[field] {
					pass.Reportf(fd.Name.Pos(),
						"binary codec function %s never touches %s.%s: the field would be silently dropped from binary frames",
						fnName, named.Obj().Name(), field.Name())
				}
			}
		}
	}
}

// fieldsTouched collects every struct field selected anywhere in fd's body.
func fieldsTouched(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// registryEntries reads the package-level RegistryVar composite literal,
// returning the set of named types it registers and each entry's position.
// nil means the package has no registry to audit.
func registryEntries(pass *analysis.Pass) (map[*types.Named]bool, map[*types.Named]ast.Node) {
	var lit *ast.CompositeLit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != RegistryVar || i >= len(vs.Values) {
						continue
					}
					if cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						lit = cl
					}
				}
			}
		}
	}
	if lit == nil {
		return nil, nil
	}
	set := make(map[*types.Named]bool)
	where := make(map[*types.Named]ast.Node)
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if named := localNamed(pass, pass.TypesInfo.Types[val].Type); named != nil {
			set[named] = true
			where[named] = val
		}
	}
	return set, where
}

// wireClosure finds every package-local named struct type reachable from a
// gob Encode/Decode argument through struct fields, mapped to the position
// of the type's declaration (falling back to the call site for types whose
// declaration is not in this package's files).
func wireClosure(pass *analysis.Pass) map[*types.Named]ast.Node {
	out := make(map[*types.Named]ast.Node)
	var add func(t types.Type, at ast.Node)
	add = func(t types.Type, at ast.Node) {
		named := localNamed(pass, t)
		if named == nil {
			if t != nil {
				switch u := t.(type) {
				case *types.Pointer:
					add(u.Elem(), at)
				case *types.Slice:
					add(u.Elem(), at)
				case *types.Array:
					add(u.Elem(), at)
				case *types.Map:
					add(u.Elem(), at)
				}
			}
			return
		}
		if _, seen := out[named]; seen {
			return
		}
		out[named] = declNode(pass, named, at)
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				add(st.Field(i).Type(), at)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			recv := callee.Type().(*types.Signature).Recv()
			if recv == nil {
				return true
			}
			isEnc := callee.Name() == "Encode" && analysis.IsNamedType(recv.Type(), "encoding/gob", "Encoder")
			isDec := callee.Name() == "Decode" && analysis.IsNamedType(recv.Type(), "encoding/gob", "Decoder")
			if !isEnc && !isDec {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				add(tv.Type, call)
			}
			return true
		})
	}
	return out
}

// declNode finds the type's declaration spec in the package files, so the
// diagnostic lands on `type request struct` rather than on some call site.
func declNode(pass *analysis.Pass, named *types.Named, fallback ast.Node) ast.Node {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if ok && pass.TypesInfo.Defs[ts.Name] == named.Obj() {
					return ts
				}
			}
		}
	}
	return fallback
}

// checkRequestFields demands that every field of the request struct is
// read (as an rvalue selector) somewhere in the package.
func checkRequestFields(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	obj, ok := scope.Lookup(RequestType).(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	read := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if assign, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						// A bare store is not handling; only the selector's
						// base expression counts as read.
						markSelRead(pass, read, sel.X)
					} else {
						// Indexed stores like req.Paths[k] = v do read the
						// field (to index it), as do other compound targets.
						markSelRead(pass, read, lhs)
					}
				}
				for _, rhs := range assign.Rhs {
					markSelRead(pass, read, rhs)
				}
				return false
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				markSelRead(pass, read, sel)
				return false
			}
			return true
		})
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !read[field] {
			pass.Reportf(field.Pos(),
				"%s field %s is never read in this package: a request kind no handler serves",
				RequestType, field.Name())
		}
	}
}

// markSelRead records every field selection inside e as a read.
func markSelRead(pass *analysis.Pass, read map[*types.Var]bool, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				read[v] = true
			}
		}
		return true
	})
}

// sortedTypes orders a type-keyed map by type name so diagnostics come out
// deterministically (detrand's own rule applies to us too).
func sortedTypes(m map[*types.Named]ast.Node) []*types.Named {
	out := make([]*types.Named, 0, len(m))
	for named := range m {
		out = append(out, named)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Obj().Name() < out[j].Obj().Name()
	})
	return out
}

// localNamed returns t as a named type declared in this package (after
// pointer indirection), or nil.
func localNamed(pass *analysis.Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}
