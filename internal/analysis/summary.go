package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncSummary is the interprocedural fact set recorded for one function.
// Summaries are computed per package in dependency order; cross-package
// flags are the transitive closure over imported facts, so a caller in
// internal/cluster sees through a callee in internal/nameserver.
type FuncSummary struct {
	// AcquiresLock: the body calls Lock/RLock on a sync.(RW)Mutex
	// (direct only; lock state does not flow through calls).
	AcquiresLock bool `json:",omitempty"`
	// SpawnsGoroutine: the body contains a go statement (direct only).
	SpawnsGoroutine bool `json:",omitempty"`
	// SetsDeadline: the function sets a conn deadline on every analysis
	// path that matters to us — it calls Set(Read|Write)?Deadline, or a
	// function whose summary says so (transitive).
	SetsDeadline bool `json:",omitempty"`
	// ConnIO: the function reaches wire I/O — gob encode/decode, a
	// Read/Write on a conn-shaped value, or a Dial* call (transitive).
	ConnIO bool `json:",omitempty"`
	// Blocks: the function reaches a call that can block indefinitely
	// (ConnIO or time.Sleep, transitive). Used by lockheld to taint
	// cross-package callees invoked under a held mutex.
	Blocks bool `json:",omitempty"`
	// UnguardedIO: the function performs wire I/O that is not preceded by
	// a deadline inside its own body, and is not exonerated by its call
	// sites (see conndeadline v2). A caller that invokes an UnguardedIO
	// function without first setting a deadline inherits the problem.
	UnguardedIO bool `json:",omitempty"`
	// Canonicalizes: the function is a name-canonicalization point — it
	// carries a //namingvet:canonicalizer directive, or trivially wraps
	// one (its return statements forward a canonicalizer call).
	Canonicalizes bool `json:",omitempty"`
	// ReachesCanon: the function calls a canonicalizer, directly or
	// transitively. wirecanon uses this for its "core.Path in, wire I/O
	// out, never canonicalized" rule.
	ReachesCanon bool `json:",omitempty"`
	// RevBumps: the function is a revision-advance point — it carries a
	// //namingvet:revbump directive (Server.Bump, Server.SetRevision).
	RevBumps bool `json:",omitempty"`
	// ReachesRevBump: the function calls a revision-advance point,
	// directly or transitively. mutbump uses this for its "mutates a
	// binding, never bumps the revision" rule.
	ReachesRevBump bool `json:",omitempty"`
	// Allocates: the body itself contains steady-path heap-allocation
	// evidence (direct only; see alloc.go for the evidence catalogue).
	// Sites on a //namingvet:allocfree-exempt line and bodies of exempt
	// functions contribute nothing.
	Allocates bool `json:",omitempty"`
	// EscapesToHeap: calling the function may allocate — it Allocates
	// itself or reaches a function that does (transitive, with exempt
	// call sites and exempt callees excluded). allocfree reports any
	// //namingvet:allocfree root whose closure has this set.
	EscapesToHeap bool `json:",omitempty"`
	// AllocVia, when EscapesToHeap is set, is a human-readable sample of
	// one allocation the function reaches — nested across packages, so a
	// diagnostic at an annotated root can show the whole chain down to
	// the allocating expression.
	AllocVia string `json:",omitempty"`
	// AcquiresLocks maps lock identities (see lockorder.go: receiver type
	// + field path, "(*nameserver.Server).mu") to evidence that calling
	// the function may acquire that lock, directly or transitively.
	AcquiresLocks map[string]LockAcq `json:",omitempty"`
	// LockEdges lists the acquisition-order edges observed in the body:
	// Held was held at a point where Acq was acquired (directly or via a
	// call whose summary acquires it). lockorder folds every package's
	// edges into one module-global graph and reports its cycles.
	LockEdges []LockEdge `json:",omitempty"`
	// ChanBlocks: the function may park indefinitely on channel traffic
	// or sync primitives — a channel send/receive, a select with no
	// default, a range over a channel, WaitGroup.Wait, or Cond.Wait —
	// directly or transitively. lockblock taints callers invoked under a
	// held mutex, the way Blocks does for wire I/O.
	ChanBlocks bool `json:",omitempty"`
	// ChanVia, when ChanBlocks is set, samples one blocking operation the
	// function reaches, nested across packages like AllocVia.
	ChanVia string `json:",omitempty"`
}

// Summaries maps FuncKey strings to summaries. Keys use types.Func.FullName
// ("pkg/path.Func", "(*pkg/path.T).Method"), which is unique module-wide,
// so merging maps from different packages can never collide.
type Summaries map[string]FuncSummary

// FuncKey returns the summary key for fn.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// WireEvent is one lexical event inside a function body that conndeadline
// cares about: a direct wire I/O operation, or a call to a function whose
// summary says it performs unguarded wire I/O.
type WireEvent struct {
	Pos  token.Pos
	Desc string // "gob encode", "conn read", …
	// Callee is non-nil when the event is a call to an UnguardedIO
	// function rather than direct I/O.
	Callee *types.Func
	// Guarded: a deadline event precedes this one lexically in the body.
	Guarded bool
	// IdleExempt: the event is an idle-loop read whose unblocking is the
	// owner's Close (which closes the conn); see idleExempt.
	IdleExempt bool
}

// AllocSite is one steady-path allocation observed in a function body:
// the expression's position and a description of why it allocates.
type AllocSite struct {
	Pos  token.Pos
	Desc string
}

// FuncFacts couples a declared function's syntax with its computed summary
// and the event list conndeadline reports from.
type FuncFacts struct {
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Summary FuncSummary
	Events  []WireEvent
	// Allocs lists the body's non-exempt allocation sites in lexical
	// order (empty for //namingvet:allocfree-exempt functions).
	Allocs []AllocSite
	// AllocFreeRoot: the declaration carries //namingvet:allocfree — the
	// function and everything it transitively reaches must not allocate
	// on the steady path.
	AllocFreeRoot bool
	// AllocExempt: the declaration carries //namingvet:allocfree-exempt —
	// the body is off the steady path (error teardown, cold setup) and
	// contributes no allocation evidence.
	AllocExempt bool
	// WireDecoder: the declaration carries //namingvet:wiredecoder — it
	// is the receive boundary, writing wire Path/Paths fields from bytes
	// that arrived off the wire. wirecanon's field-flow rule (canonicalize
	// before embedding) is a send-side obligation, so it skips these;
	// the receive side re-validates names where they are used instead.
	WireDecoder bool
	// Exonerated: every same-package call site of this (unexported,
	// never used as a value) function is deadline-guarded, so its
	// unguarded events are the callers' responsibility — already
	// discharged. Exonerated functions are neither reported nor exported
	// as UnguardedIO.
	Exonerated bool
	// LockAcquires, LockCalls, and BlockOps are the body's lock-discipline
	// events with held-set snapshots, collected by the lockorder scan
	// (lockorder.go). The lockorder/lockblock analyzers report from them.
	LockAcquires []LockAcquire
	LockCalls    []LockCall
	BlockOps     []BlockOp
}

// PackageFacts is what one RunAnalyzers invocation computes and every
// analyzer Pass can see.
type PackageFacts struct {
	// All merges the imported summaries with this package's own — the
	// lookup table for cross-package queries.
	All Summaries
	// Own holds this package's declared functions in source order.
	Own []*FuncFacts
	// Graph is the package's call graph.
	Graph *CallGraph

	byFn map[*types.Func]*FuncFacts
	// allocExempt marks the lines //namingvet:allocfree-exempt covers
	// (the directive's line and the next): allocation evidence there is
	// dropped and call edges there do not propagate allocation facts.
	allocExempt map[string]map[int]bool
}

// AllocExemptAt reports whether posn sits on a line covered by a
// //namingvet:allocfree-exempt directive.
func (pf *PackageFacts) AllocExemptAt(posn token.Position) bool {
	return pf.allocExempt[posn.Filename][posn.Line]
}

// OwnFacts returns the facts for a function declared in this package, or
// nil for imported/undeclared functions.
func (pf *PackageFacts) OwnFacts(fn *types.Func) *FuncFacts {
	return pf.byFn[fn]
}

// CanonicalizerDirective in a function's doc comment marks it as a
// §6 canonicalization point: its results are wire-coherent names.
const CanonicalizerDirective = "//namingvet:canonicalizer"

// RevBumpDirective in a function's doc comment marks it as a revision
// advance: callers mutating bindings discharge the coherence obligation
// by reaching one of these before replying.
const RevBumpDirective = "//namingvet:revbump"

// AllocFreeDirective in a function's doc comment declares the function an
// allocation-free root: it and everything it transitively reaches must not
// allocate on the steady path (allocfree enforces it).
const AllocFreeDirective = "//namingvet:allocfree"

// AllocFreeExemptDirective marks cold code the allocfree discipline skips:
// on a function's doc comment the whole body is exempt; on or above a
// statement line (optionally with `-- reason`) just that line is. Error
// construction, teardown, and one-time setup live behind it.
const AllocFreeExemptDirective = "//namingvet:allocfree-exempt"

// WireDecoderDirective in a function's doc comment marks it as a wire
// receive boundary: it decodes Path/Paths fields from bytes off the
// wire, so wirecanon's send-side canonicalization rule does not apply
// to its stores (the decoded names are re-validated where used).
const WireDecoderDirective = "//namingvet:wiredecoder"

// atoms are the raw, position-ordered observations collected from one body
// before any fixpoint runs.
type atoms struct {
	deadlinePos []token.Pos // direct Set*Deadline calls
	ios         []ioAtom    // direct wire I/O operations
	lock        bool
	spawns      bool
	sleeps      bool
	dials       bool
	calls       []CallSite // every statically resolved call, with position
	// canonReturn: every return statement forwards a call; used for the
	// thin-wrapper Canonicalizes propagation. Holds the forwarded callees.
	returnCallees []*types.Func
}

type ioAtom struct {
	pos  token.Pos
	desc string
	read bool // decode / conn read
}

// ComputeFacts builds the package's call graph, computes per-function
// summaries as a fixpoint over same-package calls plus imported facts, and
// runs the deadline-flow pass (guarded events, call-site exoneration,
// idle-read exemption) that conndeadline v2 and the exported UnguardedIO
// fact are built on.
func ComputeFacts(pkg *Package, imported Summaries) *PackageFacts {
	g := BuildCallGraph(pkg)
	pf := &PackageFacts{
		All:   make(Summaries, len(imported)+len(g.Order)),
		Graph: g,
		byFn:  make(map[*types.Func]*FuncFacts, len(g.Order)),
	}
	for k, v := range imported {
		pf.All[k] = v
	}

	obs := make(map[*types.Func]*atoms, len(g.Order))
	for _, fn := range g.Order {
		decl := g.Decls[fn]
		a := collectAtoms(pkg, decl)
		a.calls = g.Calls[fn]
		obs[fn] = a
		ff := &FuncFacts{Fn: fn, Decl: decl}
		if hasDirective(decl.Doc, CanonicalizerDirective) {
			ff.Summary.Canonicalizes = true
		}
		if hasDirective(decl.Doc, RevBumpDirective) {
			ff.Summary.RevBumps = true
		}
		ff.AllocFreeRoot = hasDirective(decl.Doc, AllocFreeDirective)
		ff.AllocExempt = hasDirective(decl.Doc, AllocFreeExemptDirective)
		ff.WireDecoder = hasDirective(decl.Doc, WireDecoderDirective)
		ff.Summary.AcquiresLock = a.lock
		ff.Summary.SpawnsGoroutine = a.spawns
		ff.Summary.SetsDeadline = len(a.deadlinePos) > 0
		ff.Summary.ConnIO = len(a.ios) > 0 || a.dials
		ff.Summary.Blocks = ff.Summary.ConnIO || a.sleeps
		pf.Own = append(pf.Own, ff)
		pf.byFn[fn] = ff
	}

	// lookup consults own (mutable, fixpoint-in-progress) facts first,
	// then the imported table. A miss is the zero summary: unknown
	// callees contribute nothing, so absence of facts can only cause
	// false negatives, never false positives.
	lookup := func(callee *types.Func) FuncSummary {
		if ff := pf.byFn[callee]; ff != nil {
			return ff.Summary
		}
		return pf.All[FuncKey(callee)]
	}

	// Fixpoint over the monotone transitive flags. Each flag only flips
	// false→true, so the loop terminates.
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.Own {
			a := obs[ff.Fn]
			s := &ff.Summary
			for _, cs := range a.calls {
				cal := lookup(cs.Callee)
				if cal.SetsDeadline && !s.SetsDeadline {
					s.SetsDeadline, changed = true, true
				}
				if cal.ConnIO && !s.ConnIO {
					s.ConnIO, changed = true, true
				}
				if (cal.Blocks || cal.ConnIO) && !s.Blocks {
					s.Blocks, changed = true, true
				}
				if (cal.Canonicalizes || cal.ReachesCanon) && !s.ReachesCanon {
					s.ReachesCanon, changed = true, true
				}
				if (cal.RevBumps || cal.ReachesRevBump) && !s.ReachesRevBump {
					s.ReachesRevBump, changed = true, true
				}
			}
			for _, ret := range a.returnCallees {
				if lookup(ret).Canonicalizes && !s.Canonicalizes {
					s.Canonicalizes, changed = true, true
				}
			}
			if s.Canonicalizes && !s.ReachesCanon {
				s.ReachesCanon, changed = true, true
			}
			if s.RevBumps && !s.ReachesRevBump {
				s.ReachesRevBump, changed = true, true
			}
		}
	}

	deadlineFlow(pkg, pf, obs)
	allocFlow(pkg, pf, obs)
	lockFlow(pkg, pf)

	for _, ff := range pf.Own {
		pf.All[FuncKey(ff.Fn)] = ff.Summary
	}
	return pf
}

// collectAtoms gathers the raw observations from one declaration. Nested
// function literals are folded in: a deferred or spawned closure's I/O and
// deadlines belong, for summary purposes, to the declaring function.
func collectAtoms(pkg *Package, decl *ast.FuncDecl) *atoms {
	a := &atoms{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			a.spawns = true
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if call, ok := res.(*ast.CallExpr); ok {
					if callee := CalleeFunc(pkg.Info, call); callee != nil {
						a.returnCallees = append(a.returnCallees, callee)
					}
				}
			}
		case *ast.CallExpr:
			callee := CalleeFunc(pkg.Info, node)
			if callee == nil {
				return true
			}
			recv := callee.Type().(*types.Signature).Recv()
			switch callee.Name() {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				a.deadlinePos = append(a.deadlinePos, node.Pos())
			case "Lock", "RLock":
				if recv != nil && (IsNamedType(recv.Type(), "sync", "Mutex") || IsNamedType(recv.Type(), "sync", "RWMutex")) {
					a.lock = true
				}
			case "Sleep":
				if callee.Pkg() != nil && callee.Pkg().Path() == "time" {
					a.sleeps = true
				}
			case "Encode":
				if recv != nil && IsNamedType(recv.Type(), "encoding/gob", "Encoder") {
					a.ios = append(a.ios, ioAtom{node.Pos(), "gob encode", false})
				}
			case "Decode":
				if recv != nil && IsNamedType(recv.Type(), "encoding/gob", "Decoder") {
					a.ios = append(a.ios, ioAtom{node.Pos(), "gob decode", true})
				}
			case "Read", "Write":
				// os.File passes the conn duck test (it has SetDeadline
				// for pipes), but file I/O is a durability concern, not
				// a transport one: casimmut guards it with the fsync
				// rule, and a deadline on a disk file is meaningless.
				if recv != nil && HasMethods(recv.Type(), "Read", "Write", "SetDeadline") &&
					!IsNamedType(recv.Type(), "os", "File") {
					a.ios = append(a.ios, ioAtom{node.Pos(), "conn " + strings.ToLower(callee.Name()), callee.Name() == "Read"})
				}
			}
			if n := callee.Name(); len(n) >= 4 && (strings.HasPrefix(n, "Dial") || strings.HasPrefix(n, "dial")) {
				a.dials = true
			}
		}
		return true
	})
	return a
}

// hasDirective reports whether the doc comment group contains the given
// //namingvet:… directive as a full line, optionally followed by a
// `-- reason` tail.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directiveMatches(c.Text, directive) {
			return true
		}
	}
	return false
}

// directiveMatches reports whether the comment text is the directive, bare
// or with a `-- reason` tail.
func directiveMatches(text, directive string) bool {
	text = strings.TrimSpace(text)
	if text == directive {
		return true
	}
	rest, ok := strings.CutPrefix(text, directive)
	return ok && strings.HasPrefix(strings.TrimLeft(rest, " \t"), "--")
}
