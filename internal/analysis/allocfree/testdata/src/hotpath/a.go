// Package hotpath exercises allocfree's positive cases: annotated roots
// whose steady paths allocate, directly, transitively in-package, and
// through an imported package's exported facts.
package hotpath

import (
	"fmt"

	"namecoherence/internal/analysis/allocfree/testdata/src/hotpath/codec"
)

type request struct {
	ID   uint64
	Path []string
}

type server struct {
	scratch []byte
	table   map[string]uint64
	out     chan<- request
}

// serve is a root with direct violations of several evidence kinds.
//
//namingvet:allocfree
func (s *server) serve(req *request, key []byte) {
	m := make(map[string]uint64) // want `serve is marked //namingvet:allocfree but allocates: make\(map\) allocates`
	m["x"] = req.ID
	s.table[string(key)] = req.ID // want `serve is marked //namingvet:allocfree but allocates: string↔\[\]byte conversion copies`
	fmt.Println(req.ID)           // want `serve is marked //namingvet:allocfree but allocates: calls fmt\.Println, a known allocator`
	s.out <- *req
}

// relay is a root whose violation is two in-package hops away.
//
//namingvet:allocfree
func (s *server) relay(req *request) {
	s.forward(req)
}

func (s *server) forward(req *request) {
	s.pack(req)
}

func (s *server) pack(req *request) {
	s.scratch = append(s.scratch, byte(req.ID)) // amortized self-append: clean
	sink := any(*req)                           // want `relay is marked //namingvet:allocfree but its call chain relay → forward → pack allocates here: boxes hotpath\.request into any`
	_ = sink
}

// encode is a root whose violation lives in an imported package and
// arrives through the serialized EscapesToHeap fact.
//
//namingvet:allocfree
func (s *server) encode(req *request) {
	codec.Marshal(req.Path) // want `encode is marked //namingvet:allocfree but encode reaches namecoherence/internal/analysis/allocfree/testdata/src/hotpath/codec\.Marshal, which may allocate:`
}

// flush is a root with an exempt cold branch: the error construction is
// off the steady path and stays silent, the box on the steady path does
// not.
//
//namingvet:allocfree
func (s *server) flush(req *request) error {
	if req.ID == 0 {
		//namingvet:allocfree-exempt -- cold: malformed request teardown
		return fmt.Errorf("empty request %d", req.ID)
	}
	sink := any(req.Path) // want `flush is marked //namingvet:allocfree but allocates: boxes \[\]string into any`
	_ = sink
	return nil
}

// grow is a root using append without provable capacity reuse.
//
//namingvet:allocfree
func grow(dst, src []string) []string {
	tmp := append(src, "x") // want `grow is marked //namingvet:allocfree but allocates: append may grow its backing array \(capacity not provably reused\)`
	_ = tmp
	dst = append(dst, "y") // self-append: clean
	return dst
}

// escape is a root leaking a composite literal and a non-constant make.
//
//namingvet:allocfree
func escape(n int) *request {
	buf := make([]byte, n) // want `escape is marked //namingvet:allocfree but allocates: make\(\[\]T, n\) with non-constant size allocates`
	_ = buf
	return &request{ID: 1} // want `escape is marked //namingvet:allocfree but allocates: &hotpath\.request literal escapes to heap`
}

// teardown is wholly exempt: a root calling it stays clean even though
// its body allocates freely.
//
//namingvet:allocfree-exempt -- reconnect path, not steady-state
func (s *server) teardown() error {
	return fmt.Errorf("torn down: %v", s.table)
}

// cycle is a root that calls teardown (exempt, silent) and itself
// (recursion must terminate, not hang the analyzer).
//
//namingvet:allocfree
func (s *server) cycle(depth int) {
	if depth == 0 {
		_ = s.teardown()
		return
	}
	s.cycle(depth - 1)
}
