// Package codec is the cross-package half of the hotpath fixture: its
// exported Allocates/EscapesToHeap facts must reach the importing package
// and convict the annotated root there.
package codec

// Marshal allocates: the joined representation escapes by being returned.
func Marshal(parts []string) []byte {
	out := make([]byte, 0, len(parts)*8)
	for _, p := range parts {
		out = append(out, p...)
		out = append(out, 0)
	}
	return out
}
