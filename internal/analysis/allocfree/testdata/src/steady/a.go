// Package steady is allocfree's negative fixture: annotated roots whose
// steady paths are genuinely allocation-free, plus the idioms the escape
// approximation must not convict — amortized self-append, non-escaping
// locals, pointer-shaped boxing, map-index string conversions, constant
// makes that stay on the stack, and exempt cold branches. No function
// here may be reported by allocfree itself; the two stale exemptions at
// the bottom are the suppression audit's positive cases.
package steady

import "errors"

type entry struct {
	ID  uint64
	Gen uint32
}

type cache struct {
	table   map[string]entry
	scratch []byte
	hits    uint64
}

var errMiss = errors.New("miss")

// lookup is a clean root: map reads, integer math, a stack-only constant
// make, and a []byte→string conversion elided as a map index.
//
//namingvet:allocfree
func (c *cache) lookup(key []byte) (entry, error) {
	var probe [8]byte
	copy(probe[:], key)
	e, ok := c.table[string(key)]
	if !ok {
		return entry{}, errMiss
	}
	c.hits++
	return e, nil
}

// encode is a clean root: self-append into a reused scratch buffer, the
// pattern the binary codec is built on.
//
//namingvet:allocfree
func (c *cache) encode(e entry) {
	c.scratch = c.scratch[:0]
	for i := 0; i < 8; i++ {
		c.scratch = append(c.scratch, byte(e.ID>>(8*uint(i))))
	}
}

// admit is a clean root calling clean helpers: the closure is invoked
// immediately (captures stay on the stack) and the pointer passed along
// is pointer-shaped, so nothing boxes.
//
//namingvet:allocfree
func (c *cache) admit(e entry) bool {
	newer := func() bool { return e.Gen > c.table[""].Gen }()
	if newer {
		c.bump(&e)
	}
	return newer
}

func (c *cache) bump(e *entry) {
	c.hits++
	_ = e.ID
}

// evict is a clean root with an exempt cold branch: teardown allocates,
// but teardown is //namingvet:allocfree-exempt and stays silent.
//
//namingvet:allocfree
func (c *cache) evict(force bool) {
	if force {
		c.teardown()
	}
	c.hits = 0
}

// teardown rebuilds the table — a cold, allocating path by design.
//
//namingvet:allocfree-exempt -- cold: full rebuild on forced eviction
func (c *cache) teardown() {
	c.table = make(map[string]entry)
}

// compare is a clean root: string conversions in comparisons are elided
// by the compiler and must not be flagged.
//
//namingvet:allocfree
func compare(a []byte, b string) bool {
	return string(a) == b
}

// localOnly is a clean root: composite literals and addresses that never
// leave the frame stay on the stack.
//
//namingvet:allocfree
func localOnly(n uint64) uint64 {
	e := entry{ID: n}
	p := &e
	p.Gen = 1
	buf := make([]byte, 16)
	buf[0] = byte(n)
	return p.ID + uint64(buf[0])
}

// frozen is pure arithmetic; its whole-function exemption outlived the
// code it once covered and the audit reports it.
//
//namingvet:allocfree-exempt -- stale: the formatting moved out long ago // want `unused suppression: steady\.frozen has no allocation evidence for this allocfree-exempt directive to exempt`
func frozen(x uint64) uint64 {
	return x * 2
}

// counterReset is clean, and its line exemption covers nothing.
//
//namingvet:allocfree
func (c *cache) counterReset() {
	//namingvet:allocfree-exempt -- stale: the rebuild moved to teardown // want `unused suppression: no allocation evidence on the lines this allocfree-exempt directive covers`
	c.hits = 0
}
