package allocfree_test

import (
	"testing"

	"namecoherence/internal/analysis/allocfree"
	"namecoherence/internal/analysis/analysistest"
)

func TestAllocfreeViolations(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "hotpath")
}

func TestAllocfreeClean(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "steady")
}
