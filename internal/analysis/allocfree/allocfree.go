// Package allocfree enforces the steady-path allocation discipline the
// zero-allocation codec work depends on: a function marked
// //namingvet:allocfree — together with everything it transitively
// reaches — must not allocate on the steady path. The evidence comes from
// the framework's allocation facts (Allocates/EscapesToHeap, computed by
// the escape-analysis pass in internal/analysis and serialized through
// .vetx), so the rule holds across package boundaries: a helper three
// packages away that starts boxing into an interface breaks the build of
// the annotated root, at the root.
//
// Cold branches are carved out with //namingvet:allocfree-exempt: on a
// function's doc comment the whole body is off the steady path (error
// teardown, reconnect); on or above a line it covers just that line
// (the gob Encode call that PR 9's binary codec will replace, an error
// return constructing its message). Exemptions are deliberate and
// grep-able — unlike //namingvet:ignore, they are part of the discipline,
// not a suppression of it.
//
// Like the rest of the suite, absence of evidence never convicts: calls
// into packages without facts (the standard library beyond the known
// allocator tables, interface method calls, generic instantiations)
// contribute nothing. The analyzer under-reports rather than crying wolf.
package allocfree

import (
	"strings"

	"namecoherence/internal/analysis"
)

// Analyzer is the allocfree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "enforces //namingvet:allocfree: annotated functions and their transitive callees must not allocate on the steady path",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, ff := range pass.Facts.Own {
		if ff.AllocFreeRoot {
			checkRoot(pass, ff)
		}
	}
	return nil, nil
}

// checkRoot walks the call closure of one annotated root, depth-first in
// lexical call order, reporting every allocation site it can see directly
// (same package) and every cross-package callee whose exported facts say
// it may allocate. Exempt functions and call sites on exempt lines are
// firewalls; each function is visited once per root.
func checkRoot(pass *analysis.Pass, root *analysis.FuncFacts) {
	seen := map[string]bool{analysis.FuncKey(root.Fn): true}
	var visit func(ff *analysis.FuncFacts, chain []string)
	visit = func(ff *analysis.FuncFacts, chain []string) {
		for _, site := range ff.Allocs {
			if ff == root {
				pass.Reportf(site.Pos,
					"%s is marked %s but allocates: %s",
					root.Fn.Name(), analysis.AllocFreeDirective, site.Desc)
			} else {
				pass.Reportf(site.Pos,
					"%s is marked %s but its call chain %s allocates here: %s",
					root.Fn.Name(), analysis.AllocFreeDirective,
					strings.Join(chain, " → "), site.Desc)
			}
		}
		for _, cs := range pass.Facts.Graph.Calls[ff.Fn] {
			if pass.Facts.AllocExemptAt(pass.Fset.Position(cs.Pos)) {
				continue
			}
			key := analysis.FuncKey(cs.Callee)
			if seen[key] {
				continue
			}
			seen[key] = true
			if own := pass.Facts.OwnFacts(cs.Callee); own != nil {
				if own.AllocExempt || !own.Summary.EscapesToHeap {
					continue
				}
				visit(own, append(chain, cs.Callee.Name()))
				continue
			}
			sum := pass.Facts.All[key]
			if !sum.EscapesToHeap {
				continue
			}
			pass.Reportf(cs.Pos,
				"%s is marked %s but %s reaches %s, which may allocate: %s",
				root.Fn.Name(), analysis.AllocFreeDirective,
				strings.Join(chain, " → "), cs.Callee.FullName(), sum.AllocVia)
		}
	}
	visit(root, []string{root.Fn.Name()})
}
