// Package conndeadline enforces the transport-deadline invariant of the
// fault-tolerant cluster (DESIGN §3a): inside internal/cluster and
// internal/nameserver, every net.Conn read/write — including the gob
// encode/decode calls that carry the wire protocol — must be lexically
// preceded, within the same function, by a SetDeadline/SetReadDeadline/
// SetWriteDeadline call, and raw net.Dial is forbidden in favor of
// net.DialTimeout (or DialContext). An unbounded round-trip against a hung
// replica turns one wedged server into a wedged client; the failover and
// circuit-breaker logic only runs when I/O fails in bounded time.
package conndeadline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to packages whose import path contains one of
// these substrings. Deadlines are a transport concern; in-memory packages
// are exempt.
var Scope = []string{"cluster", "nameserver"}

// Analyzer is the conndeadline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "conndeadline",
	Doc:  "requires a SetDeadline before net.Conn/gob wire I/O and forbids raw net.Dial in transport packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// checkFunc verifies one function: every wire I/O call must come after
// some deadline call in the same function body.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var deadlines []token.Pos
	type ioCall struct {
		pos  token.Pos
		what string
	}
	var ios []ioCall

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		recv := callee.Type().(*types.Signature).Recv()
		switch callee.Name() {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			deadlines = append(deadlines, call.Pos())
		case "Dial":
			if callee.Pkg() != nil && callee.Pkg().Path() == "net" && recv == nil {
				pass.Reportf(call.Pos(),
					"raw net.Dial is unbounded; use net.DialTimeout so a dead replica costs one timeout")
			}
		case "Encode":
			if recv != nil && analysis.IsNamedType(recv.Type(), "encoding/gob", "Encoder") {
				ios = append(ios, ioCall{call.Pos(), "gob encode"})
			}
		case "Decode":
			if recv != nil && analysis.IsNamedType(recv.Type(), "encoding/gob", "Decoder") {
				ios = append(ios, ioCall{call.Pos(), "gob decode"})
			}
		case "Read", "Write":
			if recv != nil && analysis.HasMethods(recv.Type(), "Read", "Write", "SetDeadline") {
				ios = append(ios, ioCall{call.Pos(), "conn " + strings.ToLower(callee.Name())})
			}
		}
		return true
	})

	for _, io := range ios {
		guarded := false
		for _, d := range deadlines {
			if d < io.pos {
				guarded = true
				break
			}
		}
		if !guarded {
			pass.Reportf(io.pos,
				"%s without a preceding SetDeadline in %s; unbounded wire I/O defeats failover",
				io.what, fn.Name.Name)
		}
	}
}
