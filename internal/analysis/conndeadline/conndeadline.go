// Package conndeadline enforces the transport-deadline invariant of the
// fault-tolerant cluster (DESIGN §3a): inside internal/cluster and
// internal/nameserver, every net.Conn read/write — including the gob
// encode/decode calls that carry the wire protocol — must be preceded by a
// SetDeadline/SetReadDeadline/SetWriteDeadline call, and raw net.Dial is
// forbidden in favor of net.DialTimeout (or DialContext). An unbounded
// round-trip against a hung replica turns one wedged server into a wedged
// client; the failover and circuit-breaker logic only runs when I/O fails
// in bounded time.
//
// v2 is call-graph aware, using the interprocedural facts layer:
//
//   - A deadline set in a caller satisfies I/O in a callee: an unexported
//     function whose every same-package call site is deadline-guarded (and
//     which is never used as a function value) is exonerated — its own
//     unguarded I/O is the callers' obligation, and they have met it.
//   - The obligation flows the other way too: calling a function whose
//     exported UnguardedIO fact is set, without a preceding deadline, is
//     reported at the call site — across package boundaries, via facts.
//   - Idle-loop reads are exempt: a decode/read in a `for {}` loop of a
//     method whose owner's Close closes the conn (the server's idle
//     accept-and-wait pattern) blocks on purpose; Close unhangs it.
package conndeadline

import (
	"go/ast"
	"go/types"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to packages whose import path contains one of
// these substrings. Deadlines are a transport concern; in-memory packages
// are exempt.
var Scope = []string{"cluster", "nameserver"}

// Analyzer is the conndeadline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "conndeadline",
	Doc:  "requires a SetDeadline before net.Conn/gob wire I/O (caller deadlines satisfy callees) and forbids raw net.Dial in transport packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, ff := range pass.Facts.Own {
		for _, ev := range ff.Events {
			if ev.Callee != nil {
				pass.Reportf(ev.Pos,
					"call to %s, which performs wire I/O without its own deadline, must follow a SetDeadline in %s",
					calleeLabel(pass, ev.Callee), ff.Decl.Name.Name)
				continue
			}
			pass.Reportf(ev.Pos,
				"%s without a preceding SetDeadline in %s; unbounded wire I/O defeats failover",
				ev.Desc, ff.Decl.Name.Name)
		}
	}
	// Raw net.Dial stays a structural check: it needs no dataflow.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Name() != "Dial" {
				return true
			}
			recv := callee.Type().(*types.Signature).Recv()
			if recv == nil && callee.Pkg() != nil && callee.Pkg().Path() == "net" {
				pass.Reportf(call.Pos(),
					"raw net.Dial is unbounded; use net.DialTimeout so a dead replica costs one timeout")
			}
			return true
		})
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// calleeLabel renders a callee for a diagnostic: pkg-qualified for
// cross-package targets, bare for local ones.
func calleeLabel(pass *analysis.Pass, fn *types.Func) string {
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
