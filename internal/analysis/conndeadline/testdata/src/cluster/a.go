// Package cluster exercises conndeadline: inside transport packages every
// wire I/O call needs a lexically preceding SetDeadline, and raw net.Dial
// is forbidden. (The directory is named cluster so the testdata package
// path lands in the analyzer's scope.)
package cluster

import (
	"encoding/gob"
	"net"
	"time"
)

type client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// badRoundTrip does wire I/O with no deadline anywhere in the function.
func (c *client) badRoundTrip(req, resp any) error {
	if err := c.enc.Encode(req); err != nil { // want `gob encode without a preceding SetDeadline`
		return err
	}
	return c.dec.Decode(resp) // want `gob decode without a preceding SetDeadline`
}

// badRead reads the conn raw.
func (c *client) badRead(buf []byte) (int, error) {
	return c.conn.Read(buf) // want `conn read without a preceding SetDeadline`
}

// badDial uses the unbounded dialer.
func badDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `raw net\.Dial is unbounded`
}

// okRoundTrip bounds the exchange first.
func (c *client) okRoundTrip(req, resp any, d time.Duration) error {
	if err := c.conn.SetDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	return c.dec.Decode(resp)
}

// okDial uses the bounded dialer.
func okDial(addr string, d time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, d)
}

// okIgnored documents an intentional unbounded read.
func (c *client) okIgnored(buf []byte) (int, error) {
	//namingvet:ignore conndeadline -- idle reads block until the peer speaks; Close unblocks them
	return c.conn.Read(buf)
}

// okLazyRearm re-arms the write deadline only when less than half the
// horizon remains — the pipelined client's amortized write bound. The
// Set is condition-wrapped but still lexically precedes the encode, which
// is what the analyzer requires: the deadline is a bound, not a precise
// timer, so an armed-in-the-past branch never runs unguarded.
func (c *client) okLazyRearm(req any, wdeadline *time.Time, bound time.Duration) error {
	if now := time.Now(); wdeadline.Sub(now) < bound/2 {
		*wdeadline = now.Add(bound)
		_ = c.conn.SetWriteDeadline(*wdeadline)
	}
	return c.enc.Encode(req)
}

// okLeaderRead arms the connection's read deadline with the leading
// call's expiry before entering the decode loop — the pipelined client's
// timeout mode, where the leader cannot select on a timer while blocked
// in Decode.
func (c *client) okLeaderRead(resp any, deadline time.Time) error {
	if !deadline.IsZero() {
		_ = c.conn.SetReadDeadline(deadline)
	}
	for {
		if err := c.dec.Decode(resp); err != nil {
			return err
		}
	}
}
