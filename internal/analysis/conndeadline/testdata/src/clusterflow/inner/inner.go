// Package inner is the cross-package half of the clusterflow fixture: it
// exports a wire helper with no deadline of its own, whose UnguardedIO
// fact must reach the importing package.
package inner

import (
	"encoding/gob"
	"net"
)

// RoundTrip performs wire I/O without setting a deadline. Being exported,
// it is never exonerated — it is reported here, and every unguarded call
// to it is reported at the call site via the exported fact.
func RoundTrip(conn net.Conn, req, resp any) error {
	if err := gob.NewEncoder(conn).Encode(req); err != nil { // want `gob encode without a preceding SetDeadline in RoundTrip`
		return err
	}
	return gob.NewDecoder(conn).Decode(resp) // want `gob decode without a preceding SetDeadline in RoundTrip`
}
