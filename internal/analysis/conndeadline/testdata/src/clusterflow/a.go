// Package clusterflow exercises conndeadline's call-graph rules: caller
// deadlines satisfy callee I/O (exoneration), unguarded calls to
// UnguardedIO functions are reported at the call site — including across
// packages — and idle-loop reads under a conn-closing Close are exempt.
// (The directory name contains "cluster" so the testdata package path
// lands in the analyzer's scope.)
package clusterflow

import (
	"encoding/gob"
	"net"
	"time"

	"namecoherence/internal/analysis/conndeadline/testdata/src/clusterflow/inner"
)

type client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// roundTrip is exonerated: unexported, never used as a value, and both of
// its call sites set a deadline first. Its I/O is the callers' obligation,
// and they meet it.
func (c *client) roundTrip(req, resp any) error {
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	return c.dec.Decode(resp)
}

func (c *client) caller1(req, resp any) error {
	_ = c.conn.SetDeadline(time.Now().Add(time.Second))
	return c.roundTrip(req, resp)
}

func (c *client) caller2(req, resp any) error {
	if err := c.conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	return c.roundTrip(req, resp)
}

// leaky has one unguarded call site, so exoneration fails: the helper is
// reported at its I/O and the bad caller at its call.
func (c *client) leaky(resp any) error {
	return c.dec.Decode(resp) // want `gob decode without a preceding SetDeadline in leaky`
}

func (c *client) badCaller(resp any) error {
	return c.leaky(resp) // want `call to leaky, which performs wire I/O without its own deadline, must follow a SetDeadline in badCaller`
}

func (c *client) okCaller(resp any) error {
	_ = c.conn.SetReadDeadline(time.Now().Add(time.Second))
	return c.leaky(resp)
}

// Exported functions are never exonerated — out-of-package callers are
// invisible here — even when every local call site is guarded.
func (c *client) Exported(resp any) error {
	return c.dec.Decode(resp) // want `gob decode without a preceding SetDeadline in Exported`
}

func (c *client) callsExported(resp any) error {
	_ = c.conn.SetDeadline(time.Now().Add(time.Second))
	return c.Exported(resp)
}

// asValue is stored as a function value, so call-site accounting cannot
// see every invocation: no exoneration.
func (c *client) asValue(resp any) error {
	return c.dec.Decode(resp) // want `gob decode without a preceding SetDeadline in asValue`
}

func (c *client) storesValue(resp any) error {
	_ = c.conn.SetDeadline(time.Now().Add(time.Second))
	f := c.asValue
	return f(resp)
}

// server's idle read is exempt: it blocks until the peer speaks, and
// server.Close closes the conn out from under it.
type server struct {
	conn net.Conn
	dec  *gob.Decoder
}

func (s *server) Close() error {
	return s.conn.Close()
}

func (s *server) serveLoop() error {
	for {
		var req int
		if err := s.dec.Decode(&req); err != nil {
			return err
		}
	}
}

// leakyServer looks like the idle pattern, but its Close closes no conn,
// so nothing can ever unhang the read: the exemption does not apply.
type leakyServer struct {
	dec  *gob.Decoder
	done bool
}

func (s *leakyServer) Close() error {
	s.done = true
	return nil
}

func (s *leakyServer) loop() error {
	for {
		var req int
		if err := s.dec.Decode(&req); err != nil { // want `gob decode without a preceding SetDeadline in loop`
			return err
		}
	}
}

// badCross calls the imported helper unguarded: the UnguardedIO fact
// crossed the package boundary to get this reported.
func badCross(conn net.Conn) error {
	var n int
	return inner.RoundTrip(conn, 1, &n) // want `call to inner\.RoundTrip, which performs wire I/O without its own deadline, must follow a SetDeadline in badCross`
}

// okCross guards the same call.
func okCross(conn net.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	var n int
	return inner.RoundTrip(conn, 1, &n)
}
