package conndeadline_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/conndeadline"
)

func TestConnDeadline(t *testing.T) {
	analysistest.Run(t, conndeadline.Analyzer, "cluster")
}
