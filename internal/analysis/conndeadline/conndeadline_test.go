package conndeadline_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/conndeadline"
)

func TestConnDeadline(t *testing.T) {
	analysistest.Run(t, conndeadline.Analyzer, "cluster")
}

// TestConnDeadlineFlow covers the v2 call-graph rules: exoneration of
// guarded helpers, call-site reports against UnguardedIO callees (local
// and cross-package, via facts), value-reference and export escape
// hatches, and the idle-loop read exemption.
func TestConnDeadlineFlow(t *testing.T) {
	analysistest.Run(t, conndeadline.Analyzer, "clusterflow")
}
