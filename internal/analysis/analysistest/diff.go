package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"namecoherence/internal/analysis"
)

// diagnosticsDiff renders a fixture mismatch as a unified diff between the
// expected diagnostic listing (matched findings plus unmatched want
// patterns) and the actual one (every finding), each annotated with the
// source line it points at. A reviewer sees, in one block, which
// diagnostics moved, changed message, appeared, or vanished — instead of
// reconciling two flat error lists by hand.
func diagnosticsDiff(wants []*expectation, findings []analysis.Finding,
	unexpected []analysis.Finding, unmatched []*expectation) string {

	matched := make(map[string]bool, len(unexpected))
	for _, f := range unexpected {
		matched[renderFinding(f)] = false
	}

	var expected, actual []string
	for _, f := range findings {
		line := renderFinding(f)
		actual = append(actual, line)
		if _, isUnexpected := matched[line]; !isUnexpected {
			expected = append(expected, line)
		}
	}
	for _, w := range unmatched {
		expected = append(expected,
			fmt.Sprintf("%s:%d: [missing] diagnostic matching /%s/", filepath.Base(w.file), w.line, w.re))
	}
	sortDiagLines(expected)
	sortDiagLines(actual)

	src := newSourceCache()
	var b strings.Builder
	b.WriteString("--- expected (want comments)\n+++ actual (reported diagnostics)\n")
	for _, d := range unifiedDiff(expected, actual) {
		b.WriteString(d)
		b.WriteByte('\n')
		if strings.HasPrefix(d, "-") || strings.HasPrefix(d, "+") {
			if ctx := src.context(wants, findings, d[1:]); ctx != "" {
				fmt.Fprintf(&b, "      > %s\n", ctx)
			}
		}
	}
	return b.String()
}

func renderFinding(f analysis.Finding) string {
	return fmt.Sprintf("%s:%d: %s", filepath.Base(f.Posn.Filename), f.Posn.Line, f.Message)
}

// sortDiagLines orders a listing by file, then numeric line, then text, so
// both sides of the diff share a stable order and matched entries align.
func sortDiagLines(lines []string) {
	sort.Slice(lines, func(i, j int) bool {
		fi, li, ri := splitDiagLine(lines[i])
		fj, lj, rj := splitDiagLine(lines[j])
		if fi != fj {
			return fi < fj
		}
		if li != lj {
			return li < lj
		}
		return ri < rj
	})
}

func splitDiagLine(s string) (file string, line int, rest string) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) < 3 {
		return s, 0, ""
	}
	fmt.Sscanf(parts[1], "%d", &line)
	return parts[0], line, parts[2]
}

// unifiedDiff computes a line diff (longest common subsequence) and renders
// it with " ", "-", "+" prefixes. Fixture listings are tiny, so the
// quadratic table and full context are fine.
func unifiedDiff(a, b []string) []string {
	lcs := make([][]int, len(a)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, "  "+a[i])
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			out = append(out, "- "+a[i])
			i++
		default:
			out = append(out, "+ "+b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, "- "+a[i])
	}
	for ; j < len(b); j++ {
		out = append(out, "+ "+b[j])
	}
	return out
}

// sourceCache resolves "base.go:NN: …" diff lines back to the source line
// they point at, using the full paths recorded in the wants and findings.
type sourceCache struct {
	files map[string][]string // full path -> lines
	paths map[string]string   // base name -> full path
}

func newSourceCache() *sourceCache {
	return &sourceCache{files: make(map[string][]string), paths: make(map[string]string)}
}

func (c *sourceCache) context(wants []*expectation, findings []analysis.Finding, diagLine string) string {
	base, line, _ := splitDiagLine(strings.TrimSpace(diagLine))
	if line == 0 {
		return ""
	}
	if _, ok := c.paths[base]; !ok {
		for _, w := range wants {
			c.paths[filepath.Base(w.file)] = w.file
		}
		for _, f := range findings {
			c.paths[filepath.Base(f.Posn.Filename)] = f.Posn.Filename
		}
	}
	full, ok := c.paths[base]
	if !ok {
		return ""
	}
	lines, ok := c.files[full]
	if !ok {
		data, err := os.ReadFile(full)
		if err != nil {
			return ""
		}
		lines = strings.Split(string(data), "\n")
		c.files[full] = lines
	}
	if line < 1 || line > len(lines) {
		return ""
	}
	return fmt.Sprintf("%s:%d: %s", base, line, strings.TrimSpace(lines[line-1]))
}
