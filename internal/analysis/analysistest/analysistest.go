// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against // want "regexp" comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (stdlib-only re-creation; the
// image has no module proxy). Testdata packages live under
// <analyzer>/testdata/src/<pkg> inside the module, so the go toolchain can
// compile their dependencies and hand us real export data — the analyzers
// see genuine net.Conn, sync.Mutex, and gob types, not mocks.
//
// Fixtures may nest helper packages under testdata/src/<pkg>/…: the whole
// tree is loaded in dependency order with interprocedural facts flowing
// between the packages, so cross-package analyzer behavior is testable.
// Want comments are honored in every package of the tree.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"namecoherence/internal/analysis"
)

// expectation is one // want comment: a diagnostic regexp pinned to a line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// Run loads testdata/src/<pkg> (and any helper packages nested beneath it)
// relative to the test's working directory, runs the analyzer over each
// package in dependency order, and reports mismatches between its
// diagnostics and the tree's // want comments. Every want must be matched
// by a diagnostic on its line, and every diagnostic must match a want; on
// mismatch the failure is rendered as a unified diff of expected versus
// actual diagnostics with the offending source lines inlined.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", dir)
	}

	var wants []*expectation
	var findings []analysis.Finding
	acc := analysis.Summaries{}
	for _, p := range pkgs {
		wants = append(wants, collectWants(t, p)...)
		fs, merged, err := analysis.RunAnalyzers(p, []*analysis.Analyzer{a}, acc)
		if err != nil {
			t.Fatalf("run %s: %v", a.Name, err)
		}
		acc = merged
		findings = append(findings, fs...)
	}

	var unexpected []analysis.Finding
	for i := range findings {
		f := &findings[i]
		matched := false
		for _, w := range wants {
			if w.file == f.Posn.Filename && w.line == f.Posn.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			unexpected = append(unexpected, *f)
		}
	}
	var unmatched []*expectation
	for _, w := range wants {
		if !w.matched {
			unmatched = append(unmatched, w)
		}
	}
	if len(unexpected) > 0 || len(unmatched) > 0 {
		t.Errorf("%s: diagnostics differ from // want comments:\n%s",
			a.Name, diagnosticsDiff(wants, findings, unexpected, unmatched))
	}
}

// collectWants parses every // want comment in the package.
func collectWants(t *testing.T, p *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("%s: malformed want comment: %s",
							p.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pattern := m[1]
				if m[2] != "" {
					pattern = m[2]
				} else {
					pattern = unquoteLite(pattern)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", p.Fset.Position(c.Pos()), err)
				}
				posn := p.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
			}
		}
	}
	return wants
}

// unquoteLite undoes the \" and \\ escapes allowed inside a quoted want.
func unquoteLite(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}
