// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against // want "regexp" comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (stdlib-only re-creation; the
// image has no module proxy). Testdata packages live under
// <analyzer>/testdata/src/<pkg> inside the module, so the go toolchain can
// compile their dependencies and hand us real export data — the analyzers
// see genuine net.Conn, sync.Mutex, and gob types, not mocks.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"namecoherence/internal/analysis"
)

// expectation is one // want comment: a diagnostic regexp pinned to a line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// Run loads testdata/src/<pkg> relative to the test's working directory,
// runs the analyzer, and reports mismatches between its diagnostics and
// the package's // want comments. Every want must be matched by a
// diagnostic on its line, and every diagnostic must match a want.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	p := pkgs[0]

	wants := collectWants(t, p)
	findings, err := analysis.RunAnalyzers(p, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Posn.Filename && w.line == f.Posn.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants parses every // want comment in the package.
func collectWants(t *testing.T, p *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("%s: malformed want comment: %s",
							p.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pattern := m[1]
				if m[2] != "" {
					pattern = m[2]
				} else {
					pattern = unquoteLite(pattern)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", p.Fset.Position(c.Pos()), err)
				}
				posn := p.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
			}
		}
	}
	return wants
}

// unquoteLite undoes the \" and \\ escapes allowed inside a quoted want.
func unquoteLite(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}
