// Package lockorder detects potential deadlocks from inconsistent mutex
// acquisition order. The facts layer (analysis.lockFlow) records, per
// function, which locks may be held when each other lock is acquired —
// lock identity being receiver type + field path, so the same lock keys
// identically in every package — and exports the edges through .vetx
// facts. This analyzer folds every package's edges into one module-global
// acquisition graph and reports:
//
//   - ordering cycles: an edge A→B contributed by this package whose
//     reverse path B⇝A exists anywhere in the module. Two goroutines
//     interleaving the two paths deadlock;
//   - self re-acquire: a Lock/RLock on an identity already in the held
//     set, directly or through a call chain whose summary acquires it.
//     sync.Mutex is not reentrant, and recursive RLock deadlocks whenever
//     a writer arrives between the two acquisitions, so both modes are
//     reported.
//
// The lock abstraction merges instances of the same type, so sibling or
// hand-over-hand locking of two values of one type would be reported as a
// re-acquire; the repo has no such pattern, and the merge is what makes a
// module-global graph possible at all (an instance has no cross-package
// name). Every other approximation biases toward silence: calls through
// function values are opaque, spawned closures contribute edges but not
// caller-ward acquisition facts.
package lockorder

import (
	"go/token"
	"sort"
	"strings"

	"namecoherence/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flags lock-order cycles across the module and re-acquisition of a held mutex through a call chain",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	reportReacquire(pass)
	reportCycles(pass)
	return nil, nil
}

// reportReacquire flags acquisitions (direct, or reachable through a
// statically resolved call) of a lock identity that is already held.
func reportReacquire(pass *analysis.Pass) {
	for _, ff := range pass.Facts.Own {
		for _, acq := range ff.LockAcquires {
			for _, h := range acq.Held {
				if h.ID == acq.ID {
					pass.Reportf(acq.Pos, "re-acquires %s, which is already held: %s",
						acq.ID, mechanism(h.Write, acq.Write))
				}
			}
		}
		for _, lc := range ff.LockCalls {
			if len(lc.Held) == 0 {
				continue
			}
			cal := pass.Facts.All[analysis.FuncKey(lc.Callee)]
			for _, h := range lc.Held {
				acq, ok := cal.AcquiresLocks[h.ID]
				if !ok {
					continue
				}
				pass.Reportf(lc.Pos, "call to %s may re-acquire %s, which is already held (%s): %s",
					lc.Callee.Name(), h.ID, acq.Via, mechanism(h.Write, acq.Write))
			}
		}
	}
}

// mechanism phrases the deadlock mechanism for the held/acquired modes.
func mechanism(heldWrite, acqWrite bool) string {
	if !heldWrite && !acqWrite {
		return "a recursive RLock deadlocks when a writer arrives between the two acquisitions"
	}
	return "the mutex is not reentrant and the goroutine deadlocks against itself"
}

// edge is one own-package acquisition edge with a report position.
type edge struct {
	held, acq string
	pos       token.Pos
	via       string
}

// reportCycles builds the module-global acquisition graph from the merged
// summaries and reports each own-package edge that closes a cycle, once
// per distinct cycle.
func reportCycles(pass *analysis.Pass) {
	// Adjacency over every known edge, own and imported. The via strings
	// ride along for the diagnostic's reverse-path rendering.
	adj := make(map[string][]analysis.LockEdge)
	keys := make([]string, 0, len(pass.Facts.All))
	for k := range pass.Facts.All {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, e := range pass.Facts.All[k].LockEdges {
			adj[e.Held] = append(adj[e.Held], e)
		}
	}

	seen := make(map[string]bool)
	for _, e := range ownEdges(pass) {
		path, ok := reverse(adj, e.acq, e.held)
		if !ok {
			continue
		}
		key := cycleKey(e, path)
		if seen[key] {
			continue
		}
		seen[key] = true
		var vias []string
		for _, back := range path {
			vias = append(vias, back.Via)
		}
		pass.Reportf(e.pos, "lock order cycle: %s is acquired while %s is held here, but the reverse order exists: %s",
			e.acq, e.held, strings.Join(vias, "; then "))
	}
}

// ownEdges recomputes this package's contributed edges with positions
// (the serialized summary form drops them), in lexical order.
func ownEdges(pass *analysis.Pass) []edge {
	var edges []edge
	for _, ff := range pass.Facts.Own {
		for _, acq := range ff.LockAcquires {
			for _, h := range acq.Held {
				if h.ID != acq.ID {
					edges = append(edges, edge{held: h.ID, acq: acq.ID, pos: acq.Pos})
				}
			}
		}
		for _, lc := range ff.LockCalls {
			if len(lc.Held) == 0 {
				continue
			}
			cal := pass.Facts.All[analysis.FuncKey(lc.Callee)]
			for _, id := range sortedKeys(cal.AcquiresLocks) {
				for _, h := range lc.Held {
					if h.ID != id {
						edges = append(edges, edge{held: h.ID, acq: id, pos: lc.Pos, via: cal.AcquiresLocks[id].Via})
					}
				}
			}
		}
	}
	return edges
}

// reverse finds a path from → to in the acquisition graph (BFS, so the
// reported reverse chain is a shortest one) and returns its edges.
func reverse(adj map[string][]analysis.LockEdge, from, to string) ([]analysis.LockEdge, bool) {
	type hop struct {
		node string
		via  analysis.LockEdge
		prev int
	}
	visited := map[string]bool{from: true}
	queue := []hop{{node: from, prev: -1}}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		for _, e := range adj[cur.node] {
			if e.Acq == to {
				path := []analysis.LockEdge{e}
				for j := i; queue[j].prev >= 0; j = queue[j].prev {
					path = append([]analysis.LockEdge{queue[j].via}, path...)
				}
				return path, true
			}
			if visited[e.Acq] {
				continue
			}
			visited[e.Acq] = true
			queue = append(queue, hop{node: e.Acq, via: e, prev: i})
		}
	}
	return nil, false
}

// cycleKey canonicalizes a cycle by its sorted node set, so a two-edge
// cycle contributed twice by one package reports once.
func cycleKey(e edge, path []analysis.LockEdge) string {
	nodes := map[string]bool{e.held: true, e.acq: true}
	for _, back := range path {
		nodes[back.Held] = true
		nodes[back.Acq] = true
	}
	var ids []string
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, "→")
}

func sortedKeys(m map[string]analysis.LockAcq) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
