package lockorder_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/lockorder"
)

func TestReacquire(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "reacquire")
}

func TestCrossPackageCycle(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "cycle")
}

func TestSamePackageCycle(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "cyclepkg")
}
