// Cross-package lock-order cycle: this package acquires inner.B while
// holding inner.A, and package inner acquires A while holding B. Neither
// package sees both orders in its own source; the cycle closes through
// the facts imported from inner.
package cycle

import "namecoherence/internal/analysis/lockorder/testdata/src/cycle/inner"

// AThenB holds A and acquires B via the helper — the reverse of
// inner.BThenA's order.
func AThenB(a *inner.A, b *inner.B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	inner.LockB(b) // want `lock order cycle: \(\*inner\.B\)\.Mu is acquired while \(\*inner\.A\)\.Mu is held here, but the reverse order exists`
}

// BThenAAgain also uses both locks, in inner's order: no new cycle is
// reported here (the cycle's canonical key already reported above), and a
// same-order second user must never invent one of its own.
func BThenAAgain(a *inner.A, b *inner.B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	a.Mu.Lock()
	a.Mu.Unlock()
}
