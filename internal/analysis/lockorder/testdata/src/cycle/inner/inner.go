// Package inner owns both lock-bearing types and establishes the B→A
// acquisition order. The enclosing fixture package acquires A→B through
// an exported helper, so the cycle only becomes visible when inner's
// serialized facts flow into the dependent package.
package inner

import "sync"

type A struct{ Mu sync.Mutex }

type B struct{ Mu sync.Mutex }

// LockB acquires B alone: the dependent package calls this while holding
// A, contributing the A→B edge through the AcquiresLocks fact.
func LockB(b *B) {
	b.Mu.Lock()
	b.Mu.Unlock()
}

// BThenA acquires A while B is held: the B→A edge.
func BThenA(a *A, b *B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	a.Mu.Lock()
	a.Mu.Unlock()
}
