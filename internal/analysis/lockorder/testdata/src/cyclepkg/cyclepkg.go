// Same-package two-function cycle: AB acquires a→b, BA acquires b→a. The
// cycle is reported once, at the lexically first contributing edge.
package cyclepkg

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) AB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock order cycle: \(\*cyclepkg\.S\)\.b is acquired while \(\*cyclepkg\.S\)\.a is held here, but the reverse order exists`
	s.b.Unlock()
}

func (s *S) BA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}
