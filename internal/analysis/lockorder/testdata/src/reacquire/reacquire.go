// Positive and negative cases for lockorder's self-re-acquire rule: a
// non-reentrant mutex acquired again while already held, directly or
// through a call chain.
package reacquire

import "sync"

type T struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	other sync.Mutex
}

// Outer holds t.mu and calls helper, which locks it again: a guaranteed
// self-deadlock two frames apart.
func (t *T) Outer() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.helper() // want `call to helper may re-acquire \(\*reacquire\.T\)\.mu, which is already held`
}

func (t *T) helper() {
	t.mu.Lock()
	t.mu.Unlock()
}

// Deep re-acquires through two frames are still caught: the AcquiresLocks
// fact is transitive.
func (t *T) Deep() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.middle() // want `call to middle may re-acquire \(\*reacquire\.T\)\.mu, which is already held`
}

func (t *T) middle() {
	t.helper()
}

// Double locks directly.
func (t *T) Double() {
	t.mu.Lock()
	t.mu.Lock() // want `re-acquires \(\*reacquire\.T\)\.mu, which is already held`
	t.mu.Unlock()
	t.mu.Unlock()
}

// ReadRead recursively read-locks: prohibited by the sync docs, since a
// writer arriving between the two RLocks deadlocks both.
func (t *T) ReadRead() {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.readHelper() // want `call to readHelper may re-acquire \(\*reacquire\.T\)\.rw, which is already held`
}

func (t *T) readHelper() {
	t.rw.RLock()
	t.rw.RUnlock()
}

// Nest takes two different locks; one direction only, no report.
func (t *T) Nest() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.other.Lock()
	t.other.Unlock()
}

// Sequential releases before calling the helper that locks again.
func (t *T) Sequential() {
	t.mu.Lock()
	t.mu.Unlock()
	t.helper()
}

// Spawned work does not inherit the spawner's held set: the goroutine
// acquires t.mu on its own stack after the spawner is long gone.
func (t *T) SpawnHelper() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go t.afterwards()
}

func (t *T) afterwards() {
	t.mu.Lock()
	t.mu.Unlock()
}
