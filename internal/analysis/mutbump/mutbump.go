// Package mutbump enforces the write path's revision discipline as a
// build error: inside the server packages, any function that mutates a
// binding — calls Bind or Unbind on a context-shaped value — must reach a
// revision advance (a //namingvet:revbump function, i.e. Server.Bump or
// Server.SetRevision) before it can return. A mutation that never bumps
// is exactly the coherence hole ISSUE 7 closes: the graph changes, the
// revision stands still, and every coherent cache keeps serving the old
// binding with no way to find out.
//
// Two exemptions keep the rule precise:
//
//  1. Context implementations themselves (methods on a context-shaped
//     receiver, e.g. WatchedContext.Bind wrapping BasicContext.Bind) are
//     the mutation primitives being guarded, not clients of them.
//  2. Construction-time code that reaches no revision state at all is
//     outside the server packages' scope by definition — the Scope list
//     names only packages that serve live clients.
package mutbump

import (
	"go/types"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to packages that serve live clients, where an
// unbumped mutation means stale caches rather than a tree under assembly.
var Scope = []string{"nameserver", "cluster", "replsvc"}

// Analyzer is the mutbump analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mutbump",
	Doc:  "requires binding mutations in server packages to reach a revision bump (//namingvet:revbump) before replying",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, ff := range pass.Facts.Own {
		checkMutations(pass, ff)
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// checkMutations reports every context mutation in a function that
// neither is a context implementation nor reaches a revision advance.
func checkMutations(pass *analysis.Pass, ff *analysis.FuncFacts) {
	if ff.Summary.ReachesRevBump {
		return
	}
	if recv := ff.Fn.Type().(*types.Signature).Recv(); recv != nil && isContextShaped(recv.Type()) {
		// A context implementation (or wrapper) IS the mutation primitive;
		// the obligation sits with whoever calls it.
		return
	}
	for _, cs := range pass.Facts.Graph.Calls[ff.Fn] {
		name := cs.Callee.Name()
		if name != "Bind" && name != "Unbind" {
			continue
		}
		recv := cs.Callee.Type().(*types.Signature).Recv()
		if recv == nil || !isContextShaped(recv.Type()) {
			continue
		}
		pass.Reportf(cs.Pos,
			"%s mutates a binding (%s.%s) but never reaches a revision bump — coherent caches go silently stale (mark the advance with %s or route through one)",
			ff.Fn.Name(), typeName(recv.Type()), name, analysis.RevBumpDirective)
	}
}

// isContextShaped is the duck test for core.Context and its
// implementations: Lookup, Bind, Unbind, Names.
func isContextShaped(t types.Type) bool {
	return analysis.HasMethods(t, "Lookup", "Bind", "Unbind", "Names")
}

// typeName renders a receiver type compactly for diagnostics.
func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
