// Package nameserver exercises mutbump: a function in a server package
// that mutates a binding on a context-shaped value must reach a revision
// advance — a //namingvet:revbump function — before it returns. (The
// directory is named nameserver so the testdata package path lands in the
// analyzer's scope.)
package nameserver

// Name and Entity stand in for the core types.
type Name string
type Entity struct{ ID uint64 }

// BasicContext is the fixture's context-shaped mutation primitive.
type BasicContext struct{ m map[Name]Entity }

func (c *BasicContext) Lookup(n Name) Entity  { return c.m[n] }
func (c *BasicContext) Bind(n Name, e Entity) { c.m[n] = e }
func (c *BasicContext) Unbind(n Name)         { delete(c.m, n) }
func (c *BasicContext) Names() []Name         { return nil }

// WatchedContext wraps a context; its own Bind/Unbind are exempt — they
// ARE the primitive, the obligation sits with their callers.
type WatchedContext struct{ inner *BasicContext }

func (c *WatchedContext) Lookup(n Name) Entity  { return c.inner.Lookup(n) }
func (c *WatchedContext) Bind(n Name, e Entity) { c.inner.Bind(n, e) }
func (c *WatchedContext) Unbind(n Name)         { c.inner.Unbind(n) }
func (c *WatchedContext) Names() []Name         { return c.inner.Names() }

// Server owns the revision.
type Server struct {
	rev uint64
	ctx *BasicContext
}

// Bump advances the revision.
//
//namingvet:revbump
func (s *Server) Bump() { s.rev++ }

// SetRevision adopts a replicated revision tag.
//
//namingvet:revbump
func (s *Server) SetRevision(rev uint64) {
	if rev > s.rev {
		s.rev = rev
	}
}

// applyBind mutates and bumps — the disciplined write path.
func (s *Server) applyBind(n Name, e Entity) {
	s.ctx.Bind(n, e)
	s.Bump()
}

// applyViaHelper discharges the obligation transitively.
func (s *Server) applyViaHelper(n Name) {
	s.ctx.Unbind(n)
	s.commit()
}

// commit reaches a bump one more hop away.
func (s *Server) commit() { s.Bump() }

// applyReplica discharges through SetRevision — the replica apply path.
func (s *Server) applyReplica(n Name, e Entity, atRev uint64) {
	s.ctx.Bind(n, e)
	s.SetRevision(atRev)
}

// sneakBind mutates a binding and never bumps: the coherence hole.
func (s *Server) sneakBind(n Name, e Entity) {
	s.ctx.Bind(n, e) // want `sneakBind mutates a binding \(BasicContext\.Bind\) but never reaches a revision bump`
}

// sneakUnbind is the same hole through Unbind, on a wrapped context.
func (s *Server) sneakUnbind(w *WatchedContext, n Name) {
	w.Unbind(n) // want `sneakUnbind mutates a binding \(WatchedContext\.Unbind\) but never reaches a revision bump`
}

// renameBoth has two unbumped mutations; each is reported.
func renameBoth(c *BasicContext, from, to Name) {
	e := c.Lookup(from)
	c.Unbind(from) // want `renameBoth mutates a binding \(BasicContext\.Unbind\) but never reaches a revision bump`
	c.Bind(to, e)  // want `renameBoth mutates a binding \(BasicContext\.Bind\) but never reaches a revision bump`
}

// notAContext has Bind/Unbind but no Lookup/Names — not context-shaped,
// so mutating it carries no revision obligation.
type notAContext struct{}

func (notAContext) Bind(n Name, e Entity) {}
func (notAContext) Unbind(n Name)         {}

func unrelatedBind(x notAContext, n Name) {
	x.Bind(n, Entity{})
	x.Unbind(n)
}
