// Package workload is the negative fixture for mutbump's scope gate: the
// package path contains none of the Scope markers (nameserver, cluster,
// replsvc), so the analyzer must stay silent even though every function
// here commits the exact violation the in-scope fixture reports — binding
// mutations on context-shaped values that never reach a revision bump.
// Benchmark drivers and test harnesses assemble trees like this all the
// time; a revision obligation on them would be pure noise. This file
// deliberately expects zero diagnostics: a single report is a failure.
package workload

// Name and Entity stand in for the core types.
type Name string
type Entity struct{ ID uint64 }

// BasicContext is context-shaped — the same duck type the in-scope
// fixture uses, so silence here is attributable to scope, not shape.
type BasicContext struct{ m map[Name]Entity }

func (c *BasicContext) Lookup(n Name) Entity  { return c.m[n] }
func (c *BasicContext) Bind(n Name, e Entity) { c.m[n] = e }
func (c *BasicContext) Unbind(n Name)         { delete(c.m, n) }
func (c *BasicContext) Names() []Name         { return nil }

// populate is construction-time assembly: mutations with no bump in
// sight. In a server package this would be two diagnostics.
func populate(c *BasicContext) {
	c.Bind("usr", Entity{ID: 1})
	c.Bind("tmp", Entity{ID: 2})
}

// churn is a benchmark-style mutation loop, bump-free by design.
func churn(c *BasicContext, names []Name) {
	for _, n := range names {
		c.Bind(n, Entity{ID: 7})
		c.Unbind(n)
	}
}

var _ = populate
var _ = churn
