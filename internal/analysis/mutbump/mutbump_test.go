package mutbump_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/mutbump"
)

func TestMutbump(t *testing.T) {
	analysistest.Run(t, mutbump.Analyzer, "nameserver")
}
