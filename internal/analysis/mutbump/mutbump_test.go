package mutbump_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/mutbump"
)

func TestMutbump(t *testing.T) {
	analysistest.Run(t, mutbump.Analyzer, "nameserver")
}

// TestMutbumpOutOfScope pins the scope gate: the workload fixture commits
// the same unbumped mutations as the nameserver fixture but lives outside
// the Scope package list, so the analyzer must report nothing (the fixture
// has zero want comments — any diagnostic fails the run).
func TestMutbumpOutOfScope(t *testing.T) {
	analysistest.Run(t, mutbump.Analyzer, "workload")
}
