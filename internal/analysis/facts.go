package analysis

import (
	"bytes"
	"encoding/json"
	"sort"
)

// ModulePath is the module this analysis suite serves. Facts are only
// computed for (and expected from) packages inside it; everything else —
// the standard library in particular — contributes zero-value summaries,
// which can hide a problem but never invent one.
const ModulePath = "namecoherence"

// factsMagic versions the vetx payload. The vet driver caches .vetx files
// across tool rebuilds keyed on the tool's -V=full hash, but being explicit
// costs one line and makes a stale or foreign file decode to "no facts"
// instead of garbage.
// v2 added the allocation facts (Allocates/EscapesToHeap/AllocVia); v3
// added the lock-order facts (AcquiresLocks/LockEdges/ChanBlocks). A file
// from an older tool build decodes to "no facts" rather than a table that
// silently lacks them.
var factsMagic = []byte("namingvet-facts-v3\n")

// EncodeFacts serializes summaries for a .vetx facts file. Keys are sorted
// so the output is deterministic (detrand would want nothing less).
func EncodeFacts(s Summaries) ([]byte, error) {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]factEntry, len(keys))
	for i, k := range keys {
		ordered[i] = factEntry{Key: k, Summary: s[k]}
	}
	payload, err := json.Marshal(ordered)
	if err != nil {
		return nil, err
	}
	return append(append([]byte(nil), factsMagic...), payload...), nil
}

// DecodeFacts parses a facts file. A payload without our magic (including
// the pre-facts "no facts" placeholder) decodes to ok=false, which callers
// treat as an empty summary table.
func DecodeFacts(data []byte) (Summaries, bool) {
	payload, found := bytes.CutPrefix(data, factsMagic)
	if !found {
		return nil, false
	}
	var ordered []factEntry
	if err := json.Unmarshal(payload, &ordered); err != nil {
		return nil, false
	}
	s := make(Summaries, len(ordered))
	for _, e := range ordered {
		s[e.Key] = e.Summary
	}
	return s, true
}

type factEntry struct {
	Key     string
	Summary FuncSummary
}
