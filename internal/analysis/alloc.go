// Allocation/escape evidence for the allocfree analyzer. Per function,
// allocFlow collects the steady-path allocation sites its body contains —
// composite literals and new/make whose result escapes, interface boxing,
// string↔[]byte conversions, growing appends, map/chan/closure creation,
// go statements, and calls into known allocator packages (fmt, reflect,
// gob, json) — then runs a monotone fixpoint so Allocates/EscapesToHeap
// facts flow through calls and across packages, exactly like the deadline
// and canon facts.
//
// The escape test is a local, lexical approximation of the compiler's
// escape analysis with the framework's usual bias: absence of evidence can
// only cause false negatives, never false positives. A value is considered
// escaping when it is returned, stored to a field/element/pointee, sent on
// a channel, captured by an escaping closure, or passed to an interface
// parameter. Passing a pointer or slice to a concrete parameter is assumed
// non-leaking (the common case; the compiler assumes the opposite, but an
// enforcement tool that flagged every helper call would only breed ignore
// directives).
//
// //namingvet:allocfree-exempt on a function's doc comment drops the whole
// body from the evidence (cold teardown, error construction); on or above
// a statement line it drops just that line's sites, and call edges on that
// line do not propagate allocation facts either.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// allocPkgs taints every call into these packages: their entry points
// allocate by design (formatting, reflection, codec buffers).
var allocPkgs = map[string]bool{
	"fmt":           true,
	"reflect":       true,
	"encoding/gob":  true,
	"encoding/json": true,
}

// allocFuncs names individual stdlib allocators outside allocPkgs. Append
// variants (strconv.AppendInt, …) are deliberately absent: they write into
// a caller-provided buffer and amortize like self-append.
var allocFuncs = map[string]bool{
	"errors.New":          true,
	"errors.Join":         true,
	"strings.Join":        true,
	"strings.Split":       true,
	"strings.SplitN":      true,
	"strings.Fields":      true,
	"strings.Repeat":      true,
	"strings.Replace":     true,
	"strings.ReplaceAll":  true,
	"strings.ToUpper":     true,
	"strings.ToLower":     true,
	"strings.Clone":       true,
	"strconv.Itoa":        true,
	"strconv.FormatInt":   true,
	"strconv.FormatUint":  true,
	"strconv.FormatFloat": true,
	"strconv.Quote":       true,
	"sort.Slice":          true,
	"sort.SliceStable":    true,
	"sort.Strings":        true,
	"sort.Ints":           true,
	"bytes.Join":          true,
	"bytes.Split":         true,
	"bytes.Fields":        true,
	"bytes.Repeat":        true,
	"time.NewTimer":       true,
	"time.NewTicker":      true,
	"time.After":          true,
	"time.Tick":           true,
}

// allocFlow computes each function's allocation sites and runs the
// Allocates/EscapesToHeap fixpoint. Runs after the main summary fixpoint,
// so imported facts are already merged into pf.All.
func allocFlow(pkg *Package, pf *PackageFacts, obs map[*types.Func]*atoms) {
	pf.allocExempt = allocExemptLines(pkg)
	exemptAt := func(pos token.Pos) bool {
		return pf.AllocExemptAt(pkg.Fset.Position(pos))
	}
	for _, ff := range pf.Own {
		if ff.AllocExempt {
			continue
		}
		ff.Allocs = allocSites(pkg, ff.Decl, exemptAt)
		if len(ff.Allocs) > 0 {
			ff.Summary.Allocates = true
			ff.Summary.EscapesToHeap = true
			ff.Summary.AllocVia = siteLabel(pkg, ff.Allocs[0])
		}
	}

	// EscapesToHeap propagates caller-ward: calling a function that may
	// allocate may allocate. Exempt callees and call sites on exempt
	// lines are firewalls. AllocVia is set at the first flip only, so the
	// sample chain stays finite and deterministic (lexical call order).
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.Own {
			if ff.AllocExempt || ff.Summary.EscapesToHeap {
				continue
			}
			for _, cs := range obs[ff.Fn].calls {
				if exemptAt(cs.Pos) {
					continue
				}
				if own := pf.byFn[cs.Callee]; own != nil && own.AllocExempt {
					continue
				}
				cal := summaryOf(pf, cs.Callee)
				if !cal.EscapesToHeap {
					continue
				}
				ff.Summary.EscapesToHeap = true
				ff.Summary.AllocVia = "calls " + cs.Callee.FullName() + ": " + cal.AllocVia
				changed = true
				break
			}
		}
	}
}

// auditAllocExempt reports allocfree-exempt directives that exempt nothing:
// with the exemption switched off, the covered lines contain no allocation
// site and no call that would propagate EscapesToHeap, so the directive is
// stale. A function-level directive is unused when the whole body is
// evidence-free. Runs only when the allocfree analyzer is in the run set
// (RunAnalyzers gates the call).
func auditAllocExempt(pkg *Package, pf *PackageFacts) []Finding {
	noExempt := func(token.Pos) bool { return false }
	type fileLine struct {
		file string
		line int
	}
	// Every line an un-exempted sweep would find evidence on, and, per
	// function, whether any exists at all.
	evidence := make(map[fileLine]bool)
	hasEvidence := make(map[*FuncFacts]bool)
	for _, ff := range pf.Own {
		for _, s := range allocSites(pkg, ff.Decl, noExempt) {
			posn := pkg.Fset.Position(s.Pos)
			evidence[fileLine{posn.Filename, posn.Line}] = true
			hasEvidence[ff] = true
		}
		for _, cs := range pf.Graph.Calls[ff.Fn] {
			if own := pf.byFn[cs.Callee]; own != nil && own.AllocExempt {
				continue
			}
			if !summaryOf(pf, cs.Callee).EscapesToHeap {
				continue
			}
			posn := pkg.Fset.Position(cs.Pos)
			evidence[fileLine{posn.Filename, posn.Line}] = true
			hasEvidence[ff] = true
		}
	}

	var findings []Finding
	// Function-level directives live in doc comments of exempt declarations.
	docDirective := make(map[*ast.Comment]bool)
	for _, ff := range pf.Own {
		if !ff.AllocExempt || ff.Decl.Doc == nil {
			continue
		}
		for _, c := range ff.Decl.Doc.List {
			if !directiveMatches(c.Text, AllocFreeExemptDirective) {
				continue
			}
			docDirective[c] = true
			posn := pkg.Fset.Position(c.Pos())
			if hasEvidence[ff] || strings.HasSuffix(posn.Filename, "_test.go") {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: SuppressName,
				Posn:     posn,
				Message: fmt.Sprintf("unused suppression: %s has no allocation evidence for this allocfree-exempt directive to exempt",
					funcLabel(ff.Fn)),
			})
		}
	}
	// Everything else is a line directive covering its own and the next line.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !directiveMatches(c.Text, AllocFreeExemptDirective) || docDirective[c] {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				if strings.HasSuffix(posn.Filename, "_test.go") {
					continue
				}
				if evidence[fileLine{posn.Filename, posn.Line}] || evidence[fileLine{posn.Filename, posn.Line + 1}] {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: SuppressName,
					Posn:     posn,
					Message:  "unused suppression: no allocation evidence on the lines this allocfree-exempt directive covers",
				})
			}
		}
	}
	return findings
}

// allocExemptLines indexes //namingvet:allocfree-exempt line directives:
// the directive's own line and the following one, so the comment may sit
// above or beside the exempted expression.
func allocExemptLines(pkg *Package) map[string]map[int]bool {
	idx := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !directiveMatches(c.Text, AllocFreeExemptDirective) {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				if idx[posn.Filename] == nil {
					idx[posn.Filename] = make(map[int]bool)
				}
				idx[posn.Filename][posn.Line] = true
				idx[posn.Filename][posn.Line+1] = true
			}
		}
	}
	return idx
}

// siteLabel renders one allocation site for a summary's AllocVia chain.
func siteLabel(pkg *Package, s AllocSite) string {
	posn := pkg.Fset.Position(s.Pos)
	return fmt.Sprintf("%s (%s:%d)", s.Desc, filepath.Base(posn.Filename), posn.Line)
}

// allocScan carries the per-declaration state of one allocation sweep.
type allocScan struct {
	pkg    *Package
	decl   *ast.FuncDecl
	exempt func(token.Pos) bool
	// escUse marks objects with at least one escaping use in this body
	// (returned, stored to a heap-reachable place, boxed, captured, sent).
	escUse map[types.Object]bool
	sites  []AllocSite
}

// allocSites collects the non-exempt allocation sites of one declaration,
// in lexical order.
func allocSites(pkg *Package, decl *ast.FuncDecl, exempt func(token.Pos) bool) []AllocSite {
	sc := &allocScan{pkg: pkg, decl: decl, exempt: exempt}
	sc.escUse = escapingUses(pkg, decl)
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) {
		sc.visit(n, stack)
	})
	return sc.sites
}

// walkStack walks one subtree calling fn with each node and its ancestor
// stack (outermost first, not including the node).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// add records one site unless its line is exempt.
func (sc *allocScan) add(pos token.Pos, desc string) {
	if sc.exempt(pos) {
		return
	}
	sc.sites = append(sc.sites, AllocSite{Pos: pos, Desc: desc})
}

// visit classifies one node as allocation evidence (or not).
func (sc *allocScan) visit(n ast.Node, stack []ast.Node) {
	info := sc.pkg.Info
	switch node := n.(type) {
	case *ast.GoStmt:
		sc.add(node.Pos(), "go statement allocates a goroutine")

	case *ast.CompositeLit:
		t := typeOf(info, node)
		switch t.Underlying().(type) {
		case *types.Map:
			sc.add(node.Pos(), "map literal allocates")
		case *types.Slice:
			if sc.escapes(node, stack) {
				sc.add(node.Pos(), "slice literal escapes to heap")
			}
		}
		// Struct and array literals allocate only through & (see
		// UnaryExpr) or boxing (see conversions and call arguments).

	case *ast.UnaryExpr:
		if node.Op != token.AND {
			return
		}
		switch operand := ast.Unparen(node.X).(type) {
		case *ast.CompositeLit:
			if sc.escapes(node, stack) {
				sc.add(node.Pos(), fmt.Sprintf("&%s literal escapes to heap", typeLabel(typeOf(info, operand))))
			}
		case *ast.Ident:
			if obj, ok := info.Uses[operand].(*types.Var); ok && !obj.IsField() && sc.escapes(node, stack) {
				sc.add(node.Pos(), fmt.Sprintf("address of local %s escapes to heap", operand.Name))
			}
		}

	case *ast.FuncLit:
		if !sc.captures(node) {
			return
		}
		if len(stack) > 0 {
			switch parent := stack[len(stack)-1].(type) {
			case *ast.CallExpr:
				if parent.Fun == node {
					return // immediately invoked: captures stay on the stack
				}
			case *ast.GoStmt, *ast.DeferStmt:
				return // the go atom covers spawning; defers are open-coded
			}
		}
		if sc.escapes(node, stack) {
			sc.add(node.Pos(), "capturing closure escapes to heap")
		}

	case *ast.CallExpr:
		sc.visitCall(node, stack)
	}
}

// visitCall handles builtins (new/make/append), type conversions (boxing,
// string↔[]byte), known stdlib allocators, variadic packing, and boxing at
// interface-typed parameters.
func (sc *allocScan) visitCall(call *ast.CallExpr, stack []ast.Node) {
	info := sc.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				if sc.escapes(call, stack) {
					sc.add(call.Pos(), fmt.Sprintf("new(%s) escapes to heap", typeLabel(typeOf(info, call))))
				}
			case "make":
				sc.visitMake(call, stack)
			case "append":
				if !selfAppend(info, call, stack) {
					sc.add(call.Pos(), "append may grow its backing array (capacity not provably reused)")
				}
			}
			return
		}
	}

	// Type conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		sc.visitConversion(call, tv.Type, stack)
		return
	}

	callee := CalleeFunc(info, call)
	if callee != nil && callee.Pkg() != nil {
		key := callee.Pkg().Path() + "." + callee.Name()
		if allocPkgs[callee.Pkg().Path()] || allocFuncs[key] {
			sc.add(call.Pos(), fmt.Sprintf("calls %s.%s, a known allocator", callee.Pkg().Name(), callee.Name()))
			return // boxing into its parameters is part of the same sin
		}
	}

	// Variadic packing and interface boxing at the arguments.
	sig := signatureOf(info, fun)
	if sig == nil {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		sc.add(call.Pos(), "variadic call allocates its argument slice")
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		sc.boxing(arg, pt)
	}
}

// visitMake flags map and chan makes unconditionally; a slice make when it
// escapes or its length is not a compile-time constant (the compiler only
// stack-allocates constant-size, non-escaping makes).
func (sc *allocScan) visitMake(call *ast.CallExpr, stack []ast.Node) {
	t := typeOf(sc.pkg.Info, call)
	switch t.Underlying().(type) {
	case *types.Map:
		sc.add(call.Pos(), "make(map) allocates")
	case *types.Chan:
		sc.add(call.Pos(), "make(chan) allocates")
	case *types.Slice:
		constSize := true
		for _, szArg := range call.Args[1:] {
			if tv, ok := sc.pkg.Info.Types[szArg]; !ok || tv.Value == nil {
				constSize = false
			}
		}
		switch {
		case !constSize:
			sc.add(call.Pos(), "make([]T, n) with non-constant size allocates")
		case sc.escapes(call, stack):
			sc.add(call.Pos(), "make([]T, …) escapes to heap")
		}
	}
}

// visitConversion flags interface boxing and string↔[]byte/[]rune copies.
// A []byte→string conversion used directly as a map index or in a
// comparison is exempt: the compiler elides the copy there.
func (sc *allocScan) visitConversion(call *ast.CallExpr, target types.Type, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	operand := call.Args[0]
	opT := typeOf(sc.pkg.Info, operand)
	if opT == nil {
		return
	}
	if _, isIface := target.Underlying().(*types.Interface); isIface {
		sc.boxing(operand, target)
		return
	}
	toString := isString(target) && isByteOrRuneSlice(opT)
	toSlice := isByteOrRuneSlice(target) && isString(opT)
	if !toString && !toSlice {
		return
	}
	if toString && len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.IndexExpr:
			if parent.Index == call {
				if _, isMap := typeOf(sc.pkg.Info, parent.X).Underlying().(*types.Map); isMap && !isAssignTarget(parent, stack[:len(stack)-1]) {
					return // m[string(b)] rvalue: no copy
				}
			}
		case *ast.BinaryExpr:
			switch parent.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				return // string(b) == s: no copy
			}
		}
	}
	sc.add(call.Pos(), "string↔[]byte conversion copies")
}

// boxing flags a concrete, non-pointer-shaped, non-constant value being
// converted to an interface type. Pointer-shaped values (pointers, maps,
// chans, funcs) box without allocating; constants are skipped (small-int
// cache, and flagging `f(1)` everywhere would drown the signal).
func (sc *allocScan) boxing(arg ast.Expr, iface types.Type) {
	tv, ok := sc.pkg.Info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	t := tv.Type
	if _, already := t.Underlying().(*types.Interface); already {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	}
	if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Info()&types.IsUntyped != 0 {
		return
	}
	sc.add(arg.Pos(), fmt.Sprintf("boxes %s into %s", typeLabel(t), typeLabel(iface)))
}

// captures reports whether the function literal references a variable
// declared in the enclosing declaration outside the literal itself.
func (sc *allocScan) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := sc.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		inDecl := pos >= sc.decl.Pos() && pos < sc.decl.End()
		inLit := pos >= lit.Pos() && pos < lit.End()
		if inDecl && !inLit {
			found = true
			return false
		}
		return true
	})
	return found
}

// escapes walks the ancestor chain deciding whether the value produced by
// node outlives the frame. See the package comment for the (deliberately
// caller-friendly) approximation.
func (sc *allocScan) escapes(node ast.Node, stack []ast.Node) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr, *ast.TypeAssertExpr:
			// Transparent wrappers: keep walking.
		case *ast.UnaryExpr:
			if parent.Op != token.AND {
				return false
			}
		case *ast.CompositeLit:
			// An element escapes iff the enclosing literal does.
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return parent.Value == child
		case *ast.AssignStmt:
			return sc.assignEscapes(parent, child)
		case *ast.ValueSpec:
			return sc.valueSpecEscapes(parent, child)
		case *ast.CallExpr:
			if parent.Fun == child {
				return false // immediately invoked function literal
			}
			return sc.argEscapes(parent, child)
		case *ast.IndexExpr:
			return false // keys are copied, elements are read
		case *ast.GoStmt, *ast.DeferStmt:
			return false // the go atom accounts for the spawn itself
		case *ast.BinaryExpr, *ast.StarExpr, *ast.SliceExpr,
			*ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause,
			*ast.BlockStmt, *ast.IncDecStmt, *ast.SelectorExpr:
			return false
		default:
			return true // unknown context: assume the worst
		}
		child = stack[i]
	}
	return false
}

// assignEscapes decides escape through `lhs = <value>`: a store to a
// field, element, or pointee escapes; a store to a plain local escapes iff
// that local has an escaping use somewhere in the body.
func (sc *allocScan) assignEscapes(assign *ast.AssignStmt, child ast.Node) bool {
	idx := -1
	for i, rhs := range assign.Rhs {
		if rhs == child {
			idx = i
			break
		}
	}
	if idx < 0 || len(assign.Lhs) != len(assign.Rhs) {
		return true // unmatched shapes: assume the worst
	}
	switch lhs := ast.Unparen(assign.Lhs[idx]).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := sc.pkg.Info.Defs[lhs]
		if obj == nil {
			obj = sc.pkg.Info.Uses[lhs]
		}
		return obj == nil || sc.escUse[obj]
	default:
		return true // selector/index/star: a heap-reachable store
	}
}

// valueSpecEscapes is assignEscapes for `var x = <value>` declarations.
func (sc *allocScan) valueSpecEscapes(spec *ast.ValueSpec, child ast.Node) bool {
	for i, v := range spec.Values {
		if v != child {
			continue
		}
		if i < len(spec.Names) {
			obj := sc.pkg.Info.Defs[spec.Names[i]]
			return obj == nil || sc.escUse[obj]
		}
	}
	return true
}

// argEscapes decides escape through a call argument: interface parameters
// box and retain; concrete parameters are assumed non-leaking.
func (sc *allocScan) argEscapes(call *ast.CallExpr, child ast.Node) bool {
	sig := signatureOf(sc.pkg.Info, ast.Unparen(call.Fun))
	if sig == nil {
		// Builtin (append's element args land in the slice) or unresolvable:
		// assume retention.
		return true
	}
	for i, arg := range call.Args {
		if arg != child {
			continue
		}
		pt := paramType(sig, i)
		if pt == nil {
			return true
		}
		_, isIface := pt.Underlying().(*types.Interface)
		return isIface
	}
	return true
}

// escapingUses classifies, in one pass, every object with at least one use
// the local escape test treats as escaping: returned, stored into a
// composite or through a selector/index/star assignment, passed to an
// interface parameter, captured by a nested function literal, or sent on a
// channel.
func escapingUses(pkg *Package, decl *ast.FuncDecl) map[types.Object]bool {
	esc := make(map[types.Object]bool)
	if decl.Body == nil {
		return esc
	}
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if identUseEscapes(pkg, id, v, decl, stack) {
			esc[v] = true
		}
	})
	return esc
}

// identUseEscapes classifies one identifier use by its ancestor chain.
func identUseEscapes(pkg *Package, id *ast.Ident, v *types.Var, decl *ast.FuncDecl, stack []ast.Node) bool {
	var child ast.Node = id
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr, *ast.KeyValueExpr:
			// Keep walking (a &x use inherits x's context).
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return parent.Value == child
		case *ast.CompositeLit:
			return true // stored into another structure
		case *ast.AssignStmt:
			// x on the RHS with a heap-reachable LHS escapes.
			for j, rhs := range parent.Rhs {
				if rhs != child || len(parent.Lhs) != len(parent.Rhs) {
					continue
				}
				switch ast.Unparen(parent.Lhs[j]).(type) {
				case *ast.Ident:
					return false // local-to-local move: not tracked further
				default:
					return true
				}
			}
			return false
		case *ast.CallExpr:
			if parent.Fun == child {
				return false
			}
			sig := signatureOf(pkg.Info, ast.Unparen(parent.Fun))
			if sig == nil {
				return false // builtins (len, cap, append self) don't retain
			}
			for j, arg := range parent.Args {
				if arg != child {
					continue
				}
				pt := paramType(sig, j)
				if pt == nil {
					return true
				}
				_, isIface := pt.Underlying().(*types.Interface)
				return isIface
			}
			return false
		case *ast.FuncLit:
			// Used inside a nested literal although declared outside it:
			// captured.
			pos := v.Pos()
			inDecl := pos >= decl.Pos() && pos < decl.End()
			inLit := pos >= parent.Pos() && pos < parent.End()
			return inDecl && !inLit
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr,
			*ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause,
			*ast.BlockStmt, *ast.ExprStmt, *ast.IncDecStmt, *ast.ValueSpec,
			*ast.GoStmt, *ast.DeferStmt:
			return false
		default:
			return false
		}
		child = stack[i]
	}
	return false
}

// selfAppend reports whether the append call is the amortized reuse form
// `x = append(x, …)` (same variable, or same field of the same base), the
// idiom pooled buffers and scratch slices are built on.
func selfAppend(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != len(assign.Rhs) {
		return false
	}
	for i, rhs := range assign.Rhs {
		if rhs == call {
			return sameStorage(info, assign.Lhs[i], call.Args[0])
		}
	}
	return false
}

// sameStorage reports whether two expressions statically denote the same
// variable or the same field of the same variable.
func sameStorage(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && objectOf(info, ae) != nil && objectOf(info, ae) == objectOf(info, be)
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && objectOf(info, ae.Sel) != nil && objectOf(info, ae.Sel) == objectOf(info, be.Sel) &&
			sameStorage(info, ae.X, be.X)
	}
	return false
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// signatureOf resolves the signature a call expression invokes, or nil for
// builtins and unresolvable function values.
func signatureOf(info *types.Info, fun ast.Expr) *types.Signature {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of the i-th argument's parameter, expanding
// the variadic tail to its element type.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isAssignTarget reports whether expr is the target of an assignment
// (m[string(b)] = v stores, so the key conversion is real).
func isAssignTarget(expr ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range assign.Lhs {
		if ast.Unparen(lhs) == expr {
			return true
		}
	}
	return false
}

// typeLabel renders a type compactly for diagnostics (package-qualified by
// name, not full path).
func typeLabel(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
