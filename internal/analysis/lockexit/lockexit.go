// Package lockexit flags Lock/RLock acquisitions that can flow to a
// return without a reachable Unlock: the early-error-return that forgets
// to release, the classic way a server wedges permanently on a path the
// tests never exercise. The scan is intraprocedural and defer-aware —
// `defer mu.Unlock()` discharges the obligation on every path — and
// branch bodies are scanned with a copy of the entry state, so the
// `if cond { mu.Unlock(); return }` idiom stays clean while
// `mu.Lock(); if err != nil { return err }` is caught.
//
// Within one function a lock is identified by the source text of its
// receiver expression (instance-precise, unlike the cross-package
// type-based identity the lockorder facts use — intraprocedurally the
// text is both available and sharper). Guard patterns are exonerated
// conservatively: a lock whose Unlock is referenced as a method value or
// from inside any function literal in the body (a returned unlocker, a
// deferred cleanup closure) is assumed intentionally escorted out and is
// never reported in that function. Goroutine and escaping literals are
// scanned as functions of their own, so `go func() { mu.Lock(); … }()`
// with no release is caught at the literal.
package lockexit

import (
	"go/ast"
	"go/token"
	"go/types"

	"namecoherence/internal/analysis"
)

// Analyzer is the lockexit analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockexit",
	Doc:  "flags Lock paths that can return without a reachable Unlock (defer-aware, error-path sensitive)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body, fn.Type.Results != nil && len(fn.Type.Results.List) > 0)
		}
	}
	return nil, nil
}

// checkBody scans one function (or literal) body. void=false means every
// terminating path ends in an explicit return, so no fall-off check.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, hasResults bool) {
	s := &scanner{pass: pass, escorted: escortedLocks(pass, body)}
	held := s.block(body.List, nil)
	if !hasResults && len(held) > 0 && fallsOff(body) {
		for _, h := range held {
			s.report(body.Rbrace, h, "function ends")
		}
	}
}

// heldLock is one unreleased acquisition.
type heldLock struct {
	name string
	pos  token.Pos
}

type scanner struct {
	pass *analysis.Pass
	// escorted names locks whose Unlock escapes into a closure or method
	// value somewhere in this body: their balance is the holder's plan,
	// not this function's bug.
	escorted map[string]bool
}

func (s *scanner) report(at token.Pos, h heldLock, what string) {
	posn := s.pass.Fset.Position(h.pos)
	s.pass.Reportf(at, "%s while %s is held (locked at line %d) with no deferred or reachable Unlock on this path",
		what, h.name, posn.Line)
}

func (s *scanner) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = s.stmt(stmt, held)
	}
	return held
}

func (s *scanner) stmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if name, locking, ok := s.lockEvent(st.X); ok {
			if locking {
				if s.escorted[name] {
					return held
				}
				return append(held, heldLock{name: name, pos: st.X.Pos()})
			}
			return release(held, name)
		}
		s.literals(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() discharges on every path from here on. A
		// deferred closure releases every lock it textually unlocks.
		if name, locking, ok := s.lockEvent(st.Call); ok && !locking {
			return release(held, name)
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			for _, name := range unlockNames(s.pass, lit.Body) {
				held = release(held, name)
			}
			return held
		}
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
			checkBody(s.pass, lit.Body, literalHasResults(lit))
		}
	case *ast.ReturnStmt:
		for _, h := range held {
			s.report(st.Pos(), h, "return")
		}
		for _, r := range st.Results {
			s.literals(r)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.block(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		s.block(st.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		held = s.block(st.List, held)
	case *ast.LabeledStmt:
		held = s.stmt(st.Stmt, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.literals(rhs)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch c := n.(type) {
			case *ast.CaseClause:
				s.block(c.Body, copyHeld(held))
				return false
			case *ast.CommClause:
				s.block(c.Body, copyHeld(held))
				return false
			}
			return true
		})
	}
	return held
}

// literals finds function literals nested in an expression and checks each
// as an independent function (a stored or spawned closure balances its own
// locks).
func (s *scanner) literals(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			checkBody(s.pass, lit.Body, literalHasResults(lit))
			return false
		}
		return true
	})
}

func literalHasResults(lit *ast.FuncLit) bool {
	return lit.Type.Results != nil && len(lit.Type.Results.List) > 0
}

// fallsOff reports whether control can reach the closing brace: the body
// is empty or its last statement is not a terminating return/goto, panic
// call, or condition-less for loop.
func fallsOff(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	case *ast.ForStmt:
		return last.Cond != nil
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	}
	return true
}

// lockEvent classifies e as a Lock/RLock (locking) or Unlock/RUnlock call
// on a sync.Mutex or sync.RWMutex, returning the receiver's source text.
func (s *scanner) lockEvent(e ast.Expr) (name string, locking, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	fn, _ := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", false, false
	}
	recv := sig.Recv().Type()
	if !analysis.IsNamedType(recv, "sync", "Mutex") && !analysis.IsNamedType(recv, "sync", "RWMutex") {
		return "", false, false
	}
	return exprText(sel.X), sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock", true
}

// escortedLocks collects lock names whose Unlock/RUnlock is referenced
// inside a nested function literal or as a method value anywhere in the
// body — guard objects and unlocker closures whose release happens beyond
// this function's text.
func escortedLocks(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	escorted := make(map[string]bool)
	var inLit int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			inLit++
			ast.Inspect(node.Body, walk)
			inLit--
			return false
		case *ast.SelectorExpr:
			if node.Sel.Name != "Unlock" && node.Sel.Name != "RUnlock" {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[node.Sel].(*types.Func)
			if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			if !analysis.IsNamedType(recv, "sync", "Mutex") && !analysis.IsNamedType(recv, "sync", "RWMutex") {
				return true
			}
			if inLit > 0 || !isCalled(node, body) {
				escorted[exprText(node.X)] = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return escorted
}

// isCalled reports whether the selector is the Fun of a call expression
// somewhere in body (as opposed to a method value like `return mu.Unlock`).
func isCalled(sel *ast.SelectorExpr, body *ast.BlockStmt) bool {
	called := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Expr(sel) {
			called = true
		}
		return !called
	})
	return called
}

func release(held []heldLock, name string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].name == name {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// unlockNames lists the receiver texts of Unlock/RUnlock calls in a block
// (used for deferred cleanup closures).
func unlockNames(pass *analysis.Pass, body *ast.BlockStmt) []string {
	var names []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
			return true
		}
		names = append(names, exprText(sel.X))
		return true
	})
	return names
}

// exprText renders a selector chain like c.mu; other shapes fall back to a
// generic tag so the lock is still tracked.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	case *ast.UnaryExpr:
		return exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[…]"
	}
	return "a mutex"
}
