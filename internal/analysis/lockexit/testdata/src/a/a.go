// Positive and negative cases for lockexit: Lock paths that can return
// (or fall off the end) without a reachable Unlock, against the guards —
// defer, early unlock, and Unlock escorted out through a closure or
// method value.
package a

import (
	"errors"
	"sync"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// ErrorPathLeak unlocks on the happy path but returns early while still
// holding the lock when the guard trips.
func (s *S) ErrorPathLeak(bad bool) error {
	s.mu.Lock()
	if bad {
		return errors.New("bad") // want `return while s\.mu is held \(locked at line 21\) with no deferred or reachable Unlock on this path`
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// FallOffLeak is void and simply runs off the end of the body with the
// lock held.
func (s *S) FallOffLeak() {
	s.mu.Lock()
	s.n++
} // want `function ends while s\.mu is held \(locked at line 33\) with no deferred or reachable Unlock on this path`

// RLockLeak: read locks leak the same way.
func (s *S) RLockLeak(bad bool) int {
	s.rw.RLock()
	if bad {
		return -1 // want `return while s\.rw is held \(locked at line 39\) with no deferred or reachable Unlock on this path`
	}
	n := s.n
	s.rw.RUnlock()
	return n
}

// GoroutineLeak: the spawned literal is its own control flow and falls
// off its end holding the lock.
func (s *S) GoroutineLeak() {
	go func() {
		s.mu.Lock()
		s.n++
	}() // want `function ends while s\.mu is held \(locked at line 52\) with no deferred or reachable Unlock on this path`
}

// DeferIsFine: the canonical pattern.
func (s *S) DeferIsFine(bad bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		return errors.New("bad")
	}
	s.n++
	return nil
}

// EarlyUnlockIsFine releases before each return.
func (s *S) EarlyUnlockIsFine(bad bool) error {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return errors.New("bad")
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// MethodValueEscort hands the Unlock out as a value; the caller owns the
// release, so the return-while-held here is intentional. No report.
func (s *S) MethodValueEscort() func() {
	s.mu.Lock()
	return s.mu.Unlock
}

// ClosureEscort releases inside a returned closure. No report.
func (s *S) ClosureEscort() func() {
	s.mu.Lock()
	return func() {
		s.n++
		s.mu.Unlock()
	}
}

// DeferredClosureIsFine: the deferred literal performs the release.
func (s *S) DeferredClosureIsFine() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

// BranchMergeIsFine unlocks on both arms before returning.
func (s *S) BranchMergeIsFine(bad bool) int {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return -1
	}
	s.mu.Unlock()
	return s.n
}

// PanicPathIsFine: a body ending in panic does not "fall off".
func (s *S) PanicPathIsFine() {
	s.mu.Lock()
	panic("never unlocks, never returns")
}

// StaleIgnore carries a suppression for a diagnostic that no longer
// exists; the unused-suppression audit burns it down.
func (s *S) StaleIgnore() {
	s.mu.Lock() //namingvet:ignore lockexit -- stale: balanced right below // want `unused suppression: this ignore directive matches no lockexit diagnostic`
	s.mu.Unlock()
}
