package lockexit_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/lockexit"
)

func TestLockexit(t *testing.T) {
	analysistest.Run(t, lockexit.Analyzer, "a")
}
