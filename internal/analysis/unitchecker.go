package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig is the JSON configuration the go command hands a -vettool for
// each package unit (the same contract x/tools' unitchecker speaks).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a namingvet-style multichecker. It speaks
// three dialects:
//
//	tool -V=full            — print a version/build id (go vet tool cache)
//	tool -flags             — print the tool's flags as JSON (go vet)
//	tool <unit>.cfg         — vet unit mode: one package per invocation
//	tool [-json] patterns…  — standalone mode: `namingvet ./...`
//
// Exit status: 0 clean, 1 tool failure, 2 diagnostics reported (matching
// x/tools unitchecker so `go vet -vettool` interprets failures correctly).
func Main(progname string, analyzers []*Analyzer) {
	args := os.Args[1:]
	jsonOut := false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			printVersion(progname)
			return
		case args[0] == "-flags":
			// No tool-specific flags: the go command only needs a wellformed
			// JSON list to validate user-supplied vet flags against.
			fmt.Println("[]")
			return
		case args[0] == "-json":
			jsonOut = true
			args = args[1:]
		case args[0] == "-help" || args[0] == "--help" || args[0] == "-h":
			fmt.Fprintf(os.Stderr, "usage: %s [-json] packages...\n\nanalyzers:\n", progname)
			for _, a := range analyzers {
				doc, _, _ := strings.Cut(a.Doc, "\n")
				fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
			}
			os.Exit(0)
		default:
			fmt.Fprintf(os.Stderr, "%s: unknown flag %s\n", progname, args[0])
			os.Exit(1)
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitMode(args[0], analyzers, jsonOut))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standaloneMode(args, analyzers, jsonOut))
}

// printVersion emits the `-V=full` line the go command hashes into its
// build cache key, fingerprinting the tool binary itself.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:12])
}

// unitMode analyzes the single package unit described by a go vet cfg file.
func unitMode(cfgFile string, analyzers []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "parse %s: %v\n", cfgFile, err)
		return 1
	}
	// Packages outside this module (the standard library above all) carry no
	// facts: write an empty table and stop before type-checking them. Their
	// absence from the summary tables only ever hides events — it can not
	// fabricate a diagnostic — and vetting stdlib units would double the cost
	// of every cold `go vet` run.
	if !strings.HasPrefix(cfg.ImportPath, ModulePath) || cfg.Standard[cfg.ImportPath] {
		if cfg.VetxOutput != "" {
			empty, _ := EncodeFacts(Summaries{})
			if err := os.WriteFile(cfg.VetxOutput, empty, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}

	// Merge the facts of every dependency the go command supplied. The
	// tables we write below already contain each unit's transitive facts, so
	// direct dependencies are enough even if the driver prunes the rest.
	imported := Summaries{}
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		if facts, ok := DecodeFacts(data); ok {
			for k, v := range facts {
				imported[k] = v
			}
		}
	}

	fset := token.NewFileSet()
	mapped := mappedImporter{
		mapping: cfg.ImportMap,
		under:   exportImporter(fset, cfg.PackageFile),
	}
	pkg, err := Check(fset, cfg.ImportPath, cfg.GoFiles, mapped, majorMinor(cfg.GoVersion))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// VetxOnly units (dependencies of the packages named on the vet command
	// line) still compute and export real facts — that is the whole point of
	// the facts mechanism — they just skip diagnostics.
	if cfg.VetxOnly {
		merged := ComputeFacts(pkg, imported).All
		return writeVetx(cfg.VetxOutput, merged)
	}
	findings, merged, err := RunAnalyzers(pkg, analyzers, imported)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, merged); code != 0 {
		return code
	}
	return emit(findings, jsonOut)
}

// writeVetx serializes a merged summary table to the unit's VetxOutput
// file ("" means the driver did not ask for one).
func writeVetx(path string, merged Summaries) int {
	if path == "" {
		return 0
	}
	data, err := EncodeFacts(merged)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// standaloneMode loads package patterns with the go toolchain and analyzes
// every matched package: `namingvet ./...`.
func standaloneMode(patterns []string, analyzers []*Analyzer, jsonOut bool) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Load returns packages in dependency order (go list -deps emits a
	// package only after everything it imports), so accumulating each
	// package's merged summaries gives every later package the facts of all
	// its module dependencies.
	acc := Summaries{}
	var all []Finding
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			acc = ComputeFacts(pkg, acc).All
			continue
		}
		findings, merged, err := RunAnalyzers(pkg, analyzers, acc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		acc = merged
		all = append(all, findings...)
	}
	return emit(all, jsonOut)
}

// emit prints findings (plain to stderr, or JSON to stdout) and returns
// the process exit code.
func emit(findings []Finding, jsonOut bool) int {
	if jsonOut {
		out := make(map[string][]map[string]string)
		for _, f := range findings {
			out[f.Analyzer] = append(out[f.Analyzer], map[string]string{
				"posn":    fmt.Sprintf("%s:%d:%d", f.Posn.Filename, f.Posn.Line, f.Posn.Column),
				"message": f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		_ = enc.Encode(out)
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// mappedImporter applies the vet config's source-import-path → canonical
// path mapping (vendoring) before consulting the export-data importer.
type mappedImporter struct {
	mapping map[string]string
	under   types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if canonical, ok := m.mapping[path]; ok {
		path = canonical
	}
	return m.under.Import(path)
}

// majorMinor truncates a toolchain version like go1.24.3 to the go1.24
// language version go/types accepts.
func majorMinor(v string) string {
	if v == "" {
		return ""
	}
	rest, ok := strings.CutPrefix(v, "go")
	if !ok {
		return ""
	}
	parts := strings.SplitN(rest, ".", 3)
	if len(parts) < 2 {
		return "go" + rest
	}
	return "go" + parts[0] + "." + parts[1]
}
