// Package bindingsleak protects the paper's N → E abstraction (Section 2):
// a context object's binding map is the total function the coherence
// machinery measures, so it must change only through the owning type's
// accessor methods (Bind/Unbind), which hold its lock and keep the
// watch/revision bookkeeping honest. The analyzer finds every map-typed
// struct field named "bindings" and reports:
//
//   - any access to the field outside a method of the owning type, and
//   - any escape of the raw map from inside a method — returning it,
//     passing it to a non-builtin call, storing it in a composite literal,
//     or sending it on a channel. Hand out a copy (Snapshot/Clone), never
//     the map.
package bindingsleak

import (
	"go/ast"
	"go/types"

	"namecoherence/internal/analysis"
)

// Analyzer is the bindingsleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bindingsleak",
	Doc:  "keeps context binding maps inside their owning type's methods and stops the raw map from escaping",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	owners := bindingFields(pass.Pkg)
	if len(owners) == 0 {
		return nil, nil
	}
	analysis.WalkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return
		}
		owner, tracked := owners[field]
		if !tracked {
			return
		}
		if !inMethodOf(pass, stack, owner) {
			pass.Reportf(sel.Pos(),
				"bindings map of %s accessed outside its methods; mutate through Bind/Unbind to keep N → E coherent",
				owner.Obj().Name())
			return
		}
		if how := escapes(pass, sel, stack); how != "" {
			pass.Reportf(sel.Pos(),
				"bindings map of %s escapes via %s; hand out a copy so bindings mutate only through methods",
				owner.Obj().Name(), how)
		}
	})
	return nil, nil
}

// bindingFields maps each map-typed struct field named "bindings" to the
// named type that owns it.
func bindingFields(pkg *types.Package) map[*types.Var]*types.Named {
	owners := make(map[*types.Var]*types.Named)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != "bindings" {
				continue
			}
			if _, isMap := f.Type().Underlying().(*types.Map); isMap {
				owners[f] = named
			}
		}
	}
	return owners
}

// inMethodOf reports whether the innermost enclosing function declaration
// is a method of owner (any receiver instance counts — Clone filling a
// fresh BasicContext is as legitimate as the receiver itself).
func inMethodOf(pass *analysis.Pass, stack []ast.Node, owner *types.Named) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fn, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fn.Recv == nil || len(fn.Recv.List) == 0 {
			return false
		}
		obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if obj == nil {
			return false
		}
		sig := obj.Type().(*types.Signature)
		if sig.Recv() == nil {
			return false
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		return ok && named.Obj() == owner.Obj()
	}
	return false
}

// escapes classifies how the raw map leaves the method through its
// immediate syntactic context, or returns "" when the use is a contained
// read/write (indexing, ranging, len/delete/clear, reassignment).
func escapes(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(sel) {
				if isBuiltinCall(pass, p) {
					return ""
				}
				return "call argument"
			}
		}
	case *ast.KeyValueExpr:
		if p.Value == ast.Expr(sel) {
			return "composite literal"
		}
	case *ast.CompositeLit:
		return "composite literal"
	case *ast.SendStmt:
		if p.Value == ast.Expr(sel) {
			return "channel send"
		}
	}
	return ""
}

// isBuiltinCall reports whether the callee is a builtin (len, delete,
// clear, …), which reads or edits the map without retaining it.
func isBuiltinCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}
