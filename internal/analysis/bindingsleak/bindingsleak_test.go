package bindingsleak_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/bindingsleak"
)

func TestBindingsLeak(t *testing.T) {
	analysistest.Run(t, bindingsleak.Analyzer, "a")
}
