// Package a exercises bindingsleak: the bindings map backing a context
// object stays inside the owning type's methods and never escapes raw.
package a

import "sync"

type Name string

type Entity struct{ ID uint64 }

// Context is the owning type: its bindings map is the N → E function.
type Context struct {
	mu       sync.RWMutex
	bindings map[Name]Entity
}

func New() *Context {
	return &Context{bindings: make(map[Name]Entity)} // composite-literal init is fine
}

// Bind mutates through a method: allowed.
func (c *Context) Bind(n Name, e Entity) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bindings[n] = e
}

// Lookup indexes through a method: allowed.
func (c *Context) Lookup(n Name) Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bindings[n]
}

// Snapshot copies: ranging and len are contained uses.
func (c *Context) Snapshot() map[Name]Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := make(map[Name]Entity, len(c.bindings))
	for n, e := range c.bindings {
		m[n] = e
	}
	return m
}

// Clone may fill another instance's map: still inside the owning type.
func (c *Context) Clone() *Context {
	d := New()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for n, e := range c.bindings {
		d.bindings[n] = e
	}
	return d
}

// Raw leaks the live map out of the abstraction.
func (c *Context) Raw() map[Name]Entity {
	return c.bindings // want `bindings map of Context escapes via return`
}

// publish stores the live map in a composite literal.
type view struct{ m map[Name]Entity }

func (c *Context) publish() view {
	return view{m: c.bindings} // want `bindings map of Context escapes via composite literal`
}

// inspect passes the live map to an arbitrary function.
func (c *Context) inspect(f func(map[Name]Entity)) {
	f(c.bindings) // want `bindings map of Context escapes via call argument`
}

// steal mutates the map outside any method of Context.
func steal(c *Context, n Name, e Entity) {
	c.bindings[n] = e // want `bindings map of Context accessed outside its methods`
}

// peek reads it outside a method: also a violation (no lock is held).
func peek(c *Context, n Name) Entity {
	return c.bindings[n] // want `bindings map of Context accessed outside its methods`
}

// Other types with a bindings field that is not a map are not tracked.
type labelled struct {
	bindings []string
}

func (l *labelled) first() string { return l.bindings[0] }
