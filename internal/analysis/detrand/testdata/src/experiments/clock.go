// The allowlisted clock seam: the one file in a deterministic package
// that may read the wall clock, marked by a file-ignore directive.

//namingvet:file-ignore detrand -- single wall-clock seam; tests stub now

package experiments

import "time"

var now = time.Now

func since(start time.Time) time.Duration {
	return now().Sub(start)
}

var _ = since
