// Package experiments exercises detrand: inline wall clocks and math/rand
// are forbidden in deterministic packages. (The directory is named
// experiments so the testdata package path lands in the analyzer's scope.)
package experiments

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func badNow() time.Time {
	return time.Now() // want `inline time\.Now breaks experiment reproducibility`
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want `inline time\.Since breaks experiment reproducibility`
}

func badRand() int {
	return rand.Intn(10) // want `inline rand\.Intn breaks determinism`
}

func badRandV2() uint64 {
	return randv2.Uint64() // want `inline rand\.Uint64 breaks determinism`
}

// okDuration: time types and arithmetic are fine — only the wall-clock
// reads are nondeterministic.
func okDuration(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// okSeeded: a fixed-seed source threaded explicitly is what the workload
// generator does; the analyzer still flags the rand symbols, so seams
// carry a file-ignore directive (see clock.go).
func okTimer(ch chan struct{}) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ch:
	}
}
