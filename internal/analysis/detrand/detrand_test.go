package detrand_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "experiments")
}
