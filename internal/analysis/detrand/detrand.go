// Package detrand keeps fault injection and experiment ledgers
// reproducible. internal/faultnet schedules deterministic faults and
// internal/experiments writes ledgers that E-numbered runs compare across
// machines; a stray time.Now or math/rand call silently turns a
// reproducible experiment into a flaky one. Inside those packages, wall
// clocks and unseeded randomness must flow through one allowlisted seam (a
// clock.go / workload seed source carrying a namingvet:file-ignore
// directive), never appear inline.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to packages whose import path contains one of
// these substrings.
var Scope = []string{"faultnet", "experiments"}

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbids inline time.Now/time.Since and math/rand in deterministic packages (faultnet, experiments)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if fn, ok := obj.(*types.Func); ok && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until") {
					pass.Reportf(sel.Pos(),
						"inline time.%s breaks experiment reproducibility; route wall time through the allowlisted clock seam",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"inline %s.%s breaks determinism; draw randomness from the seeded workload generator",
					obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}
