// Lock-order and blocking-under-lock facts for the lockorder analyzer
// family. Per function, lockFlow scans the body in statement order tracking
// which mutexes are held (the lockheld discipline, upgraded from
// source-text lock identity to a type-based one that survives package
// boundaries), and records three event streams:
//
//   - LockAcquires: direct Lock/RLock calls, each with a snapshot of the
//     locks already held;
//   - LockCalls: statically resolved calls made while at least one lock is
//     held;
//   - BlockOps: operations that can park the goroutine indefinitely on
//     something other than wire I/O — channel send/receive, select with no
//     default, range over a channel, WaitGroup.Wait, Cond.Wait.
//
// A fixpoint then folds callee facts caller-ward, exactly like the alloc
// and deadline flows: AcquiresLocks is the transitive set of locks a call
// may take (with a sample call chain), ChanBlocks taints callers of
// channel-blocking functions, and LockEdges is the per-function slice of
// the module-global acquisition graph ("Held was held when Acq was
// acquired") whose cycles lockorder reports as potential deadlocks.
//
// Lock identity is the receiver type plus field path ("(*nameserver.
// Server).mu"), package-level variables are "pkgname.varname", and locals
// fall back to a function-qualified name. Two instances of the same type
// share an identity — the usual static abstraction; it can merge distinct
// locks (hand-over-hand locking over siblings would false-positive) but
// the repo's locks are one-per-struct. The other biases run the framework
// way: calls through function values and interface methods are opaque, a
// closure passed elsewhere contributes ordering edges but not caller-ward
// blocking facts, so absent evidence makes false negatives, not noise.
//
// Structural non-blocking proofs are excluded from BlockOps entirely: a
// select containing a default clause cannot park, and a send on a
// function-local channel made with a constant capacity that provably
// exceeds the body's send count (and which never leaks to a callee) is a
// handoff, not a rendezvous. Cond.Wait while exactly its one lock is held
// is recorded but marked Exempt — that is the documented contract of
// Cond, and the primitive releases the lock while parked.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockAcq is the serialized evidence that calling a function may acquire
// one lock.
type LockAcq struct {
	// Write: some reachable acquisition is a Lock (not just RLock).
	Write bool `json:",omitempty"`
	// Via is a human-readable sample chain down to the acquiring call.
	Via string `json:",omitempty"`
}

// LockEdge is one serialized acquisition-order edge: Held was held at a
// point where Acq was (or could transitively be) acquired.
type LockEdge struct {
	Held string
	Acq  string
	Via  string `json:",omitempty"`
}

// HeldLock is one entry of a held-set snapshot.
type HeldLock struct {
	ID    string
	Write bool
}

// LockAcquire is one direct Lock/RLock call with the held-set at entry.
type LockAcquire struct {
	ID    string
	Write bool
	Held  []HeldLock
	Pos   token.Pos
	// Caller: the event runs as part of the declaring function's own
	// execution (not inside a spawned or escaping closure), so it
	// contributes to the caller-visible AcquiresLocks fact.
	Caller bool
}

// LockCall is one statically resolved call with the held-set at entry
// (possibly empty — every resolved call is recorded, so the fixpoint can
// propagate callee facts without consulting the context-blind call graph,
// which would fold spawned closures' calls into the spawner).
type LockCall struct {
	Callee *types.Func
	Held   []HeldLock
	Pos    token.Pos
	Caller bool
}

// BlockOp is one potentially-parking operation (channel send/receive,
// select with no default, range over channel, WaitGroup.Wait, Cond.Wait)
// with the held-set at entry.
type BlockOp struct {
	Desc string
	Held []HeldLock
	Pos  token.Pos
	// Exempt: structurally blocking but sanctioned by the primitive's
	// contract (Cond.Wait holding exactly its one lock, which Wait
	// releases while parked). Exempt ops still set ChanBlocks — the
	// goroutine does park — but lockblock does not report them.
	Exempt bool
	Caller bool
}

// lockFlow scans every declared function for lock events and runs the
// AcquiresLocks/ChanBlocks/LockEdges fixpoint. Runs after the main summary
// fixpoint, so imported facts are already merged into pf.All.
func lockFlow(pkg *Package, pf *PackageFacts) {
	// Phase 1: per-body event scan + direct facts.
	for _, ff := range pf.Own {
		sc := &lockScan{pkg: pkg, fn: ff.Fn, decl: ff.Decl}
		sc.chanLocal = localBufferedChans(pkg, ff.Decl)
		sc.block(ff.Decl.Body.List, nil, true)
		ff.LockAcquires, ff.LockCalls, ff.BlockOps = sc.acquires, sc.calls, sc.blocks

		s := &ff.Summary
		for _, acq := range ff.LockAcquires {
			if acq.Caller {
				addAcq(s, acq.ID, acq.Write, fmt.Sprintf("%s acquires %s (%s)",
					funcLabel(ff.Fn), acq.ID, posLabel(pkg, acq.Pos)))
			}
		}
		for _, op := range ff.BlockOps {
			if op.Caller && !s.ChanBlocks {
				s.ChanBlocks = true
				s.ChanVia = fmt.Sprintf("%s (%s)", op.Desc, posLabel(pkg, op.Pos))
			}
		}
	}

	// Phase 2: caller-ward fixpoint over AcquiresLocks and ChanBlocks.
	// Only Caller events propagate — a closure handed elsewhere may never
	// run on this goroutine. Via is set at the first flip, keeping the
	// sample chains finite and deterministic.
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.Own {
			s := &ff.Summary
			for _, lc := range ff.LockCalls {
				if !lc.Caller {
					continue
				}
				cal := summaryOf(pf, lc.Callee)
				if cal.ChanBlocks && !s.ChanBlocks {
					s.ChanBlocks = true
					s.ChanVia = "calls " + funcLabel(lc.Callee) + ": " + cal.ChanVia
					changed = true
				}
				for _, id := range sortedAcqKeys(cal.AcquiresLocks) {
					acq := cal.AcquiresLocks[id]
					if have, ok := s.AcquiresLocks[id]; !ok || (acq.Write && !have.Write) {
						addAcq(s, id, acq.Write, "calls "+funcLabel(lc.Callee)+": "+acq.Via)
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: acquisition-order edges, direct and call-induced, using the
	// converged summaries. A call re-acquiring a held lock is the
	// lockorder analyzer's self-deadlock case, not an edge.
	for _, ff := range pf.Own {
		seen := make(map[[2]string]bool)
		add := func(held, acq, via string) {
			key := [2]string{held, acq}
			if held == acq || seen[key] {
				return
			}
			seen[key] = true
			ff.Summary.LockEdges = append(ff.Summary.LockEdges, LockEdge{Held: held, Acq: acq, Via: via})
		}
		for _, acq := range ff.LockAcquires {
			for _, h := range acq.Held {
				add(h.ID, acq.ID, fmt.Sprintf("%s acquires %s while holding %s (%s)",
					funcLabel(ff.Fn), acq.ID, h.ID, posLabel(pkg, acq.Pos)))
			}
		}
		for _, lc := range ff.LockCalls {
			if len(lc.Held) == 0 {
				continue
			}
			cal := summaryOf(pf, lc.Callee)
			for _, id := range sortedAcqKeys(cal.AcquiresLocks) {
				for _, h := range lc.Held {
					add(h.ID, id, fmt.Sprintf("%s holds %s and calls %s (%s): %s",
						funcLabel(ff.Fn), h.ID, funcLabel(lc.Callee), posLabel(pkg, lc.Pos),
						cal.AcquiresLocks[id].Via))
				}
			}
		}
	}
}

// addAcq merges one acquisition into the summary's AcquiresLocks map.
func addAcq(s *FuncSummary, id string, write bool, via string) {
	if s.AcquiresLocks == nil {
		s.AcquiresLocks = make(map[string]LockAcq)
	}
	have, ok := s.AcquiresLocks[id]
	if !ok {
		s.AcquiresLocks[id] = LockAcq{Write: write, Via: clampVia(via)}
		return
	}
	if write && !have.Write {
		have.Write = true
		s.AcquiresLocks[id] = have
	}
}

// clampVia bounds a sample chain so deeply nested call paths cannot bloat
// the facts file.
func clampVia(via string) string {
	const max = 300
	if len(via) <= max {
		return via
	}
	return via[:max] + "…"
}

// sortedAcqKeys returns the map's keys in sorted order so fact propagation
// and edge emission are deterministic (detrand would want nothing less).
func sortedAcqKeys(m map[string]LockAcq) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// funcLabel renders a function compactly for lock IDs and via chains:
// package-name qualified, "(*nameserver.Server).Bump" / "cluster.Join".
func funcLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + typeLabel(sig.Recv().Type()) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// posLabel renders a position as "file.go:NN".
func posLabel(pkg *Package, pos token.Pos) string {
	posn := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
}

// lockScan walks one function body in statement order tracking held locks,
// the way lockheld's scanner does, and records the three event streams.
type lockScan struct {
	pkg  *Package
	fn   *types.Func
	decl *ast.FuncDecl
	// chanLocal maps channel objects provably unable to block a send:
	// function-local, constant capacity ≥ the body's static send count,
	// never leaked (see localBufferedChans).
	chanLocal map[types.Object]bool

	acquires []LockAcquire
	calls    []LockCall
	blocks   []BlockOp
}

// block scans a statement list, threading the held-set through. caller
// marks whether this code runs as part of the declaring function's own
// execution (false inside spawned or escaping closures).
func (sc *lockScan) block(stmts []ast.Stmt, held []HeldLock, caller bool) []HeldLock {
	for _, stmt := range stmts {
		held = sc.stmt(stmt, held, caller)
	}
	return held
}

func (sc *lockScan) stmt(stmt ast.Stmt, held []HeldLock, caller bool) []HeldLock {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if ev, ok := sc.lockEvent(st.X); ok {
			if ev.acquire {
				sc.acquires = append(sc.acquires, LockAcquire{
					ID: ev.id, Write: ev.write, Held: copyHeldLocks(held), Pos: st.X.Pos(), Caller: caller,
				})
				return append(held, HeldLock{ID: ev.id, Write: ev.write})
			}
			return releaseLock(held, ev.id)
		}
		sc.expr(st.X, held, caller)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to the end of the body. A
		// deferred closure runs on this goroutine (caller=true) but at
		// return time, when the held-set is unknowable here — scan it with
		// an empty one (false-negative bias). Other deferred calls are
		// approximated with the current held-set.
		if ev, ok := sc.lockEvent(st.Call); ok && !ev.acquire {
			return held
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			if lit.Body != nil {
				sc.block(lit.Body.List, nil, caller)
			}
			for _, arg := range st.Call.Args {
				sc.expr(arg, held, caller)
			}
			return held
		}
		sc.expr(st.Call, held, caller)
	case *ast.GoStmt:
		// The spawned goroutine starts with nothing held and its parking
		// does not park the spawner: scan the callee/literal with an
		// empty, non-caller state, the arguments with the current one.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
			sc.block(lit.Body.List, nil, false)
		}
		for _, arg := range st.Call.Args {
			sc.expr(arg, held, caller)
		}
	case *ast.SendStmt:
		sc.expr(st.Chan, held, caller)
		sc.expr(st.Value, held, caller)
		sc.sendOp(st, held, caller)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			sc.expr(rhs, held, caller)
		}
		for _, lhs := range st.Lhs {
			sc.expr(lhs, held, caller)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				sc.expr(e, held, caller)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			sc.expr(r, held, caller)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			held = sc.stmt(st.Init, held, caller)
		}
		sc.expr(st.Cond, held, caller)
		sc.block(st.Body.List, copyHeldLocks(held), caller)
		if st.Else != nil {
			sc.stmt(st.Else, copyHeldLocks(held), caller)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = sc.stmt(st.Init, held, caller)
		}
		if st.Cond != nil {
			sc.expr(st.Cond, held, caller)
		}
		sc.block(st.Body.List, copyHeldLocks(held), caller)
	case *ast.RangeStmt:
		sc.expr(st.X, held, caller)
		if t := typeOf(sc.pkg.Info, st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				sc.blocks = append(sc.blocks, BlockOp{
					Desc: "range over channel", Held: copyHeldLocks(held), Pos: st.Pos(), Caller: caller,
				})
			}
		}
		sc.block(st.Body.List, copyHeldLocks(held), caller)
	case *ast.BlockStmt:
		held = sc.block(st.List, held, caller)
	case *ast.SelectStmt:
		sc.selectOp(st, held, caller)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = sc.stmt(st.Init, held, caller)
		}
		sc.expr(st.Tag, held, caller)
		for _, clause := range st.Body.List {
			if c, ok := clause.(*ast.CaseClause); ok {
				for _, e := range c.List {
					sc.expr(e, held, caller)
				}
				sc.block(c.Body, copyHeldLocks(held), caller)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = sc.stmt(st.Init, held, caller)
		}
		sc.stmt(st.Assign, copyHeldLocks(held), caller)
		for _, clause := range st.Body.List {
			if c, ok := clause.(*ast.CaseClause); ok {
				sc.block(c.Body, copyHeldLocks(held), caller)
			}
		}
	case *ast.LabeledStmt:
		held = sc.stmt(st.Stmt, held, caller)
	}
	return held
}

// expr records call and blocking events inside e. Nested function literals
// are scanned by spawn context: immediately-invoked literals inherit the
// current held-set, everything else (stored, passed, returned) runs with
// an empty, non-caller state.
func (sc *lockScan) expr(e ast.Expr, held []HeldLock, caller bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if node.Body != nil {
				sc.block(node.Body.List, nil, false)
			}
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				sc.blocks = append(sc.blocks, BlockOp{
					Desc: "channel receive", Held: copyHeldLocks(held), Pos: node.Pos(), Caller: caller,
				})
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(node.Fun).(*ast.FuncLit); ok {
				// Immediately invoked: inline code under the current state.
				if lit.Body != nil {
					sc.block(lit.Body.List, copyHeldLocks(held), caller)
				}
				for _, arg := range node.Args {
					sc.expr(arg, held, caller)
				}
				return false
			}
			sc.callOp(node, held, caller)
		}
		return true
	})
}

// callOp classifies one resolved call: a blocking sync primitive
// (WaitGroup.Wait, Cond.Wait), or a plain call recorded for fact
// propagation and, when locks are held, edge building.
func (sc *lockScan) callOp(call *ast.CallExpr, held []HeldLock, caller bool) {
	callee := CalleeFunc(sc.pkg.Info, call)
	if callee == nil {
		return
	}
	recv := callee.Type().(*types.Signature).Recv()
	if callee.Name() == "Wait" && recv != nil {
		switch {
		case IsNamedType(recv.Type(), "sync", "WaitGroup"):
			sc.blocks = append(sc.blocks, BlockOp{
				Desc: "sync.WaitGroup.Wait", Held: copyHeldLocks(held), Pos: call.Pos(), Caller: caller,
			})
			return
		case IsNamedType(recv.Type(), "sync", "Cond"):
			// Wait releases its cond's lock while parked; holding exactly
			// one lock at that point is the primitive's contract. Any
			// extra lock is held across the park and is a real hazard.
			sc.blocks = append(sc.blocks, BlockOp{
				Desc: "sync.Cond.Wait", Held: copyHeldLocks(held), Pos: call.Pos(),
				Exempt: len(held) <= 1, Caller: caller,
			})
			return
		}
	}
	sc.calls = append(sc.calls, LockCall{
		Callee: callee, Held: copyHeldLocks(held), Pos: call.Pos(), Caller: caller,
	})
}

// sendOp records a channel send unless the channel is a provably
// non-blocking local handoff.
func (sc *lockScan) sendOp(st *ast.SendStmt, held []HeldLock, caller bool) {
	if id, ok := ast.Unparen(st.Chan).(*ast.Ident); ok {
		if obj := sc.pkg.Info.Uses[id]; obj != nil && sc.chanLocal[obj] {
			return
		}
	}
	sc.blocks = append(sc.blocks, BlockOp{
		Desc: "channel send", Held: copyHeldLocks(held), Pos: st.Pos(), Caller: caller,
	})
}

// selectOp records a select statement: one with a default clause cannot
// park and contributes no event; one without is a blocking rendezvous.
// Case bodies are scanned with held-set copies either way; the comm
// expressions themselves are part of the select, not standalone ops.
func (sc *lockScan) selectOp(st *ast.SelectStmt, held []HeldLock, caller bool) {
	hasDefault := false
	for _, clause := range st.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		sc.blocks = append(sc.blocks, BlockOp{
			Desc: "select with no default", Held: copyHeldLocks(held), Pos: st.Pos(), Caller: caller,
		})
	}
	for _, clause := range st.Body.List {
		c, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		// Scan value expressions inside the comm op for nested calls, but
		// suppress the comm op's own send/receive event.
		if c.Comm != nil {
			ast.Inspect(c.Comm, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					sc.callOp(call, held, caller)
				}
				return true
			})
		}
		sc.block(c.Body, copyHeldLocks(held), caller)
	}
}

// lockEv is one classified Lock/RLock/Unlock/RUnlock call.
type lockEv struct {
	id      string
	write   bool
	acquire bool
}

// lockEvent classifies e as a mutex operation and resolves the lock's
// identity. TryLock variants never block and are not acquisition-order
// evidence either way, so they are not tracked.
func (sc *lockScan) lockEvent(e ast.Expr) (lockEv, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return lockEv{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEv{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockEv{}, false
	}
	fn, _ := sc.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return lockEv{}, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return lockEv{}, false
	}
	recv := sig.Recv().Type()
	if !IsNamedType(recv, "sync", "Mutex") && !IsNamedType(recv, "sync", "RWMutex") {
		return lockEv{}, false
	}
	return lockEv{
		id:      sc.lockID(sel.X),
		write:   sel.Sel.Name == "Lock" || sel.Sel.Name == "Unlock",
		acquire: sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock",
	}, true
}

// lockID resolves a mutex expression to its module-wide identity: the
// nearest enclosing named type plus the field path ("(*nameserver.
// Server).mu"), a package-level variable ("nameserver.poolMu"), or a
// function-qualified local. An embedded mutex reached by promotion
// ("s.Lock()" with S embedding sync.Mutex) resolves through the named
// type of the receiver expression.
func (sc *lockScan) lockID(e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Package-qualified var: pkg.Mu.
		if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if pn, ok := sc.pkg.Info.Uses[base].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + x.Sel.Name
			}
		}
		if id := namedBaseID(sc.pkg.Info, x.X); id != "" {
			return id + "." + x.Sel.Name
		}
		return sc.lockID(x.X) + "." + x.Sel.Name
	case *ast.Ident:
		if v, ok := sc.pkg.Info.Uses[x].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			// A named type embedding the mutex, locked via promotion.
			if id := namedBaseID(sc.pkg.Info, x); id != "" {
				return id + ".Mutex"
			}
		}
		return funcLabel(sc.fn) + " local " + x.Name
	case *ast.StarExpr:
		return sc.lockID(x.X)
	case *ast.UnaryExpr:
		return sc.lockID(x.X)
	case *ast.IndexExpr:
		if id := namedBaseID(sc.pkg.Info, x); id != "" {
			return id + ".Mutex"
		}
		return sc.lockID(x.X) + "[i]"
	}
	if id := namedBaseID(sc.pkg.Info, e); id != "" {
		return id + ".Mutex"
	}
	return funcLabel(sc.fn) + " anonymous mutex"
}

// namedBaseID renders the named type of e (after pointer indirection) as a
// lock-identity base, or "" when e's type is unnamed or is itself one of
// the sync mutex types (then the caller keeps walking the selector chain
// instead, so "s.mu" keys on Server, not on sync.Mutex).
func namedBaseID(info *types.Info, e ast.Expr) string {
	t := typeOf(info, e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if IsNamedType(t, "sync", "Mutex") || IsNamedType(t, "sync", "RWMutex") {
		return ""
	}
	return "(*" + named.Obj().Pkg().Name() + "." + named.Obj().Name() + ")"
}

// releaseLock removes the most recent hold of id.
func releaseLock(held []HeldLock, id string) []HeldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].ID == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func copyHeldLocks(held []HeldLock) []HeldLock {
	if len(held) == 0 {
		return nil
	}
	return append([]HeldLock(nil), held...)
}

// localBufferedChans finds channels a send can provably never block on:
// declared in this body, made with a constant capacity of at least the
// body's static send count, and never leaked outside the body (the only
// allowed uses are send, receive, range, close, len, and cap — passing
// the channel to any other call, storing it, or returning it forfeits the
// proof, since an unknown producer could fill the buffer).
func localBufferedChans(pkg *Package, decl *ast.FuncDecl) map[types.Object]bool {
	if decl.Body == nil {
		return nil
	}
	capOf := make(map[types.Object]int64)
	sends := make(map[types.Object]int64)
	leaked := make(map[types.Object]bool)

	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[id]
	}
	// Pass 1: constant-capacity makes assigned to locals.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			t := typeOf(pkg.Info, call)
			if t == nil {
				continue
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				continue
			}
			tv, ok := pkg.Info.Types[call.Args[1]]
			if !ok || tv.Value == nil {
				continue
			}
			var capVal int64
			if _, err := fmt.Sscan(tv.Value.ExactString(), &capVal); err != nil || capVal < 1 {
				continue
			}
			if obj := objOf(assign.Lhs[i]); obj != nil {
				if _, dup := capOf[obj]; dup {
					leaked[obj] = true // re-made: give up
				}
				capOf[obj] = capVal
			}
		}
		return true
	})
	if len(capOf) == 0 {
		return nil
	}
	// Pass 2: classify every other use.
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			if obj = pkg.Info.Defs[id]; obj == nil {
				return
			}
		}
		if _, tracked := capOf[obj]; !tracked || len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SendStmt:
			if ast.Unparen(parent.Chan) == ast.Expr(id) {
				sends[obj]++
			} else {
				leaked[obj] = true // the channel itself sent as a value
			}
		case *ast.UnaryExpr:
			if parent.Op != token.ARROW {
				leaked[obj] = true
			}
		case *ast.RangeStmt:
			if ast.Unparen(parent.X) != ast.Expr(id) {
				leaked[obj] = true
			}
		case *ast.CallExpr:
			name := ""
			if fid, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok {
				name = fid.Name
			}
			switch name {
			case "close", "len", "cap":
				// Consuming uses: fine.
			default:
				leaked[obj] = true
			}
		case *ast.AssignStmt:
			// LHS of its own make is pass 1; anything else (reassigned,
			// copied to another variable, stored) forfeits the proof.
			isMakeLHS := false
			for i, lhs := range parent.Lhs {
				if ast.Unparen(lhs) == ast.Expr(id) && i < len(parent.Rhs) {
					if call, ok := ast.Unparen(parent.Rhs[i]).(*ast.CallExpr); ok {
						if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "make" {
							isMakeLHS = true
						}
					}
				}
			}
			if !isMakeLHS {
				leaked[obj] = true
			}
		case *ast.CommClause:
			// select case `<-ch` handled via UnaryExpr; `ch <- v` via SendStmt.
		default:
			leaked[obj] = true
		}
	})
	ok := make(map[types.Object]bool)
	for obj, c := range capOf {
		if !leaked[obj] && sends[obj] <= c {
			ok[obj] = true
		}
	}
	if len(ok) == 0 {
		return nil
	}
	return ok
}
