// Package nameserver exercises wirecanon: values flowing into a wire
// struct's Path/Paths fields must come from a canonicalization function,
// and a core.Path-taking function that reaches the wire must canonicalize.
// (The directory is named nameserver so the testdata package path lands in
// the analyzer's scope.)
package nameserver

import (
	"encoding/gob"
	"net"
	"time"

	"namecoherence/internal/core"
)

// request is this fixture's wire struct (the Path/Paths duck test).
type request struct {
	Path  []string
	Paths [][]string
	Other int
}

// canonical is the fixture's §6 conversion point.
//
//namingvet:canonicalizer
func canonical(p core.Path) ([]string, error) {
	out := make([]string, len(p))
	for i, n := range p {
		out[i] = string(n)
	}
	return out, nil
}

// mustCanonical is a single-result canonicalizer for direct field use.
//
//namingvet:canonicalizer
func mustCanonical(p core.Path) []string {
	out, _ := canonical(p)
	return out
}

// wrapper forwards a canonicalizer call, which makes it one.
func wrapper(p core.Path) ([]string, error) {
	return canonical(p)
}

// toStrings converts without the canonicalizer's checks — not a
// canonicalization point.
func toStrings(p core.Path) []string {
	out := make([]string, len(p))
	for i, n := range p {
		out[i] = string(n)
	}
	return out
}

func okLiteral(p core.Path) request {
	raw, _ := canonical(p)
	return request{Path: raw}
}

func okWrapper(p core.Path) request {
	raw, _ := wrapper(p)
	return request{Path: raw}
}

func okDirectCall(p core.Path) request {
	return request{Path: mustCanonical(p)}
}

func okEmpty() request {
	// nil and make start empty containers; their element stores are
	// checked at the stores' own sites.
	return request{Path: nil, Paths: make([][]string, 0)}
}

func okIndexed(p core.Path, req *request) {
	raws, _ := canonical(p)
	req.Path = raws
	req.Paths = make([][]string, 1)
	req.Paths[0] = mustCanonical(p)
}

func badLiteral(p core.Path) request {
	return request{Path: toStrings(p)} // want `value stored in wire field request\.Path does not pass through a canonicalization function`
}

func badAssign(p core.Path, req *request) {
	req.Path = toStrings(p) // want `value stored in wire field request\.Path does not pass through a canonicalization function`
}

func badElem(p core.Path, req *request) {
	for i, n := range p {
		req.Path[i] = string(n) // want `value stored in wire field request\.Path does not pass through a canonicalization function`
	}
}

func badPathsElem(p core.Path, req *request) {
	req.Paths[0] = toStrings(p) // want `value stored in wire field request\.Paths does not pass through a canonicalization function`
}

func badReassigned(p core.Path) request {
	raw, _ := canonical(p)
	raw = toStrings(p)        // reassignment from a non-canonical source clears the taint
	return request{Path: raw} // want `value stored in wire field request\.Path does not pass through a canonicalization function`
}

// badBoundary takes a name to the wire without any conversion on the way.
func badBoundary(conn net.Conn, p core.Path) error { // want `badBoundary takes a core\.Path and reaches wire I/O but never canonicalizes a name`
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	return gob.NewEncoder(conn).Encode(len(p))
}

// okBoundary canonicalizes before encoding.
func okBoundary(conn net.Conn, p core.Path) error {
	raw, err := canonical(p)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	return gob.NewEncoder(conn).Encode(request{Path: raw})
}

// okBoundaryTransitive reaches the canonicalizer through a helper.
func okBoundaryTransitive(conn net.Conn, p core.Path) error {
	return okBoundary(conn, p)
}

// okNoWire touches no conn: rule 2 does not apply.
func okNoWire(p core.Path) int {
	return len(toStrings(p))
}
