package wirecanon_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/wirecanon"
)

func TestWirecanon(t *testing.T) {
	analysistest.Run(t, wirecanon.Analyzer, "nameserver")
}
