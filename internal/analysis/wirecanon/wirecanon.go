// Package wirecanon enforces the paper's §6 remedy as a build error: a
// name must be converted to its coherent (canonical) wire form before it
// is embedded in a message. Inside the transport packages, any value
// flowing into a wire struct's Path/Paths field must come from a
// canonicalization function — one carrying a //namingvet:canonicalizer
// directive (or trivially wrapping one). Raw `string(n)` conversions and
// untracked variables are exactly how a relative or separator-bearing name
// leaks onto the wire and resolves against the wrong root on the far side.
//
// Two rules:
//
//  1. Field flow: composite literals and assignments targeting a wire
//     struct's Path ([]string) or Paths ([][]string) field must take their
//     value from a canonicalizer call, a variable assigned from one, or an
//     empty container (nil / make) that is filled element-wise from one.
//  2. Boundary functions: a function that takes a core.Path (or []core.Path)
//     parameter and reaches conn I/O must also reach a canonicalizer —
//     otherwise it is a transmission path on which no coherence conversion
//     can possibly have happened.
package wirecanon

import (
	"go/ast"
	"go/types"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to transport packages.
var Scope = []string{"cluster", "nameserver"}

// Analyzer is the wirecanon analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wirecanon",
	Doc:  "requires values flowing into wire-struct Path/Paths fields to pass through a canonicalization function (§6)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, ff := range pass.Facts.Own {
		// The field-flow rule is a send-side obligation: canonicalize
		// before embedding in a message. A declared wire decoder is the
		// receive side — its Path/Paths stores carry bytes that arrived
		// off the wire, re-validated where they are used — so the rule
		// does not apply there.
		if !ff.WireDecoder {
			checkFieldFlow(pass, ff.Decl)
		}
		checkBoundary(pass, ff)
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// checkFieldFlow walks one function body tracking which locals hold
// canonicalized values and reporting wire-field stores that bypass them.
func checkFieldFlow(pass *analysis.Pass, decl *ast.FuncDecl) {
	canon := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			// raw, err := canonicalizer(p) taints raw as canonical; any
			// later reassignment from a non-canonical source clears it.
			if len(node.Rhs) == 1 {
				from := canonicalValue(pass, canon, node.Rhs[0])
				for i, lhs := range node.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj == nil {
						continue
					}
					// Only the value result of a canonicalizer call is
					// canonical; the trailing error result is not.
					canon[obj] = from && i == 0
				}
			}
			for i, lhs := range node.Lhs {
				if field, base := wireFieldTarget(pass, lhs); field != "" {
					rhs := node.Rhs[0]
					if len(node.Rhs) == len(node.Lhs) {
						rhs = node.Rhs[i]
					}
					if !canonicalValue(pass, canon, rhs) {
						pass.Reportf(node.Pos(),
							"value stored in wire field %s.%s does not pass through a canonicalization function (§6: canonicalize before embedding in a message)",
							base, field)
					}
				}
			}
		case *ast.CompositeLit:
			if !isWireStruct(pass.TypesInfo.Types[node].Type) {
				return true
			}
			name := wireStructName(pass.TypesInfo.Types[node].Type)
			for _, elt := range node.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !wireField(key.Name) {
					continue
				}
				if !canonicalValue(pass, canon, kv.Value) {
					pass.Reportf(kv.Value.Pos(),
						"value stored in wire field %s.%s does not pass through a canonicalization function (§6: canonicalize before embedding in a message)",
						name, key.Name)
				}
			}
		}
		return true
	})
}

// checkBoundary applies rule 2 to one function.
func checkBoundary(pass *analysis.Pass, ff *analysis.FuncFacts) {
	if !ff.Summary.ConnIO || ff.Summary.ReachesCanon {
		return
	}
	sig := ff.Fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if s, ok := t.(*types.Slice); ok {
			t = s.Elem()
		}
		if analysis.IsNamedType(t, "namecoherence/internal/core", "Path") {
			pass.Reportf(ff.Decl.Name.Pos(),
				"%s takes a core.Path and reaches wire I/O but never canonicalizes a name (§6: convert to coherent form before transmission)",
				ff.Decl.Name.Name)
			return
		}
	}
}

// canonicalValue reports whether e is an acceptable source for a wire
// Path/Paths field.
func canonicalValue(pass *analysis.Pass, canon map[types.Object]bool, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return true
		}
		return canon[pass.TypesInfo.Uses[v]]
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
				// A fresh empty container is fine; the element stores are
				// checked at their own assignment sites.
				return true
			}
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, v)
		if callee == nil {
			return false
		}
		if ff := pass.Facts.OwnFacts(callee); ff != nil {
			return ff.Summary.Canonicalizes
		}
		return pass.Facts.All[analysis.FuncKey(callee)].Canonicalizes
	case *ast.IndexExpr:
		// raws[i] where raws came from a canonicalizer.
		if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
			return canon[pass.TypesInfo.Uses[id]]
		}
	}
	return false
}

// wireFieldTarget matches assignment targets of the form x.Path,
// x.Paths, x.Path[i], or x.Paths[i] where x is a wire struct, returning
// the field and struct names ("" if not a wire-field store).
func wireFieldTarget(pass *analysis.Pass, lhs ast.Expr) (field, base string) {
	e := ast.Unparen(lhs)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !wireField(sel.Sel.Name) {
		return "", ""
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if !isWireStruct(t) {
		return "", ""
	}
	return sel.Sel.Name, wireStructName(t)
}

func wireField(name string) bool { return name == "Path" || name == "Paths" }

// isWireStruct reports whether t (after pointer indirection) is a named
// struct with a Path []string or Paths [][]string field — the duck test
// for this module's gob wire requests.
func isWireStruct(t types.Type) bool {
	return wireStructName(t) != ""
}

func wireStructName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "Path":
			if isStringSlice(f.Type(), 1) {
				return named.Obj().Name()
			}
		case "Paths":
			if isStringSlice(f.Type(), 2) {
				return named.Obj().Name()
			}
		}
	}
	return ""
}

// isStringSlice reports whether t is a depth-deep slice of string.
func isStringSlice(t types.Type, depth int) bool {
	for ; depth > 0; depth-- {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		t = s.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}
