// Package cluster exercises goroleak: every go statement in a serving
// package needs a join — a WaitGroup whose Add precedes the spawn, a done
// channel somebody consumes, or a stop-signal receive. (The directory is
// named cluster so the testdata package path lands in the analyzer's
// scope.)
package cluster

import (
	"context"
	"sync"
)

// owner is a long-lived serving type: it has a Close, so its goroutines
// must be joinable before Close returns.
type owner struct {
	wg    sync.WaitGroup
	stop  chan struct{}
	work  chan int
	count int
}

func (o *owner) Close() error {
	close(o.stop)
	o.wg.Wait()
	return nil
}

// okWaitGroup registers with the WaitGroup before spawning.
func (o *owner) okWaitGroup() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		o.count++
	}()
}

// badNoAdd signals a WaitGroup nothing ever Added to: Wait can return
// before the goroutine even starts.
func (o *owner) badNoAdd() {
	go func() { // want `goroutine calls o\.wg\.Done, but no o\.wg\.Add precedes the go statement in badNoAdd`
		defer o.wg.Done()
		o.count++
	}()
}

// badAddAfter orders the Add after the spawn, which is the same race.
func (o *owner) badAddAfter() {
	go func() { // want `goroutine calls o\.wg\.Done, but no o\.wg\.Add precedes the go statement in badAddAfter`
		defer o.wg.Done()
		o.count++
	}()
	o.wg.Add(1)
}

// okDone closes a done channel the spawner blocks on.
func (o *owner) okDone() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		o.count++
	}()
	<-done
}

// okDoneStored hands the done channel to another party instead of
// receiving inline; that party can join.
func (o *owner) okDoneStored(sink chan<- chan struct{}) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		o.count++
	}()
	sink <- done
}

// badDoneUnused closes a channel nobody outside the goroutine ever sees.
func (o *owner) badDoneUnused() {
	done := make(chan struct{})
	go func() { // want `goroutine closes done, but done is never received or stored outside the goroutine; nothing can join it`
		defer close(done)
		o.count++
	}()
}

// okStop blocks on the owner's stop channel: Close's close(o.stop)
// releases it.
func (o *owner) okStop() {
	go func() {
		<-o.stop
		o.count++
	}()
}

// okStopRange drains a work channel until a stop-named channel closes.
func (o *owner) okStopRange(stopc chan struct{}) {
	go func() {
		for range stopc {
		}
	}()
}

// okCtx blocks on a context cancellation.
func (o *owner) okCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
		o.count++
	}()
}

// badSendOwner joins only through a send, but owner has a Close method
// that cannot wait on a send.
func (o *owner) badSendOwner() {
	go func() { // want `goroutine joins only through a send on o\.work; badSendOwner's receiver has a Close method, so join it with a WaitGroup that Close waits on`
		o.work <- 1
	}()
}

// badNamed spawns a named function directly; there is nothing to join.
func (o *owner) badNamed() {
	go tick(o) // want `go tick spawns a named function with no join; wrap it in a func literal that signals a WaitGroup or closes a done channel`
}

// badNothing has no join discipline at all.
func (o *owner) badNothing() {
	go func() { // want `goroutine in badNothing has no join: signal a WaitGroup whose Add precedes the spawn, close a consumed done channel, or block on a stop signal`
		o.count++
	}()
}

func tick(o *owner) { o.count++ }

// scatter is request-scoped fan-in: no Close on the spawner (a free
// function), so a channel send is an acceptable join.
func scatter(vals []int) int {
	ch := make(chan int, len(vals))
	for _, v := range vals {
		go func() {
			ch <- v * 2
		}()
	}
	total := 0
	for range vals {
		total += <-ch
	}
	return total
}

// okWorkerPool is the per-connection leader/followers pool: each worker
// registers with the local WaitGroup before its spawn and the pool is
// joined before the serve call returns.
func (o *owner) okWorkerPool(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.count++
		}()
	}
	wg.Wait()
}

// okSharedBody spawns a shared named body wrapped in a literal that
// signals the WaitGroup — the shape ResolveBatch uses so its single-shard
// case can run the same body inline on the caller's goroutine.
func (o *owner) okSharedBody(vals []int) {
	body := func(v int) { o.count += v }
	for _, v := range vals {
		if len(vals) == 1 {
			body(v)
			continue
		}
		o.wg.Add(1)
		go func(v int) {
			defer o.wg.Done()
			body(v)
		}(v)
	}
}
