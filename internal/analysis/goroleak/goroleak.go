// Package goroleak requires every goroutine spawned in the serving
// packages (internal/cluster, internal/nameserver, internal/replsvc,
// internal/remote) to be joinable before its owner's Close returns: the
// goroutine must signal a sync.WaitGroup whose Add precedes the spawn,
// close a done channel that the spawner actually consumes or stores, or
// block on a stop/context signal. A goroutine nothing waits for outlives
// Close, races teardown, and — under the paper's coherence lens — keeps
// resolving names against a world that has already moved on.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"namecoherence/internal/analysis"
)

// Scope limits the analyzer to the long-running serving packages.
var Scope = []string{"cluster", "nameserver", "replsvc", "remote"}

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "requires every go statement in serving packages to be joined (WaitGroup, done channel, or stop signal) before Close returns",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, ff := range pass.Facts.Own {
		decl := ff.Decl
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, decl, g)
			return true
		})
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// checkGo classifies one go statement's join discipline. The rules are
// ordered strongest-first; the first matching one decides.
func checkGo(pass *analysis.Pass, decl *ast.FuncDecl, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		pass.Reportf(g.Pos(),
			"go %s spawns a named function with no join; wrap it in a func literal that signals a WaitGroup or closes a done channel",
			exprText(g.Call.Fun))
		return
	}

	// Rule 1: the body signals a WaitGroup. The matching Add must appear
	// lexically before the spawn in the same declaration, or the counter
	// can hit zero early and release a concurrent Wait.
	if wg := wgDoneRecv(pass, lit.Body); wg != "" {
		if !addBefore(pass, decl, wg, g.Pos()) {
			pass.Reportf(g.Pos(),
				"goroutine calls %s.Done, but no %s.Add precedes the go statement in %s",
				wg, wg, decl.Name.Name)
		}
		return
	}

	// Rule 2: the body closes a done channel; someone outside the
	// goroutine must consume or store that channel, or the close signals
	// nobody.
	if ch := closedChan(pass, lit); ch != nil {
		if !usedOutside(pass, decl, lit, ch) {
			pass.Reportf(g.Pos(),
				"goroutine closes %s, but %s is never received or stored outside the goroutine; nothing can join it",
				ch.Name(), ch.Name())
		}
		return
	}

	// Rule 3: the body blocks on a stop signal (ctx.Done() or a
	// stop/done/quit channel receive) — a supervised worker.
	if receivesStop(pass, lit.Body) {
		return
	}

	// Rule 4: the body's only link to the spawner is a channel send.
	// That joins a request-scoped fan-in, but if the spawning method's
	// receiver type has a Close method, Close cannot wait on it.
	if ch := sentChan(lit.Body); ch != "" {
		if receiverHasClose(pass, decl) {
			pass.Reportf(g.Pos(),
				"goroutine joins only through a send on %s; %s's receiver has a Close method, so join it with a WaitGroup that Close waits on",
				ch, decl.Name.Name)
		}
		return
	}

	pass.Reportf(g.Pos(),
		"goroutine in %s has no join: signal a WaitGroup whose Add precedes the spawn, close a consumed done channel, or block on a stop signal",
		decl.Name.Name)
}

// wgDoneRecv finds a (*sync.WaitGroup).Done call in body and returns its
// receiver's source text ("" if none).
func wgDoneRecv(pass *analysis.Pass, body *ast.BlockStmt) string {
	out := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if out != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Name() != "Done" {
			return true
		}
		recv := callee.Type().(*types.Signature).Recv()
		if recv == nil || !analysis.IsNamedType(recv.Type(), "sync", "WaitGroup") {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = exprText(sel.X)
		}
		return false
	})
	return out
}

// addBefore reports whether wg.Add(…) on the same receiver text appears in
// decl before the spawn position.
func addBefore(pass *analysis.Pass, decl *ast.FuncDecl, wg string, goPos token.Pos) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= goPos {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Name() != "Add" {
			return true
		}
		recv := callee.Type().(*types.Signature).Recv()
		if recv == nil || !analysis.IsNamedType(recv.Type(), "sync", "WaitGroup") {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && exprText(sel.X) == wg {
			found = true
		}
		return false
	})
	return found
}

// closedChan finds a close(ch) in the goroutine body where ch is a simple
// identifier, returning its object (nil if none).
func closedChan(pass *analysis.Pass, lit *ast.FuncLit) types.Object {
	var obj types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" || !isBuiltin(pass, id) {
			return true
		}
		if len(call.Args) == 1 {
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				obj = pass.TypesInfo.Uses[arg]
			}
		}
		return false
	})
	return obj
}

// usedOutside reports whether obj is referenced in decl outside the
// goroutine literal and outside its own defining statement — received,
// returned, appended to a field, passed along: any of these gives a party
// that can observe the close.
func usedOutside(pass *analysis.Pass, decl *ast.FuncDecl, lit *ast.FuncLit, obj types.Object) bool {
	used := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if id.Pos() >= lit.Pos() && id.Pos() < lit.End() {
			return true
		}
		used = true
		return false
	})
	return used
}

// receivesStop reports whether body blocks on a shutdown signal: a receive
// from ctx.Done() (any context.Context Done method) or from a channel
// whose name suggests a stop signal.
func receivesStop(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	check := func(e ast.Expr) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil && callee.Name() == "Done" {
				if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
					found = true
				}
			}
			return
		}
		name := strings.ToLower(exprText(e))
		for _, hint := range []string{"stop", "quit", "done", "closing", "shutdown"} {
			if strings.Contains(name, hint) {
				found = true
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				check(node.X)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[node.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					check(node.X)
				}
			}
		}
		return !found
	})
	return found
}

// sentChan finds a channel send in body and returns the channel's source
// text ("" if none).
func sentChan(body *ast.BlockStmt) string {
	out := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if out != "" {
			return false
		}
		if send, ok := n.(*ast.SendStmt); ok {
			out = exprText(send.Chan)
			return false
		}
		return true
	})
	return out
}

// isBuiltin reports whether id resolves to a predeclared builtin (not a
// shadowing user definition).
func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true // pre-typecheck fallback: unshadowed builtins resolve to nothing
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// receiverHasClose reports whether decl is a method whose receiver type
// has a Close method.
func receiverHasClose(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.Types[decl.Recv.List[0].Type].Type
	if t == nil {
		return false
	}
	return analysis.HasMethods(t, "Close")
}

// exprText renders a selector chain for matching and messages.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[…]"
	case *ast.StarExpr:
		return exprText(x.X)
	case *ast.UnaryExpr:
		return exprText(x.X)
	}
	return "?"
}
