package goroleak_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "cluster")
}
