package lockheld_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "a")
}

// TestLockHeldDepth pins the transitive closure: taint flows through a
// five-deep call chain and converges on mutual recursion.
func TestLockHeldDepth(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "depth")
}

// TestLockHeldCrossPackage pins the facts-based rule: imported functions
// with a Blocks fact taint lock-holding call sites in dependent packages.
func TestLockHeldCrossPackage(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "xpkg")
}
