package lockheld_test

import (
	"testing"

	"namecoherence/internal/analysis/analysistest"
	"namecoherence/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "a")
}
