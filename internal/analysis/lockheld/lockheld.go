// Package lockheld flags blocking I/O reachable while a sync.Mutex or
// sync.RWMutex is held: gob encode/decode, net.Conn reads and writes,
// Dial-ish calls, and time.Sleep. A name server that blocks on the network
// while holding the lock that guards its caches or connection pool wedges
// every other request behind one slow peer — the repo's hot paths
// (connPool, Server, cluster Client) must never do it.
//
// The check is intraprocedural for lock state but interprocedural for I/O:
// a same-package function that (transitively) performs blocking I/O taints
// its callers, so `mu.Lock(); c.roundTrip(req)` is caught even though the
// conn I/O lives inside roundTrip. Cross-package calls are checked the
// same way through the facts layer: a module function whose exported
// Blocks summary is set (it reaches conn I/O or time.Sleep) taints its
// callers in every dependent package.
package lockheld

import (
	"go/ast"
	"go/types"

	"namecoherence/internal/analysis"
)

// Analyzer is the lockheld analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flags blocking I/O (gob, net.Conn, Dial*, Sleep) while a sync mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	io := buildIOSet(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			s := &scanner{pass: pass, io: io}
			s.block(fn.Body.List, nil)
		}
	}
	return nil, nil
}

// buildIOSet computes the set of same-package functions that perform
// blocking I/O, directly or through same-package calls (transitive
// closure over the package's static call graph).
func buildIOSet(pass *analysis.Pass) map[*types.Func]bool {
	direct := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if blockingCall(pass, call) != "" {
					direct[obj] = true
				}
				if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil &&
					callee.Pkg() == pass.Pkg {
					callees[obj] = append(callees[obj], callee)
				}
				return true
			})
		}
	}
	// Propagate taint to callers until the set stops growing.
	closure := make(map[*types.Func]bool, len(direct))
	for fn := range direct {
		closure[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for fn, outs := range callees {
			if closure[fn] {
				continue
			}
			for _, out := range outs {
				if closure[out] {
					closure[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return closure
}

// blockingCall classifies a call as direct blocking I/O, returning a short
// description ("" if it is not).
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	switch fn.Name() {
	case "Encode":
		if recv != nil && analysis.IsNamedType(recv.Type(), "encoding/gob", "Encoder") {
			return "gob encode"
		}
	case "Decode":
		if recv != nil && analysis.IsNamedType(recv.Type(), "encoding/gob", "Decoder") {
			return "gob decode"
		}
	case "Read", "Write":
		// os.File passes the conn duck test (it has SetDeadline for
		// pipes), but a file write blocks for one disk flush, not for as
		// long as a hung peer pleases — serializing a manifest rewrite
		// under its store's lock is the intended pattern, and casimmut
		// owns the durability side of file writes.
		if recv != nil && analysis.HasMethods(recv.Type(), "Read", "Write", "SetDeadline") &&
			!analysis.IsNamedType(recv.Type(), "os", "File") {
			return "net.Conn " + fn.Name()
		}
	case "Sleep":
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			return "time.Sleep"
		}
	}
	if len(fn.Name()) >= 4 {
		head := fn.Name()[:4]
		if head == "Dial" || head == "dial" {
			return fn.Name()
		}
	}
	return ""
}

// heldLock is one acquired mutex, identified by the source text of its
// receiver expression ("c.mu").
type heldLock struct {
	name string
}

// scanner walks a function body in statement order, tracking which mutexes
// are held. Branch bodies are scanned with a copy of the entry state, so
// the common `if cond { mu.Unlock(); return }` early-exit idiom does not
// poison the fall-through path. Function literals are scanned separately
// with an empty state (a spawned or stored closure does not inherit the
// creating goroutine's locks).
type scanner struct {
	pass *analysis.Pass
	io   map[*types.Func]bool
}

func (s *scanner) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = s.stmt(stmt, held)
	}
	return held
}

func (s *scanner) stmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if name, locking := s.lockEvent(st.X); name != "" {
			if locking {
				return append(held, heldLock{name: name})
			}
			return release(held, name)
		}
		s.expr(st.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to the end of the
		// function; nothing to update. Other deferred work is scanned as
		// a fresh function.
		if name, locking := s.lockEvent(st.Call); name != "" && !locking {
			return held
		}
		s.expr(st.Call.Fun, nil)
		for _, arg := range st.Call.Args {
			s.expr(arg, held)
		}
	case *ast.GoStmt:
		s.expr(st.Call.Fun, nil)
		for _, arg := range st.Call.Args {
			s.expr(arg, held)
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.expr(rhs, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		s.block(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		s.expr(st.X, held)
		s.block(st.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		held = s.block(st.List, held)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch c := n.(type) {
			case *ast.CaseClause:
				s.block(c.Body, copyHeld(held))
				return false
			case *ast.CommClause:
				s.block(c.Body, copyHeld(held))
				return false
			}
			return true
		})
	case *ast.SendStmt:
		s.expr(st.Value, held)
	case *ast.LabeledStmt:
		held = s.stmt(st.Stmt, held)
	}
	return held
}

// expr reports blocking calls inside e (entered with the given lock state);
// nested function literals are scanned with a fresh, empty state.
func (s *scanner) expr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if node.Body != nil {
				sub := &scanner{pass: s.pass, io: s.io}
				sub.block(node.Body.List, nil)
			}
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if what := blockingCall(s.pass, node); what != "" {
				s.pass.Reportf(node.Pos(), "%s while %s is held", what, held[len(held)-1].name)
				return true
			}
			if fn := analysis.CalleeFunc(s.pass.TypesInfo, node); fn != nil {
				if s.io[fn] {
					s.pass.Reportf(node.Pos(), "call to %s, which performs blocking I/O, while %s is held",
						fn.Name(), held[len(held)-1].name)
				} else if fn.Pkg() != nil && fn.Pkg() != s.pass.Pkg &&
					s.pass.Facts.All[analysis.FuncKey(fn)].Blocks {
					s.pass.Reportf(node.Pos(), "call to %s.%s, which performs blocking I/O, while %s is held",
						fn.Pkg().Name(), fn.Name(), held[len(held)-1].name)
				}
			}
		}
		return true
	})
}

// lockEvent classifies e as a Lock/RLock (locking=true) or Unlock/RUnlock
// (locking=false) call on a sync.Mutex or sync.RWMutex, returning the
// receiver's source text as the lock's identity ("" if not a lock op).
func (s *scanner) lockEvent(e ast.Expr) (name string, locking bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	fn, _ := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if !analysis.IsNamedType(recv, "sync", "Mutex") && !analysis.IsNamedType(recv, "sync", "RWMutex") {
		return "", false
	}
	return exprText(sel.X), sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"
}

// release removes the most recent hold of name.
func release(held []heldLock, name string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].name == name {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// exprText renders a selector chain like c.mu; other shapes fall back to a
// generic tag so the lock is still tracked.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	case *ast.UnaryExpr:
		return exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[…]"
	}
	return "a mutex"
}
