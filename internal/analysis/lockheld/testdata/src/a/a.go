// Package a exercises lockheld: blocking I/O (gob, net.Conn, Dial*,
// Sleep) must not be reachable while a sync mutex is held.
package a

import (
	"encoding/gob"
	"net"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rwmu sync.RWMutex
	enc  *gob.Encoder
	dec  *gob.Decoder
	conn net.Conn
	n    int
}

// direct I/O between Lock and Unlock is flagged.
func (s *server) badDirect(v any) error {
	s.mu.Lock()
	err := s.enc.Encode(v) // want `gob encode while s\.mu is held`
	s.mu.Unlock()
	return err
}

// a deferred unlock keeps the lock held to the end of the function.
func (s *server) badDeferred(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Decode(v) // want `gob decode while s\.mu is held`
}

// read locks count too, and conn I/O and dials are in the blocking set.
func (s *server) badConn(buf []byte) {
	s.rwmu.RLock()
	_, _ = s.conn.Read(buf)               // want `net\.Conn Read while s\.rwmu is held`
	_, _ = net.Dial("tcp", "127.0.0.1:1") // want `Dial while s\.rwmu is held`
	time.Sleep(time.Millisecond)          // want `time\.Sleep while s\.rwmu is held`
	s.rwmu.RUnlock()
}

// roundTrip performs I/O with no lock of its own: fine here, but it
// taints callers that hold a lock (transitive closure).
func (s *server) roundTrip(v any) error {
	if err := s.enc.Encode(v); err != nil {
		return err
	}
	return s.dec.Decode(v)
}

func (s *server) badIndirect(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roundTrip(v) // want `call to roundTrip, which performs blocking I/O, while s\.mu is held`
}

// okAfterUnlock releases before the round-trip: the early-exit idiom.
func (s *server) okAfterUnlock(v any) error {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return nil
	}
	s.n++
	s.mu.Unlock()
	return s.roundTrip(v)
}

// okGoroutine: a spawned goroutine does not inherit the creator's locks.
func (s *server) okGoroutine(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.roundTrip(v)
	}()
}

// okPlainLock: bookkeeping under a lock without I/O is fine.
func (s *server) okPlainLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
