// Package depth exercises lockheld's transitive closure: taint must
// propagate through call chains of arbitrary depth and converge on
// mutual recursion.
package depth

import (
	"encoding/gob"
	"sync"
	"time"
)

type server struct {
	mu  sync.Mutex
	enc *gob.Encoder
	n   int
}

// l1..l5 is a five-deep chain whose I/O lives only at the bottom.
func (s *server) l5(v any) error { return s.enc.Encode(v) }
func (s *server) l4(v any) error { return s.l5(v) }
func (s *server) l3(v any) error { return s.l4(v) }
func (s *server) l2(v any) error { return s.l3(v) }
func (s *server) l1(v any) error { return s.l2(v) }

func (s *server) badDeep(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l1(v) // want `call to l1, which performs blocking I/O, while s\.mu is held`
}

// ping and pong call each other; the closure must converge and taint
// both, since ping sleeps.
func (s *server) ping(n int) {
	if n > 0 {
		s.pong(n - 1)
	}
	time.Sleep(time.Millisecond)
}

func (s *server) pong(n int) {
	if n > 0 {
		s.ping(n - 1)
	}
}

func (s *server) badMutual() {
	s.mu.Lock()
	s.pong(3) // want `call to pong, which performs blocking I/O, while s\.mu is held`
	s.mu.Unlock()
}

// pure chains never touch I/O: holding the lock across them is fine.
func (s *server) p3() int { s.n++; return s.n }
func (s *server) p2() int { return s.p3() }
func (s *server) p1() int { return s.p2() }

func (s *server) okPure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p1()
}

// okUnlocked runs the deep chain with no lock held.
func (s *server) okUnlocked(v any) error {
	return s.l1(v)
}
