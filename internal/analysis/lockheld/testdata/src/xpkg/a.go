// Package xpkg exercises lockheld's cross-package rule: a call to an
// imported function whose Blocks fact is set, made while a mutex is held,
// is reported at the call site.
package xpkg

import (
	"sync"

	"namecoherence/internal/analysis/lockheld/testdata/src/xpkg/inner"
)

type guard struct {
	mu sync.Mutex
	n  int
}

func (g *guard) bad() {
	g.mu.Lock()
	inner.Blocking() // want `call to inner\.Blocking, which performs blocking I/O, while g\.mu is held`
	g.mu.Unlock()
}

func (g *guard) badTransitive() {
	g.mu.Lock()
	defer g.mu.Unlock()
	inner.Wrapper() // want `call to inner\.Wrapper, which performs blocking I/O, while g\.mu is held`
}

func (g *guard) okPure() {
	g.mu.Lock()
	g.n = inner.Pure()
	g.mu.Unlock()
}

func (g *guard) okUnlocked() {
	inner.Blocking()
}
