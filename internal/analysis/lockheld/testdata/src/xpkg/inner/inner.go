// Package inner is the cross-package half of the xpkg fixture: its
// exported Blocks facts must reach the importing package.
package inner

import "time"

// Blocking sleeps, so its Blocks fact is set.
func Blocking() { time.Sleep(time.Millisecond) }

// Wrapper blocks only transitively, through Blocking.
func Wrapper() { Blocking() }

// Pure never blocks.
func Pure() int { return 1 }
