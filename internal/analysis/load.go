package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// FactsOnly marks a module dependency that was loaded to compute
	// interprocedural summaries but was not named by the load patterns:
	// drivers compute its facts and skip its diagnostics.
	FactsOnly bool
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -export -deps` run in dir and
// type-checks every matched non-standard package against the gc export
// data of its dependencies. Non-standard dependency packages that the
// patterns did not name are returned too, marked FactsOnly, so drivers can
// accumulate their interprocedural summaries. Packages come back in
// dependency order (-deps lists a package only after its imports), which
// is exactly the order facts accumulation needs. The go toolchain does the
// compilation; no network or module download is involved for a
// self-contained module.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %w", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not analyzable", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp, "")
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = t.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that reads gc export data files
// (as produced by `go list -export` or by the go command for vet) through
// lookup by import path.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Check parses and type-checks one package from its file list.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
