// Package coherence defines and measures coherence in naming (§4 of the
// paper): the property that the entity denoted by a name is the same for
// different activities.
//
// The package distinguishes the paper's two grades:
//
//   - strict coherence: the name denotes the same entity for every activity
//     in the probe set;
//   - weak coherence: the name denotes replicas of the same replicated
//     object (§5) — sufficient for replicated commands and libraries.
//
// Because contexts are total functions, a name that is unbound for every
// activity denotes ⊥E everywhere and is formally coherent; such names are
// reported separately as vacuous so that measurements are not inflated by
// names nobody can resolve.
//
// Measurement is parameterized by a ResolveFunc, so any scheme — any
// combination of closure rule and context arrangement — can be probed
// uniformly.
package coherence
