package coherence

import (
	"errors"
	"testing"

	"namecoherence/internal/core"
)

// mapResolver is a Resolver over a fixed table, standing in for one
// client's view of a name service.
type mapResolver struct {
	table map[string]core.Entity
}

func (m *mapResolver) Resolve(p core.Path) (core.Entity, error) {
	if e, ok := m.table[p.String()]; ok {
		return e, nil
	}
	return core.Undefined, errors.New("not bound")
}

func TestMeasureResolvers(t *testing.T) {
	w := core.NewWorld()
	shared := w.NewObject("shared")
	r1a := w.NewObject("bin-1")
	r2a := w.NewObject("bin-2")
	if _, err := w.NewReplicaGroup(r1a, r2a); err != nil {
		t.Fatal(err)
	}

	clients := []Resolver{
		&mapResolver{table: map[string]core.Entity{
			"vice/g": shared, "bin": r1a, "local/x": w.NewObject("x1"),
		}},
		&mapResolver{table: map[string]core.Entity{
			"vice/g": shared, "bin": r2a, "local/x": w.NewObject("x2"),
		}},
	}
	paths := []core.Path{
		core.ParsePath("vice/g"),  // same entity for both -> coherent
		core.ParsePath("bin"),     // distinct replicas -> weak
		core.ParsePath("local/x"), // distinct plain objects -> incoherent
		core.ParsePath("ghost"),   // neither resolves -> vacuous
	}
	rep := MeasureResolvers(w, clients, paths)
	if rep.Total != 4 || rep.Coherent != 1 || rep.Weak != 1 || rep.Incoherent != 1 || rep.Vacuous != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := rep.ByName["vice/g"]; got != Coherent {
		t.Fatalf("vice/g = %v", got)
	}
	if got := rep.StrictDegree(); got != 1.0/3.0 {
		t.Fatalf("StrictDegree = %v", got)
	}
}

func TestMeasureResolversErrorIsDisagreement(t *testing.T) {
	w := core.NewWorld()
	o := w.NewObject("o")
	clients := []Resolver{
		&mapResolver{table: map[string]core.Entity{"a": o}},
		&mapResolver{table: map[string]core.Entity{}}, // resolution error
	}
	rep := MeasureResolvers(w, clients, []core.Path{core.ParsePath("a")})
	if rep.Incoherent != 1 {
		t.Fatalf("resolving vs. erroring must disagree; report = %+v", rep)
	}
}

func TestClassifyMatchesCheckName(t *testing.T) {
	w, acts, resolve := fixture(t)
	for _, name := range []string{"g", "x", "bin", "half", "ghost"} {
		p := core.ParsePath(name)
		want := CheckName(w, resolve, acts, p)
		results := make([]core.Entity, len(acts))
		for i, a := range acts {
			results[i], _ = resolve(a, p)
		}
		if got := Classify(w, results); got != want {
			t.Fatalf("Classify(%q) = %v, CheckName = %v", name, got, want)
		}
	}
}
