package coherence

import (
	"namecoherence/internal/core"
)

// Outcome classifies the meaning of one name across a set of activities.
type Outcome int

// Outcomes, from strongest to weakest.
const (
	// Coherent: every activity resolves the name to the same defined entity.
	Coherent Outcome = iota + 1
	// WeaklyCoherent: the resolved entities are replicas of the same
	// replicated object (and not all identical).
	WeaklyCoherent
	// Vacuous: the name resolves to ⊥E for every activity. Formally
	// coherent (all denote the undefined entity), reported separately.
	Vacuous
	// Incoherent: at least two activities resolve the name to entities
	// that are neither equal nor replicas of each other (resolving vs. not
	// resolving also counts as disagreement).
	Incoherent
)

// String returns the outcome tag.
func (o Outcome) String() string {
	switch o {
	case Coherent:
		return "coherent"
	case WeaklyCoherent:
		return "weak"
	case Vacuous:
		return "vacuous"
	case Incoherent:
		return "incoherent"
	default:
		return "unknown"
	}
}

// ResolveFunc resolves a compound name on behalf of an activity under some
// scheme. Implementations return core.Undefined (with or without an error)
// when the name does not resolve; errors are not themselves disagreement —
// only the resolved entity matters.
type ResolveFunc func(a core.Entity, p core.Path) (core.Entity, error)

// CheckName classifies the coherence of one compound name across the given
// activities under the scheme embodied by resolve.
func CheckName(w *core.World, resolve ResolveFunc, activities []core.Entity, p core.Path) Outcome {
	results := make([]core.Entity, len(activities))
	for i, a := range activities {
		e, _ := resolve(a, p)
		results[i] = e
	}
	return Classify(w, results)
}

// Classify reduces the entities one name resolved to — one per observer —
// to an outcome. It is the core of CheckName, exposed so that observers
// other than model activities (for example the clients of a sharded name
// service) can be probed with the same rules.
func Classify(w *core.World, results []core.Entity) Outcome {
	allUndefined := true
	for _, e := range results {
		if !e.IsUndefined() {
			allUndefined = false
			break
		}
	}
	if len(results) == 0 || allUndefined {
		return Vacuous
	}

	allEqual := true
	for _, e := range results[1:] {
		if e != results[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return Coherent
	}

	// Not all equal: weak coherence requires pairwise same-replica (which
	// also excludes any undefined result).
	for i := 1; i < len(results); i++ {
		if !w.SameReplica(results[0], results[i]) {
			return Incoherent
		}
	}
	return WeaklyCoherent
}

// Report aggregates outcomes over a set of probe names.
type Report struct {
	// Total is the number of names probed.
	Total int
	// Coherent, Weak, Vacuous and Incoherent count outcomes.
	Coherent, Weak, Vacuous, Incoherent int
	// ByName records the outcome per probe name (keyed by Path.String()).
	ByName map[string]Outcome
}

// Add records one outcome.
func (r *Report) Add(p core.Path, o Outcome) {
	if r.ByName == nil {
		r.ByName = make(map[string]Outcome)
	}
	r.ByName[p.String()] = o
	r.Total++
	switch o {
	case Coherent:
		r.Coherent++
	case WeaklyCoherent:
		r.Weak++
	case Vacuous:
		r.Vacuous++
	case Incoherent:
		r.Incoherent++
	}
}

// Meaningful returns the number of non-vacuous probes.
func (r *Report) Meaningful() int { return r.Total - r.Vacuous }

// StrictDegree is the fraction of meaningful probes that are strictly
// coherent; 1 if there are no meaningful probes.
func (r *Report) StrictDegree() float64 {
	m := r.Meaningful()
	if m == 0 {
		return 1
	}
	return float64(r.Coherent) / float64(m)
}

// WeakDegree is the fraction of meaningful probes that are at least weakly
// coherent; 1 if there are no meaningful probes.
func (r *Report) WeakDegree() float64 {
	m := r.Meaningful()
	if m == 0 {
		return 1
	}
	return float64(r.Coherent+r.Weak) / float64(m)
}

// Measure probes every path across the given activities and aggregates the
// outcomes.
func Measure(w *core.World, resolve ResolveFunc, activities []core.Entity, paths []core.Path) *Report {
	r := &Report{ByName: make(map[string]Outcome, len(paths))}
	for _, p := range paths {
		r.Add(p, CheckName(w, resolve, activities, p))
	}
	return r
}

// Resolver is a client-side view of a naming service: anything that can
// resolve a compound name to an entity. Cluster clients, name-server
// clients and replica pools all satisfy it.
type Resolver interface {
	Resolve(p core.Path) (core.Entity, error)
}

// MeasureResolvers probes every path across a set of resolvers — typically
// the concurrent clients of a distributed name service, each with its own
// cache state — and aggregates outcomes exactly like Measure. A resolution
// error counts as ⊥E for that resolver, so resolving vs. not resolving is
// disagreement, as in CheckName.
func MeasureResolvers(w *core.World, resolvers []Resolver, paths []core.Path) *Report {
	r := &Report{ByName: make(map[string]Outcome, len(paths))}
	results := make([]core.Entity, len(resolvers))
	for _, p := range paths {
		for i, res := range resolvers {
			e, err := res.Resolve(p)
			if err != nil {
				e = core.Undefined
			}
			results[i] = e
		}
		r.Add(p, Classify(w, results))
	}
	return r
}

// PairMatrix records, for every pair of activities, the fraction of probe
// names on which the two agree (same entity or same replica group; mutual
// non-resolution also counts as agreement between the pair).
type PairMatrix struct {
	// Activities indexes the matrix.
	Activities []core.Entity
	// Agree[i][j] is the agreement fraction between Activities[i] and
	// Activities[j]. The diagonal is 1.
	Agree [][]float64
}

// MeasurePairs computes the pairwise agreement matrix over the probe paths.
func MeasurePairs(w *core.World, resolve ResolveFunc, activities []core.Entity, paths []core.Path) *PairMatrix {
	n := len(activities)
	results := make([][]core.Entity, n)
	for i, a := range activities {
		results[i] = make([]core.Entity, len(paths))
		for k, p := range paths {
			e, _ := resolve(a, p)
			results[i][k] = e
		}
	}
	m := &PairMatrix{
		Activities: append([]core.Entity(nil), activities...),
		Agree:      make([][]float64, n),
	}
	for i := range m.Agree {
		m.Agree[i] = make([]float64, n)
		m.Agree[i][i] = 1
	}
	if len(paths) == 0 {
		return m
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			agree := 0
			for k := range paths {
				ei, ej := results[i][k], results[j][k]
				if ei == ej || w.SameReplica(ei, ej) {
					agree++
				}
			}
			frac := float64(agree) / float64(len(paths))
			m.Agree[i][j] = frac
			m.Agree[j][i] = frac
		}
	}
	return m
}

// MinAgreement returns the smallest off-diagonal agreement fraction — the
// weakest link in the probe set. Returns 1 for fewer than two activities.
func (m *PairMatrix) MinAgreement() float64 {
	minVal := 1.0
	for i := range m.Agree {
		for j := range m.Agree[i] {
			if i != j && m.Agree[i][j] < minVal {
				minVal = m.Agree[i][j]
			}
		}
	}
	return minVal
}

// MeanAgreement returns the mean off-diagonal agreement fraction. Returns 1
// for fewer than two activities.
func (m *PairMatrix) MeanAgreement() float64 {
	n := len(m.Agree)
	if n < 2 {
		return 1
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += m.Agree[i][j]
			cnt++
		}
	}
	return sum / float64(cnt)
}
