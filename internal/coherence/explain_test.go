package coherence

import (
	"strings"
	"testing"

	"namecoherence/internal/core"
)

func TestExplain(t *testing.T) {
	w, acts, resolve := fixture(t)
	ex := Explain(w, resolve, acts, core.PathOf("x"))
	if ex.Outcome != Incoherent {
		t.Fatalf("Outcome = %v", ex.Outcome)
	}
	if len(ex.PerActivity) != 3 {
		t.Fatalf("PerActivity = %d", len(ex.PerActivity))
	}
	for i, r := range ex.PerActivity {
		if r.Activity != acts[i] {
			t.Fatal("activity order not preserved")
		}
		if r.Entity.IsUndefined() {
			t.Fatal("x should resolve for every activity")
		}
	}
}

func TestExplainDisagreements(t *testing.T) {
	w, acts, resolve := fixture(t)
	// "x" differs for all three: 3 disagreeing pairs.
	ex := Explain(w, resolve, acts, core.PathOf("x"))
	if got := len(ex.Disagreements(w)); got != 3 {
		t.Fatalf("disagreements = %d, want 3", got)
	}
	// "g" agrees everywhere.
	ex = Explain(w, resolve, acts, core.PathOf("g"))
	if got := len(ex.Disagreements(w)); got != 0 {
		t.Fatalf("disagreements = %d, want 0", got)
	}
	// "bin" is same-replica everywhere: no disagreements.
	ex = Explain(w, resolve, acts, core.PathOf("bin"))
	if got := len(ex.Disagreements(w)); got != 0 {
		t.Fatalf("replica disagreements = %d, want 0", got)
	}
}

func TestExplainWriteTo(t *testing.T) {
	w, acts, resolve := fixture(t)
	ex := Explain(w, resolve, acts, core.PathOf("half"))
	var sb strings.Builder
	if err := ex.WriteTo(w, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "incoherent") {
		t.Fatalf("missing outcome:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 { // header + 3 activities
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestReportString(t *testing.T) {
	w, acts, resolve := fixture(t)
	rep := Measure(w, resolve, acts, []core.Path{
		core.PathOf("g"), core.PathOf("x"), core.PathOf("bin"), core.PathOf("ghost"),
	})
	s := rep.String()
	for _, want := range []string{"probes=4", "coherent=1", "weak=1", "incoherent=1", "vacuous=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestReportIncoherentsAndSummary(t *testing.T) {
	w, acts, resolve := fixture(t)
	rep := Measure(w, resolve, acts, []core.Path{
		core.PathOf("x"), core.PathOf("half"), core.PathOf("g"),
	})
	inc := rep.Incoherents()
	if len(inc) != 2 || inc[0] != "half" || inc[1] != "x" {
		t.Fatalf("Incoherents = %v", inc)
	}
	sum := rep.Summary(1)
	if !strings.Contains(sum, "half") || !strings.Contains(sum, "(1 more)") {
		t.Fatalf("Summary = %q", sum)
	}
	// A clean report has no incoherent suffix.
	clean := Measure(w, resolve, acts, []core.Path{core.PathOf("g")})
	if strings.Contains(clean.Summary(5), "incoherent:") {
		t.Fatalf("clean Summary = %q", clean.Summary(5))
	}
}
