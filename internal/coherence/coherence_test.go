package coherence

import (
	"math"
	"testing"

	"namecoherence/internal/core"
)

// fixture builds a world with three activities whose contexts:
//   - agree on "g" (all → shared),
//   - disagree on "x" (each → its own object),
//   - bind "bin" to per-activity replicas of one replica group,
//   - bind "half" only for the first activity,
//   - bind nothing for "ghost".
func fixture(t *testing.T) (w *core.World, acts []core.Entity, resolve ResolveFunc) {
	t.Helper()
	w = core.NewWorld()
	shared := w.NewObject("shared")
	ctxs := make(map[core.EntityID]core.Context)

	var bins []core.Entity
	for i := 0; i < 3; i++ {
		a := w.NewActivity("a")
		c := core.NewContext()
		c.Bind("g", shared)
		c.Bind("x", w.NewObject("x-private"))
		bin := w.NewObject("bin-replica")
		bins = append(bins, bin)
		c.Bind("bin", bin)
		if i == 0 {
			c.Bind("half", w.NewObject("half"))
		}
		ctxs[a.ID] = c
		acts = append(acts, a)
	}
	if _, err := w.NewReplicaGroup(bins...); err != nil {
		t.Fatal(err)
	}
	resolve = func(a core.Entity, p core.Path) (core.Entity, error) {
		return w.Resolve(ctxs[a.ID], p)
	}
	return w, acts, resolve
}

func TestCheckName(t *testing.T) {
	w, acts, resolve := fixture(t)
	tests := []struct {
		give string
		want Outcome
	}{
		{give: "g", want: Coherent},
		{give: "x", want: Incoherent},
		{give: "bin", want: WeaklyCoherent},
		{give: "half", want: Incoherent},
		{give: "ghost", want: Vacuous},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got := CheckName(w, resolve, acts, core.ParsePath(tt.give))
			if got != tt.want {
				t.Fatalf("CheckName(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestCheckNameSingleActivity(t *testing.T) {
	w, acts, resolve := fixture(t)
	// A single activity is trivially coherent with itself for bound names.
	if got := CheckName(w, resolve, acts[:1], core.PathOf("x")); got != Coherent {
		t.Fatalf("single activity: %v, want coherent", got)
	}
	if got := CheckName(w, resolve, nil, core.PathOf("x")); got != Vacuous {
		t.Fatalf("no activities: %v, want vacuous", got)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		give Outcome
		want string
	}{
		{Coherent, "coherent"},
		{WeaklyCoherent, "weak"},
		{Vacuous, "vacuous"},
		{Incoherent, "incoherent"},
		{Outcome(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestMeasure(t *testing.T) {
	w, acts, resolve := fixture(t)
	paths := []core.Path{
		core.PathOf("g"), core.PathOf("x"), core.PathOf("bin"),
		core.PathOf("half"), core.PathOf("ghost"),
	}
	r := Measure(w, resolve, acts, paths)
	if r.Total != 5 || r.Coherent != 1 || r.Weak != 1 || r.Incoherent != 2 || r.Vacuous != 1 {
		t.Fatalf("report = %+v", r)
	}
	if r.Meaningful() != 4 {
		t.Fatalf("Meaningful = %d, want 4", r.Meaningful())
	}
	if got, want := r.StrictDegree(), 0.25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("StrictDegree = %v, want %v", got, want)
	}
	if got, want := r.WeakDegree(), 0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("WeakDegree = %v, want %v", got, want)
	}
	if r.ByName["bin"] != WeaklyCoherent {
		t.Fatalf("ByName[bin] = %v", r.ByName["bin"])
	}
}

func TestReportDegreesEmptyAndVacuous(t *testing.T) {
	var r Report
	if r.StrictDegree() != 1 || r.WeakDegree() != 1 {
		t.Fatal("empty report degrees should be 1")
	}
	r.Add(core.PathOf("ghost"), Vacuous)
	if r.StrictDegree() != 1 || r.WeakDegree() != 1 {
		t.Fatal("all-vacuous report degrees should be 1")
	}
}

func TestMeasurePairs(t *testing.T) {
	w, acts, resolve := fixture(t)
	paths := []core.Path{core.PathOf("g"), core.PathOf("x"), core.PathOf("bin"), core.PathOf("ghost")}
	m := MeasurePairs(w, resolve, acts, paths)

	if len(m.Agree) != 3 {
		t.Fatalf("matrix size %d", len(m.Agree))
	}
	for i := range m.Agree {
		if m.Agree[i][i] != 1 {
			t.Fatal("diagonal not 1")
		}
	}
	// Pairs agree on g (same), bin (replicas), ghost (both undefined);
	// disagree on x: 3/4.
	want := 0.75
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			if math.Abs(m.Agree[i][j]-want) > 1e-9 {
				t.Fatalf("Agree[%d][%d] = %v, want %v", i, j, m.Agree[i][j], want)
			}
		}
	}
	if got := m.MinAgreement(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MinAgreement = %v", got)
	}
	if got := m.MeanAgreement(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanAgreement = %v", got)
	}
}

func TestMeasurePairsSymmetric(t *testing.T) {
	w, acts, resolve := fixture(t)
	paths := []core.Path{core.PathOf("g"), core.PathOf("x"), core.PathOf("half")}
	m := MeasurePairs(w, resolve, acts, paths)
	for i := range m.Agree {
		for j := range m.Agree {
			if m.Agree[i][j] != m.Agree[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasurePairsNoPaths(t *testing.T) {
	w, acts, resolve := fixture(t)
	m := MeasurePairs(w, resolve, acts, nil)
	if m.MinAgreement() != 0 && m.MinAgreement() != 1 {
		// With no paths, off-diagonals stay 0 by construction; MinAgreement
		// reflects that. Just assert no panic and a sane matrix size.
		t.Fatalf("MinAgreement = %v", m.MinAgreement())
	}
	if len(m.Agree) != len(acts) {
		t.Fatalf("matrix size %d", len(m.Agree))
	}
}

func TestMeasurePairsSingle(t *testing.T) {
	w, acts, resolve := fixture(t)
	m := MeasurePairs(w, resolve, acts[:1], []core.Path{core.PathOf("x")})
	if m.MeanAgreement() != 1 {
		t.Fatalf("MeanAgreement for single activity = %v, want 1", m.MeanAgreement())
	}
}

// Property: coherence is monotone under restriction — if a name is coherent
// for a set of activities, it is coherent (or vacuous) for every subset.
func TestCoherenceMonotoneUnderSubset(t *testing.T) {
	w, acts, resolve := fixture(t)
	paths := []core.Path{core.PathOf("g"), core.PathOf("bin"), core.PathOf("x"), core.PathOf("ghost")}
	subsets := [][]core.Entity{
		acts, {acts[0], acts[1]}, {acts[1], acts[2]}, {acts[0], acts[2]},
	}
	for _, p := range paths {
		full := CheckName(w, resolve, acts, p)
		if full != Coherent && full != WeaklyCoherent {
			continue
		}
		for _, sub := range subsets {
			got := CheckName(w, resolve, sub, p)
			if got == Incoherent {
				t.Fatalf("name %q coherent for full set but incoherent for subset", p)
			}
		}
	}
}
