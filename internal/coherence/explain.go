package coherence

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"namecoherence/internal/core"
)

// Explanation records, for one name, what each activity resolved it to —
// the evidence behind an Outcome.
type Explanation struct {
	// Path is the probed compound name.
	Path core.Path
	// Outcome is the classification.
	Outcome Outcome
	// PerActivity lists (activity, entity, error) in probe order.
	PerActivity []ActivityResult
}

// ActivityResult is one activity's resolution of the probed name.
type ActivityResult struct {
	// Activity performed the resolution.
	Activity core.Entity
	// Entity is what the name denoted (Undefined on failure).
	Entity core.Entity
	// Err is the resolution error, if any.
	Err error
}

// Explain probes one name like CheckName but keeps the per-activity
// evidence.
func Explain(w *core.World, resolve ResolveFunc, activities []core.Entity, p core.Path) *Explanation {
	ex := &Explanation{
		Path:        p.Clone(),
		PerActivity: make([]ActivityResult, 0, len(activities)),
	}
	for _, a := range activities {
		e, err := resolve(a, p)
		ex.PerActivity = append(ex.PerActivity, ActivityResult{Activity: a, Entity: e, Err: err})
	}
	ex.Outcome = CheckName(w, resolve, activities, p)
	return ex
}

// Disagreements returns the indices of activity pairs that resolve the
// name to non-agreeing entities (neither equal nor same-replica).
func (ex *Explanation) Disagreements(w *core.World) [][2]int {
	var out [][2]int
	for i := 0; i < len(ex.PerActivity); i++ {
		for j := i + 1; j < len(ex.PerActivity); j++ {
			ei, ej := ex.PerActivity[i].Entity, ex.PerActivity[j].Entity
			if ei != ej && !w.SameReplica(ei, ej) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// WriteTo renders the explanation, one activity per line.
func (ex *Explanation) WriteTo(w *core.World, out io.Writer) error {
	if _, err := fmt.Fprintf(out, "%q: %s\n", ex.Path, ex.Outcome); err != nil {
		return err
	}
	for _, r := range ex.PerActivity {
		line := fmt.Sprintf("  %v(%s) -> %v", r.Activity, w.Label(r.Activity), r.Entity)
		if !r.Entity.IsUndefined() {
			line += fmt.Sprintf(" (%s)", w.Label(r.Entity))
		}
		if r.Err != nil {
			line += " [" + r.Err.Error() + "]"
		}
		if _, err := fmt.Fprintln(out, line); err != nil {
			return err
		}
	}
	return nil
}

// String renders the report's aggregate counts and degrees.
func (r *Report) String() string {
	return fmt.Sprintf(
		"probes=%d coherent=%d weak=%d incoherent=%d vacuous=%d strict=%.2f weak-degree=%.2f",
		r.Total, r.Coherent, r.Weak, r.Incoherent, r.Vacuous,
		r.StrictDegree(), r.WeakDegree())
}

// Incoherents returns the probe names classified incoherent, sorted.
func (r *Report) Incoherents() []string {
	var out []string
	for name, o := range r.ByName {
		if o == Incoherent {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Summary renders the report plus the (at most max) first incoherent
// names, for log lines and CLI output.
func (r *Report) Summary(max int) string {
	var sb strings.Builder
	sb.WriteString(r.String())
	inc := r.Incoherents()
	if len(inc) == 0 {
		return sb.String()
	}
	sb.WriteString("; incoherent:")
	for i, name := range inc {
		if i == max {
			fmt.Fprintf(&sb, " …(%d more)", len(inc)-max)
			break
		}
		sb.WriteString(" " + name)
	}
	return sb.String()
}
