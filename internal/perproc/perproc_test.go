package perproc

import (
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
)

// setup builds two machines with distinct local files and a shared project
// subtree that the parent attaches into its namespace.
func setup(t *testing.T) (w *core.World, m1, m2 *machine.Machine, proj *dirtree.Tree) {
	t.Helper()
	w = core.NewWorld()
	m1 = machine.New(w, "m1")
	m2 = machine.New(w, "m2")
	if _, err := m1.Tree.Create(core.ParsePath("data/one"), "on m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Tree.Create(core.ParsePath("data/two"), "on m2"); err != nil {
		t.Fatal(err)
	}
	proj = dirtree.New(w, "proj")
	if _, err := proj.Create(core.ParsePath("src/main"), "code"); err != nil {
		t.Fatal(err)
	}
	return w, m1, m2, proj
}

func TestNewProcSeesLocal(t *testing.T) {
	_, m1, _, _ := setup(t)
	p, err := New(m1, "p")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Resolve("/local/data/one")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m1.Tree.Lookup(core.ParsePath("data/one"))
	if got != want {
		t.Fatal("/local does not reach the machine tree")
	}
}

func TestAttachAndDetach(t *testing.T) {
	_, m1, _, proj := setup(t)
	p, err := New(m1, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	got, err := p.Resolve("/proj/src/main")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := proj.Lookup(core.ParsePath("src/main"))
	if got != want {
		t.Fatal("attached subsystem not visible")
	}
	if err := p.Detach(nil, "proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Resolve("/proj/src/main"); err == nil {
		t.Fatal("detached subsystem still visible")
	}
}

func TestNamespacesAreIndependent(t *testing.T) {
	_, m1, _, proj := setup(t)
	p1, err := New(m1, "p1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(m1, "p2")
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	// p2 does not see p1's attachment: per-process, not per-machine.
	if _, err := p2.Resolve("/proj/src/main"); err == nil {
		t.Fatal("attachment leaked between namespaces")
	}
}

func TestForkCopiesBindings(t *testing.T) {
	_, m1, _, proj := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	child, err := parent.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	pGot, _ := parent.Resolve("/proj/src/main")
	cGot, err := child.Resolve("/proj/src/main")
	if err != nil || pGot != cGot {
		t.Fatalf("child does not share parent's view: %v vs %v (%v)", cGot, pGot, err)
	}
	// The copy is one level deep: child detaching does not affect parent.
	if err := child.Detach(nil, "proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Resolve("/proj/src/main"); err != nil {
		t.Fatal("child detach affected parent namespace")
	}
}

func TestRemoteExecParameterCoherence(t *testing.T) {
	w, m1, m2, proj := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}

	child, err := RemoteExec(parent, m2, "child")
	if err != nil {
		t.Fatal(err)
	}
	if child.Process.Machine != m2 {
		t.Fatal("child on wrong machine")
	}
	if child.Process.Parent != parent.Process {
		t.Fatal("child parent not recorded")
	}

	// Names the parent can pass as parameters resolve identically for the
	// remote child — coherence without global names.
	reg := machine.NewRegistry()
	reg.Add(parent.Process, child.Process)
	rep := coherence.Measure(w, reg.ResolveAbs,
		[]core.Entity{parent.Activity(), child.Activity()},
		[]core.Path{core.ParsePath("proj/src/main")})
	if rep.StrictDegree() != 1 {
		t.Fatalf("parameter names not coherent: %+v", rep)
	}

	// The child also reaches executor-local files under /local…
	got, err := child.Resolve("/local/data/two")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m2.Tree.Lookup(core.ParsePath("data/two"))
	if got != want {
		t.Fatal("child cannot reach executor-local files")
	}
	// …and the parent's machine files via the parent's /local binding
	// having been rebound: the parent still sees m1 under /local.
	pLocal, _ := parent.Resolve("/local/data/one")
	wantParent, _ := m1.Tree.Lookup(core.ParsePath("data/one"))
	if pLocal != wantParent {
		t.Fatal("parent /local changed")
	}
}

// Contrast with the per-machine view: a child spawned plainly on the target
// machine is incoherent with the parent for the same parameter names.
func TestPerMachineBaselineIncoherent(t *testing.T) {
	w, m1, m2, proj := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	baseline := m2.Spawn("baseline-child")

	reg := machine.NewRegistry()
	reg.Add(parent.Process, baseline)
	rep := coherence.Measure(w, reg.ResolveAbs,
		[]core.Entity{parent.Activity(), baseline.Activity},
		[]core.Path{core.ParsePath("proj/src/main")})
	if rep.Incoherent != 1 {
		t.Fatalf("baseline unexpectedly coherent: %+v", rep)
	}
}

func TestRemoteExecLocalShadowsParent(t *testing.T) {
	_, m1, m2, _ := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	child, err := RemoteExec(parent, m2, "child")
	if err != nil {
		t.Fatal(err)
	}
	// /local is rebound: the child's /local/data/one (an m1 file) must not
	// resolve, while /local/data/two (m2) must.
	if _, err := child.Resolve("/local/data/one"); err == nil {
		t.Fatal("child /local still points at parent machine")
	}
	if _, err := child.Resolve("/local/data/two"); err != nil {
		t.Fatal("child /local does not point at executor machine")
	}
}

func TestAttachDuplicateFails(t *testing.T) {
	_, m1, _, proj := setup(t)
	p, err := New(m1, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(nil, "proj", proj.Root); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}

func TestForkSharedTracksParentLive(t *testing.T) {
	_, m1, _, proj := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	copied, err := parent.Fork("copied")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := parent.ForkShared("shared")
	if err != nil {
		t.Fatal(err)
	}

	// Parent attaches a subsystem AFTER both forks.
	if err := parent.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	if _, err := copied.Resolve("/proj/src/main"); err == nil {
		t.Fatal("copy-forked child sees post-fork parent attach")
	}
	if _, err := shared.Resolve("/proj/src/main"); err != nil {
		t.Fatalf("share-forked child misses post-fork parent attach: %v", err)
	}
}

func TestForkSharedOverlayIsPrivate(t *testing.T) {
	w, m1, _, proj := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := parent.ForkShared("shared")
	if err != nil {
		t.Fatal(err)
	}
	// The child attaches into its overlay; the parent must not see it.
	if err := shared.Attach(nil, "mine", proj.Root); err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Resolve("/mine/src/main"); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Resolve("/mine/src/main"); err == nil {
		t.Fatal("child overlay visible to parent")
	}
	_ = w
}

func TestForkSharedShadowing(t *testing.T) {
	w, m1, _, _ := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := parent.ForkShared("shared")
	if err != nil {
		t.Fatal(err)
	}
	// The child shadows the parent's /local with its own tree.
	other := dirtree.New(w, "other")
	marker, err := other.Create(core.ParsePath("marker"), "m")
	if err != nil {
		t.Fatal(err)
	}
	// Plain Attach refuses: the union already shows the parent's /local.
	if err := shared.Attach(nil, LocalName, other.Root); err == nil {
		t.Fatal("Attach over an inherited binding should fail")
	}
	// AttachShadow overlays it.
	if err := shared.AttachShadow(nil, LocalName, other.Root); err != nil {
		t.Fatal(err)
	}
	got, err := shared.Resolve("/local/marker")
	if err != nil || got != marker {
		t.Fatalf("shadowed local = %v, %v", got, err)
	}
	// Parent's /local unchanged.
	if _, err := parent.Resolve("/local/marker"); err == nil {
		t.Fatal("parent local shadowed too")
	}
}

func TestRemoteExecShared(t *testing.T) {
	_, m1, m2, proj := setup(t)
	parent, err := New(m1, "parent")
	if err != nil {
		t.Fatal(err)
	}
	child, err := RemoteExecShared(parent, m2, "child")
	if err != nil {
		t.Fatal(err)
	}
	// /local overlays the target machine.
	if _, err := child.Resolve("/local/data/two"); err != nil {
		t.Fatalf("child /local: %v", err)
	}
	if _, err := child.Resolve("/local/data/one"); err == nil {
		t.Fatal("child /local still reaches parent machine")
	}
	// Live tracking: a post-exec parent attach is visible remotely.
	if err := parent.Attach(nil, "proj", proj.Root); err != nil {
		t.Fatal(err)
	}
	pGot, _ := parent.Resolve("/proj/src/main")
	cGot, err := child.Resolve("/proj/src/main")
	if err != nil || pGot != cGot {
		t.Fatalf("live coherence broken: %v vs %v (%v)", cGot, pGot, err)
	}
}
