package perproc

import (
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
)

// LocalName is the conventional attach point of the executing machine's own
// tree inside a per-process namespace.
const LocalName core.Name = "local"

// Proc is a process with a private per-process namespace.
type Proc struct {
	// Process is the underlying activity and context.
	Process *machine.Process
	// NS is the process's private namespace tree; its root is the
	// process's root directory.
	NS *dirtree.Tree
}

// New creates a process on m with a fresh private namespace containing the
// machine's own tree at /local.
func New(m *machine.Machine, label string) (*Proc, error) {
	ns := dirtree.New(m.World, label+":ns")
	if err := ns.Attach(nil, LocalName, m.Tree.Root); err != nil {
		return nil, fmt.Errorf("new per-process namespace: %w", err)
	}
	ctx := core.NewContext()
	ctx.Bind(machine.RootName, ns.Root)
	ctx.Bind(machine.CwdName, ns.Root)
	return &Proc{Process: m.SpawnWith(label, ctx), NS: ns}, nil
}

// Attach attaches a subsystem tree (or any entity) into the namespace under
// name at the directory at `at` — the per-process analogue of mounting.
func (p *Proc) Attach(at core.Path, name core.Name, root core.Entity) error {
	return p.NS.Attach(at, name, root)
}

// AttachShadow binds name in the directory at `at` even when the name is
// already visible there — in a shared (union) namespace the binding goes
// to the process's writable overlay and shadows the inherited one; in a
// plain namespace it simply rebinds.
func (p *Proc) AttachShadow(at core.Path, name core.Name, root core.Entity) error {
	dir, err := p.NS.Lookup(at)
	if err != nil {
		return fmt.Errorf("attach-shadow at %q: %w", at, err)
	}
	ctx, ok := p.NS.W.ContextOf(dir)
	if !ok {
		return fmt.Errorf("attach-shadow at %q: not a directory", at)
	}
	ctx.Bind(name, root)
	return nil
}

// Detach removes an attachment.
func (p *Proc) Detach(at core.Path, name core.Name) error {
	return p.NS.Detach(at, name)
}

// Resolve resolves a textual name in the process's namespace.
func (p *Proc) Resolve(name string) (core.Entity, error) {
	return p.Process.Resolve(name)
}

// Activity returns the process's activity entity.
func (p *Proc) Activity() core.Entity { return p.Process.Activity }

// Fork creates a child on the same machine with an independent copy of the
// namespace root bindings (the subtrees themselves are shared — contexts
// are copied only one level deep, like Plan 9's RFNAMEG).
func (p *Proc) Fork(label string) (*Proc, error) {
	return cloneOnto(p, p.Process.Machine, label, false)
}

// RemoteExec creates a child for p on the target machine. The child's
// namespace starts as a copy of the parent's root bindings — so every name
// the parent can pass as a parameter resolves to the same entity for the
// child — except that /local is rebound to the target machine's own tree,
// giving the child access to executor-local files too (§6: "the remotely
// executing process can access files on both its local and its parent's
// machines").
func RemoteExec(p *Proc, target *machine.Machine, label string) (*Proc, error) {
	return cloneOnto(p, target, label, true)
}

// ForkShared creates a child on the same machine whose namespace *shares*
// the parent's root bindings through a union: the child's own attaches go
// to a private overlay (shadowing the parent's view), while bindings the
// parent adds later remain visible to the child. Contrast with Fork, which
// copies at fork time ("coherence … until one of them modifies its
// context", §5.1 — ForkShared keeps the coherence alive).
func (p *Proc) ForkShared(label string) (*Proc, error) {
	return shareOnto(p, p.Process.Machine, label, false)
}

// RemoteExecShared is RemoteExec with shared (union) namespace semantics:
// the child overlays /local with the target machine's tree but otherwise
// tracks the parent's namespace live.
func RemoteExecShared(p *Proc, target *machine.Machine, label string) (*Proc, error) {
	return shareOnto(p, target, label, true)
}

func shareOnto(p *Proc, target *machine.Machine, label string, rebindLocal bool) (*Proc, error) {
	w := target.World
	parentRootCtx, ok := w.ContextOf(p.NS.Root)
	if !ok {
		return nil, fmt.Errorf("share namespace: parent root is not a context object")
	}
	overlay := core.NewContext()
	union := core.Union(overlay, parentRootCtx)
	rootObj := w.NewObject(label + ":ns")
	if err := w.SetState(rootObj, union); err != nil {
		return nil, err
	}
	if rebindLocal {
		overlay.Bind(LocalName, target.Tree.Root)
	}
	ctx := core.NewContext()
	ctx.Bind(machine.RootName, rootObj)
	ctx.Bind(machine.CwdName, rootObj)
	child := target.SpawnWith(label, ctx)
	child.Parent = p.Process
	return &Proc{Process: child, NS: &dirtree.Tree{W: w, Root: rootObj}}, nil
}

func cloneOnto(p *Proc, target *machine.Machine, label string, rebindLocal bool) (*Proc, error) {
	w := target.World
	childNS := dirtree.New(w, label+":ns")
	childRootCtx, _ := w.ContextOf(childNS.Root)
	parentRootCtx, ok := w.ContextOf(p.NS.Root)
	if !ok {
		return nil, fmt.Errorf("clone namespace: parent root is not a context object")
	}
	for _, n := range parentRootCtx.Names() {
		childRootCtx.Bind(n, parentRootCtx.Lookup(n))
	}
	if rebindLocal {
		childRootCtx.Bind(LocalName, target.Tree.Root)
	}
	ctx := core.NewContext()
	ctx.Bind(machine.RootName, childNS.Root)
	ctx.Bind(machine.CwdName, childNS.Root)
	child := target.SpawnWith(label, ctx)
	child.Parent = p.Process
	return &Proc{Process: child, NS: childNS}, nil
}
