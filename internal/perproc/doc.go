// Package perproc implements the per-process view of naming (§6 approach II
// and §7): each process has its own individual root node to which the
// naming trees of subsystems known to the process are attached, as in
// Plan 9 and the authors' extension of Waterloo Port.
//
// The per-process view decouples a process from the underlying context of
// its execution site: a process executing on one subsystem may use the
// context of another. The package's remote-execution facility arranges the
// child's namespace so that names passed as parameters from a parent to its
// remote child resolve to the parent's entities — coherence without global
// names — while the child still reaches the executor's files under /local.
package perproc
