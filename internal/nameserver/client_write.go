// Client-side write path and push-invalidation subscription. Mutations
// are ordinary tagged calls on the multiplexed stream; subscribing
// additionally starts a standing reader, because push frames arrive
// unsolicited and a cache-hit-heavy caller may otherwise not decode the
// wire for long stretches.

package nameserver

import (
	"errors"
	"fmt"
	"time"

	"namecoherence/internal/core"
)

// Bind binds name in the server directory at dir (empty: the export
// root) to target, an entity previously resolved over this protocol.
// Returns the revision the bind committed at. The client's own coherent
// cache purges on the reply — the writer never serves itself stale reads.
func (c *Client) Bind(dir core.Path, name core.Name, target core.Entity) (uint64, error) {
	req, err := mutationRequest(OpBind, dir, name)
	if err != nil {
		return 0, err
	}
	req.Target = uint64(target.ID)
	req.TargetKind = uint8(target.Kind)
	return c.mutate(req)
}

// Unbind removes the binding for name in the server directory at dir.
// Returns the revision the unbind committed at.
func (c *Client) Unbind(dir core.Path, name core.Name) (uint64, error) {
	req, err := mutationRequest(OpUnbind, dir, name)
	if err != nil {
		return 0, err
	}
	return c.mutate(req)
}

// Mkcontext creates a directory bound as name under the server directory
// at dir, returning the created entity and its commit revision.
func (c *Client) Mkcontext(dir core.Path, name core.Name) (core.Entity, uint64, error) {
	req, err := mutationRequest(OpMkcontext, dir, name)
	if err != nil {
		return core.Undefined, 0, err
	}
	resp, err := c.call(req)
	if err != nil {
		return core.Undefined, 0, err
	}
	c.noteMutationRev(resp.Rev)
	if resp.Err != "" {
		return core.Undefined, resp.Rev, &RemoteError{Msg: resp.Err}
	}
	return core.Entity{ID: core.EntityID(resp.Ent), Kind: core.Kind(resp.Kind)}, resp.Rev, nil
}

// ReplicaApply re-issues a mutation the primary committed, tagged with
// the primary's revision so the replica adopts it instead of minting its
// own. Applies are idempotent on the replica: re-sending after a lost
// response converges rather than erroring, which is what an at-least-once
// replicator needs. Returns the replica's revision after the apply.
func (c *Client) ReplicaApply(m AppliedMutation) (uint64, error) {
	req, err := mutationRequest(m.Op, m.Dir, m.Name)
	if err != nil {
		return 0, err
	}
	req.Target = uint64(m.Target.ID)
	req.TargetKind = uint8(m.Target.Kind)
	req.AtRev = m.Rev
	req.Twin = uint64(m.Created.ID)
	return c.mutate(req)
}

// mutationRequest validates the directory path and binding name
// client-side (§6: a name is converted to canonical form before it is
// embedded in a message) and builds the wire request.
func mutationRequest(op uint8, dir core.Path, name core.Name) (request, error) {
	var raw []string
	if len(dir) > 0 {
		var err error
		raw, err = CanonicalWirePath(dir)
		if err != nil {
			return request{}, err
		}
	}
	if err := checkWireCanonical(core.Path{name}); err != nil {
		return request{}, fmt.Errorf("binding name %q: %w", string(name), ErrNotCanonical)
	}
	return request{Op: op, Path: raw, Name: string(name)}, nil
}

// mutate runs one mutation round-trip and applies the reply's revision to
// the coherent cache — a mutation reply always carries a revision at or
// past the commit, so the writer's next read cannot be served from
// entries the write just invalidated.
func (c *Client) mutate(req request) (uint64, error) {
	resp, err := c.call(req)
	if err != nil {
		return 0, err
	}
	c.noteMutationRev(resp.Rev)
	if resp.Err != "" {
		return resp.Rev, &RemoteError{Msg: resp.Err}
	}
	return resp.Rev, nil
}

// noteMutationRev feeds a mutation reply's revision to the cache rule.
// Even a refused mutation's reply counts: the server answered at that
// revision, so anything older is known stale.
func (c *Client) noteMutationRev(rev uint64) {
	c.mu.Lock()
	c.admitRevision(rev)
	c.mu.Unlock()
}

// Subscribe switches this client from poll-validated to push-invalidated
// coherence: the server fans every revision advance out to the connection
// as an unsolicited frame, and the client consumes it straight into the
// coherent cache's purge rule. Staleness then stops being "one round-trip
// after the next miss" and becomes one frame's flight time, even for a
// reader that hits its cache forever.
//
// onInval, if non-nil, is called after each consumed frame with the
// pushed revision (cluster clients hook their shard-level purge in here).
// It runs on whichever goroutine decoded the frame and must not call back
// into this client.
//
// Subscribing starts one standing reader goroutine — the only goroutine
// this otherwise caller-driven client ever runs — which Close joins.
func (c *Client) Subscribe(onInval func(rev uint64)) error {
	c.mu.Lock()
	if c.subscribed {
		c.mu.Unlock()
		return errors.New("nameserver: already subscribed")
	}
	c.subscribed = true
	c.onInval = onInval
	c.mu.Unlock()

	resp, err := c.call(request{Subscribe: true})
	if err != nil {
		return err
	}
	// The ack's revision is the subscription's starting point: everything
	// cached below it is purged, everything after arrives as a push.
	c.noteMutationRev(resp.Rev)

	c.readerWG.Add(1)
	go func() {
		defer c.readerWG.Done()
		c.readLoop()
	}()
	return nil
}

// readLoop is the standing reader of a subscribed client: it claims the
// read token permanently and leads on behalf of a call that never
// completes, so push frames are decoded promptly no matter how quiet the
// callers are. Ordinary calls still complete — the loop dispatches their
// responses like any leader, and callers park on their done channels.
// The loop exits when the stream dies (lead's error path); Close closes
// the conn to force exactly that, then joins via readerWG.
func (c *Client) readLoop() {
	c.rtoken <- struct{}{}
	// This goroutine reads for everyone from now on, and an idle stretch
	// is normal for it — drop whatever per-call read deadline an earlier
	// leader left armed. Per-call timeouts remain bounded by their timers
	// (see expire).
	_ = c.conn.SetReadDeadline(time.Time{})
	never := &pendingCall{done: make(chan struct{})}
	c.lead(never, time.Time{})
	<-c.rtoken
}
