package nameserver

import (
	"net"
	"testing"
	"time"

	"namecoherence/internal/core"
)

// A peer that sends garbage must not take the server down; other clients
// keep working.
func TestServerSurvivesGarbage(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ln)
	}()
	defer func() {
		s.Close()
		<-done
	}()

	// Garbage connection.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("\xff\x00garbage not gob\x01\x02\x03")); err != nil {
		t.Fatal(err)
	}
	_ = raw.Close()

	// A real client still gets answers.
	c, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	got, err := c.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("got %v", got)
	}
}

// A peer that connects and immediately hangs up must not leak handlers.
func TestServerSurvivesImmediateHangup(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ln)
	}()

	for i := 0; i < 10; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		_ = conn.Close()
	}
	// Close must return promptly (handlers all exited on EOF).
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung — leaked connection handlers")
	}
	<-done
}

// Client behaviour when the server closes mid-session: a clear error, not
// a hang.
func TestClientErrorAfterServerGone(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ln)
	}()
	c, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.Resolve(core.ParsePath("usr")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	<-done
	if _, err := c.Resolve(core.ParsePath("usr")); err == nil {
		t.Fatal("resolve after server close succeeded")
	}
}
