package nameserver

import (
	"errors"
	"fmt"
	"strings"

	"namecoherence/internal/core"
)

// ErrNotCanonical reports a name that cannot cross the wire coherently:
// resolved on the far side, it would not denote what the sender meant.
// The paper's §6 remedy is mechanical — convert every name to its
// coherent (canonical) form before embedding it in an object or message —
// and this boundary is where the conversion (and its failures) live.
var ErrNotCanonical = errors.New("name is not wire-canonical")

// checkWireCanonical validates p as a canonical wire path: non-empty, no
// empty components, and no component containing the path separator. An
// empty path names "wherever the server's export root happens to be"; a
// separator inside a component smuggles extra resolution steps past the
// sender's own parse — both resolve differently on the two sides of the
// wire, which is precisely the incoherence §6 forbids.
func checkWireCanonical(p core.Path) error {
	if !p.IsValid() {
		//namingvet:allocfree-exempt -- cold: a rejected name formats its error
		return fmt.Errorf("path %q: %w", p.String(), ErrNotCanonical)
	}
	for _, n := range p {
		if strings.Contains(string(n), core.Separator) {
			//namingvet:allocfree-exempt -- cold: a rejected name formats its error
			return fmt.Errorf("component %q of %q contains %q: %w",
				string(n), p.String(), core.Separator, ErrNotCanonical)
		}
	}
	return nil
}

// CanonicalWirePath converts p to its canonical wire form, rejecting
// names that cannot round-trip coherently. Every value stored in a wire
// request's Path field must come from here (wirecanon enforces it).
//
//namingvet:canonicalizer
func CanonicalWirePath(p core.Path) ([]string, error) {
	if err := checkWireCanonical(p); err != nil {
		return nil, err
	}
	raw := make([]string, len(p))
	for i, n := range p {
		raw[i] = string(n)
	}
	return raw, nil
}

// canonicalWirePaths converts a batch, rejecting the whole batch on the
// first non-canonical path: a batch is one message, and a message with
// one incoherent name in it is an incoherent message.
//
//namingvet:canonicalizer
func canonicalWirePaths(paths []core.Path) ([][]string, error) {
	raws := make([][]string, len(paths))
	for k, p := range paths {
		raw, err := CanonicalWirePath(p)
		if err != nil {
			return nil, err
		}
		raws[k] = raw
	}
	return raws, nil
}
