//go:build !race

// Allocation-floor regression tests for the //namingvet:allocfree wire
// roots. allocfree proves the annotated paths reach no allocating code
// outside the exempted gob calls; these tests pin the measured floors at
// runtime, so a change that reintroduces a per-request allocation fails
// go test even if nobody reads a benchmark. Excluded under -race: the race
// runtime adds its own allocations and would skew every floor.
package nameserver

import (
	"testing"

	"namecoherence/internal/core"
)

// allocFloor asserts that f averages at most want allocations per run.
// Floors are ceilings, not equalities: a future change that shaves another
// allocation should not fail the suite.
func allocFloor(t *testing.T, name string, want float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, f); got > want {
		t.Errorf("%s: %.1f allocs/op, want ≤ %.0f — an allocation crept onto an allocfree wire path", name, got, want)
	}
}

// TestServerResolveAllocFree pins the server's whole resolve path —
// handle → resolveOne → checkWireCanonical → World.Resolve — at zero
// allocations once the worker's scratch has warmed up. This is the
// decode→resolve→encode worker loop minus the two exempted gob calls.
func TestServerResolveAllocFree(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())

	sc := &workerScratch{req: request{Path: []string{"usr", "bin", "ls"}}}
	allocFloor(t, "handle/resolve", 0, func() {
		if resp := s.handle(sc); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	})

	sc = &workerScratch{req: request{Paths: [][]string{
		{"usr", "bin", "ls"},
		{"usr", "bin"},
		{"usr"},
	}}}
	allocFloor(t, "handle/resolve-batch", 0, func() {
		if resp := s.handle(sc); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	})
}

// TestAdmitRevisionAllocFree pins the coherent cache's admission rule at
// zero allocations: every iteration advances the revision (driving the
// purge branch), then probes a stale revision (the refusal branch). The
// cache entry planted up front is purged by the warm-up advance, so the
// purge-with-entries case runs under measurement discipline too.
func TestAdmitRevisionAllocFree(t *testing.T) {
	c := &Client{}
	WithCoherentCache(8).apply(c)
	c.mu.Lock()
	c.cache.Put("usr/bin/ls", core.Entity{ID: 1})
	c.mu.Unlock()
	rev := uint64(0)
	allocFloor(t, "admitRevision", 0, func() {
		c.mu.Lock()
		rev++
		if !c.admitRevision(rev) {
			t.Fatal("advanced revision refused")
		}
		if c.admitRevision(rev - 1) {
			t.Fatal("stale revision admitted")
		}
		c.mu.Unlock()
	})
}

// TestCachedResolveAllocFloor pins the client's cache-hit path at one
// allocation: the cache key (Path.String of a multi-component name).
// Nothing crosses the wire on a hit, so send/lead stay idle and the floor
// is the key build alone.
func TestCachedResolveAllocFloor(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(8))

	p := core.ParsePath("usr/bin/ls")
	if got, err := c.Resolve(p); err != nil || got != f {
		t.Fatalf("prime Resolve = %v, %v", got, err)
	}
	allocFloor(t, "Resolve/cache-hit", 1, func() {
		if _, err := c.Resolve(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRoundTripAllocFloor pins the full uncached round-trip — call
// bookkeeping, send, the server worker pool, lead — at the measured
// floor under the binary codec. The three remaining allocations are all
// per-call bookkeeping (the pendingCall, its done channel, and the
// canonical wire path the request retains until its response): encode
// and decode themselves allocate nothing on either end. The gob floor
// before this codec was 13; EXPERIMENTS.md records the trajectory.
func TestRoundTripAllocFloor(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	p := core.ParsePath("usr/bin/ls")
	if got, err := c.Resolve(p); err != nil || got != f {
		t.Fatalf("prime Resolve = %v, %v", got, err)
	}
	allocFloor(t, "Resolve/round-trip", 3, func() {
		if _, err := c.Resolve(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRoundTripAllocFloorGob pins the legacy codec's floor so the gob
// fallback cannot quietly regress while it remains selectable.
func TestRoundTripAllocFloorGob(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext(), WithServerCodec(CodecGob))
	c := pipeClient(t, s, WithCodec(CodecGob))

	p := core.ParsePath("usr/bin/ls")
	if got, err := c.Resolve(p); err != nil || got != f {
		t.Fatalf("prime Resolve = %v, %v", got, err)
	}
	allocFloor(t, "Resolve/round-trip-gob", 13, func() {
		if _, err := c.Resolve(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBinaryEncodeDecodeAllocFree pins the codec itself — append into a
// warm buffer, parse into warm scratch — at zero allocations for both
// message types on the steady path. This is the tentpole's core claim;
// allocfree proves it statically, this holds it at runtime.
func TestBinaryEncodeDecodeAllocFree(t *testing.T) {
	req := populated()["request"].(request)
	resp := populated()["response"].(response)
	resp.Routes = nil // RouteInfo is the documented bootstrap-only exception

	var buf []byte
	var sc workerScratch
	var out request
	allocFloor(t, "appendRequest+parseRequest", 0, func() {
		buf = appendRequest(buf[:0], &req)
		if err := parseRequest(buf, &out, &sc); err != nil {
			t.Fatal(err)
		}
	})

	var errs strIntern
	var outResp response
	allocFloor(t, "appendResponse+parseResponse", 0, func() {
		buf = appendResponse(buf[:0], &resp)
		if err := parseResponse(buf, &outResp, &errs); err != nil {
			t.Fatal(err)
		}
	})
}

// TestErrInternAllocFree pins the sentinel-error decode at zero
// allocations once interned: a client hammering a missing name pays for
// the "no such name" string once, not per response.
func TestErrInternAllocFree(t *testing.T) {
	body := appendResponse(nil, &response{ID: 3, Err: "nameserver: no such name"})
	var errs strIntern
	var resp response
	allocFloor(t, "parseResponse/interned-err", 0, func() {
		if err := parseResponse(body, &resp, &errs); err != nil {
			t.Fatal(err)
		}
	})
}
