//go:build !race

// Allocation-floor regression tests for the //namingvet:allocfree wire
// roots. allocfree proves the annotated paths reach no allocating code
// outside the exempted gob calls; these tests pin the measured floors at
// runtime, so a change that reintroduces a per-request allocation fails
// go test even if nobody reads a benchmark. Excluded under -race: the race
// runtime adds its own allocations and would skew every floor.
package nameserver

import (
	"testing"

	"namecoherence/internal/core"
)

// allocFloor asserts that f averages at most want allocations per run.
// Floors are ceilings, not equalities: a future change that shaves another
// allocation should not fail the suite.
func allocFloor(t *testing.T, name string, want float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, f); got > want {
		t.Errorf("%s: %.1f allocs/op, want ≤ %.0f — an allocation crept onto an allocfree wire path", name, got, want)
	}
}

// TestServerResolveAllocFree pins the server's whole resolve path —
// handle → resolveOne → checkWireCanonical → World.Resolve — at zero
// allocations once the worker's scratch has warmed up. This is the
// decode→resolve→encode worker loop minus the two exempted gob calls.
func TestServerResolveAllocFree(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())

	sc := &workerScratch{req: request{Path: []string{"usr", "bin", "ls"}}}
	allocFloor(t, "handle/resolve", 0, func() {
		if resp := s.handle(sc); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	})

	sc = &workerScratch{req: request{Paths: [][]string{
		{"usr", "bin", "ls"},
		{"usr", "bin"},
		{"usr"},
	}}}
	allocFloor(t, "handle/resolve-batch", 0, func() {
		if resp := s.handle(sc); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	})
}

// TestAdmitRevisionAllocFree pins the coherent cache's admission rule at
// zero allocations: every iteration advances the revision (driving the
// purge branch), then probes a stale revision (the refusal branch). The
// cache entry planted up front is purged by the warm-up advance, so the
// purge-with-entries case runs under measurement discipline too.
func TestAdmitRevisionAllocFree(t *testing.T) {
	c := &Client{}
	WithCoherentCache(8).apply(c)
	c.mu.Lock()
	c.cache.Put("usr/bin/ls", core.Entity{ID: 1})
	c.mu.Unlock()
	rev := uint64(0)
	allocFloor(t, "admitRevision", 0, func() {
		c.mu.Lock()
		rev++
		if !c.admitRevision(rev) {
			t.Fatal("advanced revision refused")
		}
		if c.admitRevision(rev - 1) {
			t.Fatal("stale revision admitted")
		}
		c.mu.Unlock()
	})
}

// TestCachedResolveAllocFloor pins the client's cache-hit path at one
// allocation: the cache key (Path.String of a multi-component name).
// Nothing crosses the wire on a hit, so send/lead stay idle and the floor
// is the key build alone.
func TestCachedResolveAllocFloor(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(8))

	p := core.ParsePath("usr/bin/ls")
	if got, err := c.Resolve(p); err != nil || got != f {
		t.Fatalf("prime Resolve = %v, %v", got, err)
	}
	allocFloor(t, "Resolve/cache-hit", 1, func() {
		if _, err := c.Resolve(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRoundTripAllocFloor pins the full uncached round-trip — call
// bookkeeping, send, the server worker pool, lead — at the measured
// post-fix floor. The remaining allocations are the per-call pendingCall
// and done channel plus gob's own encode/decode machinery on both ends
// (the exempted calls the binary codec will replace); EXPERIMENTS.md
// records the trajectory.
func TestRoundTripAllocFloor(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	p := core.ParsePath("usr/bin/ls")
	if got, err := c.Resolve(p); err != nil || got != f {
		t.Fatalf("prime Resolve = %v, %v", got, err)
	}
	allocFloor(t, "Resolve/round-trip", 13, func() {
		if _, err := c.Resolve(p); err != nil {
			t.Fatal(err)
		}
	})
}
