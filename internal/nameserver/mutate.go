// The server's write path. Every mutation — local or from the wire —
// funnels through applyMutation, which runs under the write mutex (wmu),
// keeps the revision discipline (every applied mutation reaches a Bump
// before the reply is written), and extends the export watch over
// directories the mutation creates. Replicated applies (AtRev tagged)
// re-play a primary's committed mutation idempotently and adopt its
// revision instead of minting their own.

package nameserver

import (
	"errors"
	"fmt"

	"namecoherence/internal/core"
)

// ErrReadOnly reports a mutation refused by a WithReadOnly server.
var ErrReadOnly = errors.New("server is read-only")

// AppliedMutation describes one mutation the server committed locally,
// in the form a replicator needs to re-apply it on a backup replica.
// The OnMutation hook receives these in commit order.
type AppliedMutation struct {
	// Op is the mutation opcode (OpBind, OpUnbind, OpMkcontext).
	Op uint8
	// Dir is the directory that was mutated (empty: the export root).
	Dir core.Path
	// Name is the binding that was created or removed.
	Name core.Name
	// Target is the entity bound (OpBind only).
	Target core.Entity
	// Created is the directory entity a mkcontext created; backups
	// register their own fresh directory in its replica group, keeping
	// weak coherence measurable across the write path.
	Created core.Entity
	// Rev is the revision the mutation committed at on this server.
	Rev uint64
}

// OnMutation installs a hook called under the write mutex after every
// locally originated mutation commits (replicated applies do not re-fire
// it). Because the hook runs inside the mutation's critical section,
// hooks observe mutations in commit order — a replicator can therefore
// enqueue them FIFO and backups converge to the primary's exact state.
// The hook must be fast and must not call back into the mutation path.
func (s *Server) OnMutation(hook func(AppliedMutation)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onMutation = hook
}

// mutation is the internal, validated form of one write.
type mutation struct {
	op     uint8
	dir    core.Path
	name   core.Name
	target core.Entity
	atRev  uint64        // non-zero: replicated apply at this primary revision
	twin   core.EntityID // replicated mkcontext: the primary's created directory
}

// Bind binds name in the directory at dir (empty: the export root) to
// target, which must already exist. Binding over an existing name is an
// error — unbind first; explicit is cheaper than diagnosing a silent
// clobber across a cluster. Returns the revision the bind committed at.
func (s *Server) Bind(dir core.Path, name core.Name, target core.Entity) (uint64, error) {
	_, rev, err := s.applyMutation(mutation{op: OpBind, dir: dir, name: name, target: target})
	return rev, err
}

// Unbind removes the binding for name in the directory at dir. Returns
// the revision the unbind committed at.
func (s *Server) Unbind(dir core.Path, name core.Name) (uint64, error) {
	_, rev, err := s.applyMutation(mutation{op: OpUnbind, dir: dir, name: name})
	return rev, err
}

// Mkcontext creates a fresh directory bound as name under the directory
// at dir, returning the new entity and the revision it committed at. The
// new directory joins the export watch immediately — before it is
// reachable — so a bind inside it can never mutate the graph without a
// revision bump.
func (s *Server) Mkcontext(dir core.Path, name core.Name) (core.Entity, uint64, error) {
	return s.applyMutation(mutation{op: OpMkcontext, dir: dir, name: name})
}

// applyMutation validates and applies one mutation under the write mutex.
// It returns the created entity (mkcontext only) and the revision the
// mutation committed at.
func (s *Server) applyMutation(m mutation) (core.Entity, uint64, error) {
	if s.readonly {
		return core.Undefined, 0, ErrReadOnly
	}
	if len(m.dir) > 0 {
		if err := checkWireCanonical(m.dir); err != nil {
			return core.Undefined, 0, err
		}
	}
	if err := checkWireCanonical(core.Path{m.name}); err != nil {
		return core.Undefined, 0, fmt.Errorf("name %q: %w", string(m.name), ErrNotCanonical)
	}

	s.wmu.Lock()
	defer s.wmu.Unlock()

	ctx, err := s.mutationContext(m.dir)
	if err != nil {
		return core.Undefined, 0, err
	}
	// A watched directory bumps the revision from inside Bind/Unbind; an
	// unwatched one (server without WatchExport) needs an explicit Bump so
	// the discipline holds either way.
	_, watched := ctx.(*core.WatchedContext)
	replica := m.atRev > 0

	var created core.Entity
	mutated := true
	switch m.op {
	case OpBind:
		if !s.world.Exists(m.target) {
			return core.Undefined, 0, fmt.Errorf("bind %q: target %v: %w",
				string(m.name), m.target, core.ErrUnknownEntity)
		}
		if cur := ctx.Lookup(m.name); !cur.IsUndefined() {
			if !replica || cur != m.target {
				return core.Undefined, 0, fmt.Errorf("bind %q: already bound to %v", string(m.name), cur)
			}
			mutated = false // replicated re-apply: already converged
		} else {
			ctx.Bind(m.name, m.target)
		}
	case OpUnbind:
		if cur := ctx.Lookup(m.name); cur.IsUndefined() {
			if !replica {
				return core.Undefined, 0, fmt.Errorf("unbind %q: not bound", string(m.name))
			}
			mutated = false // replicated re-apply: already converged
		} else {
			ctx.Unbind(m.name)
		}
	case OpMkcontext:
		if cur := ctx.Lookup(m.name); !cur.IsUndefined() {
			if !replica || !s.world.IsContextObject(cur) {
				return core.Undefined, 0, fmt.Errorf("mkcontext %q: already bound to %v", string(m.name), cur)
			}
			created, mutated = cur, false // replicated re-apply: already converged
		} else {
			dirE, dirCtx := s.world.NewContextObject(string(m.name))
			if watched {
				// Watch the new directory before it becomes reachable, so
				// there is no window in which a bind inside it could skip
				// the revision bump.
				_ = s.world.SetState(dirE, core.Watch(dirCtx, s.exportWatch))
			}
			created = dirE
			ctx.Bind(m.name, dirE)
			if replica {
				s.joinTwinGroup(m.twin, created)
			} else {
				// Primary: open the replica group here, before the hook can
				// replicate the mutation, so backup appliers always find it.
				_, _ = s.world.NewReplicaGroup(created)
			}
		}
	default:
		return core.Undefined, 0, fmt.Errorf("unknown mutation opcode %d", m.op)
	}

	if mutated && !watched {
		s.Bump()
	}
	if replica {
		// Adopt the primary's revision tag (monotonically). With both
		// sides bumping once per mutation the tags track exactly; after a
		// divergence (lost frames, recovery) this is what re-converges the
		// replica's revision with the primary's.
		s.SetRevision(m.atRev)
	}
	rev := s.Revision()

	if !replica {
		s.mu.Lock()
		hook := s.onMutation
		s.mu.Unlock()
		if hook != nil {
			hook(AppliedMutation{
				Op: m.op, Dir: m.dir.Clone(), Name: m.name,
				Target: m.target, Created: created, Rev: rev,
			})
		}
	}
	return created, rev, nil
}

// mutationContext resolves the directory a mutation applies to. The
// empty path means the export root — resolved through the watch wrapper
// when the export is watched, so root-level mutations bump too.
func (s *Server) mutationContext(dir core.Path) (core.Context, error) {
	if len(dir) == 0 {
		s.mu.Lock()
		watching, root := s.watching, s.exportRoot
		s.mu.Unlock()
		if watching {
			if ctx, ok := s.world.ContextOf(root); ok {
				return ctx, nil
			}
		}
		return s.export, nil
	}
	e, err := s.world.Resolve(s.export, dir)
	if err != nil {
		return nil, err
	}
	ctx, ok := s.world.ContextOf(e)
	if !ok {
		return nil, fmt.Errorf("%q: not a directory", dir.String())
	}
	return ctx, nil
}

// joinTwinGroup registers a replica-created directory in the replica
// group of the primary's twin directory, so weak coherence (§5) holds
// across the write path: resolving the new name on any replica yields
// "the same replicated object". Falls back to opening a fresh group when
// the twin is unknown (cross-process deployment without a shared world).
func (s *Server) joinTwinGroup(twin core.EntityID, created core.Entity) {
	if twin == 0 {
		return
	}
	primary := core.Entity{ID: twin, Kind: core.KindObject}
	if g, ok := s.world.ReplicaGroup(primary); ok {
		_ = s.world.AddReplica(g, created)
		return
	}
	if _, err := s.world.NewReplicaGroup(primary, created); err != nil {
		_, _ = s.world.NewReplicaGroup(created)
	}
}

// handleMutation serves one wire mutation request. Mutations allocate per
// write by design — a fresh path for the mutation record, error text on
// refusal — so the whole body sits outside the read path's allocfree
// discipline until write batching gives it a steady state worth guarding.
//
//namingvet:allocfree-exempt -- writes allocate per mutation by design; only the resolve path is steady
func (s *Server) handleMutation(req *request) response {
	p := make(core.Path, len(req.Path))
	for i, c := range req.Path {
		p[i] = core.Name(c)
	}
	m := mutation{
		op:     req.Op,
		dir:    p,
		name:   core.Name(req.Name),
		target: core.Entity{ID: core.EntityID(req.Target), Kind: core.Kind(req.TargetKind)},
		atRev:  req.AtRev,
		twin:   core.EntityID(req.Twin),
	}
	created, rev, err := s.applyMutation(m)
	if err != nil {
		return response{Err: err.Error()}
	}
	return response{Ent: uint64(created.ID), Kind: uint8(created.Kind), Rev: rev}
}
