// Binary wire codec: a hand-rolled, length-prefixed encoding for the
// closed wire-type set in wire.go, replacing gob on the hot path. gob's
// reflection-driven encode/decode was the dominant per-frame cost once
// PR 8 removed the other steady-path allocations; this codec encodes by
// appending to a reused buffer and decodes by slicing a reused frame,
// so a steady resolve round-trip touches the allocator zero times.
//
// # Framing
//
// Every message is one frame: a uvarint byte length followed by exactly
// that many body bytes. The body is the message's fields in struct
// declaration order (wire.go is the schema; registrycheck verifies the
// codec covers every field of every registered type). Within a body:
//
//   - unsigned integers (uint64, counts, lengths) are uvarints
//   - single-byte fields (uint8) are one raw byte
//   - bools are one byte, strictly 0 or 1
//   - strings are a uvarint length followed by the bytes
//   - slices are a uvarint count followed by the elements; a zero count
//     decodes to nil (nil and empty collapse, exactly as gob's
//     zero-value omission collapsed them, so no caller can tell)
//   - the one pointer field (response.Routes) is a presence byte, then
//     the RouteInfo body if present
//
// Which message type a frame holds is positional, never encoded:
// clients only send requests and servers only send responses, the same
// property the gob streams relied on.
//
// # Negotiation
//
// A binary-codec client opens with a single magic byte (0xB1) and waits
// for the server's one-byte choice before sending any frame. The magic
// can never begin a gob stream — a gob message starts with its byte
// count, which is either a small literal (0x00–0x7F) or a negated count
// byte (0xF8–0xFF) — so a server can sniff the first byte: magic means
// "negotiate", anything else means a legacy gob client, served as
// before. The server answers 0xB1 (speak binary) or 0xB0 (fall back to
// gob, the policy of WithServerCodec(CodecGob)), keeping both
// directions of the old/new pairing working for one release.
package nameserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Codec identifies the wire encoding of one connection.
type Codec uint8

const (
	// CodecBinary is the hand-rolled length-prefixed binary codec
	// (default; negotiated down to gob when the server insists).
	CodecBinary Codec = iota
	// CodecGob is the legacy gob stream, wire-identical to the previous
	// release. Selectable for one release while peers upgrade.
	CodecGob
)

// String names the codec for flags and error messages.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// ParseCodec converts a -codec flag value to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	}
	return 0, fmt.Errorf("unknown codec %q (want binary or gob)", s)
}

const (
	// binaryMagic is the client's opening byte offering the binary
	// codec; doubling as the server's "binary accepted" reply keeps the
	// handshake a one-byte echo in the common case.
	binaryMagic byte = 0xB1
	// replyGob is the server's "fall back to gob" reply.
	replyGob byte = 0xB0
)

// maxFrame bounds a frame body. Requests and responses are small (the
// largest realistic frame is a batch of resolutions); a length beyond
// this is a corrupt or hostile stream, refused before any allocation.
const maxFrame = 1 << 20

// Decode error sentinels. One value each: malformed input is a stream
// error — the connection dies — so the errors carry no per-frame detail
// and cost nothing to return.
var (
	errFrameTooBig  = errors.New("binary codec: frame exceeds size bound")
	errShortFrame   = errors.New("binary codec: truncated field")
	errBadVarint    = errors.New("binary codec: malformed varint")
	errBadCount     = errors.New("binary codec: collection count exceeds frame")
	errBadBool      = errors.New("binary codec: bool byte is neither 0 nor 1")
	errBadPresence  = errors.New("binary codec: presence byte is neither 0 nor 1")
	errTrailingData = errors.New("binary codec: trailing bytes after message")
)

// writeFrame writes one length-prefixed frame to bw. Flushing is the
// caller's business (the flush-elision discipline in send/respond).
// The header goes out byte-at-a-time: a local array sliced into
// bw.Write escapes to the heap, and this sits on the per-request path.
func writeFrame(bw *bufio.Writer, body []byte) error {
	n := uint64(len(body))
	for n >= 0x80 {
		if err := bw.WriteByte(byte(n) | 0x80); err != nil {
			return err
		}
		n >>= 7
	}
	if err := bw.WriteByte(byte(n)); err != nil {
		return err
	}
	_, err := bw.Write(body)
	return err
}

// readFrame reads one frame body into *buf (grown once to the
// connection's high-water frame size, then reused) and returns the body
// slice. A clean EOF at the frame boundary surfaces as io.EOF so the
// caller can tell a closed peer from a torn frame.
func readFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	if uint64(cap(*buf)) < n {
		//namingvet:allocfree-exempt -- amortized: the frame buffer grows to the high-water mark once
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// frameReader walks one frame body. Every method bounds-checks against
// the slice and reports malformed input as an error: arbitrary bytes can
// never panic it or read past the frame (the fuzz target holds it to
// that).
type frameReader struct {
	b   []byte
	off int
}

func (r *frameReader) remaining() int { return len(r.b) - r.off }

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errBadVarint
	}
	r.off += n
	return v, nil
}

func (r *frameReader) readByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errShortFrame
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *frameReader) readBool() (bool, error) {
	c, err := r.readByte()
	if err != nil {
		return false, err
	}
	switch c {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, errBadBool
}

// count reads a collection length, bounding it by the bytes left in the
// frame: every element costs at least one byte, so a count beyond the
// remainder is malformed — and a hostile count can never force a huge
// allocation, because allocations are sized by count.
func (r *frameReader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, errBadCount
	}
	return int(v), nil
}

// bytes reads a length-prefixed byte string as a subslice of the frame
// (no copy; callers intern or copy before the frame buffer is reused).
func (r *frameReader) bytes() ([]byte, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// strIntern is a bounded string intern table: get returns a string equal
// to b, allocating only the first time a distinct value is seen. Decode
// runs the small recurring vocabulary of a connection — path components,
// binding names, and the sentinel error strings of failed resolutions
// (§4's locality of naming, observed at the codec) — through it, so a
// string that repeats frame after frame costs one allocation ever, not
// one per frame. The table resets when full, so an unbounded or hostile
// vocabulary cannot grow it without limit.
type strIntern struct {
	m map[string]string
}

// internLimit bounds the table; past it the table is discarded and
// rebuilt, keeping the steady state amortized-zero for any vocabulary
// that fits and merely amortized-small for one that does not.
const internLimit = 4096

func (in *strIntern) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok { // compiler elides the key copy
		return s
	}
	if in.m == nil || len(in.m) >= internLimit {
		//namingvet:allocfree-exempt -- amortized: the intern table (re)builds on first use or overflow
		in.m = make(map[string]string, 64)
	}
	//namingvet:allocfree-exempt -- amortized: each distinct string interns once
	s := string(b)
	in.m[s] = s
	return s
}

// appendUvarint appends v in LEB128 form.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	b = append(b, byte(v))
	return b
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	b = append(b, s...)
	return b
}

// appendBool appends a strict 0/1 byte.
func appendBool(b []byte, v bool) []byte {
	c := byte(0)
	if v {
		c = 1
	}
	b = append(b, c)
	return b
}

// appendRequest appends req's binary body — every request field, in
// declaration order (registrycheck holds it to that).
func appendRequest(b []byte, req *request) []byte {
	b = appendUvarint(b, req.ID)
	b = appendUvarint(b, uint64(len(req.Path)))
	for _, s := range req.Path {
		b = appendString(b, s)
	}
	b = appendUvarint(b, uint64(len(req.Paths)))
	for _, p := range req.Paths {
		b = appendUvarint(b, uint64(len(p)))
		for _, s := range p {
			b = appendString(b, s)
		}
	}
	b = appendBool(b, req.Routes)
	b = appendBool(b, req.Subscribe)
	b = append(b, req.Op)
	b = appendString(b, req.Name)
	b = appendUvarint(b, req.Target)
	b = append(b, req.TargetKind)
	b = appendUvarint(b, req.AtRev)
	b = appendUvarint(b, req.Twin)
	return b
}

// parseRequest decodes one request body into req, backing the Path and
// Paths slices with the worker's scratch buffers and interning the
// string components (the working set of names repeats across frames).
// The decoded request is valid until the same scratch parses its next
// frame — exactly the lifetime the worker loop needs.
//
// The server re-validates decoded paths where they are used (resolveOne
// checks wire-canonical form): the receive boundary trusts no peer's
// encoder, so nothing here vouches for coherence.
//
//namingvet:wiredecoder
func parseRequest(data []byte, req *request, sc *workerScratch) error {
	r := frameReader{b: data}
	var err error
	if req.ID, err = r.uvarint(); err != nil {
		return err
	}
	n, err := r.count()
	if err != nil {
		return err
	}
	if n == 0 {
		req.Path = nil
	} else {
		if cap(sc.reqPath) < n {
			//namingvet:allocfree-exempt -- amortized: path scratch grows to the high-water mark once
			sc.reqPath = make([]string, 0, n)
		}
		ss := sc.reqPath[:0]
		for i := 0; i < n; i++ {
			cb, err := r.bytes()
			if err != nil {
				return err
			}
			ss = append(ss, sc.names.get(cb))
		}
		sc.reqPath = ss
		req.Path = ss
	}
	if n, err = r.count(); err != nil {
		return err
	}
	if n == 0 {
		req.Paths = nil
	} else {
		if cap(sc.reqPaths) < n {
			//namingvet:allocfree-exempt -- amortized: batch scratch grows to the high-water mark once
			grown := make([][]string, n)
			copy(grown, sc.reqPaths)
			sc.reqPaths = grown
		}
		outer := sc.reqPaths[:n]
		for i := range outer {
			m, err := r.count()
			if err != nil {
				return err
			}
			inner := outer[i][:0]
			for j := 0; j < m; j++ {
				cb, err := r.bytes()
				if err != nil {
					return err
				}
				inner = append(inner, sc.names.get(cb))
			}
			outer[i] = inner
		}
		req.Paths = outer
	}
	if req.Routes, err = r.readBool(); err != nil {
		return err
	}
	if req.Subscribe, err = r.readBool(); err != nil {
		return err
	}
	if req.Op, err = r.readByte(); err != nil {
		return err
	}
	nb, err := r.bytes()
	if err != nil {
		return err
	}
	req.Name = sc.names.get(nb)
	if req.Target, err = r.uvarint(); err != nil {
		return err
	}
	if req.TargetKind, err = r.readByte(); err != nil {
		return err
	}
	if req.AtRev, err = r.uvarint(); err != nil {
		return err
	}
	if req.Twin, err = r.uvarint(); err != nil {
		return err
	}
	if r.remaining() != 0 {
		return errTrailingData
	}
	return nil
}

// appendResult appends one batch result's fields.
func appendResult(b []byte, res *result) []byte {
	b = appendUvarint(b, res.ID)
	b = append(b, res.Kind)
	b = appendString(b, res.Err)
	return b
}

// parseResult decodes one batch result, interning the error string (the
// sentinel failures — not found, not mine — repeat across frames).
func parseResult(r *frameReader, res *result, errs *strIntern) error {
	var err error
	if res.ID, err = r.uvarint(); err != nil {
		return err
	}
	if res.Kind, err = r.readByte(); err != nil {
		return err
	}
	eb, err := r.bytes()
	if err != nil {
		return err
	}
	res.Err = errs.get(eb)
	return nil
}

// appendResponse appends resp's binary body — every response field, in
// declaration order.
func appendResponse(b []byte, resp *response) []byte {
	b = appendUvarint(b, resp.ID)
	b = appendUvarint(b, resp.Ent)
	b = append(b, resp.Kind)
	b = appendUvarint(b, resp.Rev)
	b = appendString(b, resp.Err)
	b = appendUvarint(b, uint64(len(resp.Results)))
	for i := range resp.Results {
		b = appendResult(b, &resp.Results[i])
	}
	if resp.Routes == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = appendRouteInfo(b, resp.Routes)
	}
	b = appendBool(b, resp.Invalidation)
	return b
}

// parseResponse decodes one response body into resp. Results reuses
// resp's own backing array (the caller owns resp, so nothing aliases),
// and error strings intern via errs.
func parseResponse(data []byte, resp *response, errs *strIntern) error {
	r := frameReader{b: data}
	var err error
	if resp.ID, err = r.uvarint(); err != nil {
		return err
	}
	if resp.Ent, err = r.uvarint(); err != nil {
		return err
	}
	if resp.Kind, err = r.readByte(); err != nil {
		return err
	}
	if resp.Rev, err = r.uvarint(); err != nil {
		return err
	}
	eb, err := r.bytes()
	if err != nil {
		return err
	}
	resp.Err = errs.get(eb)
	n, err := r.count()
	if err != nil {
		return err
	}
	if n == 0 {
		resp.Results = nil
	} else {
		rs := resp.Results[:0]
		for i := 0; i < n; i++ {
			var res result
			if err := parseResult(&r, &res, errs); err != nil {
				return err
			}
			rs = append(rs, res)
		}
		resp.Results = rs
	}
	p, err := r.readByte()
	if err != nil {
		return err
	}
	switch p {
	case 0:
		resp.Routes = nil
	case 1:
		ri, err := parseRouteInfo(&r)
		if err != nil {
			return err
		}
		resp.Routes = ri
	default:
		return errBadPresence
	}
	if resp.Invalidation, err = r.readBool(); err != nil {
		return err
	}
	if r.remaining() != 0 {
		return errTrailingData
	}
	return nil
}

// appendRouteInfo appends a routing table: Prefixes as sorted key/value
// pairs (deterministic bytes, so identical tables encode identically),
// then Default, Addrs, and Replicas. Bootstrap-only, so the sort's
// allocation is off the steady path.
//
//namingvet:allocfree-exempt -- bootstrap-only frame: a routing table crosses the wire once per client
func appendRouteInfo(b []byte, ri *RouteInfo) []byte {
	keys := make([]string, 0, len(ri.Prefixes))
	for k := range ri.Prefixes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = appendUvarint(b, uint64(ri.Prefixes[k]))
	}
	b = appendUvarint(b, uint64(ri.Default))
	b = appendUvarint(b, uint64(len(ri.Addrs)))
	for _, a := range ri.Addrs {
		b = appendString(b, a)
	}
	b = appendUvarint(b, uint64(len(ri.Replicas)))
	for _, rs := range ri.Replicas {
		b = appendUvarint(b, uint64(len(rs)))
		for _, a := range rs {
			b = appendString(b, a)
		}
	}
	return b
}

// parseRouteInfo decodes a routing table. Bootstrap-only: it allocates
// freely — the table is handed to the caller and outlives the frame.
//
//namingvet:allocfree-exempt -- bootstrap-only frame: a routing table crosses the wire once per client
func parseRouteInfo(r *frameReader) (*RouteInfo, error) {
	ri := &RouteInfo{}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		ri.Prefixes = make(map[string]int, n)
		for i := 0; i < n; i++ {
			kb, err := r.bytes()
			if err != nil {
				return nil, err
			}
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			ri.Prefixes[string(kb)] = int(v)
		}
	}
	d, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ri.Default = int(d)
	if n, err = r.count(); err != nil {
		return nil, err
	}
	if n > 0 {
		ri.Addrs = make([]string, n)
		for i := range ri.Addrs {
			ab, err := r.bytes()
			if err != nil {
				return nil, err
			}
			ri.Addrs[i] = string(ab)
		}
	}
	if n, err = r.count(); err != nil {
		return nil, err
	}
	if n > 0 {
		ri.Replicas = make([][]string, n)
		for i := range ri.Replicas {
			m, err := r.count()
			if err != nil {
				return nil, err
			}
			if m == 0 {
				continue
			}
			ri.Replicas[i] = make([]string, m)
			for j := range ri.Replicas[i] {
				ab, err := r.bytes()
				if err != nil {
					return nil, err
				}
				ri.Replicas[i][j] = string(ab)
			}
		}
	}
	return ri, nil
}
