package nameserver

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// exportedTree builds a world with a small exported tree.
func exportedTree(t *testing.T) (*core.World, *dirtree.Tree, core.Entity) {
	t.Helper()
	w := core.NewWorld()
	tr := dirtree.New(w, "export")
	f, err := tr.Create(core.ParsePath("usr/bin/ls"), "#!ls")
	if err != nil {
		t.Fatal(err)
	}
	return w, tr, f
}

// pipeClient starts a server over one end of a pipe and returns a client on
// the other. Cleanup closes both.
func pipeClient(t *testing.T, s *Server, opts ...ClientOption) *Client {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.ServeConn(serverEnd)
	}()
	c := NewClient(clientEnd, opts...)
	t.Cleanup(func() {
		_ = c.Close()
		wg.Wait()
	})
	return c
}

func TestResolveOverPipe(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	got, err := c.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("Resolve = %v, want %v", got, f)
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d", s.Served())
	}
}

func TestResolveRemoteError(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	_, err := c.Resolve(core.ParsePath("no/such/file"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestResolveSequence(t *testing.T) {
	w, tr, _ := exportedTree(t)
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hello"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	paths := []string{"usr", "usr/bin", "usr/bin/ls", "etc/motd"}
	for _, p := range paths {
		if _, err := c.Resolve(core.ParsePath(p)); err != nil {
			t.Fatalf("resolve %q: %v", p, err)
		}
	}
	if s.Served() != len(paths) {
		t.Fatalf("Served = %d, want %d", s.Served(), len(paths))
	}
}

func TestClientCache(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(16))

	p := core.ParsePath("usr/bin/ls")
	for i := 0; i < 5; i++ {
		got, err := c.Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Fatalf("Resolve = %v", got)
		}
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (4, 1)", hits, misses)
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d, want 1 (cache should absorb repeats)", s.Served())
	}
}

func TestClientCacheEviction(t *testing.T) {
	w, tr, _ := exportedTree(t)
	for _, n := range []string{"a", "b", "c"} {
		if _, err := tr.Create(core.ParsePath("dir/"+n), n); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(1))

	if _, err := c.Resolve(core.ParsePath("dir/a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(core.ParsePath("dir/b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(core.ParsePath("dir/a")); err != nil {
		t.Fatal(err)
	}
	_, misses := c.Stats()
	if misses != 3 {
		t.Fatalf("misses = %d, want 3 (size-1 cache thrashes)", misses)
	}
}

// The cache is deliberately not invalidated: after a server-side rebinding
// a cached client keeps the stale meaning, while an uncached client sees
// the new one. (This is the coherence hazard of name caches.)
func TestCacheStaleness(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	cached := pipeClient(t, s, WithCache(8))
	uncached := pipeClient(t, s)

	p := core.ParsePath("usr/bin/ls")
	if _, err := cached.Resolve(p); err != nil {
		t.Fatal(err)
	}

	// Rebind usr/bin/ls to a new file.
	binDir, err := tr.Lookup(core.ParsePath("usr/bin"))
	if err != nil {
		t.Fatal(err)
	}
	binCtx, _ := w.ContextOf(binDir)
	newLs := w.NewObject("new-ls")
	binCtx.Bind("ls", newLs)

	gotCached, err := cached.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	gotFresh, err := uncached.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotCached != f {
		t.Fatal("cached client should keep the stale entity")
	}
	if gotFresh != newLs {
		t.Fatal("uncached client should see the new binding")
	}
}

func TestServeOverTCP(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ln)
	}()

	c1, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []*Client{c1, c2} {
		got, err := c.Resolve(core.ParsePath("usr/bin/ls"))
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Fatalf("Resolve = %v", got)
		}
	}
	_ = c1.Close()
	_ = c2.Close()
	s.Close()
	<-done

	// Resolving after server close fails.
	if _, err := c1.Resolve(core.ParsePath("usr")); err == nil {
		t.Fatal("resolve after close succeeded")
	}
}

// TestServerCloseDuringSubscribePush closes the server while a subscribed
// connection is being pushed to, with Bumps racing the teardown the whole
// way. The shutdown chain — conn close fails the workers' decodes, workers
// drain, ServeConn leaves the subscriber set under mu, closes invalC, and
// joins the pusher — must neither deadlock Close (which waits for every
// handler) nor leak the pusher goroutine parked on the capacity-1
// coalescing channel.
func TestServerCloseDuringSubscribePush(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		s.Serve(ln)
	}()
	baseline := runtime.NumGoroutine()

	c, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pushed := make(chan uint64, 1)
	err = c.Subscribe(func(rev uint64) {
		select {
		case pushed <- rev:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hammer offers onto the pusher channel while the teardown runs.
	stop := make(chan struct{})
	var bumps sync.WaitGroup
	bumps.Add(1)
	go func() {
		defer bumps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Bump()
			}
		}
	}()

	// Wait for one frame so the push path is live, then tear down under it.
	select {
	case <-pushed:
	case <-time.After(5 * time.Second):
		t.Fatal("no push frame arrived before close")
	}
	s.Close() // must return: every ServeConn joins its pusher first
	close(stop)
	bumps.Wait()
	<-served
	_ = c.Close()

	// Every server- and client-side goroutine must unwind; a stuck pusher
	// shows up as a count that never returns to the pre-dial baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after close:\n%s", buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.Close()
	s.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = c.Close() }()
			for j := 0; j < 20; j++ {
				got, err := c.Resolve(core.ParsePath("usr/bin/ls"))
				if err != nil {
					errs <- err
					return
				}
				if got != f {
					errs <- errors.New("wrong entity")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
