package nameserver

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"namecoherence/internal/core"
	"namecoherence/internal/lru"
)

// RemoteError is a resolution failure reported by the server.
type RemoteError struct {
	// Msg is the server-side error message.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// ErrClientClosed reports a call against a closed Client.
var ErrClientClosed = errors.New("nameserver: client closed")

// clientWriteTimeout bounds each request write so a peer that stops
// reading cannot pin a writer forever. Generous on purpose: a request is
// small, so a write that takes this long means a dead peer, not a slow
// one. With a per-call timeout configured the write bound tightens to it.
const clientWriteTimeout = time.Minute

// pendingCall is one in-flight request, parked in the pending table until
// a reader delivers the response tagged with its ID.
type pendingCall struct {
	req  request
	resp response
	err  error
	done chan struct{} // closed exactly once, by whoever removes the call from pending
}

// Client is a connection to a name server with an optional resolution
// cache. One Client multiplexes any number of concurrent callers over a
// single connection: each call is tagged with a fresh ID and parked in a
// pending table, then the caller itself encodes the request under a
// capacity-1 write token — when other callers are already queued for the
// token the flush is left to the last of them, so a burst of pipelined
// requests rides one syscall. Responses come back in whatever order the
// server finished them and are dispatched by tag. Reading is
// leader/followers: one waiting caller at a time holds the read token and
// decodes for everyone, so the serial case pays no goroutine handoffs at
// all. A leader stuck in a read cannot honor its own timer, so with
// WithTimeout the leader arms the connection's read deadline with its
// call's expiry instead — a deadline-failed read poisons the client
// exactly as an expired call would have (see lead). The pending table lives under its own
// short-section mutex and the cache and counters under another, so Stats
// and cache hits never wait behind a slow server and no mutex is ever
// held across wire I/O (lockheld).
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer // guarded by wtoken
	br      *bufio.Reader // guarded by rtoken (and by NewClient during negotiation)
	enc     *gob.Encoder  // guarded by wtoken; nil unless the codec is gob
	dec     *gob.Decoder  // guarded by rtoken; nil unless the codec is gob
	codec   Codec         // immutable after NewClient (negotiation settles it)
	timeout time.Duration // per-call bound; immutable after the options run

	wtoken    chan struct{} // capacity 1; held while encoding and flushing
	rtoken    chan struct{} // capacity 1; held by the leading reader
	wq        atomic.Int32  // declared write intents; >0 after our encode elides our flush
	wdeadline time.Time     // armed write deadline; guarded by wtoken
	wbuf      []byte        // binary encode scratch; guarded by wtoken
	rresp     response      // lead's reusable decode target; guarded by rtoken
	rbuf      []byte        // binary frame scratch; guarded by rtoken
	errs      strIntern     // decode-side error-string intern table; guarded by rtoken

	closeOnce sync.Once

	// pmu guards the multiplexing table only; never held across I/O.
	pmu     sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	broken  error // sticky: once the stream is unusable, new calls fail fast

	mu       sync.Mutex // guards the fields below; never held across I/O
	cache    *lru.Cache[string, core.Entity]
	coherent bool
	rev      uint64
	hits     int
	misses   int
	purges   int
	// subscription state (see Subscribe): push frames are consumed by a
	// standing reader goroutine, joined by Close via readerWG.
	subscribed    bool
	onInval       func(rev uint64)
	invalidations int

	readerWG sync.WaitGroup
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type cacheOption int

func (o cacheOption) apply(c *Client) {
	c.cache = lru.New[string, core.Entity](int(o))
}

// WithCache enables a client-side LRU resolution cache of at most n
// entries. The cache is never invalidated; it models the
// (coherence-agnostic) name caches common in directory services.
func WithCache(n int) ClientOption {
	return cacheOption(n)
}

type coherentCacheOption int

func (o coherentCacheOption) apply(c *Client) {
	c.cache = lru.New[string, core.Entity](int(o))
	c.coherent = true
}

// WithCoherentCache enables a revision-tracked LRU cache of at most n
// entries: every response carries the server's binding revision, the
// whole cache is purged when a response shows the revision advanced, and
// only entities fetched at the current revision are stored (see
// admitRevision for why both halves are needed once responses complete
// out of order). Cache staleness is thus bounded by one round-trip after
// a server-side change (pair with Server.WatchExport for automatic
// bumping).
func WithCoherentCache(n int) ClientOption {
	return coherentCacheOption(n)
}

type timeoutOption time.Duration

func (o timeoutOption) apply(c *Client) { c.timeout = time.Duration(o) }

type codecOption Codec

func (o codecOption) apply(c *Client) { c.codec = Codec(o) }

// WithCodec pins the client's wire codec. The default, CodecBinary,
// negotiates: the client offers the binary codec and falls back to gob
// if the server insists (see WithServerCodec). WithCodec(CodecGob)
// skips the offer entirely and speaks raw gob from the first byte —
// wire-identical to a pre-codec client, the escape hatch for servers
// that predate the negotiation.
func WithCodec(codec Codec) ClientOption {
	return codecOption(codec)
}

// Codec reports the codec this connection settled on. Immutable once
// NewClient returns.
func (c *Client) Codec() Codec { return c.codec }

// WithTimeout bounds every call: a per-call timer starts when the call is
// issued and, on expiry, fails that call with a timeout error (satisfying
// errors.Is(err, os.ErrDeadlineExceeded) and net.Error's Timeout) and
// poisons the client — the abandoned response may still arrive and is
// discarded, but the connection's pipeline can no longer be trusted to be
// drained promptly, so subsequent calls fail fast and the caller must
// discard the client. Per-call timers replace conn.SetDeadline, which
// would race across concurrent calls sharing the connection.
func WithTimeout(d time.Duration) ClientOption {
	return timeoutOption(d)
}

// NewClient wraps an established connection. The client spawns no
// goroutines: callers themselves take turns decoding (see call).
//
// Unless WithCodec(CodecGob) pins the legacy stream, NewClient runs the
// one-byte codec negotiation before returning (the server must already
// be serving the connection). A failed negotiation poisons the client —
// every call reports the failure — rather than error out here, keeping
// the signature; Dial surfaces the error directly.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		br:      bufio.NewReader(conn),
		wtoken:  make(chan struct{}, 1),
		rtoken:  make(chan struct{}, 1),
		pending: make(map[uint64]*pendingCall),
	}
	for _, o := range opts {
		o.apply(c)
	}
	if c.codec == CodecBinary {
		if err := c.negotiate(); err != nil {
			c.fail(fmt.Errorf("codec negotiation: %w", err))
		}
	}
	if c.codec == CodecGob {
		c.enc = gob.NewEncoder(c.bw)
		c.dec = gob.NewDecoder(c.br)
	}
	return c
}

// negotiate offers the binary codec and adopts the server's one-byte
// choice. The handshake is bounded by the call timeout (or the dial
// default): a server that never answers — or a pre-codec server that
// chokes on the magic byte — must fail the client promptly, not hang it.
func (c *Client) negotiate() error {
	d := defaultDialTimeout
	if c.timeout > 0 && c.timeout < d {
		d = c.timeout
	}
	_ = c.conn.SetDeadline(time.Now().Add(d))
	hello := [1]byte{binaryMagic}
	if _, err := c.conn.Write(hello[:]); err != nil {
		return fmt.Errorf("send codec offer: %w", err)
	}
	choice, err := c.br.ReadByte()
	if err != nil {
		return fmt.Errorf("read codec choice: %w", err)
	}
	_ = c.conn.SetDeadline(time.Time{})
	switch choice {
	case binaryMagic:
		c.codec = CodecBinary
	case replyGob:
		c.codec = CodecGob
	default:
		return fmt.Errorf("server sent unknown codec choice 0x%02x", choice)
	}
	return nil
}

// Err returns the client's sticky failure: nil while the stream is
// healthy, the poisoning error once it is not (negotiation failure,
// transport death, timeout poisoning, or Close).
func (c *Client) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.broken
}

// defaultDialTimeout bounds Dial's connection attempt. A raw net.Dial is
// unbounded (conndeadline); callers wanting a different bound use
// DialTimeout.
const defaultDialTimeout = 10 * time.Second

// Dial connects to a server listening at addr. The connection attempt is
// bounded by a default timeout.
func Dial(network, addr string, opts ...ClientOption) (*Client, error) {
	return DialTimeout(network, addr, defaultDialTimeout, opts...)
}

// DialTimeout is Dial with a bound on the connection attempt itself.
func DialTimeout(network, addr string, timeout time.Duration, opts ...ClientOption) (*Client, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial name server: %w", err)
	}
	c := NewClient(conn, opts...)
	if err := c.Err(); err != nil {
		// Codec negotiation failed; don't hand out a poisoned client.
		_ = c.Close()
		return nil, fmt.Errorf("dial name server: %w", err)
	}
	return c, nil
}

// send encodes pc's request while holding the write token, then releases
// the token. The flush is elided when another caller has already declared
// a write intent (wq): that caller cannot abandon the token wait in
// no-timeout mode, so its own flush is guaranteed to carry our bytes and
// a pipelined burst coalesces into one syscall. With a per-call timeout a
// queued caller may abandon the wait, so every send flushes.
//
// The write deadline is a bound, not a precise timer: a hung peer must
// fail the write within the call timeout (or clientWriteTimeout without
// one), and anywhere inside that bound is correct. So it is re-armed
// lazily at half horizon and rides across sends — a stuck write dies
// between half the bound and the full bound after it starts, and the
// hot path almost never touches the runtime timer.
//
//namingvet:allocfree
func (c *Client) send(pc *pendingCall) error {
	d := clientWriteTimeout
	if c.timeout > 0 && c.timeout < d {
		d = c.timeout
	}
	if now := time.Now(); c.wdeadline.Sub(now) < d/2 {
		c.wdeadline = now.Add(d)
		_ = c.conn.SetWriteDeadline(c.wdeadline)
	}
	var err error
	if c.codec == CodecBinary {
		// Append-encode into the token-guarded scratch: the request's
		// bytes are built and written with zero heap traffic.
		c.wbuf = appendRequest(c.wbuf[:0], &pc.req)
		err = writeFrame(c.bw, c.wbuf)
	} else {
		//namingvet:allocfree-exempt -- legacy gob codec, selectable for one release
		err = c.enc.Encode(&pc.req)
	}
	if rem := c.wq.Add(-1); err == nil && (rem == 0 || c.timeout > 0) {
		err = c.bw.Flush()
	}
	<-c.wtoken
	return err
}

// lead decodes responses while holding the read token, dispatching each
// to the call wearing its tag, until pc completes or the stream dies.
// With no deadline an idle read blocks until the server speaks; Close
// unblocks it by closing the conn (conndeadline's idle-loop exemption
// knows this). With a per-call timeout the leader cannot select on its
// timer while blocked in Decode, so it arms the connection's read
// deadline with its own call's expiry instead: a deadline-failed read
// poisons the client exactly as expire would have — a call timeout always
// poisons, so trading the wrecked gob stream for a dead conn loses
// nothing. Each leader re-arms on taking the token, so the deadline in
// force is always the current leader's.
//
// The decode target is a scratch field reused across iterations and
// leaders (rtoken guards it, and dispatch copies the response out before
// the next decode), so the response struct itself stays off the heap on
// every delivery.
//
//namingvet:allocfree
func (c *Client) lead(pc *pendingCall, deadline time.Time) {
	if !deadline.IsZero() {
		_ = c.conn.SetReadDeadline(deadline)
	}
	for {
		select {
		case <-pc.done:
			return
		default:
		}
		if c.codec == CodecBinary {
			if err := c.readOneBinary(); err != nil {
				c.fail(recvFailure(err))
				return
			}
			continue
		}
		// Zero the scratch before reuse: gob merges into an existing value,
		// so a field the next message omits would leak the previous one.
		c.rresp = response{}
		//namingvet:allocfree-exempt -- legacy gob codec, selectable for one release
		if err := c.dec.Decode(&c.rresp); err != nil {
			c.fail(recvFailure(err))
			return
		}
		c.dispatch(&c.rresp)
	}
}

// readOneBinary reads and delivers one binary frame while holding the
// read token. A response for a live call is parsed directly into that
// call's own response struct — so the Results backing array the parse
// fills belongs to the caller outright, never aliased by the scratch
// the next frame reuses (gob got this for free by allocating fresh;
// the binary codec gets it by choosing the parse target first). Push
// frames and responses to abandoned calls parse into the token-guarded
// scratch instead.
//
//namingvet:allocfree
func (c *Client) readOneBinary() error {
	body, err := readFrame(c.br, &c.rbuf)
	if err != nil {
		return err
	}
	fr := frameReader{b: body}
	id, err := fr.uvarint()
	if err != nil {
		return err
	}
	if id != 0 {
		c.pmu.Lock()
		pc := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if pc != nil {
			if err := parseResponse(body, &pc.resp, &c.errs); err != nil {
				// pc is already out of the table, so fail cannot strand
				// it: deliver the verdict here, then kill the stream.
				pc.err = err
				close(pc.done)
				return err
			}
			close(pc.done)
			return nil
		}
	}
	// ID 0 (a push frame — clients never assign it) or an abandoned
	// call: parse into the scratch, both to validate the stream and, for
	// pushes, to feed the invalidation through dispatch.
	c.rresp = response{}
	if err := parseResponse(body, &c.rresp, &c.errs); err != nil {
		return err
	}
	if c.rresp.Invalidation {
		c.dispatch(&c.rresp)
	}
	return nil
}

// recvFailure classifies a dead read stream for fail: a deadline read
// poisons like a call timeout, EOF means the server went away, anything
// else is a transport fault.
//
//namingvet:allocfree-exempt -- cold: a dying stream formats its epitaph
func recvFailure(err error) error {
	var nerr net.Error
	switch {
	case errors.As(err, &nerr) && nerr.Timeout():
		return fmt.Errorf("poisoned by call timeout: %w", os.ErrDeadlineExceeded)
	case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("server closed: %w", err)
	default:
		return fmt.Errorf("recv response: %w", err)
	}
}

// dispatch delivers a decoded response to its pending call. Responses
// whose call has been abandoned are dropped. Push invalidation frames
// answer no call: they feed the coherent cache's purge rule directly —
// that is the whole point of subscribing — and then the optional
// notification callback, outside c.mu.
func (c *Client) dispatch(resp *response) {
	if resp.Invalidation {
		c.mu.Lock()
		c.invalidations++
		c.admitRevision(resp.Rev)
		onInval := c.onInval
		c.mu.Unlock()
		if onInval != nil {
			onInval(resp.Rev)
		}
		return
	}
	c.pmu.Lock()
	pc := c.pending[resp.ID]
	delete(c.pending, resp.ID)
	c.pmu.Unlock()
	if pc == nil {
		return
	}
	pc.resp = *resp
	close(pc.done)
}

// fail poisons the client with err: every pending call fails now, future
// calls fail fast, and the connection is closed (unhanging any reader and
// any in-progress write). Only the first error sticks; later calls keep
// reporting it.
//
//namingvet:allocfree-exempt -- cold: poisoning gathers the stranded calls once, at death
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	err = c.broken
	stranded := make([]*pendingCall, 0, len(c.pending))
	for id, pc := range c.pending {
		delete(c.pending, id)
		stranded = append(stranded, pc)
	}
	c.pmu.Unlock()
	for _, pc := range stranded {
		pc.err = err
		close(pc.done)
	}
	_ = c.conn.Close()
}

// reqLabel describes a request for error messages. Only failure paths pay
// for the formatting — building the label eagerly would tax every call on
// the wire's hot path.
func reqLabel(req *request) string {
	switch {
	case req.Routes:
		return "routes"
	case req.Subscribe:
		return "subscribe"
	case req.Op == OpBind:
		return fmt.Sprintf("bind %q", req.Name)
	case req.Op == OpUnbind:
		return fmt.Sprintf("unbind %q", req.Name)
	case req.Op == OpMkcontext:
		return fmt.Sprintf("mkcontext %q", req.Name)
	case req.Paths != nil:
		return fmt.Sprintf("resolve batch of %d", len(req.Paths))
	default:
		return fmt.Sprintf("resolve %q", strings.Join(req.Path, core.Separator))
	}
}

// call runs one tagged round-trip: register the call in the pending
// table, write the request ourselves under the write token, then wait for
// a reader to deliver the response wearing its tag — becoming that reader
// when no one else is leading. With a timeout configured the call is
// bounded everywhere: a timer covers the waits the caller can select on,
// and the connection's read deadline covers the leader's blocking decode
// (see lead and WithTimeout).
func (c *Client) call(req request) (response, error) {
	pc := &pendingCall{req: req, done: make(chan struct{})}
	c.pmu.Lock()
	if c.broken != nil {
		err := c.broken
		c.pmu.Unlock()
		return response{}, fmt.Errorf("%s: %w", reqLabel(&pc.req), err)
	}
	c.nextID++
	pc.req.ID = c.nextID
	c.pending[pc.req.ID] = pc
	c.pmu.Unlock()

	// The timer is created lazily, on the first wait that actually needs
	// to select on it: the uncontended paths — write token free, caller
	// leads its own read — never do, and the serial case skips the
	// allocation entirely.
	var deadline time.Time
	var timer *time.Timer
	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	arm := func() {
		if timer == nil && c.timeout > 0 {
			timer = time.NewTimer(time.Until(deadline))
			timeoutC = timer.C
		}
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	c.wq.Add(1)
	select {
	case c.wtoken <- struct{}{}:
		// Uncontended fast path: the token was free.
	default:
		if c.timeout == 0 {
			// Token holders always release within the write bound, so a
			// plain send cannot hang; failure surfaces when our write runs.
			c.wtoken <- struct{}{}
		} else {
			arm()
			select {
			case c.wtoken <- struct{}{}:
			case <-pc.done:
				// The client failed before we could write.
				c.wq.Add(-1)
				return c.finish(pc)
			case <-timeoutC:
				c.wq.Add(-1)
				return c.expire(pc)
			}
		}
	}
	if err := c.send(pc); err != nil {
		c.fail(fmt.Errorf("send request: %w", err))
		return c.finish(pc)
	}

	// Fast path: the read token is usually free in the serial case — lead
	// immediately. lead only returns once our call has completed.
	select {
	case c.rtoken <- struct{}{}:
		c.lead(pc, deadline)
		<-c.rtoken
		return c.finish(pc)
	default:
	}
	if c.timeout == 0 {
		for {
			select {
			case <-pc.done:
				return c.finish(pc)
			case c.rtoken <- struct{}{}:
				c.lead(pc, deadline)
				<-c.rtoken
				return c.finish(pc)
			}
		}
	}
	arm()
	for {
		select {
		case <-pc.done:
			return c.finish(pc)
		case c.rtoken <- struct{}{}:
			c.lead(pc, deadline)
			<-c.rtoken
			return c.finish(pc)
		case <-timeoutC:
			return c.expire(pc)
		}
	}
}

// finish unpacks a delivered call.
func (c *Client) finish(pc *pendingCall) (response, error) {
	if pc.err != nil {
		return response{}, fmt.Errorf("%s: %w", reqLabel(&pc.req), pc.err)
	}
	return pc.resp, nil
}

// expire abandons pc after its per-call timer fired. If the response beat
// the timer and is mid-delivery, the race is conceded to the reader — the
// response wins and the client stays healthy. Otherwise the call fails
// with a timeout and the client is poisoned: the wire may still owe us
// the late response, so the stream's pipeline depth is no longer known
// and the only safe sequel is a fresh connection.
func (c *Client) expire(pc *pendingCall) (response, error) {
	c.pmu.Lock()
	_, waiting := c.pending[pc.req.ID]
	if waiting {
		delete(c.pending, pc.req.ID)
		if c.broken == nil {
			c.broken = fmt.Errorf("poisoned by call timeout: %w", os.ErrDeadlineExceeded)
		}
	}
	c.pmu.Unlock()
	if !waiting {
		// The reader (or fail) already took the call out of the table and
		// owns closing done; wait for its verdict.
		<-pc.done
		return c.finish(pc)
	}
	return response{}, fmt.Errorf("%s: %w", reqLabel(&pc.req), os.ErrDeadlineExceeded)
}

// admitRevision applies the coherent-cache rule to a response's revision
// and reports whether entities from that response may be cached. Callers
// hold c.mu.
//
// With responses completing out of order, "purge when the revision
// changes" alone is no longer sound: a slow pre-bump response could land
// after the purge and re-insert a stale entity. The invariant is instead
// anchored to the newest revision ever seen (c.rev): a response strictly
// ahead purges and advances, a response at c.rev may fill, and a response
// strictly behind must neither purge nor fill. Every cached entry is then
// vouched for at exactly c.rev, and staleness stays bounded by one
// round-trip — the first response resolved after a server-side bump
// carries the advanced revision and evicts everything older, while late
// pre-bump stragglers are served to their caller but never cached.
//
//namingvet:allocfree
func (c *Client) admitRevision(rev uint64) bool {
	if !c.coherent {
		return true
	}
	if rev > c.rev {
		// The exported graph changed since our entries were fetched:
		// purge before trusting anything new.
		if c.cache.Len() > 0 {
			c.cache.Clear()
			c.purges++
		}
		c.rev = rev
	}
	return rev == c.rev
}

// Resolve resolves the compound name at the server (or the cache). Names
// that are not wire-canonical fail client-side with ErrNotCanonical
// before anything crosses the wire.
//
// A cache hit validates the name but does not build its wire form: the
// canonical []string is only materialized once the resolution actually
// has to cross the wire, so the hit path pays for the cache key and
// nothing else.
func (c *Client) Resolve(p core.Path) (core.Entity, error) {
	if err := checkWireCanonical(p); err != nil {
		return core.Undefined, err
	}
	var key string
	if c.cache != nil {
		key = p.String()
		c.mu.Lock()
		if e, ok := c.cache.Get(key); ok {
			c.hits++
			c.mu.Unlock()
			return e, nil
		}
		c.mu.Unlock()
	}
	// Already validated above; the error cannot recur.
	raw, _ := CanonicalWirePath(p)

	req := request{Path: raw}
	resp, err := c.call(req)
	if err != nil {
		return core.Undefined, err
	}
	if resp.Err != "" {
		// The server did answer, so its revision counts (and may purge),
		// but a failed resolution satisfied nothing: not a miss.
		c.mu.Lock()
		c.admitRevision(resp.Rev)
		c.mu.Unlock()
		return core.Undefined, &RemoteError{Msg: resp.Err}
	}
	e := core.Entity{ID: core.EntityID(resp.Ent), Kind: core.Kind(resp.Kind)}
	c.mu.Lock()
	// Count the miss only now that the uncached resolution succeeded; a
	// transport or remote failure is not a cache miss served.
	c.misses++
	if c.admitRevision(resp.Rev) && c.cache != nil {
		c.cache.Put(key, e)
	}
	c.mu.Unlock()
	return e, nil
}

// ResolveRev resolves p at the server, bypassing the client's own cache,
// and returns the binding revision the response carried. Cluster clients
// use it to drive a revision-tracked cache that spans many connections.
func (c *Client) ResolveRev(p core.Path) (core.Entity, uint64, error) {
	raw, err := CanonicalWirePath(p)
	if err != nil {
		return core.Undefined, 0, err
	}
	req := request{Path: raw}
	resp, err := c.call(req)
	if err != nil {
		return core.Undefined, 0, err
	}
	if resp.Err != "" {
		return core.Undefined, resp.Rev, &RemoteError{Msg: resp.Err}
	}
	return core.Entity{ID: core.EntityID(resp.Ent), Kind: core.Kind(resp.Kind)}, resp.Rev, nil
}

// ResolveBatchRev resolves every path in one round-trip, bypassing the
// client's own cache, and returns the batch's binding revision. Results
// are in argument order; per-name failures are in the results.
func (c *Client) ResolveBatchRev(paths []core.Path) ([]BatchResult, uint64, error) {
	raws, err := canonicalWirePaths(paths)
	if err != nil {
		return nil, 0, err
	}
	req := request{Paths: raws}
	resp, err := c.call(req)
	if err != nil {
		return nil, 0, err
	}
	if len(resp.Results) != len(paths) {
		return nil, 0, fmt.Errorf("resolve batch: got %d results for %d paths", len(resp.Results), len(paths))
	}
	out := make([]BatchResult, len(paths))
	for k, res := range resp.Results {
		if res.Err != "" {
			out[k] = BatchResult{Entity: core.Undefined, Err: &RemoteError{Msg: res.Err}}
			continue
		}
		out[k] = BatchResult{Entity: core.Entity{ID: core.EntityID(res.ID), Kind: core.Kind(res.Kind)}}
	}
	return out, resp.Rev, nil
}

// BatchResult is one outcome of a batched resolution.
type BatchResult struct {
	// Entity is the resolved entity (Undefined on failure).
	Entity core.Entity
	// Err is the per-name failure (*RemoteError), nil on success.
	Err error
}

// ResolveBatch resolves every path in one round-trip (cache hits are
// answered locally; duplicates cross the wire once). Results are in
// argument order. The returned error reports a transport failure; per-name
// resolution failures are in the results.
func (c *Client) ResolveBatch(paths []core.Path) ([]BatchResult, error) {
	out := make([]BatchResult, len(paths))
	if len(paths) == 0 {
		return out, nil
	}

	// Answer what we can from the cache; collect the rest, deduplicated.
	// Non-canonical names fail in their result slot before touching the
	// cache or the wire — a bad name must not become a cache key.
	need := make(map[string][]int)
	var order []string
	c.mu.Lock()
	for i, p := range paths {
		if err := checkWireCanonical(p); err != nil {
			out[i] = BatchResult{Entity: core.Undefined, Err: err}
			continue
		}
		key := p.String()
		if c.cache != nil {
			if e, ok := c.cache.Get(key); ok {
				c.hits++
				out[i] = BatchResult{Entity: e}
				continue
			}
		}
		if _, seen := need[key]; !seen {
			order = append(order, key)
		}
		need[key] = append(need[key], i)
	}
	c.mu.Unlock()
	if len(order) == 0 {
		return out, nil
	}

	req := request{Paths: make([][]string, len(order))}
	for k, key := range order {
		// Already validated above; the error cannot recur.
		raw, _ := CanonicalWirePath(paths[need[key][0]])
		req.Paths[k] = raw
	}
	resp, err := c.call(req)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(order) {
		return nil, fmt.Errorf("resolve batch: got %d results for %d paths", len(resp.Results), len(order))
	}
	c.mu.Lock()
	fresh := c.admitRevision(resp.Rev)
	for k, res := range resp.Results {
		var br BatchResult
		if res.Err != "" {
			br = BatchResult{Entity: core.Undefined, Err: &RemoteError{Msg: res.Err}}
		} else {
			br = BatchResult{Entity: core.Entity{ID: core.EntityID(res.ID), Kind: core.Kind(res.Kind)}}
			if fresh && c.cache != nil {
				c.cache.Put(order[k], br.Entity)
			}
		}
		for _, i := range need[order[k]] {
			out[i] = br
			if res.Err == "" {
				// Misses count per slot (duplicates included) and only for
				// slots an uncached resolution actually satisfied.
				c.misses++
			}
		}
	}
	c.mu.Unlock()
	return out, nil
}

// Routes fetches the routing table of a sharded deployment from the
// server. Servers outside a cluster answer with a RemoteError.
func (c *Client) Routes() (*RouteInfo, error) {
	resp, err := c.call(request{Routes: true})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	if resp.Routes == nil {
		return nil, &RemoteError{Msg: "empty routing table"}
	}
	return resp.Routes, nil
}

// Stats returns cache hits and misses so far.
func (c *Client) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purges returns how many times the coherent cache has been invalidated.
func (c *Client) Purges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.purges
}

// Invalidations returns how many push invalidation frames this client has
// consumed (always 0 without Subscribe).
func (c *Client) Invalidations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidations
}

// Close fails every in-flight and future call with ErrClientClosed and
// closes the connection, which also unblocks any caller leading a read —
// including the standing reader a subscription starts, which is then
// joined so no goroutine outlives the client.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.fail(ErrClientClosed)
	})
	c.readerWG.Wait()
	return nil
}
