package nameserver

// Tests for the tagged multiplexed wire client: per-call timeouts that
// fail only the hung call, connection poisoning, the out-of-order
// revision-admission rule, and the miss-count fix (a failed RPC is not a
// cache miss served).

import (
	"encoding/gob"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/faultnet"
)

// TestStatsMissCountedOnlyOnSuccess pins the miss-count rule: a miss is
// an uncached resolution that succeeded. Remote failures and transport
// failures leave the counters alone — under the old accounting a dead
// server inflated misses and skewed every hit-ratio experiment.
func TestStatsMissCountedOnlyOnSuccess(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(8))

	if _, err := c.Resolve(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after uncached success: Stats = (%d, %d), want (0, 1)", hits, misses)
	}
	if _, err := c.Resolve(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("after cache hit: Stats = (%d, %d), want (1, 1)", hits, misses)
	}

	// A remote failure is a definitive answer but satisfied no miss.
	var re *RemoteError
	if _, err := c.Resolve(core.ParsePath("no/such/name")); !errors.As(err, &re) {
		t.Fatalf("Resolve of a missing name = %v, want RemoteError", err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("after remote failure: Stats = (%d, %d), want (1, 1)", hits, misses)
	}

	// Batched: error slots do not count either; successful slots count per
	// slot (duplicates included).
	out, err := c.ResolveBatch([]core.Path{
		core.ParsePath("etc/passwd"), // does not exist: remote error
		core.ParsePath("usr/bin"),    // uncached success
		core.ParsePath("usr/bin"),    // duplicate slot of the same success
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err == nil || out[1].Err != nil || out[2].Err != nil {
		t.Fatalf("batch outcomes = (%v, %v, %v)", out[0].Err, out[1].Err, out[2].Err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 3 {
		t.Fatalf("after mixed batch: Stats = (%d, %d), want (1, 3)", hits, misses)
	}

	// A transport failure satisfied nothing.
	s.Close()
	if _, err := c.Resolve(core.ParsePath("usr/lib")); err == nil {
		t.Fatal("Resolve against a closed server should fail")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 3 {
		t.Fatalf("after transport failure: Stats = (%d, %d), want (1, 3)", hits, misses)
	}
}

// selectiveServer speaks raw gob on conn: it answers every request except
// single resolves of holdPath, which it withholds until release is
// closed (and then answers, late). It exercises the client against a
// server that is slow on one call but healthy on the rest — something
// faultnet cannot express, since its faults apply to whole connections.
func selectiveServer(t *testing.T, conn net.Conn, holdPath string, release <-chan struct{}) {
	t.Helper()
	go func() {
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		var held []request
		answer := func(req request) bool {
			return enc.Encode(response{ID: req.ID, Ent: 7, Kind: 1, Rev: 1}) == nil
		}
		for {
			var req request
			if dec.Decode(&req) != nil {
				break
			}
			if len(req.Path) == 1 && req.Path[0] == holdPath {
				held = append(held, req)
				continue
			}
			if !answer(req) {
				break
			}
		}
		<-release
		for _, req := range held {
			_ = enc.Encode(response{ID: req.ID, Ent: 9, Kind: 1, Rev: 1})
		}
		_ = conn.Close()
	}()
}

// TestTimeoutFailsOnlyHungCall pins the per-call deadline semantics: when
// one call times out, calls already in flight keep running to completion
// — only new calls fail fast on the poisoned client. (Under the old
// conn.SetDeadline design a timeout tore down every concurrent call.)
func TestTimeoutFailsOnlyHungCall(t *testing.T) {
	clientConn, serverConn := net.Pipe()
	release := make(chan struct{})
	selectiveServer(t, serverConn, "hang", release)

	// The fake server speaks raw gob, so pin the codec.
	c := NewClient(clientConn, WithTimeout(time.Second), WithCodec(CodecGob))
	defer c.Close()

	hungErr := make(chan error, 1)
	go func() {
		_, err := c.Resolve(core.Path{"hang"})
		hungErr <- err
	}()
	// Let the hung call reach the wire, then put a second call in flight
	// behind it; the second is answered immediately and must not wait for
	// the first's timeout.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if _, err := c.Resolve(core.Path{"ok"}); err != nil {
		t.Fatalf("concurrent call behind the hung one: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("concurrent call took %v; it waited behind the hung call", d)
	}

	// The hung call fails with a timeout at ~1s, and the error satisfies
	// both the sentinel and the net.Error convention.
	err := <-hungErr
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("hung call error = %v, want os.ErrDeadlineExceeded", err)
	}
	var netErr net.Error
	if !errors.As(err, &netErr) || !netErr.Timeout() {
		t.Fatalf("hung call error = %v, want a net.Error timeout", err)
	}

	// The timeout poisoned the client: new calls fail fast (well under the
	// 1s call timeout), with an error that still reads as a timeout so
	// retry policy treats it as a transport failure.
	start = time.Now()
	_, err = c.Resolve(core.Path{"ok"})
	if err == nil {
		t.Fatal("call on a poisoned client should fail")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("poisoned-client error = %v, want to wrap os.ErrDeadlineExceeded", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("poisoned-client call took %v, want fail-fast", d)
	}
	close(release)
}

// TestLateResponseAfterTimeoutIsDiscarded drives the abandonment path:
// the server answers the timed-out call after its timer fired; the reader
// must discard the orphaned response rather than mis-deliver it.
func TestLateResponseAfterTimeoutIsDiscarded(t *testing.T) {
	clientConn, serverConn := net.Pipe()
	release := make(chan struct{})
	selectiveServer(t, serverConn, "hang", release)

	// The fake server speaks raw gob, so pin the codec.
	c := NewClient(clientConn, WithTimeout(100*time.Millisecond), WithCodec(CodecGob))
	defer c.Close()

	if _, err := c.Resolve(core.Path{"hang"}); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want timeout", err)
	}
	// Deliver the late answer; the reader is still draining the stream and
	// must drop it on the floor (its call is gone from the pending table).
	close(release)
	time.Sleep(50 * time.Millisecond)
	// The client stays poisoned — the late response must not “heal” it.
	if _, err := c.Resolve(core.Path{"ok"}); err == nil {
		t.Fatal("poisoned client accepted a call after a late response")
	}
}

// TestMuxStress hammers one multiplexed coherent-cache client from 32
// goroutines with mixed Resolve / ResolveBatch / Stats while the server's
// export is concurrently rebound (with Bump), then asserts the bounded-
// staleness rule: after one round-trip at the final revision, the client
// — cache included — answers with the final binding. Run under -race this
// also proves the pending-table, writer, and cache locking sound.
func TestMuxStress(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "export")
	if _, err := tr.Create(core.ParsePath("usr/bin/ls"), "#!ls"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"etc/motd", "srv/www/idx", "home/ada/notes", "var/log"} {
		if _, err := tr.Create(core.ParsePath(p), p); err != nil {
			t.Fatal(err)
		}
	}
	binDir, err := tr.Lookup(core.ParsePath("usr/bin"))
	if err != nil {
		t.Fatal(err)
	}
	binCtx, _ := w.ContextOf(binDir)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCoherentCache(64))

	paths := []core.Path{
		core.ParsePath("usr/bin/ls"),
		core.ParsePath("etc/motd"),
		core.ParsePath("srv/www/idx"),
		core.ParsePath("home/ada/notes"),
	}
	stop := make(chan struct{})
	var wg, rebinder sync.WaitGroup

	// The rebinder: flip usr/bin/ls between two entities, bumping the
	// revision each time, so in-flight responses keep crossing revisions.
	alt := w.NewObject("alt-ls")
	orig, err := w.Resolve(tr.RootContext(), core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	rebinder.Add(1)
	go func() {
		defer rebinder.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				binCtx.Bind("ls", alt)
			} else {
				binCtx.Bind("ls", orig)
			}
			s.Bump()
			time.Sleep(time.Millisecond)
		}
	}()

	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 3 {
				case 0:
					e, err := c.Resolve(paths[i%len(paths)])
					if err != nil {
						t.Errorf("Resolve: %v", err)
						return
					}
					if p := paths[i%len(paths)]; p.String() == "usr/bin/ls" {
						if e != alt && e != orig {
							t.Errorf("usr/bin/ls resolved to %v, not one of its two bindings", e)
							return
						}
					}
				case 1:
					out, err := c.ResolveBatch(paths)
					if err != nil {
						t.Errorf("ResolveBatch: %v", err)
						return
					}
					for k, r := range out {
						if r.Err != nil {
							t.Errorf("batch slot %d: %v", k, r.Err)
							return
						}
					}
				default:
					c.Stats()
					c.Purges()
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	rebinder.Wait()

	// Settle on a final binding, then prove the staleness bound: one
	// round-trip at the final revision (var/log was never touched above,
	// so this resolve must cross the wire — its response carries the final
	// rev and purges anything older), after which every answer, cached or
	// not, is the final binding.
	binCtx.Bind("ls", alt)
	s.Bump()
	if _, err := c.Resolve(core.ParsePath("var/log")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		e, err := c.Resolve(core.ParsePath("usr/bin/ls"))
		if err != nil {
			t.Fatal(err)
		}
		if e != alt {
			t.Fatalf("resolve %d after settling = %v, want the final binding %v (stale cache survived a revision advance)", i, e, alt)
		}
	}
	if hits, misses := c.Stats(); hits+misses == 0 {
		t.Fatal("stress run recorded no cache traffic at all")
	}
}

// TestPipelinedCallsOverlap proves the multiplexing actually pipelines: a
// burst of concurrent resolves over one connection must drive the
// server's per-connection worker pool to overlap resolutions, completing
// far faster than the serial sum of its round-trips would. Rather than
// racing wall clocks, it checks overlap structurally — a server-side gate
// holds every worker until the full burst is simultaneously in flight,
// which can only happen if client and server both multiplex.
func TestPipelinedCallsOverlap(t *testing.T) {
	const burst = 8
	w := core.NewWorld()
	tr := dirtree.New(w, "export")
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hi"); err != nil {
		t.Fatal(err)
	}

	var gate sync.WaitGroup
	gate.Add(burst)
	s := NewServer(w, &gatingContext{Context: tr.RootContext(), gate: &gate}, WithWorkers(burst))
	c := pipeClient(t, s)

	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Resolve(core.ParsePath("etc/motd"))
			errs <- err
		}()
	}
	// gate.Wait inside each lookup releases only once all burst lookups
	// are in flight together; if any call waited for another's response,
	// this would deadlock (and the test would time out).
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// gatingContext blocks each request's first-component lookup until
// gate's count reaches zero, proving that the expected number of
// resolutions run concurrently. Only "etc" is gated — each request looks
// it up exactly once, so the gate counts requests, not path components.
type gatingContext struct {
	core.Context
	gate *sync.WaitGroup
}

func (g *gatingContext) Lookup(n core.Name) core.Entity {
	if n == "etc" {
		g.gate.Done()
		g.gate.Wait()
	}
	return g.Context.Lookup(n)
}

// TestFaultnetHangTimesOutEachCallAndPoisons drives the per-call timeout
// through a real TCP connection that faultnet hangs mid-stream: every
// call in flight when the hang begins fails at its own timer, the client
// is poisoned (new calls fail fast rather than re-waiting the timeout),
// and after the fault heals a fresh connection works while the poisoned
// one stays dead — exactly the contract cluster failover is built on.
func TestFaultnetHangTimesOutEachCallAndPoisons(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.Wrap(inner)
	go s.Serve(ln)
	defer s.Close()

	const timeout = 300 * time.Millisecond
	c, err := Dial("tcp", ln.Addr().String(), WithTimeout(timeout))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := core.ParsePath("usr/bin/ls")
	if _, err := c.Resolve(p); err != nil {
		t.Fatalf("healthy resolve: %v", err)
	}

	ln.SetMode(faultnet.Hang)
	start := time.Now()
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := c.Resolve(p)
			errs <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("hung call %d: err = %v, want os.ErrDeadlineExceeded", i, err)
		}
	}
	if d := time.Since(start); d > 4*timeout {
		t.Fatalf("4 concurrent hung calls took %v; per-call timers should expire in parallel, not in series", d)
	}

	// Poisoned: the next call fails immediately, not after another timeout.
	start = time.Now()
	if _, err := c.Resolve(p); err == nil {
		t.Fatal("call on the poisoned client should fail")
	}
	if d := time.Since(start); d > timeout/2 {
		t.Fatalf("poisoned-client call took %v, want fail-fast", d)
	}

	// Heal the network: the poisoned client stays dead, a fresh one works.
	ln.SetMode(faultnet.Pass)
	if _, err := c.Resolve(p); err == nil {
		t.Fatal("poisoned client must not heal with the network")
	}
	c2, err := Dial("tcp", ln.Addr().String(), WithTimeout(timeout))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Resolve(p); err != nil {
		t.Fatalf("fresh client after heal: %v", err)
	}
}
