package nameserver

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"namecoherence/internal/core"
)

func TestCanonicalWirePath(t *testing.T) {
	if _, err := CanonicalWirePath(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	bad := []core.Path{
		{},                // empty: names the peer's export root, whatever that is
		{"usr", ""},       // empty component
		{"usr", "bin/ls"}, // separator smuggled inside a component
		{"usr/bin", "ls"}, // ditto, first component
	}
	for _, p := range bad {
		if _, err := CanonicalWirePath(p); !errors.Is(err, ErrNotCanonical) {
			t.Fatalf("CanonicalWirePath(%q) err = %v, want ErrNotCanonical", p, err)
		}
	}
}

// TestClientRejectsNonCanonical pins the client-side half of §6: a
// non-canonical name fails before anything crosses the wire.
func TestClientRejectsNonCanonical(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	for _, p := range []core.Path{{}, {"usr", "bin/ls"}, {"usr", ""}} {
		if _, err := c.Resolve(p); !errors.Is(err, ErrNotCanonical) {
			t.Fatalf("Resolve(%q) err = %v, want ErrNotCanonical", p, err)
		}
		if _, _, err := c.ResolveRev(p); !errors.Is(err, ErrNotCanonical) {
			t.Fatalf("ResolveRev(%q) err = %v, want ErrNotCanonical", p, err)
		}
		if _, _, err := c.ResolveBatchRev([]core.Path{p}); !errors.Is(err, ErrNotCanonical) {
			t.Fatalf("ResolveBatchRev(%q) err = %v, want ErrNotCanonical", p, err)
		}
	}
	if n := s.Served(); n != 0 {
		t.Fatalf("Served = %d after local rejections, want 0", n)
	}
}

// TestBatchNonCanonicalSlots pins per-slot failure: bad names fail in
// their result slots, good names still resolve, and only the good ones
// cross the wire.
func TestBatchNonCanonicalSlots(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	paths := []core.Path{
		core.ParsePath("usr/bin/ls"),
		{"usr", "bin/ls"},
		{},
	}
	out, err := c.ResolveBatch(paths)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[0].Entity != f {
		t.Fatalf("good slot = (%v, %v), want (%v, nil)", out[0].Entity, out[0].Err, f)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(out[i].Err, ErrNotCanonical) {
			t.Fatalf("slot %d err = %v, want ErrNotCanonical", i, out[i].Err)
		}
	}
	if n := s.Served(); n != 1 {
		t.Fatalf("Served = %d, want 1 (only the canonical name crosses)", n)
	}
}

// TestServerRevalidatesWirePaths bypasses the client and speaks raw gob:
// the server must reject non-canonical paths itself (§6 — coherence is
// checked where the name is used, not only where it was made).
func TestServerRevalidatesWirePaths(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	serverEnd, clientEnd := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.ServeConn(serverEnd)
	}()
	t.Cleanup(func() {
		_ = clientEnd.Close()
		wg.Wait()
	})

	enc := gob.NewEncoder(clientEnd)
	dec := gob.NewDecoder(clientEnd)

	for _, raw := range [][]string{{"usr", "bin/ls"}, {"usr", ""}, nil} {
		if err := enc.Encode(request{Path: raw}); err != nil {
			t.Fatal(err)
		}
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp.Err, "not wire-canonical") {
			t.Fatalf("handcrafted request %q: Err = %q, want wire-canonical rejection", raw, resp.Err)
		}
	}

	// A batch gets per-result rejections; the good element still resolves.
	if err := enc.Encode(request{Paths: [][]string{{"usr", "bin", "ls"}, {"usr", "bin/ls"}}}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("Results = %d, want 2", len(resp.Results))
	}
	if resp.Results[0].Err != "" {
		t.Fatalf("canonical batch element failed: %q", resp.Results[0].Err)
	}
	if !strings.Contains(resp.Results[1].Err, "not wire-canonical") {
		t.Fatalf("non-canonical batch element: Err = %q, want wire-canonical rejection", resp.Results[1].Err)
	}
}
