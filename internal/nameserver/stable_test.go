package nameserver

import (
	"testing"
	"time"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/snapstore"
)

// TestStableSnapshotExcludesConcurrentWrite is the torn-snapshot
// regression: the keeper's snap closure must run under the same lock that
// serializes binding changes (Server.Stable), or a wire mutation landing
// between the revision read and the tree walk produces a snapshot whose
// content disagrees with its committed revision. The test opens a hook in
// the middle of a Stable-wrapped snap, fires a wire Bind from it, and
// checks (a) the bind blocks until the snap finishes and (b) the committed
// snapshot does not contain it.
func TestStableSnapshotExcludesConcurrentWrite(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	c := pipeClient(t, s)

	st, err := snapstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keeper := snapstore.NewKeeper(st, 0) // no periodic loop; Flush drives it
	defer keeper.Close()

	bound := make(chan error, 1)
	inSnap := make(chan struct{})
	first := true // the hook fires once; keeper.Close flushes again later
	keeper.Track(0, s.Revision, func() (h cas.Hash, rev uint64, err error) {
		s.Stable(func() {
			rev = s.Revision()
			if first {
				first = false
				// A writer shows up mid-snapshot. Under Stable it must block
				// on the write lock until the walk below completes.
				go func() {
					_, err := c.Bind(core.ParsePath("usr/bin"), "torn", f)
					bound <- err
				}()
				close(inSnap)
				select {
				case err := <-bound:
					t.Errorf("bind completed during stable snapshot: %v", err)
					bound <- nil // keep the post-snap receive from hanging
				case <-time.After(50 * time.Millisecond):
					// Blocked, as it must be.
				}
			}
			h, err = st.Snapshot(w, tr.Root)
		})
		return h, rev, err
	})

	s.Bump() // make the keeper consider the shard dirty
	if err := keeper.Flush(); err != nil {
		t.Fatal(err)
	}
	<-inSnap
	if err := <-bound; err != nil {
		t.Fatalf("bind after snapshot: %v", err)
	}

	// The committed snapshot must restore to a tree WITHOUT the bind that
	// arrived mid-snapshot.
	last, ok := st.Latest(0)
	if !ok {
		t.Fatal("no committed snapshot")
	}
	root, err := last.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st.Restore(root, w2, "restored")
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(w2, tr2.RootContext())
	c2 := pipeClient(t, s2)
	if _, err := c2.Resolve(core.ParsePath("usr/bin/torn")); err == nil {
		t.Fatal("snapshot contains a binding committed after its revision was read")
	}
	// ...while the live server does have it.
	if got, err := c.Resolve(core.ParsePath("usr/bin/torn")); err != nil || got != f {
		t.Fatalf("live resolve of post-snapshot bind = %v, %v", got, err)
	}
}
