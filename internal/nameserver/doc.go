// Package nameserver provides a distributed name-resolution substrate: a
// per-machine server that resolves compound names in an exported context,
// speaking a gob-encoded request/response protocol over any net.Conn (TCP
// loopback in the benchmarks, net.Pipe in unit tests).
//
// The paper's schemes assume that resolving a name bound on another machine
// involves the other machine; this package supplies that wire crossing so
// the remote-resolution cost and the effect of client-side caching (ablation
// A1) can be measured rather than assumed. Entities travel as (ID, Kind)
// pairs, valid in the shared simulation world.
package nameserver
