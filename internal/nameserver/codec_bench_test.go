package nameserver

// Codec micro-benchmarks: one encode+decode cycle per op for the typical
// steady-path messages, with no transport underneath — the isolated cost
// the binary codec replaced. BenchmarkNameServerRoundTrip (root package)
// measures the same work end-to-end, where transport synchronization
// dominates; this pair is where the codec swap itself is visible.

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// codecBenchMessages returns the steady-path message pair: a depth-3
// resolve request and its successful response (mirrors the round-trip
// benchmark's workload).
func codecBenchMessages() (request, response) {
	return request{ID: 7, Path: []string{"usr", "bin", "ls"}},
		response{ID: 7, Ent: 42, Kind: 1, Rev: 9}
}

func BenchmarkWireCodec(b *testing.B) {
	req, resp := codecBenchMessages()

	b.Run("request/binary", func(b *testing.B) {
		var buf []byte
		var sc workerScratch
		var out request
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendRequest(buf[:0], &req)
			if err := parseRequest(buf, &out, &sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("request/gob", func(b *testing.B) {
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		var out request
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&req); err != nil {
				b.Fatal(err)
			}
			out = request{}
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("response/binary", func(b *testing.B) {
		var buf []byte
		var errs strIntern
		var out response
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendResponse(buf[:0], &resp)
			if err := parseResponse(buf, &out, &errs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("response/gob", func(b *testing.B) {
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		var out response
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&resp); err != nil {
				b.Fatal(err)
			}
			out = response{}
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
