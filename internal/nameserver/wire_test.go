package nameserver

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// populated returns a representative, fully-populated value of each wire
// type. Every field is non-zero so a field silently dropped by gob (for
// example by becoming unexported) fails the round-trip comparison.
func populated() map[string]any {
	return map[string]any{
		"request": request{
			ID:         11,
			Path:       []string{"usr", "alice", "bin"},
			Paths:      [][]string{{"a"}, {"b", "c"}},
			Routes:     true,
			Subscribe:  true,
			Op:         OpBind,
			Name:       "ls",
			Target:     88,
			TargetKind: 2,
			AtRev:      41,
			Twin:       17,
		},
		"result": result{
			ID:   42,
			Kind: 3,
			Err:  "no such name",
		},
		"response": response{
			ID:   7,
			Ent:  12,
			Kind: 1,
			Rev:  99,
			Err:  "boom",
			Results: []result{
				{ID: 1, Kind: 2, Err: ""},
				{ID: 0, Kind: 0, Err: "missing"},
			},
			Routes: &RouteInfo{
				Prefixes: map[string]int{"usr": 1, "srv": 2},
				Default:  0,
				Addrs:    []string{"a:1", "b:2", "c:3"},
				Replicas: [][]string{{"a:1", "a:9"}, {"b:2"}, {"c:3"}},
			},
		},
		"RouteInfo": RouteInfo{
			Prefixes: map[string]int{"x": 4},
			Default:  4,
			Addrs:    []string{"x:1"},
			Replicas: [][]string{{"x:1", "x:2"}},
		},
	}
}

// TestWireRoundTrip gob-encodes and decodes a populated value of every
// registered wire type and requires the result to be identical.
func TestWireRoundTrip(t *testing.T) {
	values := populated()
	for name := range wireTypes {
		if _, ok := values[name]; !ok {
			t.Fatalf("wire type %q has no populated test value; add one to populated()", name)
		}
	}
	for name, v := range values {
		if _, ok := wireTypes[name]; !ok {
			t.Fatalf("test value %q is not in the wireTypes registry", name)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		out := reflect.New(reflect.TypeOf(v))
		if err := gob.NewDecoder(&buf).Decode(out.Interface()); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		got := out.Elem().Interface()
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", name, got, v)
		}
	}
}

// TestWireRegistryComplete requires every wire struct in wireTypes to
// have all fields exported: an unexported field would be silently dropped
// by gob, corrupting the protocol without an error.
func TestWireRegistryComplete(t *testing.T) {
	for name, v := range wireTypes {
		rt := reflect.TypeOf(v)
		if rt.Kind() != reflect.Struct {
			t.Errorf("%s: wire type is %s, want struct", name, rt.Kind())
			continue
		}
		for i := 0; i < rt.NumField(); i++ {
			if f := rt.Field(i); !f.IsExported() {
				t.Errorf("%s: field %s is unexported and would be dropped by gob", name, f.Name)
			}
		}
	}
}
