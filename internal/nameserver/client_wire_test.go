package nameserver

// Regression tests for the client's locking discipline: no mutex is held
// across wire I/O. An in-flight round-trip against a stalled server must
// not block Stats() or cache-hit resolutions — under the old single-mutex
// design both deadlocked until the server answered.

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"namecoherence/internal/core"
)

// stallServer answers the first n requests from its end of the pipe, then
// reads one more request and hangs until release is closed.
func stallServer(t *testing.T, conn net.Conn, n int, release <-chan struct{}) {
	t.Helper()
	go func() {
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for k := 0; k < n; k++ {
			var req request
			if dec.Decode(&req) != nil {
				return
			}
			if enc.Encode(response{ID: req.ID, Ent: uint64(k + 1), Kind: 1, Rev: 1}) != nil {
				return
			}
		}
		var req request
		if dec.Decode(&req) != nil {
			return
		}
		<-release // hold the round-trip open
		_ = conn.Close()
	}()
}

// promptly fails the test unless fn returns within two seconds.
func promptly(t *testing.T, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("%s blocked behind an in-flight round-trip", what)
	}
}

func TestStatsNotBlockedByInflightResolve(t *testing.T) {
	clientConn, serverConn := net.Pipe()
	release := make(chan struct{})
	stallServer(t, serverConn, 0, release)

	// The fake server speaks raw gob, so pin the codec (negotiating
	// against it would hang on the one-byte hello).
	c := NewClient(clientConn, WithCache(4), WithCodec(CodecGob))
	defer c.Close()

	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		_, _ = c.Resolve(core.Path{"stuck"})
	}()

	// Wait until the round-trip is actually on the wire (the stalled
	// server has decoded the request and is holding the token).
	time.Sleep(50 * time.Millisecond)

	promptly(t, "Stats", func() { c.Stats() })
	promptly(t, "Purges", func() { c.Purges() })

	close(release)
	<-inflight
}

func TestCacheHitNotBlockedByInflightResolve(t *testing.T) {
	clientConn, serverConn := net.Pipe()
	release := make(chan struct{})
	stallServer(t, serverConn, 1, release)

	// The fake server speaks raw gob, so pin the codec.
	c := NewClient(clientConn, WithCache(4), WithCodec(CodecGob))
	defer c.Close()

	// Warm the cache with the one answered request.
	warm, err := c.Resolve(core.Path{"warm"})
	if err != nil {
		t.Fatalf("warm resolve: %v", err)
	}

	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		_, _ = c.Resolve(core.Path{"stuck"})
	}()
	time.Sleep(50 * time.Millisecond)

	promptly(t, "cache-hit Resolve", func() {
		e, err := c.Resolve(core.Path{"warm"})
		if err != nil {
			t.Errorf("cached resolve: %v", err)
		}
		if e != warm {
			t.Errorf("cached resolve returned %v, want %v", e, warm)
		}
	})

	hits, _ := c.Stats()
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}

	close(release)
	<-inflight
}
